//! Umbrella package for the SuperC reproduction: hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). The library itself lives in the [`superc`] crate and its
//! components; see the workspace README.

pub use superc;
pub use superc_bdd as bdd;
pub use superc_cond as cond;
pub use superc_cpp as cpp;
pub use superc_csyntax as csyntax;
pub use superc_fmlr as fmlr;
pub use superc_grammar as grammar;
pub use superc_kernelgen as kernelgen;
pub use superc_lexer as lexer;
