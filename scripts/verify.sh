#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): release build + root-package tests,
# a parallel-parsing determinism pass, then the performance snapshot gate
# (scripts/bench.sh — gates both sequential and parallel entries).
# Pass --workspace to also run every crate's test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace so the CLI and experiment binaries rebuild too: the root
# package alone only pulls them in as libraries, leaving stale bins in
# target/release.
cargo build --release --workspace
if [[ "${1:-}" == "--workspace" ]]; then
    cargo test --workspace -q
else
    cargo test -q
fi
# Re-run the parallel determinism suite with a wider, oversubscribed jobs
# ladder than the default 1,2,8 — cheap extra scheduling coverage.
SUPERC_PAR_JOBS="1,2,3,5,8,16" cargo test -q --test parallel

# Never-crash gate: the pathological corpus (tests/fixtures/robustness,
# also exercised in-process by tests/robustness.rs) must exit cleanly
# under tight budgets — no panic escapes the firewall, and the full
# report (degradation warnings included) is byte-identical for any job
# count AND with the deterministic fast path disabled (--no-fastpath is
# an extra matrix leg everywhere a byte-identity reference exists).
ROBUST_BIN="$PWD/target/release/superc"
ROBUST_UNITS=(bomb.c deep_nest.c self_include.c typedef_maze.c paste_mess.c ok.c)
ref=""
have_ref=0
for fp in fastpath no-fastpath; do
    extra=()
    [[ "$fp" == no-fastpath ]] && extra=(--no-fastpath)
    for j in 1 2 8; do
        out=$(cd tests/fixtures/robustness && "$ROBUST_BIN" --jobs "$j" \
            --parse-budget 400 --max-subparsers 64 --include-depth 8 \
            ${extra[@]+"${extra[@]}"} "${ROBUST_UNITS[@]}" 2>&1) || {
            echo "verify: pathological corpus failed at --jobs $j ($fp)" >&2
            exit 1
        }
        if grep -qi "panic" <<<"$out"; then
            echo "verify: panic escaped the firewall at --jobs $j ($fp):" >&2
            echo "$out" >&2
            exit 1
        fi
        if [[ "$have_ref" == 0 ]]; then
            ref="$out"
            have_ref=1
        elif [[ "$out" != "$ref" ]]; then
            echo "verify: pathological output diverged at --jobs $j ($fp)" >&2
            diff <(echo "$ref") <(echo "$out") >&2 || true
            exit 1
        fi
    done
done
if ! grep -q "budget exceeded" <<<"$ref"; then
    echo "verify: tight budgets never tripped on the pathological corpus" >&2
    exit 1
fi
echo "verify: pathological corpus OK"

# Kernel-corpus smoke: generate a small (≤200 unit) kernelgen corpus on
# disk and push it through the CLI's pooled corpus driver at several job
# counts. Gates that the end-to-end binary path (disk I/O, include
# resolution, worker pool) succeeds on kernel-shaped input and that the
# full report is byte-identical at every job count and with
# --no-fastpath (the fast path may only change speed, never output).
KGEN_DIR=$(mktemp -d)
trap 'rm -rf "$KGEN_DIR"' EXIT
./target/release/kernelgen --units 128 --kernel --out "$KGEN_DIR" >/dev/null
ref=""
have_ref=0
for fp in fastpath no-fastpath; do
    extra=()
    [[ "$fp" == no-fastpath ]] && extra=(--no-fastpath)
    for j in 1 2 8; do
        out=$(cd "$KGEN_DIR" && "$ROBUST_BIN" --jobs "$j" \
            ${extra[@]+"${extra[@]}"} -I include src/*.c 2>&1) || {
            echo "verify: kernel corpus failed at --jobs $j ($fp)" >&2
            exit 1
        }
        if grep -qi "panic" <<<"$out"; then
            echo "verify: panic in kernel corpus run at --jobs $j ($fp):" >&2
            echo "$out" >&2
            exit 1
        fi
        if [[ "$have_ref" == 0 ]]; then
            ref="$out"
            have_ref=1
        elif [[ "$out" != "$ref" ]]; then
            echo "verify: kernel corpus output diverged at --jobs $j ($fp)" >&2
            diff <(echo "$ref") <(echo "$out") >&2 || true
            exit 1
        fi
    done
done
echo "verify: kernel corpus smoke OK"

# Warm re-run byte-identity: `--warm` re-runs the corpus through the
# pooled runner with the unit result memo enabled, and `--edit` rewrites
# a file between batches so only its dependents recompute. The final
# warm batch's report must be byte-for-byte identical to a fresh
# process run over the (now edited) tree — in the plain corpus driver
# and in every lint output format across the --profiles grid. Both legs
# exit nonzero here (the kernel corpus contains #error units and denied
# findings), so `|| true` keeps set -e out of the way; the comparison
# below is the actual gate.
WARM_HDR=include/linux/types.h
WARM_UNIT=src/unit0.c
for f in "$WARM_HDR" "$WARM_UNIT"; do
    if [[ ! -f "$KGEN_DIR/$f" ]]; then
        echo "verify: kernelgen layout changed: $f missing" >&2
        exit 1
    fi
done
cp "$KGEN_DIR/$WARM_HDR" "$KGEN_DIR/$WARM_HDR.edited"
printf 'int warm_probe_hdr;\n' >>"$KGEN_DIR/$WARM_HDR.edited"
cp "$KGEN_DIR/$WARM_UNIT" "$KGEN_DIR/$WARM_UNIT.edited"
printf 'int warm_probe_unit;\n' >>"$KGEN_DIR/$WARM_UNIT.edited"
warm=$(cd "$KGEN_DIR" && "$ROBUST_BIN" --jobs 4 --warm 2 \
    --edit "2:$WARM_HDR=$WARM_HDR.edited" -I include src/*.c 2>&1) || true
ref=$(cd "$KGEN_DIR" && "$ROBUST_BIN" --jobs 4 -I include src/*.c 2>&1) || true
if [[ -z "$ref" || "$warm" != "$ref" ]]; then
    echo "verify: warm corpus re-run diverged from fresh-process reference" >&2
    diff <(echo "$ref") <(echo "$warm") >&2 || true
    exit 1
fi
for fmt in text json sarif; do
    warm=$(cd "$KGEN_DIR" && "$ROBUST_BIN" lint \
        --profiles gcc-linux,clang-macos,msvc-windows \
        --format "$fmt" --jobs 4 --warm 2 \
        --edit "2:$WARM_UNIT=$WARM_UNIT.edited" -I include src/*.c 2>&1) || true
    ref=$(cd "$KGEN_DIR" && "$ROBUST_BIN" lint \
        --profiles gcc-linux,clang-macos,msvc-windows \
        --format "$fmt" --jobs 4 -I include src/*.c 2>&1) || true
    if [[ "$fmt" == text ]] && ! grep -q 'warning\[' <<<"$ref"; then
        echo "verify: warm lint reference produced no findings:" >&2
        echo "$ref" >&2
        exit 1
    fi
    if [[ -z "$ref" || "$warm" != "$ref" ]]; then
        echo "verify: warm lint $fmt report diverged from fresh-process reference" >&2
        diff <(echo "$ref") <(echo "$warm") >&2 || true
        exit 1
    fi
done
echo "verify: warm re-run byte-identity OK"

# Cross-profile byte-identity: the portability lint report over the
# seeded fixture corpus (tests/fixtures/portability, also exercised
# in-process by tests/portability.rs) must be byte-identical for any
# job count in every output format — the determinism contract the
# `--profiles` mode advertises.
PORT_DIR=tests/fixtures/portability
PORT_UNITS=(win_ifdef.c gnuc_version.c apple_decl.c stdc_version.c
    nested_guard.c clean_portable.c)
for fmt in text json sarif; do
    ref=""
    have_ref=0
    for j in 1 2 8; do
        out=$(cd "$PORT_DIR" && "$ROBUST_BIN" lint \
            --profiles gcc-linux,clang-macos,msvc-windows \
            --format "$fmt" --jobs "$j" "${PORT_UNITS[@]}" 2>&1) || true
        if ! grep -q "portability-" <<<"$out"; then
            echo "verify: no portability findings (--format $fmt --jobs $j):" >&2
            echo "$out" >&2
            exit 1
        fi
        if [[ "$have_ref" == 0 ]]; then
            ref="$out"
            have_ref=1
        elif [[ "$out" != "$ref" ]]; then
            echo "verify: cross-profile $fmt report diverged at --jobs $j" >&2
            diff <(echo "$ref") <(echo "$out") >&2 || true
            exit 1
        fi
    done
done
echo "verify: cross-profile lint byte-identity OK"

# Daemon byte-identity: drive the real binary's `superc daemon` mode
# over stdin/stdout (NDJSON, one response line per request) against the
# kernel corpus, and byte-compare every parse/lint response with a
# fresh one-shot CLI run over the same tree — including after an
# on-disk edit announced with a notify-only edit generation. This is
# the end-to-end version of tests/daemon.rs: same contract, but through
# the real process boundary. The coproc gives synchronous
# request/response turns, so disk edits between requests cannot race
# the daemon's batch processing.
DUNITS=()
for u in "$KGEN_DIR"/src/*.c; do DUNITS+=("src/${u##*/}"); done
DAEMON_UNITS=$(printf '"%s",' "${DUNITS[@]}")
DAEMON_UNITS="[${DAEMON_UNITS%,}]"
coproc DAEMON { cd "$KGEN_DIR" && exec "$ROBUST_BIN" daemon --jobs 4; }
# Bash drops the coproc variables as soon as the process is reaped, so
# grab the pid now for the post-shutdown wait.
DAEMON_WAIT_PID="$DAEMON_PID"

daemon_request() { # request-line -> response line on stdout
    printf '%s\n' "$1" >&"${DAEMON[1]}"
    local resp
    IFS= read -r resp <&"${DAEMON[0]}"
    printf '%s' "$resp"
}

daemon_check() { # label request-line reference-cli-args...
    local label="$1" req="$2" resp ref_failed=0
    shift 2
    resp=$(daemon_request "$req")
    if [[ $(jq -r .ok <<<"$resp") != true ]]; then
        echo "verify: daemon $label request failed: $resp" >&2
        exit 1
    fi
    (cd "$KGEN_DIR" && "$ROBUST_BIN" "$@") \
        >"$KGEN_DIR/.ref.out" 2>"$KGEN_DIR/.ref.err" || ref_failed=1
    jq -rj .stdout <<<"$resp" >"$KGEN_DIR/.got.out"
    jq -rj .stderr <<<"$resp" >"$KGEN_DIR/.got.err"
    local s
    for s in out err; do
        if ! cmp -s "$KGEN_DIR/.ref.$s" "$KGEN_DIR/.got.$s"; then
            echo "verify: daemon $label std$s diverged from fresh one-shot run" >&2
            diff "$KGEN_DIR/.ref.$s" "$KGEN_DIR/.got.$s" >&2 || true
            exit 1
        fi
    done
    local want_failed=false
    [[ "$ref_failed" == 1 ]] && want_failed=true
    if [[ $(jq -r .failed <<<"$resp") != "$want_failed" ]]; then
        echo "verify: daemon $label failed flag disagrees with CLI exit" >&2
        exit 1
    fi
}

daemon_check "parse" "{\"cmd\":\"parse\",\"units\":$DAEMON_UNITS}" \
    --jobs 4 "${DUNITS[@]}"
daemon_check "lint" "{\"cmd\":\"lint\",\"units\":$DAEMON_UNITS,\"format\":\"json\"}" \
    lint --format json --jobs 4 "${DUNITS[@]}"
# Edit one unit on disk, announce it with a notify-only generation, and
# require the next response to match a fresh run over the edited tree —
# with exactly that unit recomputed and every other unit replayed from
# the memo.
printf 'int daemon_probe_unit;\n' >>"$KGEN_DIR/$WARM_UNIT"
resp=$(daemon_request "{\"cmd\":\"edit\",\"path\":\"$WARM_UNIT\"}")
if [[ $(jq -rj .stdout <<<"$resp") != "generation 2"* ]]; then
    echo "verify: daemon edit notify rejected: $resp" >&2
    exit 1
fi
daemon_check "post-edit lint" \
    "{\"cmd\":\"lint\",\"units\":$DAEMON_UNITS,\"format\":\"json\"}" \
    lint --format json --jobs 4 "${DUNITS[@]}"
stats=$(daemon_request '{"cmd":"stats"}')
if [[ $(jq -r .unit_memo_misses <<<"$stats") != 1 ]]; then
    echo "verify: daemon must recompute exactly the edited unit: $stats" >&2
    exit 1
fi
if [[ $(jq -r .unit_memo_hits <<<"$stats") != $((${#DUNITS[@]} - 1)) ]]; then
    echo "verify: daemon must replay every untouched unit: $stats" >&2
    exit 1
fi
printf '%s\n' '{"cmd":"shutdown"}' >&"${DAEMON[1]}"
IFS= read -r resp <&"${DAEMON[0]}"
if [[ $(jq -r .shutdown <<<"$resp") != true ]]; then
    echo "verify: daemon shutdown handshake failed: $resp" >&2
    exit 1
fi
wait "$DAEMON_WAIT_PID" 2>/dev/null || true
echo "verify: daemon byte-identity OK"

# C API smoke: compile a tiny client against the hand-written
# crates/capi/include/superc.h, link the superc_capi cdylib, stage a
# two-file tree through the FFI (set_file + end_generation), and
# byte-compare its lint JSON with `superc lint --format json` over the
# same files on disk. Gates that the header matches the exported
# symbols, that the cdylib actually links, and that the embedding path
# honors the same output contract as the CLI.
CAPI_DIR=$(mktemp -d)
trap 'rm -rf "$KGEN_DIR" "$CAPI_DIR"' EXIT
mkdir -p "$CAPI_DIR/include"
cat >"$CAPI_DIR/include/a.h" <<'EOF'
#ifdef CONFIG_FAST
#define SPEED 9
#else
#define SPEED 1
#endif
int helper(int);
EOF
cat >"$CAPI_DIR/a.c" <<'EOF'
#include <a.h>
int use(void) { return helper(SPEED); }
int use(void);
EOF
cat >"$CAPI_DIR/client.c" <<'EOF'
#include <stdio.h>
#include <stdlib.h>
#include "superc.h"

/* Reads a file whole; the fixture is small. */
static char *slurp(const char *path) {
    FILE *f = fopen(path, "rb");
    if (!f) return NULL;
    fseek(f, 0, SEEK_END);
    long len = ftell(f);
    fseek(f, 0, SEEK_SET);
    char *buf = malloc((size_t)len + 1);
    if (!buf || fread(buf, 1, (size_t)len, f) != (size_t)len) {
        fclose(f);
        return NULL;
    }
    buf[len] = '\0';
    fclose(f);
    return buf;
}

/* Usage: client <unit.c> <staged-path>... — stages every argument from
 * disk, lints the first one as JSON, and prints the exact CLI bytes. */
int main(int argc, char **argv) {
    superc_driver *d = superc_driver_new(2);
    if (!d) return 2;
    for (int i = 1; i < argc; i++) {
        char *contents = slurp(argv[i]);
        if (!contents || superc_driver_set_file(d, argv[i], contents) != 0) {
            fprintf(stderr, "stage %s: %s\n", argv[i], superc_last_error(d));
            return 2;
        }
        free(contents);
    }
    if (superc_driver_end_generation(d) < 0) return 2;
    const char *units[] = {argv[1]};
    char *err = NULL;
    int failed = 0;
    char *out = superc_lint(d, units, 1, "json", &err, &failed);
    if (!out) {
        fprintf(stderr, "lint: %s\n", superc_last_error(d));
        return 2;
    }
    if (err) fputs(err, stderr);
    fputs(out, stdout);
    superc_string_free(out);
    superc_string_free(err);
    superc_driver_free(d);
    return failed ? 1 : 0;
}
EOF
cc -O1 -o "$CAPI_DIR/client" "$CAPI_DIR/client.c" \
    -I crates/capi/include -L target/release -lsuperc_capi \
    -Wl,-rpath,"$PWD/target/release"
c_failed=0
(cd "$CAPI_DIR" && ./client a.c include/a.h) \
    >"$CAPI_DIR/.got.out" 2>"$CAPI_DIR/.got.err" || c_failed=$?
if [[ "$c_failed" == 2 ]]; then
    echo "verify: C client errored:" >&2
    cat "$CAPI_DIR/.got.err" >&2
    exit 1
fi
cli_failed=0
(cd "$CAPI_DIR" && "$ROBUST_BIN" lint --format json a.c) \
    >"$CAPI_DIR/.ref.out" 2>"$CAPI_DIR/.ref.err" || cli_failed=1
for s in out err; do
    if ! cmp -s "$CAPI_DIR/.ref.$s" "$CAPI_DIR/.got.$s"; then
        echo "verify: C client lint std$s diverged from the CLI" >&2
        diff "$CAPI_DIR/.ref.$s" "$CAPI_DIR/.got.$s" >&2 || true
        exit 1
    fi
done
if [[ "$c_failed" != "$cli_failed" ]]; then
    echo "verify: C client exit ($c_failed) disagrees with CLI exit ($cli_failed)" >&2
    exit 1
fi
if ! grep -q '"diagnostics"' "$CAPI_DIR/.got.out"; then
    echo "verify: C client produced no lint JSON:" >&2
    cat "$CAPI_DIR/.got.out" >&2
    exit 1
fi
echo "verify: C API smoke OK"

cargo fmt --all --check
cargo clippy --workspace -- -D warnings
scripts/bench.sh
echo "verify: OK"
