#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): release build + root-package tests,
# then the performance snapshot gate (scripts/bench.sh).
# Pass --workspace to also run every crate's test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
if [[ "${1:-}" == "--workspace" ]]; then
    cargo test --workspace -q
else
    cargo test -q
fi
scripts/bench.sh
echo "verify: OK"
