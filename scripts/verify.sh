#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): release build + root-package tests,
# a parallel-parsing determinism pass, then the performance snapshot gate
# (scripts/bench.sh — gates both sequential and parallel entries).
# Pass --workspace to also run every crate's test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace so the CLI and experiment binaries rebuild too: the root
# package alone only pulls them in as libraries, leaving stale bins in
# target/release.
cargo build --release --workspace
if [[ "${1:-}" == "--workspace" ]]; then
    cargo test --workspace -q
else
    cargo test -q
fi
# Re-run the parallel determinism suite with a wider, oversubscribed jobs
# ladder than the default 1,2,8 — cheap extra scheduling coverage.
SUPERC_PAR_JOBS="1,2,3,5,8,16" cargo test -q --test parallel

# Never-crash gate: the pathological corpus (tests/fixtures/robustness,
# also exercised in-process by tests/robustness.rs) must exit cleanly
# under tight budgets — no panic escapes the firewall, and the full
# report (degradation warnings included) is byte-identical for any job
# count AND with the deterministic fast path disabled (--no-fastpath is
# an extra matrix leg everywhere a byte-identity reference exists).
ROBUST_BIN="$PWD/target/release/superc"
ROBUST_UNITS=(bomb.c deep_nest.c self_include.c typedef_maze.c paste_mess.c ok.c)
ref=""
have_ref=0
for fp in fastpath no-fastpath; do
    extra=()
    [[ "$fp" == no-fastpath ]] && extra=(--no-fastpath)
    for j in 1 2 8; do
        out=$(cd tests/fixtures/robustness && "$ROBUST_BIN" --jobs "$j" \
            --parse-budget 400 --max-subparsers 64 --include-depth 8 \
            ${extra[@]+"${extra[@]}"} "${ROBUST_UNITS[@]}" 2>&1) || {
            echo "verify: pathological corpus failed at --jobs $j ($fp)" >&2
            exit 1
        }
        if grep -qi "panic" <<<"$out"; then
            echo "verify: panic escaped the firewall at --jobs $j ($fp):" >&2
            echo "$out" >&2
            exit 1
        fi
        if [[ "$have_ref" == 0 ]]; then
            ref="$out"
            have_ref=1
        elif [[ "$out" != "$ref" ]]; then
            echo "verify: pathological output diverged at --jobs $j ($fp)" >&2
            diff <(echo "$ref") <(echo "$out") >&2 || true
            exit 1
        fi
    done
done
if ! grep -q "budget exceeded" <<<"$ref"; then
    echo "verify: tight budgets never tripped on the pathological corpus" >&2
    exit 1
fi
echo "verify: pathological corpus OK"

# Kernel-corpus smoke: generate a small (≤200 unit) kernelgen corpus on
# disk and push it through the CLI's pooled corpus driver at several job
# counts. Gates that the end-to-end binary path (disk I/O, include
# resolution, worker pool) succeeds on kernel-shaped input and that the
# full report is byte-identical at every job count and with
# --no-fastpath (the fast path may only change speed, never output).
KGEN_DIR=$(mktemp -d)
trap 'rm -rf "$KGEN_DIR"' EXIT
./target/release/kernelgen --units 128 --kernel --out "$KGEN_DIR" >/dev/null
ref=""
have_ref=0
for fp in fastpath no-fastpath; do
    extra=()
    [[ "$fp" == no-fastpath ]] && extra=(--no-fastpath)
    for j in 1 2 8; do
        out=$(cd "$KGEN_DIR" && "$ROBUST_BIN" --jobs "$j" \
            ${extra[@]+"${extra[@]}"} -I include src/*.c 2>&1) || {
            echo "verify: kernel corpus failed at --jobs $j ($fp)" >&2
            exit 1
        }
        if grep -qi "panic" <<<"$out"; then
            echo "verify: panic in kernel corpus run at --jobs $j ($fp):" >&2
            echo "$out" >&2
            exit 1
        fi
        if [[ "$have_ref" == 0 ]]; then
            ref="$out"
            have_ref=1
        elif [[ "$out" != "$ref" ]]; then
            echo "verify: kernel corpus output diverged at --jobs $j ($fp)" >&2
            diff <(echo "$ref") <(echo "$out") >&2 || true
            exit 1
        fi
    done
done
echo "verify: kernel corpus smoke OK"

# Warm re-run byte-identity: `--warm` re-runs the corpus through the
# pooled runner with the unit result memo enabled, and `--edit` rewrites
# a file between batches so only its dependents recompute. The final
# warm batch's report must be byte-for-byte identical to a fresh
# process run over the (now edited) tree — in the plain corpus driver
# and in every lint output format across the --profiles grid. Both legs
# exit nonzero here (the kernel corpus contains #error units and denied
# findings), so `|| true` keeps set -e out of the way; the comparison
# below is the actual gate.
WARM_HDR=include/linux/types.h
WARM_UNIT=src/unit0.c
for f in "$WARM_HDR" "$WARM_UNIT"; do
    if [[ ! -f "$KGEN_DIR/$f" ]]; then
        echo "verify: kernelgen layout changed: $f missing" >&2
        exit 1
    fi
done
cp "$KGEN_DIR/$WARM_HDR" "$KGEN_DIR/$WARM_HDR.edited"
printf 'int warm_probe_hdr;\n' >>"$KGEN_DIR/$WARM_HDR.edited"
cp "$KGEN_DIR/$WARM_UNIT" "$KGEN_DIR/$WARM_UNIT.edited"
printf 'int warm_probe_unit;\n' >>"$KGEN_DIR/$WARM_UNIT.edited"
warm=$(cd "$KGEN_DIR" && "$ROBUST_BIN" --jobs 4 --warm 2 \
    --edit "2:$WARM_HDR=$WARM_HDR.edited" -I include src/*.c 2>&1) || true
ref=$(cd "$KGEN_DIR" && "$ROBUST_BIN" --jobs 4 -I include src/*.c 2>&1) || true
if [[ -z "$ref" || "$warm" != "$ref" ]]; then
    echo "verify: warm corpus re-run diverged from fresh-process reference" >&2
    diff <(echo "$ref") <(echo "$warm") >&2 || true
    exit 1
fi
for fmt in text json sarif; do
    warm=$(cd "$KGEN_DIR" && "$ROBUST_BIN" lint \
        --profiles gcc-linux,clang-macos,msvc-windows \
        --format "$fmt" --jobs 4 --warm 2 \
        --edit "2:$WARM_UNIT=$WARM_UNIT.edited" -I include src/*.c 2>&1) || true
    ref=$(cd "$KGEN_DIR" && "$ROBUST_BIN" lint \
        --profiles gcc-linux,clang-macos,msvc-windows \
        --format "$fmt" --jobs 4 -I include src/*.c 2>&1) || true
    if [[ "$fmt" == text ]] && ! grep -q 'warning\[' <<<"$ref"; then
        echo "verify: warm lint reference produced no findings:" >&2
        echo "$ref" >&2
        exit 1
    fi
    if [[ -z "$ref" || "$warm" != "$ref" ]]; then
        echo "verify: warm lint $fmt report diverged from fresh-process reference" >&2
        diff <(echo "$ref") <(echo "$warm") >&2 || true
        exit 1
    fi
done
echo "verify: warm re-run byte-identity OK"

# Cross-profile byte-identity: the portability lint report over the
# seeded fixture corpus (tests/fixtures/portability, also exercised
# in-process by tests/portability.rs) must be byte-identical for any
# job count in every output format — the determinism contract the
# `--profiles` mode advertises.
PORT_DIR=tests/fixtures/portability
PORT_UNITS=(win_ifdef.c gnuc_version.c apple_decl.c stdc_version.c
    nested_guard.c clean_portable.c)
for fmt in text json sarif; do
    ref=""
    have_ref=0
    for j in 1 2 8; do
        out=$(cd "$PORT_DIR" && "$ROBUST_BIN" lint \
            --profiles gcc-linux,clang-macos,msvc-windows \
            --format "$fmt" --jobs "$j" "${PORT_UNITS[@]}" 2>&1) || true
        if ! grep -q "portability-" <<<"$out"; then
            echo "verify: no portability findings (--format $fmt --jobs $j):" >&2
            echo "$out" >&2
            exit 1
        fi
        if [[ "$have_ref" == 0 ]]; then
            ref="$out"
            have_ref=1
        elif [[ "$out" != "$ref" ]]; then
            echo "verify: cross-profile $fmt report diverged at --jobs $j" >&2
            diff <(echo "$ref") <(echo "$out") >&2 || true
            exit 1
        fi
    done
done
echo "verify: cross-profile lint byte-identity OK"

cargo fmt --all --check
cargo clippy --workspace -- -D warnings
scripts/bench.sh
echo "verify: OK"
