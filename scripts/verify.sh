#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): release build + root-package tests,
# a parallel-parsing determinism pass, then the performance snapshot gate
# (scripts/bench.sh — gates both sequential and parallel entries).
# Pass --workspace to also run every crate's test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace so the CLI and experiment binaries rebuild too: the root
# package alone only pulls them in as libraries, leaving stale bins in
# target/release.
cargo build --release --workspace
if [[ "${1:-}" == "--workspace" ]]; then
    cargo test --workspace -q
else
    cargo test -q
fi
# Re-run the parallel determinism suite with a wider, oversubscribed jobs
# ladder than the default 1,2,8 — cheap extra scheduling coverage.
SUPERC_PAR_JOBS="1,2,3,5,8,16" cargo test -q --test parallel
cargo fmt --all --check
cargo clippy --workspace -- -D warnings
scripts/bench.sh
echo "verify: OK"
