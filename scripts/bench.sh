#!/usr/bin/env bash
# Reproducible performance snapshot + regression gate.
#
# Builds the release benchmark binary, runs the standard corpora, and
# compares tokens/sec against the committed BENCH_fmlr.json. Fails when
# throughput regresses by more than the tolerance (default 40%: on
# virtualized single-core boxes back-to-back runs of the *same* build
# differ by ±30% — host steal comes and goes in windows longer than a
# whole run, so per-run best-of-reps cannot cancel it; the tight perf
# contracts live in the self_gates ratios below, whose interleaved reps
# make the drift cancel).
#
#   scripts/bench.sh              # compare against committed snapshot
#   scripts/bench.sh --update     # rewrite BENCH_fmlr.json in place
#   TOLERANCE=10 scripts/bench.sh # custom regression tolerance (%)
#
# Every gate that reads only the *new* snapshot (cache pair, governed
# cost, fast-path speedup, kernel jobs ladder) also runs on the
# --update path: a snapshot that fails its own gates is refused rather
# than committed, so BENCH_fmlr.json can never contradict this script.
# The snapshot records "machine_cores" so a reader can judge the
# parallel rows against the machine that produced them.
#
# Parallel-scaling gates on the kernel jobs ladder (kernel_j1..kernel_j8,
# all from the *new* snapshot so machine drift cancels):
#   PAR_SPEEDUP_MIN_J2=1.7 scripts/bench.sh # jobs=2 speedup floor
#   PAR_SPEEDUP_MIN_J8=3.0 scripts/bench.sh # jobs=8 speedup floor
# Defaults scale with the machine: on boxes with fewer cores than the
# rung's job count the floor degrades to "parallelism must not lose
# catastrophically" (oversubscription on a small machine costs real
# context-switch overhead against a fast sequential baseline).
#
# Fast-path gate: FASTPATH_MIN (default 1.25) is the minimum
# fig9_condfree vs fig9_condfree_nofp speedup — the deterministic fast
# path must actually pay on a conditional-free workload.
#
# Cross-profile gate: PROFILES_MAX (default 2.4) caps the wall clock of
# the 3-profile fig9_profiles matrix at that multiple of its
# single-profile leg fig9_profiles1 — sharing pre-expansion artifacts
# across profiles must make the matrix cheaper than three fresh runs.
#
# Incremental gate: WARM_MIN (default 3) is the minimum fig_incremental
# vs fig_incremental_cold speedup — a warm re-run with ~1% of units
# edited must skip preprocess+parse for the unchanged 99% via the unit
# memo. Behavior identity between the legs is asserted inside the
# benchmark binary itself (per rep), not here.
#
# Daemon gate: DAEMON_MIN (default 3) is the minimum fig_daemon vs
# fig_daemon_cold speedup — the same edit-then-reparse workload served
# by a long-running service Driver must beat a fresh one-shot run over
# the identical tree, bounding the service layer's own overhead.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${TOLERANCE:-40}"
REPS="${REPS:-5}"
SNAPSHOT=BENCH_fmlr.json

extract() { # file -> "name rate" lines
    sed -n 's/.*"name": "\([a-z0-9_]*\)".*"tokens_per_sec": \([0-9.]*\).*/\1 \2/p' "$1"
}

# Gates that judge a snapshot on its own terms (no committed baseline
# needed): every ratio compares rows measured back-to-back in one
# process, so machine drift cancels. Prints results; returns nonzero if
# any gate fails.
self_gates() {
    local f="$1" gfail=0

    # Shared-cache gates on the header-dominated workload pair: the L2
    # cache must actually fire (hit-rate floor) and must pay for itself
    # (cache-on throughput at least CACHE_RATIO_FLOOR x the
    # --no-shared-cache run).
    local HIT_RATE_FLOOR="${HIT_RATE_FLOOR:-0.15}"
    local CACHE_RATIO_FLOOR="${CACHE_RATIO_FLOOR:-1.3}"
    local hit_rate on_rate off_rate ratio
    hit_rate=$(sed -n 's/.*"name": "full_headers",.*"shared_cache_hit_rate": \([0-9.]*\).*/\1/p' "$f")
    on_rate=$(extract "$f" | awk '$1 == "full_headers" { print $2 }')
    off_rate=$(extract "$f" | awk '$1 == "full_headers_nocache" { print $2 }')
    if [[ -z "$hit_rate" || -z "$on_rate" || -z "$off_rate" ]]; then
        echo "bench: full_headers workload pair missing from new snapshot" >&2
        gfail=1
    else
        if awk -v h="$hit_rate" -v fl="$HIT_RATE_FLOOR" 'BEGIN { exit !(h >= fl) }'; then
            echo "bench: full_headers shared-cache hit rate $hit_rate (floor $HIT_RATE_FLOOR) OK"
        else
            echo "bench: full_headers shared-cache hit rate $hit_rate below floor $HIT_RATE_FLOOR" >&2
            gfail=1
        fi
        ratio=$(awk -v on="$on_rate" -v off="$off_rate" 'BEGIN { printf "%.2f", on / off }')
        if awk -v r="$ratio" -v fl="$CACHE_RATIO_FLOOR" 'BEGIN { exit !(r >= fl) }'; then
            echo "bench: full_headers cache-on/off speedup ${ratio}x (floor ${CACHE_RATIO_FLOOR}x) OK"
        else
            echo "bench: full_headers cache-on/off speedup ${ratio}x below floor ${CACHE_RATIO_FLOOR}x" >&2
            gfail=1
        fi
    fi

    # Governed-path cost gate: arming every resource budget (without any
    # of them tripping — fig9_governed uses generous limits) must stay
    # nearly free.
    local GOVERNED_TOLERANCE="${GOVERNED_TOLERANCE:-2}"
    local gov_rate base_rate gpct
    gov_rate=$(extract "$f" | awk '$1 == "fig9_governed" { print $2 }')
    base_rate=$(extract "$f" | awk '$1 == "fig9" { print $2 }')
    if [[ -z "$gov_rate" || -z "$base_rate" ]]; then
        echo "bench: fig9_governed/fig9 pair missing from new snapshot" >&2
        gfail=1
    else
        gpct=$(awk -v o="$base_rate" -v n="$gov_rate" \
            'BEGIN { printf "%+.1f", (n - o) / o * 100 }')
        if awk -v o="$base_rate" -v n="$gov_rate" -v t="$GOVERNED_TOLERANCE" \
            'BEGIN { exit !(n >= o * (1 - t / 100)) }'; then
            echo "bench: fig9_governed vs fig9 ${gpct}% (floor -${GOVERNED_TOLERANCE}%) OK"
        else
            echo "bench: governed path costs ${gpct}% vs fig9 (budget -${GOVERNED_TOLERANCE}%)" >&2
            gfail=1
        fi
    fi

    # Fast-path speedup gate: on the conditional-free workload pair
    # (interleaved reps, same corpus) the deterministic fast path + fused
    # lexing must beat the general FMLR loop by at least FASTPATH_MIN.
    local FASTPATH_MIN="${FASTPATH_MIN:-1.25}"
    local fp_on fp_off fp_ratio
    fp_on=$(extract "$f" | awk '$1 == "fig9_condfree" { print $2 }')
    fp_off=$(extract "$f" | awk '$1 == "fig9_condfree_nofp" { print $2 }')
    if [[ -z "$fp_on" || -z "$fp_off" ]]; then
        echo "bench: fig9_condfree workload pair missing from new snapshot" >&2
        gfail=1
    else
        fp_ratio=$(awk -v on="$fp_on" -v off="$fp_off" 'BEGIN { printf "%.2f", on / off }')
        if awk -v r="$fp_ratio" -v fl="$FASTPATH_MIN" 'BEGIN { exit !(r >= fl) }'; then
            echo "bench: fig9_condfree fastpath-on/off speedup ${fp_ratio}x (floor ${FASTPATH_MIN}x) OK"
        else
            echo "bench: fig9_condfree fastpath-on/off speedup ${fp_ratio}x below floor ${FASTPATH_MIN}x" >&2
            gfail=1
        fi
    fi

    # Cross-profile cost gate: analyzing the 3-profile matrix
    # (fig9_profiles) must cost at most PROFILES_MAX x the wall clock of
    # the single-profile run of the same corpus (fig9_profiles1) — the
    # shared pre-expansion cache amortizes lexing across the matrix, so
    # the marginal profile is much cheaper than a fresh run. Both legs
    # are measured interleaved in one process, so machine drift cancels
    # out of the ratio.
    local PROFILES_MAX="${PROFILES_MAX:-2.4}"
    local p3_secs p1_secs pr_ratio
    p3_secs=$(sed -n 's/.*"name": "fig9_profiles",.*"seconds": \([0-9.]*\).*/\1/p' "$f")
    p1_secs=$(sed -n 's/.*"name": "fig9_profiles1",.*"seconds": \([0-9.]*\).*/\1/p' "$f")
    if [[ -z "$p3_secs" || -z "$p1_secs" ]]; then
        echo "bench: fig9_profiles workload pair missing from new snapshot" >&2
        gfail=1
    else
        pr_ratio=$(awk -v a="$p3_secs" -v b="$p1_secs" 'BEGIN { printf "%.2f", a / b }')
        if awk -v r="$pr_ratio" -v cap="$PROFILES_MAX" 'BEGIN { exit !(r <= cap) }'; then
            echo "bench: fig9_profiles 3-profile/1-profile cost ${pr_ratio}x (cap ${PROFILES_MAX}x) OK"
        else
            echo "bench: fig9_profiles 3-profile/1-profile cost ${pr_ratio}x above cap ${PROFILES_MAX}x" >&2
            gfail=1
        fi
    fi

    # Incremental warm-rerun gate: the memo'd warm leg must beat the
    # cold leg (same pooled runner, same edits, interleaved reps) by at
    # least WARM_MIN. The legs differ only in whether the unit memo is
    # consulted, so the ratio isolates exactly the invalidation win.
    local WARM_MIN="${WARM_MIN:-3}"
    local warm_rate cold_rate warm_ratio
    warm_rate=$(extract "$f" | awk '$1 == "fig_incremental" { print $2 }')
    cold_rate=$(extract "$f" | awk '$1 == "fig_incremental_cold" { print $2 }')
    if [[ -z "$warm_rate" || -z "$cold_rate" ]]; then
        echo "bench: fig_incremental workload pair missing from new snapshot" >&2
        gfail=1
    else
        warm_ratio=$(awk -v on="$warm_rate" -v off="$cold_rate" 'BEGIN { printf "%.2f", on / off }')
        if awk -v r="$warm_ratio" -v fl="$WARM_MIN" 'BEGIN { exit !(r >= fl) }'; then
            echo "bench: fig_incremental warm/cold speedup ${warm_ratio}x (floor ${WARM_MIN}x) OK"
        else
            echo "bench: fig_incremental warm/cold speedup ${warm_ratio}x below floor ${WARM_MIN}x" >&2
            gfail=1
        fi
    fi

    # Daemon/service gate: the same edit-then-reparse workload served by
    # a long-running Driver (the engine behind `superc daemon` and the C
    # API) must beat the fresh one-shot run over the identical tree by
    # at least DAEMON_MIN. This bounds the service layer's own overhead
    # (overlay reads, generation bookkeeping) on top of the memo win the
    # WARM_MIN gate already proves.
    local DAEMON_MIN="${DAEMON_MIN:-3}"
    local d_warm d_cold d_ratio
    d_warm=$(extract "$f" | awk '$1 == "fig_daemon" { print $2 }')
    d_cold=$(extract "$f" | awk '$1 == "fig_daemon_cold" { print $2 }')
    if [[ -z "$d_warm" || -z "$d_cold" ]]; then
        echo "bench: fig_daemon workload pair missing from new snapshot" >&2
        gfail=1
    else
        d_ratio=$(awk -v on="$d_warm" -v off="$d_cold" 'BEGIN { printf "%.2f", on / off }')
        if awk -v r="$d_ratio" -v fl="$DAEMON_MIN" 'BEGIN { exit !(r >= fl) }'; then
            echo "bench: fig_daemon served/one-shot speedup ${d_ratio}x (floor ${DAEMON_MIN}x) OK"
        else
            echo "bench: fig_daemon served/one-shot speedup ${d_ratio}x below floor ${DAEMON_MIN}x" >&2
            gfail=1
        fi
    fi

    # Parallel-scaling gate on the kernel jobs ladder. The floors default
    # by core count: a near-linear expectation where the hardware can
    # deliver it. On a single core there is no parallelism to win — the
    # rungs measure pure scheduling overhead against a fast-path-enabled
    # sequential baseline — so the floor only rejects catastrophic loss.
    local CORES J2_DEFAULT J8_DEFAULT
    CORES=$(nproc 2>/dev/null || echo 1)
    if [[ "$CORES" -ge 2 ]]; then
        J2_DEFAULT=1.7
    else
        J2_DEFAULT=0.4
    fi
    if [[ "$CORES" -ge 8 ]]; then
        J8_DEFAULT=3.0
    elif [[ "$CORES" -ge 4 ]]; then
        J8_DEFAULT=2.0
    elif [[ "$CORES" -ge 2 ]]; then
        J8_DEFAULT=1.3
    else
        J8_DEFAULT=0.3
    fi
    local PAR_SPEEDUP_MIN_J2="${PAR_SPEEDUP_MIN_J2:-$J2_DEFAULT}"
    local PAR_SPEEDUP_MIN_J8="${PAR_SPEEDUP_MIN_J8:-$J8_DEFAULT}"
    local j1_rate rate speedup floor j
    j1_rate=$(extract "$f" | awk '$1 == "kernel_j1" { print $2 }')
    if [[ -z "$j1_rate" ]]; then
        echo "bench: kernel jobs ladder missing from new snapshot" >&2
        gfail=1
    else
        echo "bench: kernel jobs ladder (${CORES} cores):"
        echo "bench:   jobs    tok/s  speedup"
        for j in 1 2 4 8; do
            rate=$(extract "$f" | awk -v n="kernel_j$j" '$1 == n { print $2 }')
            if [[ -z "$rate" ]]; then
                echo "bench: kernel_j$j missing from new snapshot" >&2
                gfail=1
                continue
            fi
            speedup=$(awk -v r="$rate" -v b="$j1_rate" 'BEGIN { printf "%.2f", r / b }')
            printf 'bench:   %4d %8d  %sx\n' "$j" "${rate%.*}" "$speedup"
            floor=""
            case "$j" in
            2) floor="$PAR_SPEEDUP_MIN_J2" ;;
            8) floor="$PAR_SPEEDUP_MIN_J8" ;;
            esac
            if [[ -n "$floor" ]] &&
                ! awk -v s="$speedup" -v fl="$floor" 'BEGIN { exit !(s >= fl) }'; then
                echo "bench: kernel_j$j speedup ${speedup}x below floor ${floor}x" >&2
                gfail=1
            fi
        done
    fi

    return "$gfail"
}

cargo build --release -p superc-bench --bin bench_snapshot

if [[ "${1:-}" == "--update" ]]; then
    NEW=$(mktemp)
    trap 'rm -f "$NEW"' EXIT
    ./target/release/bench_snapshot --reps "$REPS" --json --out "$NEW"
    # A snapshot that fails its own gates is never committed: the stale
    # file stays, the script fails, and the contradiction is visible now
    # instead of in the next PR's comparison run.
    if ! self_gates "$NEW"; then
        echo "bench: refusing to update $SNAPSHOT: new snapshot fails its own gates" >&2
        exit 1
    fi
    cp "$NEW" "$SNAPSHOT"
    echo "bench: snapshot updated"
    exit 0
fi

if [[ ! -f "$SNAPSHOT" ]]; then
    echo "bench: no committed $SNAPSHOT; run scripts/bench.sh --update first" >&2
    exit 1
fi

NEW=$(mktemp)
trap 'rm -f "$NEW"' EXIT
./target/release/bench_snapshot --reps "$REPS" --json --out "$NEW"

# Compare per-workload tokens_per_sec with the committed snapshot. The
# snapshot carries sequential ("full", "fig9") and parallel ("full_par",
# "fig9_par") entries, so a scaling regression in the parallel driver
# gates the same way as a single-thread one.
fail=0
while read -r name old_rate; do
    # Baseline legs (*_nocache, *_nofp, *_cold) are measured only as
    # same-run denominators for the ratio gates above, which interleave
    # reps so machine drift cancels. Comparing their *absolute*
    # throughput against a snapshot from another run re-introduces
    # exactly that drift (the uncached-lexing leg swings tens of percent
    # on a loaded box) without guarding anything the ratio gates don't.
    # fig_incremental and fig_daemon themselves are skipped too: memo'd
    # throughput measures almost no parsing work, so their absolute
    # values are dominated by scheduler noise — the WARM_MIN and
    # DAEMON_MIN ratio gates are their real contracts.
    case "$name" in
    *_nocache | *_nofp | *_profiles1 | *_cold | fig_incremental | fig_daemon) continue ;;
    esac
    new_rate=$(extract "$NEW" | awk -v n="$name" '$1 == n { print $2 }')
    if [[ -z "$new_rate" ]]; then
        echo "bench: workload '$name' missing from new snapshot" >&2
        fail=1
        continue
    fi
    ok=$(awk -v o="$old_rate" -v n="$new_rate" -v t="$TOLERANCE" \
        'BEGIN { print (n >= o * (1 - t / 100)) ? 1 : 0 }')
    pct=$(awk -v o="$old_rate" -v n="$new_rate" \
        'BEGIN { printf "%+.1f", (n - o) / o * 100 }')
    if [[ "$ok" == 1 ]]; then
        echo "bench: $name ${old_rate%.*} -> ${new_rate%.*} tok/s (${pct}%) OK"
    else
        echo "bench: $name ${old_rate%.*} -> ${new_rate%.*} tok/s (${pct}%) REGRESSION (>${TOLERANCE}% slower)" >&2
        fail=1
    fi
done < <(extract "$SNAPSHOT")

self_gates "$NEW" || fail=1

exit "$fail"
