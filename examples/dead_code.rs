//! Dead-configuration finder: parse errors and `#error` directives that
//! occur only under some configurations.
//!
//! A configuration-preserving parser can report, for each problem, the
//! exact configurations it affects — something a one-configuration-at-a-
//! time tool can never do without 2^n runs.
//!
//! Run with `cargo run --example dead_code`.

use superc::{MemFs, Options, SuperC};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
#ifdef CONFIG_LEGACY_API
#error the legacy API was removed; disable CONFIG_LEGACY_API
#endif

int ok_everywhere;

#ifdef CONFIG_EXPERIMENTAL
/* A half-finished feature: syntactically broken in this configuration. */
int broken = = 1;
#else
int broken = 1;
#endif

#if defined(CONFIG_A) && !defined(CONFIG_A)
int never_compiled; /* infeasible: silently dropped */
#endif
"#;
    let fs = MemFs::new().file("dead.c", source);
    let mut superc = SuperC::new(Options::default(), fs);
    let processed = superc.process("dead.c")?;

    println!("--- preprocessor diagnostics (with presence conditions) ---");
    for d in &processed.unit.diagnostics {
        println!("[{:?}] under {}: {}", d.severity, d.cond, d.message);
    }

    println!("\n--- per-configuration parse errors ---");
    for e in &processed.result.errors {
        println!("{e}");
    }

    println!("\n--- verdict ---");
    match &processed.result.accepted {
        Some(acc) => {
            println!("configurations that parse: {acc}");
            if let Some(example) = acc.example_config() {
                println!("an example good configuration: {example:?}");
            }
            if let Some(bad) = acc.not().example_config() {
                println!("an example broken configuration: {bad:?}");
            }
        }
        None => println!("no configuration parses"),
    }
    Ok(())
}
