//! Quickstart: preprocess and parse a variable C file, inspect the AST.
//!
//! Run with `cargo run --example quickstart`.

use superc::{MemFs, Options, SuperC};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature of the paper's Figure 1: a static conditional that
    // splits an if-else statement across configurations.
    let source = r#"
#include "major.h"

#define MOUSEDEV_MIX 31
#define MOUSEDEV_MINOR_BASE 32

static int mousedev_open(struct inode *inode, struct file *file)
{
  int i;

#ifdef CONFIG_INPUT_MOUSEDEV_PSAUX
  if (imajor(inode) == MISC_MAJOR)
    i = MOUSEDEV_MIX;
  else
#endif
  i = iminor(inode) - MOUSEDEV_MINOR_BASE;

  return 0;
}
"#;
    let fs = MemFs::new()
        .file("mousedev.c", source)
        .file("major.h", "#define MISC_MAJOR 10\n");

    let mut superc = SuperC::new(Options::default(), fs);
    let processed = superc.process("mousedev.c")?;

    // The preprocessor resolved the include and macros but preserved the
    // conditional (Figure 1b).
    println!("--- preprocessed (all configurations) ---");
    println!("{}", processed.unit.display_text());

    // The parser produced one well-formed AST with a static choice node
    // (Figure 1c).
    let ast = processed.result.ast.as_ref().expect("parsed");
    println!("--- AST statistics ---");
    println!("nodes:        {}", ast.node_count());
    println!("choice nodes: {}", ast.choice_count());
    println!(
        "accepted configurations: {}",
        processed.result.accepted.as_ref().expect("accepted")
    );
    println!(
        "max subparsers while parsing: {}",
        processed.result.stats.max_subparsers
    );

    println!("\n--- AST (truncated) ---");
    let text = format!("{ast}");
    for line in text.lines().take(40) {
        println!("{line}");
    }
    Ok(())
}
