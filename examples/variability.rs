//! Variability analysis over the synthetic kernel corpus: which functions
//! and declarations exist only in some configurations?
//!
//! This is the class of downstream tool the paper motivates — a source
//! browser or bug finder that must see *every* configuration, not just
//! `allyesconfig`.
//!
//! Run with `cargo run --release --example variability`.

use superc::{declared_names, Options, SuperC};
use superc_kernelgen::{generate, CorpusSpec};

fn main() {
    let corpus = generate(&CorpusSpec::small());
    let mut sc = SuperC::new(Options::default(), corpus.fs.clone());

    let mut total = 0usize;
    let mut conditional = 0usize;
    println!("conditional declarations per unit:\n");
    for unit in &corpus.units {
        let p = sc.process(unit).expect("corpus units parse");
        let ast = p.result.ast.expect("ast");
        let names = declared_names(&ast);
        let cond_names: Vec<_> = names.iter().filter(|d| d.cond.is_some()).collect();
        total += names.len();
        conditional += cond_names.len();
        println!(
            "{unit}: {} declarations, {} conditional",
            names.len(),
            cond_names.len()
        );
        for d in cond_names.iter().take(3) {
            println!(
                "    {} ({}) under {}",
                d.name,
                d.kind,
                d.cond.as_ref().expect("conditional")
            );
        }
    }
    println!(
        "\ncorpus total: {total} declarations, {conditional} visible only in some configurations ({}%)",
        conditional * 100 / total.max(1)
    );
}
