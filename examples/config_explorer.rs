//! Configuration explorer: enumerate a file's configuration space and
//! unparse the C each configuration would compile — what an ordinary
//! preprocessor run under that configuration would have produced, but
//! computed from *one* configuration-preserving parse.
//!
//! Run with `cargo run --example config_explorer`.

use superc::{unparse_config, MemFs, Options, SuperC};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
#ifdef CONFIG_64BIT
#define BITS_PER_LONG 64
#else
#define BITS_PER_LONG 32
#endif

int nbits = BITS_PER_LONG;

#ifdef CONFIG_SMP
int cpus = 8;
#else
int cpus = 1;
#endif
"#;
    let fs = MemFs::new().file("conf.c", source);
    let mut superc = SuperC::new(Options::default(), fs);
    let processed = superc.process("conf.c")?;
    let ast = processed.result.ast.as_ref().expect("parsed");
    let ctx = superc.ctx().clone();

    // The condition variables that actually matter for this file.
    let vars = ["defined(CONFIG_64BIT)", "defined(CONFIG_SMP)"];
    println!(
        "one parse covers {} configurations over {:?}:\n",
        1 << vars.len(),
        vars
    );
    for bits in 0..(1u32 << vars.len()) {
        let assignment: Vec<(&str, bool)> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, bits >> i & 1 == 1))
            .collect();
        let text = unparse_config(ast, &ctx, &|name| {
            assignment.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
        });
        let label: Vec<String> = assignment
            .iter()
            .map(|(n, v)| {
                format!(
                    "{}={}",
                    n.trim_start_matches("defined(").trim_end_matches(')'),
                    u8::from(*v)
                )
            })
            .collect();
        println!("[{}]", label.join(" "));
        println!("  {text}\n");
    }

    println!(
        "(AST has {} choice nodes; the ordinary approach would preprocess and parse {} times)",
        ast.choice_count(),
        1 << vars.len()
    );
    Ok(())
}
