//! The Arc-shared artifact layer: grammar tables, seeded token
//! classification, and context-plugin lookup tables are built **once
//! per process** and shared by every worker, while each worker keeps
//! its own mutable layer (BDD manager, interner, macro table, parser
//! engine). These tests pin down the split:
//!
//! * the LALR tables are constructed exactly once no matter how many
//!   pools, workers, or batches run (`tables_built` counter hook);
//! * the pooled [`CorpusRunner`] obeys the same byte-identity contract
//!   as the one-shot driver across the jobs × shared-cache matrix,
//!   including warm reruns on the same pool;
//! * a poisoned worker rebuilds only its mutable layer — the shared
//!   tables are not rebuilt, and the pool's subsequent output is
//!   unchanged.

use std::sync::Arc;

use superc::analyze::LintOptions;
use superc::corpus::{Capture, CorpusOptions, CorpusReport, CorpusRunner};
use superc::{MemFs, Options, PpOptions, Profile};
use superc_kernelgen::{generate, Corpus, CorpusSpec};

fn options() -> Options {
    Options {
        pp: PpOptions {
            profile: Profile::default(),
            ..PpOptions::default()
        },
        ..Options::default()
    }
}

fn copts() -> CorpusOptions {
    CorpusOptions {
        capture: Capture {
            preprocessed: false,
            ast: false,
            unparse_configs: vec![vec![], vec!["CONFIG_SMP".into(), "CONFIG_64BIT".into()]],
        },
        lint: Some(LintOptions::default()),
        ..CorpusOptions::default()
    }
}

/// Schedule-independent view of the per-unit preprocessor counters (the
/// cache/memo hit counters depend on which worker got somewhere first;
/// see `tests/parallel.rs`).
fn countable(pp: &superc::PpStats) -> superc::PpStats {
    superc::PpStats {
        lex_nanos: 0,
        lex_nanos_saved: 0,
        shared_cache_hits: 0,
        shared_cache_misses: 0,
        condexpr_memo_hits: 0,
        condexpr_memo_misses: 0,
        expansion_memo_hits: 0,
        ..*pp
    }
}

fn assert_reports_identical(base: &CorpusReport, other: &CorpusReport, label: &str) {
    assert_eq!(base.units.len(), other.units.len(), "{label}: unit count");
    for (b, o) in base.units.iter().zip(&other.units) {
        assert_eq!(b.path, o.path, "{label}: input order not preserved");
        assert_eq!(
            countable(&b.pp),
            countable(&o.pp),
            "{}: {label}: preprocessor counters",
            b.path
        );
        assert_eq!(b.parse, o.parse, "{}: {label}: parser counters", b.path);
        assert_eq!(b.parsed, o.parsed, "{}: {label}: parsed flag", b.path);
        assert_eq!(b.fatal, o.fatal, "{}: {label}: fatal", b.path);
        assert_eq!(b.lints, o.lints, "{}: {label}: lint records", b.path);
        assert_eq!(b.unparses, o.unparses, "{}: {label}: unparses", b.path);
    }
    assert_eq!(
        base.behavior_counters(),
        other.behavior_counters(),
        "{label}: behavior fingerprint"
    );
}

fn corpus() -> Corpus {
    generate(&CorpusSpec::small())
}

#[test]
fn parse_tables_are_built_exactly_once_per_process() {
    let corpus = corpus();
    let fs = Arc::new(corpus.fs.clone());
    // Several pools at several sizes, several batches per pool: every
    // worker's parser must share the process-wide tables rather than
    // building its own copy.
    for jobs in [1, 2, 8] {
        let mut pool = CorpusRunner::new(&options(), Arc::clone(&fs), jobs, false);
        for _ in 0..2 {
            let report = pool.run(&corpus.units, &copts());
            assert!(report.parsed_units() > 0, "jobs={jobs}: nothing parsed");
        }
    }
    assert_eq!(
        superc::grammar::tables_built(),
        1,
        "LALR tables must be constructed once per process, not per worker"
    );
}

#[test]
fn pooled_runs_match_across_jobs_and_cache_settings() {
    let corpus = corpus();
    let fs = Arc::new(corpus.fs.clone());
    let mut base_pool = CorpusRunner::new(&options(), Arc::clone(&fs), 1, false);
    let base = base_pool.run(&corpus.units, &copts());
    assert!(base.parsed_units() > 0, "corpus produced no ASTs");
    assert!(base.lint_count() > 0, "corpus produced no lint findings");
    for jobs in [1, 2, 8] {
        for no_cache in [false, true] {
            let mut pool = CorpusRunner::new(&options(), Arc::clone(&fs), jobs, no_cache);
            // Two batches per pool: the second run reuses warm workers
            // (hot L1 caches, grown interners) and must still be
            // byte-identical to the cold one-shot base.
            for pass in 0..2 {
                let report = pool.run(&corpus.units, &copts());
                let label = format!(
                    "jobs={jobs} cache={} pass={pass}",
                    if no_cache { "off" } else { "on" }
                );
                assert_reports_identical(&base, &report, &label);
            }
        }
    }
}

#[test]
fn poisoned_worker_rebuilds_only_the_mutable_layer() {
    let fs = Arc::new(
        MemFs::new()
            .file("a.c", "int a;\n")
            .file("poison.c", "int p;\n")
            .file("b.c", "int b;\n"),
    );
    let units = vec!["a.c".to_string(), "poison.c".to_string(), "b.c".to_string()];
    let mut pool = CorpusRunner::new(&Options::default(), Arc::clone(&fs), 2, false);

    let clean = pool.run(&units, &CorpusOptions::default());
    assert_eq!(clean.fatal_units(), 0);
    let built_before = superc::grammar::tables_built();

    // Poison one unit: the firewall converts the worker's panic into a
    // per-unit failure and rebuilds that worker's mutable layer.
    let poisoned = pool.run(
        &units,
        &CorpusOptions {
            inject_panic: vec!["poison.c".to_string()],
            ..CorpusOptions::default()
        },
    );
    assert_eq!(poisoned.fatal_units(), 1);
    assert!(poisoned.units[1].fatal.is_some(), "poisoned unit slot");
    assert_eq!(poisoned.parsed_units(), 2, "healthy units still parse");

    // The rebuild touched only the mutable layer: no new table build...
    assert_eq!(
        superc::grammar::tables_built(),
        built_before,
        "worker recovery must not rebuild the shared tables"
    );
    // ...and the recovered pool's next batch is byte-identical to the
    // pre-poisoning run.
    let after = pool.run(&units, &CorpusOptions::default());
    assert_reports_identical(&clean, &after, "post-recovery batch");
}
