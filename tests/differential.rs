//! Differential testing: one configuration-preserving run, restricted to
//! a configuration, must equal a single-configuration ("gcc mode") run
//! under that configuration — both at the preprocessed-token level and at
//! the AST level.
//!
//! This is the same validation strategy the paper used for its
//! preprocessor ("comparing the result of running gcc's preprocessor ...
//! with the result of running it on the output of SuperC's
//! configuration-preserving preprocessor", §6.3) — with our own
//! single-configuration mode standing in for gcc.

use std::collections::BTreeSet;

use superc::cpp::Element;
use superc::{unparse_config, Options, PpOptions, Profile, SuperC};
use superc_kernelgen::{generate, CorpusSpec};

/// Flattens a preserved-variability element tree under a configuration.
fn select_tokens(elements: &[Element], env: &dyn Fn(&str) -> Option<bool>) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(elements: &[Element], env: &dyn Fn(&str) -> Option<bool>, out: &mut Vec<String>) {
        for e in elements {
            match e {
                Element::Token(t) => out.push(t.text().to_string()),
                Element::Conditional(k) => {
                    let mut taken = false;
                    for b in &k.branches {
                        if b.cond.eval(|n| env(n)) {
                            assert!(!taken, "branch conditions must be disjoint");
                            taken = true;
                            walk(&b.elements, env, out);
                        }
                    }
                    assert!(taken, "branch conditions must cover the configuration");
                }
            }
        }
    }
    walk(elements, env, &mut out);
    out
}

/// The corpus's configuration universe: CONFIG_* names that may be
/// toggled, plus the mapping for the one opaque non-boolean expression
/// the generator emits.
fn config_sets(seed: u64) -> Vec<Vec<String>> {
    // Deterministic pseudo-random subsets of the generator's CONFIG pool.
    let pool = [
        "CONFIG_SMP",
        "CONFIG_PM",
        "CONFIG_NUMA",
        "CONFIG_64BIT",
        "CONFIG_DEBUG_KERNEL",
        "CONFIG_PREEMPT",
        "CONFIG_HOTPLUG",
        "CONFIG_TRACE",
        "CONFIG_MODULES",
        "CONFIG_NET",
        "CONFIG_BLOCK",
        "CONFIG_PCI",
        "CONFIG_ACPI",
        "CONFIG_USB",
        "CONFIG_INPUT_MOUSEDEV_PSAUX",
        "CONFIG_HIGHMEM",
        "CONFIG_KERNEL_BYTEORDER",
        "CONFIG_HZ_1000",
    ];
    let mut sets = vec![Vec::new()]; // the all-off configuration
    let mut state = seed | 1;
    for _ in 0..6 {
        let mut set = Vec::new();
        for (i, name) in pool.iter().enumerate() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) & 1 == 1 || i == 0 {
                set.push((*name).to_string());
            }
        }
        sets.push(set);
    }
    sets.push(pool.iter().map(|s| s.to_string()).collect()); // all-on
    sets
}

#[test]
fn variability_preserving_equals_single_config() {
    let corpus = generate(&CorpusSpec::small());

    // One configuration-preserving run per unit.
    let mut full = SuperC::new(
        Options {
            pp: PpOptions {
                profile: Profile::default(),
                ..PpOptions::default()
            },
            ..Options::default()
        },
        corpus.fs.clone(),
    );
    let processed: Vec<_> = corpus
        .units
        .iter()
        .map(|u| full.process(u).expect("full run"))
        .collect();
    let ctx = full.ctx().clone();

    for set in config_sets(corpus.spec.seed) {
        // `NR_CPUS` is undefined in every configuration: gcc mode
        // evaluates `NR_CPUS < 256` as `0 < 256` = true, so the opaque
        // variable must be true as well.
        let env = |name: &str| -> Option<bool> {
            if name == "NR_CPUS < 256" {
                return Some(true);
            }
            let inner = name
                .strip_prefix("defined(")
                .and_then(|n| n.strip_suffix(')'))
                .unwrap_or(name);
            Some(set.iter().any(|s| s == inner))
        };

        // One single-configuration run per unit under this set.
        let defines: Vec<(String, String)> =
            set.iter().map(|n| (n.clone(), "1".to_string())).collect();
        let mut gcc = SuperC::new(
            Options {
                pp: PpOptions {
                    profile: Profile::default(),
                    defines,
                    single_config: true,
                    ..PpOptions::default()
                },
                ..Options::default()
            },
            corpus.fs.clone(),
        );

        for (unit_path, p) in corpus.units.iter().zip(&processed) {
            // Skip configurations this unit declares invalid via #error.
            let poisoned = p
                .unit
                .diagnostics
                .iter()
                .any(|d| d.message.starts_with("#error") && d.cond.eval(|n| env(n)));
            if poisoned {
                continue;
            }
            let g = gcc.process(unit_path).expect("gcc-mode run");
            assert!(g.result.errors.is_empty(), "{unit_path} under {set:?}");
            let expected: Vec<String> = {
                let mut v = Vec::new();
                for e in &g.unit.elements {
                    if let Element::Token(t) = e {
                        v.push(t.text().to_string());
                    }
                }
                v
            };

            // (1) Preprocessed tokens match.
            let got = select_tokens(&p.unit.elements, &env);
            assert_eq!(
                got, expected,
                "{unit_path}: preprocessed tokens differ under {set:?}"
            );

            // (2) The AST restricted to the configuration unparses to the
            // same token sequence.
            let ast = p.result.ast.as_ref().expect("full run parsed");
            let unparsed = unparse_config(ast, &ctx, &|n| env(n));
            let expected_text = expected.join(" ");
            assert_eq!(
                unparsed, expected_text,
                "{unit_path}: AST restriction differs under {set:?}"
            );
        }
    }
}

/// The free boolean variables a unit's variability depends on, discovered
/// from the presence conditions of its preserved conditionals.
///
/// Returns the *togglable* variables (bare `CONFIG_*`-style names, with
/// any `defined(...)` wrapper stripped). The one opaque subterm the
/// generator emits (`NR_CPUS < 256`) has a fixed truth value in every
/// configuration (see `variability_preserving_equals_single_config`), so
/// it is not free; any *other* opaque name is a drift in the generator
/// and fails the test.
fn free_variables(elements: &[Element]) -> BTreeSet<String> {
    let mut vars = BTreeSet::new();
    fn walk(elements: &[Element], vars: &mut BTreeSet<String>) {
        for e in elements {
            if let Element::Conditional(k) = e {
                for b in &k.branches {
                    for name in b.cond.support_names() {
                        let bare = name
                            .strip_prefix("defined(")
                            .and_then(|n| n.strip_suffix(')'))
                            .unwrap_or(&name);
                        if bare == "NR_CPUS < 256" {
                            continue; // fixed: true in every configuration
                        }
                        assert!(
                            bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                            "unexpected opaque condition variable {name:?}; \
                             the oracle cannot enumerate it"
                        );
                        vars.insert(bare.to_string());
                    }
                    walk(&b.elements, vars);
                }
            }
        }
    }
    walk(elements, &mut vars);
    vars
}

/// The exhaustive-configuration oracle (no sampling): for every small
/// unit — support of at most 8 free variables — enumerate **all** 2^n
/// configurations and check the configuration-preserving run against a
/// fresh single-configuration run, token-for-token at both the
/// preprocessor and AST levels. This upgrades the sampled differential
/// test above from "equal on 8 environments" to "equal on every
/// configuration the unit can express".
#[test]
fn exhaustive_configuration_oracle() {
    // A dedicated tiny corpus keeps supports small enough to enumerate
    // and single-config runs cheap enough to afford 2^n of them per unit.
    let spec = CorpusSpec {
        units: 5,
        subsystem_headers: 3,
        config_vars: 6,
        functions_per_unit: (1, 3),
        init_members: (2, 4),
        computed_include_pct: 0,
        error_directive_pct: 20,
        ..CorpusSpec::small()
    };
    let corpus = generate(&spec);
    let mut full = SuperC::new(
        Options {
            pp: PpOptions {
                profile: Profile::default(),
                ..PpOptions::default()
            },
            ..Options::default()
        },
        corpus.fs.clone(),
    );
    let ctx = full.ctx().clone();

    let mut covered_units = 0usize;
    let mut configs_checked = 0usize;
    for unit_path in &corpus.units {
        let p = full.process(unit_path).expect("full run");
        let vars: Vec<String> = free_variables(&p.unit.elements).into_iter().collect();
        assert!(
            vars.len() <= 8,
            "{unit_path}: support {vars:?} too large for this spec — \
             shrink the corpus, don't sample"
        );
        covered_units += 1;
        let ast = p.result.ast.as_ref().expect("full run parsed");

        for mask in 0u32..(1 << vars.len()) {
            let on: Vec<&String> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, v)| v)
                .collect();
            let env = |name: &str| -> Option<bool> {
                if name == "NR_CPUS < 256" {
                    return Some(true);
                }
                let inner = name
                    .strip_prefix("defined(")
                    .and_then(|n| n.strip_suffix(')'))
                    .unwrap_or(name);
                Some(on.iter().any(|s| *s == inner))
            };

            // Skip configurations the unit declares invalid via #error —
            // gcc mode would fail fatally there, by design.
            let poisoned = p
                .unit
                .diagnostics
                .iter()
                .any(|d| d.message.starts_with("#error") && d.cond.eval(|n| env(n)));
            if poisoned {
                continue;
            }

            let defines: Vec<(String, String)> =
                on.iter().map(|n| ((*n).clone(), "1".to_string())).collect();
            let mut gcc = SuperC::new(
                Options {
                    pp: PpOptions {
                        profile: Profile::default(),
                        defines,
                        single_config: true,
                        ..PpOptions::default()
                    },
                    ..Options::default()
                },
                corpus.fs.clone(),
            );
            let g = gcc.process(unit_path).expect("gcc-mode run");
            assert!(g.result.errors.is_empty(), "{unit_path} under {on:?}");
            let expected: Vec<String> = g
                .unit
                .elements
                .iter()
                .filter_map(|e| match e {
                    Element::Token(t) => Some(t.text().to_string()),
                    Element::Conditional(_) => None,
                })
                .collect();

            let got = select_tokens(&p.unit.elements, &env);
            assert_eq!(
                got, expected,
                "{unit_path}: preprocessed tokens differ under {on:?} (mask {mask:#b})"
            );
            let unparsed = unparse_config(ast, &ctx, &|n| env(n));
            assert_eq!(
                unparsed,
                expected.join(" "),
                "{unit_path}: AST restriction differs under {on:?} (mask {mask:#b})"
            );
            configs_checked += 1;
        }
    }

    // The oracle must actually have covered the corpus: every unit, and
    // enough configurations that enumeration is doing real work.
    assert_eq!(covered_units, corpus.units.len());
    assert!(
        configs_checked >= corpus.units.len() * 2,
        "only {configs_checked} configurations checked — supports degenerate?"
    );
}
