//! Never-crash guarantees over the pathological corpus in
//! `tests/fixtures/robustness/`.
//!
//! Each fixture is hostile in one specific way (conditional-dense
//! initializer, 80-deep conditional nesting, unguarded self-include,
//! conditional typedef ambiguity, conditionals inside `##`/`#`
//! operands). The contract under test:
//!
//! 1. No input panics — resource exhaustion *degrades* the unit to a
//!    [`ParseOutcome::Partial`] with condition-scoped trip records, and
//!    an actual panic (injected here via a test hook) is firewalled
//!    into a structured [`UnitFailure`] row instead of killing the run.
//! 2. Degradation is deterministic: the per-unit report — including the
//!    new partial/degradation/failure surfaces — is identical for
//!    `jobs` 1/2/8, shared cache on or off, for the deterministic
//!    budgets (subparsers, forks, steps; the wall-clock and BDD-node
//!    budgets are schedule-dependent safety nets and excluded here).
//! 3. Budget trips carry *exact* presence conditions: for every unit,
//!    accepted ∨ error conditions ∨ tripped conditions ≡ true, checked
//!    by BDD equivalence — every configuration is accounted for.

use superc::corpus::{process_corpus, Capture, CorpusOptions, UnitReport};
use superc::{Budgets, Cond, DiskFs, Options, ParserConfig, SuperC};

fn fixture_fs() -> DiskFs {
    DiskFs::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/robustness"
    ))
}

fn fixture_files() -> Vec<String> {
    [
        "bomb.c",
        "deep_nest.c",
        "self_include.c",
        "typedef_maze.c",
        "paste_mess.c",
        "ok.c",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Budgets tight enough that the hostile fixtures trip them while the
/// control fixture stays comfortably inside. Only deterministic budgets:
/// step count is a pure function of the unit, never of the schedule.
fn tight_budgets() -> Budgets {
    Budgets {
        max_steps: 400,
        max_include_depth: 8,
        ..Budgets::unlimited()
    }
}

fn copts(jobs: usize, no_shared_cache: bool) -> CorpusOptions {
    CorpusOptions {
        jobs,
        capture: Capture::default(),
        lint: None,
        no_shared_cache,
        inject_panic: Vec::new(),
        portability: false,
        warm: false,
    }
}

/// Everything schedule-invariant about a unit, for cross-run equality.
fn signature(u: &UnitReport) -> String {
    format!(
        "{} parsed={} partial={} degradations={:?} errors={:?} diagnostics={:?} \
         fatal={:?} failure={:?} choice_nodes={} parse={:?}",
        u.path,
        u.parsed,
        u.partial,
        u.degradations,
        u.errors,
        u.diagnostics,
        u.fatal,
        u.failure,
        u.choice_nodes,
        u.parse
    )
}

fn run_signatures(options: &Options, copts: &CorpusOptions) -> (Vec<String>, String) {
    let report = process_corpus(&fixture_fs(), &fixture_files(), options, copts);
    let sigs = report.units.iter().map(signature).collect();
    (sigs, report.behavior_counters())
}

#[test]
fn tight_budgets_never_panic_and_are_schedule_invariant() {
    let options = Options {
        budgets: tight_budgets(),
        ..Options::default()
    };
    let (base_sigs, base_counters) = run_signatures(&options, &copts(1, false));
    // The step budget must actually bite somewhere…
    assert!(
        base_sigs.iter().any(|s| s.contains("partial=true")),
        "no unit degraded under tight budgets: {base_sigs:#?}"
    );
    // …while the control fixture stays untouched.
    assert!(
        base_sigs.iter().any(|s| s.starts_with("ok.c")
            && s.contains("partial=false")
            && s.contains("parsed=true")),
        "control fixture degraded: {base_sigs:#?}"
    );
    assert!(base_counters.contains("partial="));
    for jobs in [1, 2, 8] {
        for no_cache in [false, true] {
            let (sigs, counters) = run_signatures(&options, &copts(jobs, no_cache));
            assert_eq!(
                sigs, base_sigs,
                "per-unit report drifted at jobs={jobs} no_cache={no_cache}"
            );
            assert_eq!(
                counters, base_counters,
                "behavior counters drifted at jobs={jobs} no_cache={no_cache}"
            );
        }
    }
}

#[test]
fn subparser_shedding_is_schedule_invariant_under_mapr() {
    // MAPR's naive forking is what actually piles up live subparsers
    // (the optimized levels merge eagerly and peak at 2 on this corpus),
    // so the live-cap budget is exercised against it.
    let options = Options {
        parser: ParserConfig::mapr(),
        budgets: Budgets {
            max_subparsers: 4,
            ..Budgets::unlimited()
        },
        ..Options::default()
    };
    let (base_sigs, _) = run_signatures(&options, &copts(1, false));
    assert!(
        base_sigs.iter().any(|s| s.contains("live subparsers")),
        "live-cap budget never tripped: {base_sigs:#?}"
    );
    for jobs in [2, 8] {
        let (sigs, _) = run_signatures(&options, &copts(jobs, false));
        assert_eq!(sigs, base_sigs, "shedding drifted at jobs={jobs}");
    }
}

#[test]
fn budget_trip_conditions_cover_every_configuration() {
    let options = Options {
        budgets: tight_budgets(),
        ..Options::default()
    };
    let mut partials = 0usize;
    for file in fixture_files() {
        let mut tool = SuperC::new(options.clone(), fixture_fs());
        let p = tool
            .process(&file)
            .unwrap_or_else(|e| panic!("{file}: pathological inputs must not be fatal: {e}"));
        let ctx = tool.ctx().clone();
        let mut covered: Cond = p
            .result
            .accepted
            .clone()
            .unwrap_or_else(|| ctx.constant(false));
        for e in &p.result.errors {
            covered = covered.or(&e.cond);
        }
        for t in &p.result.trips {
            covered = covered.or(&t.cond);
        }
        partials += usize::from(!p.result.trips.is_empty());
        assert!(
            covered.is_true(),
            "{file}: some configuration neither accepted, errored, nor \
             tripped a budget (covered only {covered})"
        );
    }
    assert!(partials > 0, "no fixture tripped a budget");
}

#[test]
fn include_depth_budget_degrades_with_a_diagnostic() {
    let options = Options {
        budgets: Budgets {
            max_include_depth: 4,
            ..Budgets::unlimited()
        },
        ..Options::default()
    };
    let mut tool = SuperC::new(options, fixture_fs());
    let p = tool
        .process("self_include.c")
        .expect("depth overflow must degrade, not fail");
    assert!(
        p.unit
            .diagnostics
            .iter()
            .any(|d| d.message.contains("include nesting too deep")),
        "missing depth diagnostic: {:?}",
        p.unit.diagnostics
    );
    assert!(p.result.ast.is_some(), "unit must still parse");
}

#[test]
fn injected_panics_are_firewalled_and_deterministic() {
    let options = Options::default();
    let inject = vec!["bomb.c".to_string()];
    let mut base: Option<Vec<String>> = None;
    for jobs in [1, 2, 8] {
        let copts = CorpusOptions {
            inject_panic: inject.clone(),
            ..copts(jobs, false)
        };
        let report = process_corpus(&fixture_fs(), &fixture_files(), &options, &copts);
        let bomb = &report.units[0];
        assert_eq!(bomb.path, "bomb.c");
        let failure = bomb
            .failure
            .as_ref()
            .expect("panic must become a failure row");
        assert_eq!(failure.stage, "panic");
        assert!(
            failure.message.contains("injected panic"),
            "payload lost: {failure:?}"
        );
        assert!(!bomb.parsed, "a panicked unit has no parse");
        // The worker that caught the panic rebuilds its state and keeps
        // going: every other unit is unaffected.
        assert_eq!(report.failed_units(), 1, "jobs={jobs}");
        assert_eq!(
            report.parsed_units(),
            fixture_files().len() - 1,
            "jobs={jobs}"
        );
        let sigs: Vec<String> = report.units.iter().map(signature).collect();
        match &base {
            None => base = Some(sigs),
            Some(b) => assert_eq!(&sigs, b, "firewall output drifted at jobs={jobs}"),
        }
    }
}

#[test]
fn generous_budgets_are_behavior_identical_to_ungoverned() {
    let governed = Options {
        budgets: Budgets {
            max_subparsers: 1 << 20,
            max_forks: 1 << 40,
            max_steps: 1 << 40,
            // Matches `PpOptions::default`, so the self-include fixture
            // bottoms out at the same depth either way.
            max_include_depth: 200,
            ..Budgets::unlimited()
        },
        ..Options::default()
    };
    let ungoverned = Options::default();
    let (gov_sigs, gov_counters) = run_signatures(&governed, &copts(1, false));
    let (raw_sigs, raw_counters) = run_signatures(&ungoverned, &copts(1, false));
    assert_eq!(
        gov_sigs, raw_sigs,
        "armed-but-untripped budgets changed behavior"
    );
    assert_eq!(gov_counters, raw_counters);
    assert!(gov_sigs.iter().all(|s| s.contains("partial=false")));
}
