/* Deliberately unguarded self-include: recursion is only bounded by the
 * preprocessor's include-depth budget. */
int rec_count;
#include "rec.h"
