/* Conditional typedef: under CONFIG_T, `tk * qk;` declares a pointer;
 * otherwise it multiplies two globals. The parser must fork on the
 * typedef ambiguity and keep both readings alive. */
#ifdef CONFIG_T
typedef int tk;
#else
int tk, qk;
#endif

int maze(void) {
    tk * qk;
    return 0;
}
