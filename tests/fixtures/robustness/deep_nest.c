/* Deeply nested conditionals: a conjunction 80 macros wide. */
#ifdef CONFIG_N0
#ifdef CONFIG_N1
#ifdef CONFIG_N2
#ifdef CONFIG_N3
#ifdef CONFIG_N4
#ifdef CONFIG_N5
#ifdef CONFIG_N6
#ifdef CONFIG_N7
#ifdef CONFIG_N8
#ifdef CONFIG_N9
#ifdef CONFIG_N10
#ifdef CONFIG_N11
#ifdef CONFIG_N12
#ifdef CONFIG_N13
#ifdef CONFIG_N14
#ifdef CONFIG_N15
#ifdef CONFIG_N16
#ifdef CONFIG_N17
#ifdef CONFIG_N18
#ifdef CONFIG_N19
#ifdef CONFIG_N20
#ifdef CONFIG_N21
#ifdef CONFIG_N22
#ifdef CONFIG_N23
#ifdef CONFIG_N24
#ifdef CONFIG_N25
#ifdef CONFIG_N26
#ifdef CONFIG_N27
#ifdef CONFIG_N28
#ifdef CONFIG_N29
#ifdef CONFIG_N30
#ifdef CONFIG_N31
#ifdef CONFIG_N32
#ifdef CONFIG_N33
#ifdef CONFIG_N34
#ifdef CONFIG_N35
#ifdef CONFIG_N36
#ifdef CONFIG_N37
#ifdef CONFIG_N38
#ifdef CONFIG_N39
#ifdef CONFIG_N40
#ifdef CONFIG_N41
#ifdef CONFIG_N42
#ifdef CONFIG_N43
#ifdef CONFIG_N44
#ifdef CONFIG_N45
#ifdef CONFIG_N46
#ifdef CONFIG_N47
#ifdef CONFIG_N48
#ifdef CONFIG_N49
#ifdef CONFIG_N50
#ifdef CONFIG_N51
#ifdef CONFIG_N52
#ifdef CONFIG_N53
#ifdef CONFIG_N54
#ifdef CONFIG_N55
#ifdef CONFIG_N56
#ifdef CONFIG_N57
#ifdef CONFIG_N58
#ifdef CONFIG_N59
#ifdef CONFIG_N60
#ifdef CONFIG_N61
#ifdef CONFIG_N62
#ifdef CONFIG_N63
#ifdef CONFIG_N64
#ifdef CONFIG_N65
#ifdef CONFIG_N66
#ifdef CONFIG_N67
#ifdef CONFIG_N68
#ifdef CONFIG_N69
#ifdef CONFIG_N70
#ifdef CONFIG_N71
#ifdef CONFIG_N72
#ifdef CONFIG_N73
#ifdef CONFIG_N74
#ifdef CONFIG_N75
#ifdef CONFIG_N76
#ifdef CONFIG_N77
#ifdef CONFIG_N78
#ifdef CONFIG_N79
int deepest = 1;
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
#endif
int deep_tail = 0;
