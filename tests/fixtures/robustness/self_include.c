#include "rec.h"
int uses_rec(void) { return rec_count; }
