/* Conditional-dense static initializer: every element is guarded by an
 * independent macro, so the parser must fork at each one. Pathological
 * on purpose: this is the shape that exhausts subparser/step budgets. */
static int bomb_table[] = {
#ifdef CONFIG_B0
    0,
#endif
#ifdef CONFIG_B1
    1,
#endif
#ifdef CONFIG_B2
    2,
#endif
#ifdef CONFIG_B3
    3,
#endif
#ifdef CONFIG_B4
    4,
#endif
#ifdef CONFIG_B5
    5,
#endif
#ifdef CONFIG_B6
    6,
#endif
#ifdef CONFIG_B7
    7,
#endif
#ifdef CONFIG_B8
    8,
#endif
#ifdef CONFIG_B9
    9,
#endif
#ifdef CONFIG_B10
    10,
#endif
#ifdef CONFIG_B11
    11,
#endif
#ifdef CONFIG_B12
    12,
#endif
#ifdef CONFIG_B13
    13,
#endif
#ifdef CONFIG_B14
    14,
#endif
#ifdef CONFIG_B15
    15,
#endif
#ifdef CONFIG_B16
    16,
#endif
#ifdef CONFIG_B17
    17,
#endif
#ifdef CONFIG_B18
    18,
#endif
#ifdef CONFIG_B19
    19,
#endif
#ifdef CONFIG_B20
    20,
#endif
#ifdef CONFIG_B21
    21,
#endif
#ifdef CONFIG_B22
    22,
#endif
#ifdef CONFIG_B23
    23,
#endif
    -1
};

int bomb_len(void) { return sizeof(bomb_table) / sizeof(bomb_table[0]); }
