/* Control fixture: a perfectly ordinary unit that must stay Complete
 * even under tight budgets. */
int ok_add(int a, int b) { return a + b; }
