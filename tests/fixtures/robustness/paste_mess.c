/* Conditionals inside `##` and `#` operands: both force the
 * preprocessor onto its hoist-and-retry paths. */
#define GLUE(a, b) a##b
#define STR(x) #x

int GLUE(val_,
#ifdef CONFIG_P
one
#else
two
#endif
) = 1;

const char *paste_name = STR(
#ifdef CONFIG_P
one
#else
two
#endif
);
