/* Seeded bug: both guards can hold at once, leaving MTU with two
 * different bodies in the overlap.
 * Expected: macro-conflict under defined(CONFIG_NET) && defined(CONFIG_NET_JUMBO). */
#ifdef CONFIG_NET
#define MTU 1500
#endif
#ifdef CONFIG_NET_JUMBO
#define MTU 9000
#endif
int frame_budget = 1;
