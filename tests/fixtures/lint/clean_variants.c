/* Clean fixture: ordinary configuration variance. Disjoint branches,
 * a deliberate #if 0 toggle, and consistent declarations must produce
 * zero diagnostics. */
#ifdef CONFIG_SMP
int nr_cpus = 8;
#else
int nr_cpus = 1;
#endif
#if 0
int disabled_experiment;
#endif
int run(void) { return nr_cpus; }
