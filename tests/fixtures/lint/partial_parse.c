/* Seeded bug: the initializer is missing when CONFIG_BROKEN is set, so
 * the unit only parses with it off.
 * Expected: partial-parse under defined(CONFIG_BROKEN). */
#ifdef CONFIG_BROKEN
int bad = ;
#else
int bad = 1;
#endif
int after;
