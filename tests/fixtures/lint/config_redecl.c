/* Seeded bug: shared_counter is declared int under CONFIG_X and long
 * under CONFIG_Y; the two guards are not mutually exclusive.
 * Expected: config-redecl under defined(CONFIG_X) && defined(CONFIG_Y). */
#ifdef CONFIG_X
int shared_counter;
#endif
#ifdef CONFIG_Y
long shared_counter;
#endif
int other;
