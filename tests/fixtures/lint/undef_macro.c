/* Seeded bug: CONFG_TYPO is tested but never defined anywhere and does
 * not match a config-variable prefix — almost certainly a misspelling
 * of a CONFIG_ option.
 * Expected: undef-macro-test at line 5 under true. */
#ifdef CONFG_TYPO
int typo_guarded;
#endif
int present;
