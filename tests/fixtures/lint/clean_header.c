/* Clean fixture: include-guard machinery and macro use must produce
 * zero diagnostics even though the guard macro is tested before it is
 * defined. */
#include "lint_guard.h"
int uses_header = GUARDED_VALUE;
