/* Clean fixture header: a standard include guard. The #ifndef test of
 * an undefined name must not be flagged because the guard defines it
 * immediately. */
#ifndef LINT_GUARD_H
#define LINT_GUARD_H
#define GUARDED_VALUE 7
#endif
