/* Seeded bug: the inner #ifndef contradicts the enclosing #ifdef, so
 * its branch is unreachable in every configuration.
 * Expected: dead-branch at line 5 under defined(CONFIG_A). */
#ifdef CONFIG_A
#ifndef CONFIG_A
int never_included;
#endif
int a;
#endif
int tail;
