/* Version-gated GNU extension: statically true under gcc and clang
   (both predefine __GNUC__ >= 4), symbolic under msvc-windows where
   __GNUC__ is a free macro. */
#if defined(__GNUC__) && __GNUC__ >= 4
int has_attributes;
#endif
int tail;
