/* Windows-only handle type: the conditional is decided by the _WIN32
   built-in, so every portability axis diverges between msvc-windows
   (where it is statically true) and the unix profiles (where _WIN32
   stays a free configuration variable). */
#ifdef _WIN32
int win_handle;
#else
int posix_fd;
#endif
int common;
