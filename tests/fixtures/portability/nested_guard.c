/* Nested split: the inner conditional's presence condition is a
   conjunction, `defined(CONFIG_FEATURE) && defined(_WIN32)` on unix
   profiles but just `defined(CONFIG_FEATURE)` under msvc-windows. */
#ifdef CONFIG_FEATURE
#ifdef _WIN32
int feature_win;
#endif
#endif
int base;
