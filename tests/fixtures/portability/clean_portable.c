/* Fully portable unit: only free CONFIG_* variables, no compiler or OS
   built-ins, so every profile produces an identical slice and the
   cross-profile differ must stay silent. */
#ifdef CONFIG_VERBOSE
int log_level = 2;
#else
int log_level = 0;
#endif
unsigned counter;
