/* Divergent declaration: `handle` is an unsigned long on macOS and an
   int elsewhere. clang-macos predefines __APPLE__, so the two arms
   resolve differently across profiles. */
#ifdef __APPLE__
typedef unsigned long os_handle_t;
os_handle_t handle;
#else
int handle;
#endif
