/* Three-way language-level split: gcc-linux predefines
   __STDC_VERSION__ = 199901L (else arm), the clang profiles predefine
   201112L (then arm), and msvc-windows leaves it free (symbolic). */
#if defined(__STDC_VERSION__) && __STDC_VERSION__ >= 201112L
int have_c11;
#else
int no_c11;
#endif
