//! Equivalence obligations across engine variants: every optimization
//! level (and the SAT backend) must accept the same configurations and
//! produce per-configuration-identical ASTs. The optimizations are
//! performance transformations; any observable difference is a bug.

use superc::cpp::Element;
use superc::{unparse_config, Options, ParserConfig, PpOptions, Profile, SuperC};
use superc_kernelgen::{generate, CorpusSpec};

fn opts() -> PpOptions {
    PpOptions {
        profile: Profile::default(),
        ..PpOptions::default()
    }
}

/// Sample configurations to compare under (deterministic).
fn sample_envs() -> Vec<Vec<&'static str>> {
    vec![
        vec![],
        vec!["CONFIG_SMP"],
        vec!["CONFIG_64BIT", "CONFIG_PM"],
        vec![
            "CONFIG_SMP",
            "CONFIG_64BIT",
            "CONFIG_KERNEL_BYTEORDER",
            "CONFIG_TRACE",
        ],
    ]
}

fn env_fn<'a>(set: &'a [&'a str]) -> impl Fn(&str) -> Option<bool> + 'a {
    move |name: &str| {
        if name == "NR_CPUS < 256" {
            return Some(true);
        }
        let inner = name
            .strip_prefix("defined(")
            .and_then(|n| n.strip_suffix(')'))
            .unwrap_or(name);
        Some(set.contains(&inner))
    }
}

#[test]
fn all_optimization_levels_are_observationally_equal() {
    let corpus = generate(&CorpusSpec::small());

    // Reference: full optimizations, BDD backend.
    let mut reference = SuperC::new(
        Options {
            pp: opts(),
            ..Options::default()
        },
        corpus.fs.clone(),
    );
    let ref_ctx = reference.ctx().clone();
    let refs: Vec<_> = corpus
        .units
        .iter()
        .map(|u| reference.process(u).expect("reference"))
        .collect();

    for (name, cfg) in ParserConfig::levels() {
        if !cfg.follow_set {
            // MAPR is *expected* to diverge (kill switch); covered by fig8.
            continue;
        }
        let mut sc = SuperC::new(
            Options {
                pp: opts(),
                parser: cfg,
                ..Options::default()
            },
            corpus.fs.clone(),
        );
        let ctx = sc.ctx().clone();
        for (unit, r) in corpus.units.iter().zip(&refs) {
            let p = sc
                .process(unit)
                .unwrap_or_else(|e| panic!("{name} {unit}: {e}"));
            assert_eq!(
                p.result.errors.len(),
                r.result.errors.len(),
                "{name} {unit}: error count differs"
            );
            // Accepted conditions agree semantically.
            match (&p.result.accepted, &r.result.accepted) {
                (Some(a), Some(b)) => {
                    for set in sample_envs() {
                        assert_eq!(
                            a.eval(|n| env_fn(&set)(n)),
                            b.eval(|n| env_fn(&set)(n)),
                            "{name} {unit}: acceptance differs under {set:?}"
                        );
                    }
                }
                (None, None) => {}
                _ => panic!("{name} {unit}: acceptance presence differs"),
            }
            // Per-configuration unparse agrees.
            let (Some(a), Some(b)) = (&p.result.ast, &r.result.ast) else {
                continue;
            };
            for set in sample_envs() {
                let ua = unparse_config(a, &ctx, &env_fn(&set));
                let ub = unparse_config(b, &ref_ctx, &env_fn(&set));
                assert_eq!(ua, ub, "{name} {unit}: unparse differs under {set:?}");
            }
        }
    }
}

#[test]
fn sat_backend_is_observationally_equal_to_bdd() {
    // The constrained corpus keeps the SAT run fast.
    let corpus = generate(&CorpusSpec {
        units: 6,
        ..CorpusSpec::constrained()
    });
    let mut bdd = SuperC::new(
        Options {
            pp: opts(),
            ..Options::default()
        },
        corpus.fs.clone(),
    );
    let mut sat = SuperC::new(
        Options {
            pp: opts(),
            ..Options::typechef_baseline()
        },
        corpus.fs.clone(),
    );
    let (bctx, sctx) = (bdd.ctx().clone(), sat.ctx().clone());
    for unit in &corpus.units {
        let pb = bdd.process(unit).expect("bdd");
        let ps = sat.process(unit).expect("sat");
        assert_eq!(pb.result.errors.len(), ps.result.errors.len(), "{unit}");
        let (Some(a), Some(b)) = (&pb.result.ast, &ps.result.ast) else {
            panic!("{unit}: missing ast");
        };
        for set in sample_envs() {
            let ua = unparse_config(a, &bctx, &env_fn(&set));
            let ub = unparse_config(b, &sctx, &env_fn(&set));
            assert_eq!(ua, ub, "{unit}: backends disagree under {set:?}");
        }
    }
}

/// Structural invariant of preprocessor output: within every conditional,
/// branch conditions are pairwise disjoint and cover the enclosing
/// condition — the partition invariant both Algorithm 1 (hoisting) and
/// Algorithm 3 (follow-set) rely on.
#[test]
fn branch_conditions_partition() {
    let corpus = generate(&CorpusSpec::small());
    let mut sc = SuperC::new(
        Options {
            pp: opts(),
            ..Options::default()
        },
        corpus.fs.clone(),
    );
    fn check(elements: &[Element], parent: &superc::Cond) {
        for e in elements {
            if let Element::Conditional(k) = e {
                let ctx = parent.ctx();
                let mut union = ctx.fls();
                for (i, b) in k.branches.iter().enumerate() {
                    assert!(!b.cond.is_false(), "infeasible branches must be trimmed");
                    assert!(
                        union.and(&b.cond).is_false(),
                        "branch {i} overlaps earlier branches"
                    );
                    union = union.or(&b.cond);
                    check(&b.elements, &b.cond);
                }
                assert!(
                    union.semantically_equal(parent),
                    "branches do not cover the enclosing condition"
                );
            }
        }
    }
    for unit in &corpus.units {
        let p = sc.process(unit).expect("processes");
        let tru = sc.ctx().tru();
        check(&p.unit.elements, &tru);
    }
}
