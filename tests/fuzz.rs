//! Property-based fuzzing of the full pipeline: randomly generated
//! directive/declaration soups must never panic the preprocessor or
//! parser, must keep the branch-partition invariant, and must stay
//! differentially consistent with single-configuration mode.

use proptest::prelude::*;
use superc::cpp::Element;
use superc::{Builtins, Options, PpOptions, SuperC};

/// A tiny AST of preprocessor-and-C soup that always generates
/// *lexable* text (the pipeline should handle arbitrary bytes too, but
/// the interesting surface is structured variability).
#[derive(Clone, Debug)]
enum Soup {
    Decl(u8),
    Expand(u8),
    Define(u8, u8),
    Undef(u8),
    FnDefine(u8, u8),
    Cond(u8, Vec<Soup>, Vec<Soup>),
    IfExpr(u8, u8, Vec<Soup>),
}

fn soup() -> impl Strategy<Value = Vec<Soup>> {
    let leaf = prop_oneof![
        (0u8..6).prop_map(Soup::Decl),
        (0u8..4).prop_map(Soup::Expand),
        (0u8..4, 0u8..10).prop_map(|(m, v)| Soup::Define(m, v)),
        (0u8..4).prop_map(Soup::Undef),
        (0u8..4, 0u8..10).prop_map(|(m, v)| Soup::FnDefine(m, v)),
    ];
    let item = leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                0u8..5,
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(c, t, e)| Soup::Cond(c, t, e)),
            (0u8..4, 0u8..8, prop::collection::vec(inner, 0..4))
                .prop_map(|(m, k, body)| Soup::IfExpr(m, k, body)),
        ]
    });
    prop::collection::vec(item, 0..10)
}

fn render(items: &[Soup], out: &mut String, counter: &mut u32) {
    for item in items {
        match item {
            Soup::Decl(d) => {
                *counter += 1;
                out.push_str(&format!("int decl_{}_{d} = {d};\n", *counter));
            }
            Soup::Expand(m) => {
                *counter += 1;
                out.push_str(&format!("int use_{} = (int)M{m};\n", *counter));
            }
            Soup::Define(m, v) => out.push_str(&format!("#define M{m} {v}\n")),
            Soup::Undef(m) => out.push_str(&format!("#undef M{m}\n")),
            Soup::FnDefine(m, v) => {
                out.push_str(&format!("#define F{m}(x) ((x) + {v} + (int)M{m})\n"));
                *counter += 1;
                out.push_str(&format!("int fuse_{} = F{m}(2);\n", *counter));
            }
            Soup::Cond(c, t, e) => {
                out.push_str(&format!("#ifdef CFG{c}\n"));
                render(t, out, counter);
                out.push_str("#else\n");
                render(e, out, counter);
                out.push_str("#endif\n");
            }
            Soup::IfExpr(m, k, body) => {
                out.push_str(&format!("#if defined(CFG{m}) || M{m} > {k}\n"));
                render(body, out, counter);
                out.push_str("#endif\n");
            }
        }
    }
}

fn check_partition(elements: &[Element], parent: &superc::Cond) {
    for e in elements {
        if let Element::Conditional(k) = e {
            let mut union = parent.ctx().fls();
            for b in &k.branches {
                assert!(!b.cond.is_false());
                assert!(union.and(&b.cond).is_false(), "overlapping branches");
                union = union.or(&b.cond);
                check_partition(&b.elements, &b.cond);
            }
            assert!(union.semantically_equal(parent), "branches must cover");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_never_panics_and_keeps_invariants(items in soup()) {
        let mut src = String::new();
        let mut counter = 0;
        render(&items, &mut src, &mut counter);
        src.push_str("int trailer;\n");

        let fs = superc::MemFs::new().file("f.c", &src);
        let mut sc = SuperC::new(
            Options {
                pp: PpOptions { builtins: Builtins::none(), ..PpOptions::default() },
                ..Options::default()
            },
            fs,
        );
        let p = sc.process("f.c").expect("structured soup always lexes");
        let tru = sc.ctx().tru();
        check_partition(&p.unit.elements, &tru);

        // Macro values are integers, so every configuration is valid C:
        // the parse must cover the whole space.
        prop_assert!(p.result.errors.is_empty(),
            "errors: {:?}\nsource:\n{src}",
            p.result.errors.iter().map(|e| format!("{e}")).collect::<Vec<_>>());
        prop_assert!(p.result.accepted.as_ref().expect("accepted").is_true());
    }

    #[test]
    fn soup_matches_single_config(items in soup(), mask in 0u8..32) {
        let mut src = String::new();
        let mut counter = 0;
        render(&items, &mut src, &mut counter);
        src.push_str("int trailer;\n");

        let fs = superc::MemFs::new().file("f.c", &src);
        // Full variability run.
        let mut full = SuperC::new(
            Options {
                pp: PpOptions { builtins: Builtins::none(), ..PpOptions::default() },
                ..Options::default()
            },
            fs.clone(),
        );
        let p = full.process("f.c").expect("full");

        // Single-config run under the mask.
        let on = |i: u8| mask >> i & 1 == 1;
        let defines: Vec<(String, String)> = (0u8..5)
            .filter(|&i| on(i))
            .map(|i| (format!("CFG{i}"), "1".to_string()))
            .collect();
        let mut single = SuperC::new(
            Options {
                pp: PpOptions {
                    builtins: Builtins::none(),
                    defines,
                    single_config: true,
                    ..PpOptions::default()
                },
                ..Options::default()
            },
            fs,
        );
        let g = single.process("f.c").expect("single");

        // Select the full run's tokens under the mask. Free macros (Mx
        // never defined) appear as `defined(Mx)`-style variables: in gcc
        // mode those identifiers are 0, so `Mx > k` is false and
        // `defined(...)` vars are false. Opaque arithmetic over *defined*
        // macros folded already; opaque vars mentioning free macros
        // evaluate false in gcc mode (0 > k, k ≥ 0).
        let env = |name: &str| -> Option<bool> {
            if let Some(inner) = name.strip_prefix("defined(").and_then(|n| n.strip_suffix(')')) {
                if let Some(i) = inner.strip_prefix("CFG").and_then(|d| d.parse::<u8>().ok()) {
                    return Some(on(i));
                }
                return Some(false); // free M macros are never defined
            }
            Some(false) // opaque arithmetic over free macros: 0 > k is false
        };
        let mut got = Vec::new();
        fn walk(elements: &[Element], env: &dyn Fn(&str) -> Option<bool>, out: &mut Vec<String>) {
            for e in elements {
                match e {
                    Element::Token(t) => out.push(t.text().to_string()),
                    Element::Conditional(k) => {
                        for b in &k.branches {
                            if b.cond.eval(|n| env(n)) {
                                walk(&b.elements, env, out);
                            }
                        }
                    }
                }
            }
        }
        walk(&p.unit.elements, &env, &mut got);
        let expected: Vec<String> = g
            .unit
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::Token(t) => Some(t.text().to_string()),
                Element::Conditional(_) => None,
            })
            .collect();
        prop_assert_eq!(got, expected, "source:\n{}", src);
    }
}
