//! Property-based fuzzing of the full pipeline: randomly generated
//! directive/declaration soups must never panic the preprocessor or
//! parser, must keep the branch-partition invariant, and must stay
//! differentially consistent with single-configuration mode.

use superc::analyze::LintOptions;
use superc::corpus::{process_corpus, process_corpus_profiles, CorpusOptions};
use superc::cpp::Element;
use superc::{Options, PpOptions, Profile, SuperC};
use superc_util::prop::{check, Gen};

/// Macros the shipped compiler/OS profiles predefine: conditionals over
/// these resolve differently per profile (defined under some, free
/// under the rest), which is exactly what the cross-profile property
/// needs to exercise.
const PROFILE_BUILTINS: [&str; 5] = ["_WIN32", "__APPLE__", "__GNUC__", "__clang__", "_MSC_VER"];

/// A tiny AST of preprocessor-and-C soup that always generates
/// *lexable* text (the pipeline should handle arbitrary bytes too, but
/// the interesting surface is structured variability).
#[derive(Clone, Debug)]
enum Soup {
    Decl(u8),
    Expand(u8),
    Define(u8, u8),
    Undef(u8),
    FnDefine(u8, u8),
    /// Token pasting (`##`) with a possibly-multiply-defined macro as an
    /// operand — when `M{m}`'s definitions vary by configuration, the
    /// paste must be hoisted (Algorithm 1's `token_pastes_hoisted` path).
    Paste(u8),
    /// Stringification (`#`) of a possibly-multiply-defined macro.
    Stringify(u8),
    Cond(u8, Vec<Soup>, Vec<Soup>),
    IfExpr(u8, u8, Vec<Soup>),
    /// An `#if/#elif/#elif/#else` chain mixing `defined(...)` and value
    /// tests, so branch conditions are built by chained negation.
    ElifChain(u8, u8, u8, u8, Vec<Soup>, Vec<Soup>, Vec<Soup>),
    /// A long conditional-free, macro-free function body: `stmts`
    /// arithmetic statements seeded by `salt`. Exactly the shape the
    /// deterministic fast path and fused lexing are built for — one
    /// subparser live throughout, every token inert.
    Stretch(u8, u8),
    /// `#ifdef` over a profile-sensitive built-in ([`PROFILE_BUILTINS`]):
    /// statically decided under profiles that predefine it, symbolic
    /// under the rest. Only [`gen_profile_soup`] generates these, so the
    /// other properties' random streams are untouched.
    BuiltinCond(usize, Vec<Soup>, Vec<Soup>),
    /// A guarded value test (`#if defined(X) && X >= k`) over a
    /// profile-sensitive built-in, exercising per-profile arithmetic
    /// folding (`__GNUC__ >= 4` is true under gcc, symbolic under msvc).
    BuiltinIf(usize, u8, Vec<Soup>),
}

fn gen_leaf(g: &mut Gen) -> Soup {
    match g.usize(0..8) {
        0 => Soup::Decl(g.u8(0..6)),
        1 => Soup::Expand(g.u8(0..4)),
        2 => Soup::Define(g.u8(0..4), g.u8(0..10)),
        3 => Soup::Undef(g.u8(0..4)),
        4 => Soup::Paste(g.u8(0..4)),
        5 => Soup::Stringify(g.u8(0..4)),
        6 => Soup::Stretch(g.u8(12..40), g.u8(0..10)),
        _ => Soup::FnDefine(g.u8(0..4), g.u8(0..10)),
    }
}

fn gen_item(g: &mut Gen, depth: usize) -> Soup {
    if depth == 0 || g.percent(50) {
        return gen_leaf(g);
    }
    match g.usize(0..3) {
        0 => Soup::Cond(
            g.u8(0..5),
            g.vec(0..4, |g| gen_item(g, depth - 1)),
            g.vec(0..4, |g| gen_item(g, depth - 1)),
        ),
        1 => {
            let (m, k) = (g.u8(0..4), g.u8(0..8));
            Soup::IfExpr(m, k, g.vec(0..4, |g| gen_item(g, depth - 1)))
        }
        _ => Soup::ElifChain(
            g.u8(0..5),
            g.u8(0..5),
            g.u8(0..4),
            g.u8(0..8),
            g.vec(0..3, |g| gen_item(g, depth - 1)),
            g.vec(0..3, |g| gen_item(g, depth - 1)),
            g.vec(0..3, |g| gen_item(g, depth - 1)),
        ),
    }
}

fn gen_soup(g: &mut Gen) -> Vec<Soup> {
    g.vec(0..10, |g| gen_item(g, 3))
}

/// A soup shaped like real token-dense code: long conditional-free
/// stretches interleaved with `#if` islands (and whatever other soup the
/// islands drag in), so the fast path must repeatedly enter, persist its
/// scratch stack at the island, and re-enter on the far side.
fn gen_stretchy_soup(g: &mut Gen) -> Vec<Soup> {
    let mut items = Vec::new();
    for _ in 0..g.usize(2..5) {
        items.push(Soup::Stretch(g.u8(12..40), g.u8(0..10)));
        items.push(gen_item(g, 2));
    }
    items.push(Soup::Stretch(g.u8(12..40), g.u8(0..10)));
    items
}

/// Soup with profile-sensitive built-ins: ordinary soup interleaved
/// with conditionals over [`PROFILE_BUILTINS`], so the same source
/// resolves differently under each shipped profile.
fn gen_profile_soup(g: &mut Gen) -> Vec<Soup> {
    let mut items = Vec::new();
    for _ in 0..g.usize(1..4) {
        items.push(Soup::BuiltinCond(
            g.usize(0..PROFILE_BUILTINS.len()),
            g.vec(0..3, |g| gen_item(g, 2)),
            g.vec(0..3, |g| gen_item(g, 2)),
        ));
        if g.percent(60) {
            items.push(Soup::BuiltinIf(
                g.usize(0..PROFILE_BUILTINS.len()),
                g.u8(0..8),
                g.vec(0..3, |g| gen_item(g, 2)),
            ));
        }
        items.push(gen_item(g, 2));
    }
    items
}

fn render(items: &[Soup], out: &mut String, counter: &mut u32) {
    for item in items {
        match item {
            Soup::Decl(d) => {
                *counter += 1;
                out.push_str(&format!("int decl_{}_{d} = {d};\n", *counter));
            }
            Soup::Expand(m) => {
                *counter += 1;
                out.push_str(&format!("int use_{} = (int)M{m};\n", *counter));
            }
            Soup::Define(m, v) => out.push_str(&format!("#define M{m} {v}\n")),
            Soup::Undef(m) => out.push_str(&format!("#undef M{m}\n")),
            Soup::FnDefine(m, v) => {
                out.push_str(&format!("#define F{m}(x) ((x) + {v} + (int)M{m})\n"));
                *counter += 1;
                out.push_str(&format!("int fuse_{} = F{m}(2);\n", *counter));
            }
            Soup::Paste(m) => {
                // Two-level glue so the argument expands before `##`:
                // M{m} defined to 7 pastes `g<id>_7`; M{m} undefined
                // pastes the identifier `g<id>_M{m}`. Both are valid
                // declarators, so every configuration stays parseable.
                *counter += 1;
                let id = *counter;
                out.push_str(&format!("#define GLUE_IN_{id}(a, b) a##b\n"));
                out.push_str(&format!("#define GLUE_{id}(a, b) GLUE_IN_{id}(a, b)\n"));
                out.push_str(&format!("int GLUE_{id}(g{id}_, M{m}) = 0;\n"));
            }
            Soup::Stringify(m) => {
                // Two-level so the argument expands before `#`: either
                // "7" or "M{m}", a string literal in every configuration.
                *counter += 1;
                let id = *counter;
                out.push_str(&format!("#define STR_IN_{id}(x) #x\n"));
                out.push_str(&format!("#define STR_{id}(x) STR_IN_{id}(x)\n"));
                out.push_str(&format!("const char *s{id} = STR_{id}(M{m});\n"));
            }
            Soup::Cond(c, t, e) => {
                out.push_str(&format!("#ifdef CFG{c}\n"));
                render(t, out, counter);
                out.push_str("#else\n");
                render(e, out, counter);
                out.push_str("#endif\n");
            }
            Soup::IfExpr(m, k, body) => {
                out.push_str(&format!("#if defined(CFG{m}) || M{m} > {k}\n"));
                render(body, out, counter);
                out.push_str("#endif\n");
            }
            Soup::Stretch(stmts, salt) => {
                *counter += 1;
                let id = *counter;
                out.push_str(&format!(
                    "long stretch_{id}(long a0, long a1) {{\n\
                     \x20   long acc = a0 + {salt};\n"
                ));
                for s in 0..*stmts {
                    out.push_str(&format!("    acc = acc * {} + a1 - {s};\n", (s % 5) + 2));
                }
                out.push_str("    return acc;\n}\n");
            }
            Soup::BuiltinCond(b, t, e) => {
                out.push_str(&format!("#ifdef {}\n", PROFILE_BUILTINS[*b]));
                render(t, out, counter);
                out.push_str("#else\n");
                render(e, out, counter);
                out.push_str("#endif\n");
            }
            Soup::BuiltinIf(b, k, body) => {
                let name = PROFILE_BUILTINS[*b];
                out.push_str(&format!("#if defined({name}) && {name} >= {k}\n"));
                render(body, out, counter);
                out.push_str("#endif\n");
            }
            Soup::ElifChain(c1, c2, m, k, b1, b2, b3) => {
                out.push_str(&format!("#if defined(CFG{c1})\n"));
                render(b1, out, counter);
                out.push_str(&format!("#elif M{m} > {k}\n"));
                render(b2, out, counter);
                out.push_str(&format!("#elif defined(CFG{c2})\n"));
                render(b3, out, counter);
                out.push_str("#else\n");
                *counter += 1;
                out.push_str(&format!("int elif_tail_{};\n", *counter));
                out.push_str("#endif\n");
            }
        }
    }
}

fn check_partition(elements: &[Element], parent: &superc::Cond) {
    for e in elements {
        if let Element::Conditional(k) = e {
            let mut union = parent.ctx().fls();
            for b in &k.branches {
                assert!(!b.cond.is_false());
                assert!(union.and(&b.cond).is_false(), "overlapping branches");
                union = union.or(&b.cond);
                check_partition(&b.elements, &b.cond);
            }
            assert!(union.semantically_equal(parent), "branches must cover");
        }
    }
}

#[test]
fn pipeline_never_panics_and_keeps_invariants() {
    // Aggregated across cases: the generator must actually reach the
    // hoisting-adjacent paths it was extended for (pasting,
    // stringification, hoisted operands, #elif chains).
    let mut saw_pastes = false;
    let mut saw_stringifies = false;
    let mut saw_hoisted_ops = false;
    check("pipeline_never_panics_and_keeps_invariants", 48, |g| {
        let items = gen_soup(g);
        let mut src = String::new();
        let mut counter = 0;
        render(&items, &mut src, &mut counter);
        src.push_str("int trailer;\n");

        let fs = superc::MemFs::new().file("f.c", &src);
        let mut sc = SuperC::new(
            Options {
                pp: PpOptions {
                    profile: Profile::bare(),
                    ..PpOptions::default()
                },
                ..Options::default()
            },
            fs,
        );
        let p = sc.process("f.c").expect("structured soup always lexes");
        let tru = sc.ctx().tru();
        check_partition(&p.unit.elements, &tru);
        saw_pastes |= p.unit.stats.token_pastes > 0;
        saw_stringifies |= p.unit.stats.stringifications > 0;
        saw_hoisted_ops |=
            p.unit.stats.token_pastes_hoisted > 0 || p.unit.stats.stringifications_hoisted > 0;

        // Macro values are integers, so every configuration is valid C:
        // the parse must cover the whole space.
        assert!(
            p.result.errors.is_empty(),
            "errors: {:?}\nsource:\n{src}",
            p.result
                .errors
                .iter()
                .map(|e| format!("{e}"))
                .collect::<Vec<_>>()
        );
        assert!(p.result.accepted.as_ref().expect("accepted").is_true());
    });
    assert!(saw_pastes, "no token pastes generated");
    assert!(saw_stringifies, "no stringification generated");
    assert!(
        saw_hoisted_ops,
        "no paste/stringify with conditional operands generated"
    );
}

#[test]
fn soup_matches_single_config() {
    check("soup_matches_single_config", 48, |g| {
        let items = gen_soup(g);
        let mask = g.u8(0..32);
        let mut src = String::new();
        let mut counter = 0;
        render(&items, &mut src, &mut counter);
        src.push_str("int trailer;\n");

        let fs = superc::MemFs::new().file("f.c", &src);
        // Full variability run.
        let mut full = SuperC::new(
            Options {
                pp: PpOptions {
                    profile: Profile::bare(),
                    ..PpOptions::default()
                },
                ..Options::default()
            },
            fs.clone(),
        );
        let p = full.process("f.c").expect("full");

        // Single-config run under the mask.
        let on = |i: u8| mask >> i & 1 == 1;
        let defines: Vec<(String, String)> = (0u8..5)
            .filter(|&i| on(i))
            .map(|i| (format!("CFG{i}"), "1".to_string()))
            .collect();
        let mut single = SuperC::new(
            Options {
                pp: PpOptions {
                    profile: Profile::bare(),
                    defines,
                    single_config: true,
                    ..PpOptions::default()
                },
                ..Options::default()
            },
            fs,
        );
        let single_out = single.process("f.c").expect("single");

        // Select the full run's tokens under the mask. Free macros (Mx
        // never defined) appear as `defined(Mx)`-style variables: in gcc
        // mode those identifiers are 0, so `Mx > k` is false and
        // `defined(...)` vars are false. Opaque arithmetic over *defined*
        // macros folded already; opaque vars mentioning free macros
        // evaluate false in gcc mode (0 > k, k ≥ 0).
        let env = |name: &str| -> Option<bool> {
            if let Some(inner) = name
                .strip_prefix("defined(")
                .and_then(|n| n.strip_suffix(')'))
            {
                if let Some(i) = inner.strip_prefix("CFG").and_then(|d| d.parse::<u8>().ok()) {
                    return Some(on(i));
                }
                return Some(false); // free M macros are never defined
            }
            Some(false) // opaque arithmetic over free macros: 0 > k is false
        };
        let mut got = Vec::new();
        fn walk(elements: &[Element], env: &dyn Fn(&str) -> Option<bool>, out: &mut Vec<String>) {
            for e in elements {
                match e {
                    Element::Token(t) => out.push(t.text().to_string()),
                    Element::Conditional(k) => {
                        for b in &k.branches {
                            if b.cond.eval(|n| env(n)) {
                                walk(&b.elements, env, out);
                            }
                        }
                    }
                }
            }
        }
        walk(&p.unit.elements, &env, &mut got);
        let expected: Vec<String> = single_out
            .unit
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::Token(t) => Some(t.text().to_string()),
                Element::Conditional(_) => None,
            })
            .collect();
        assert_eq!(got, expected, "source:\n{}", src);
    });
}

/// Differential fuzzing of the deterministic fast path: every seed runs
/// through both engines — fast path + fused lexing on, and the general
/// FMLR loop with fusion off — and every output surface must agree.
/// Failures name the diverging engine in the panic message, and the
/// harness prints the `SUPERC_PROP_SEED=<seed>` repro line.
#[test]
fn fastpath_and_general_engine_agree_on_soups() {
    // Aggregated across cases: the stretchy generator must actually
    // drive the fast path and fused lexing, or the property is vacuous.
    let mut saw_fastpath = false;
    let mut saw_fused = false;
    let mut saw_exits = false;
    check("fastpath_and_general_engine_agree_on_soups", 32, |g| {
        let items = gen_stretchy_soup(g);
        let mut src = String::new();
        let mut counter = 0;
        render(&items, &mut src, &mut counter);
        src.push_str("int trailer;\n");
        let fs = superc::MemFs::new().file("f.c", &src);

        let run = |fastpath: bool| {
            let mut opts = Options {
                pp: PpOptions {
                    profile: Profile::bare(),
                    ..PpOptions::default()
                },
                ..Options::default()
            };
            opts.parser.fastpath = fastpath;
            opts.pp.fuse_lexing = fastpath;
            let mut sc = SuperC::new(opts, fs.clone());
            sc.process("f.c").expect("structured soup always lexes")
        };
        let fast = run(true);
        let gen = run(false);

        saw_fastpath |= fast.result.stats.fastpath_entries > 0;
        saw_fused |= fast.unit.stats.fused_tokens > 0;
        saw_exits |= fast.result.stats.fastpath_exits > 0;
        assert_eq!(
            gen.result.stats.fastpath_entries, 0,
            "general engine must never enter the fast path"
        );
        assert_eq!(
            gen.unit.stats.fused_tokens, 0,
            "general engine must never fuse lexing"
        );

        // Preprocessor output: fused lexing may only change *how* inert
        // tokens reach the output, never which tokens do.
        assert_eq!(
            fast.unit.display_text(),
            gen.unit.display_text(),
            "diverging engine: preprocessed text differs \
             (left: fast path, right: general loop)\nsource:\n{src}"
        );
        // Parser output: AST, errors, and budget degradations.
        assert_eq!(
            fast.result.ast.as_ref().map(|a| a.to_string()),
            gen.result.ast.as_ref().map(|a| a.to_string()),
            "diverging engine: AST differs \
             (left: fast path, right: general loop)\nsource:\n{src}"
        );
        assert_eq!(
            fast.result
                .errors
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>(),
            gen.result
                .errors
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>(),
            "diverging engine: parse errors differ \
             (left: fast path, right: general loop)\nsource:\n{src}"
        );
        assert_eq!(
            fast.result
                .trips
                .iter()
                .map(|t| t.describe())
                .collect::<Vec<_>>(),
            gen.result
                .trips
                .iter()
                .map(|t| t.describe())
                .collect::<Vec<_>>(),
            "diverging engine: budget trips differ \
             (left: fast path, right: general loop)\nsource:\n{src}"
        );
        // Accepted conditions: semantic comparison by evaluation (each
        // run owns its BDD manager, so node identity means nothing
        // across them). Free M macros are undefined and opaque
        // arithmetic over them is false, as in soup_matches_single_config.
        assert_eq!(
            fast.result.accepted.is_some(),
            gen.result.accepted.is_some(),
            "diverging engine: acceptance differs \
             (left: fast path, right: general loop)\nsource:\n{src}"
        );
        if let (Some(fa), Some(ga)) = (&fast.result.accepted, &gen.result.accepted) {
            for mask in 0u8..32 {
                let env = |name: &str| -> Option<bool> {
                    if let Some(inner) = name
                        .strip_prefix("defined(")
                        .and_then(|n| n.strip_suffix(')'))
                    {
                        if let Some(i) =
                            inner.strip_prefix("CFG").and_then(|d| d.parse::<u8>().ok())
                        {
                            return Some(mask >> i & 1 == 1);
                        }
                        return Some(false);
                    }
                    Some(false)
                };
                assert_eq!(
                    fa.eval(|n| env(n)),
                    ga.eval(|n| env(n)),
                    "diverging engine: accepted condition differs under \
                     CFG mask {mask:#07b} (left: fast path, right: general \
                     loop)\nsource:\n{src}"
                );
            }
        }
        // Counters: everything but the gauges that define the fast path
        // (merge probes, fastpath_*, fused_tokens — plus lex timing).
        let countable = |s: &superc::ParseStats| {
            let mut s = s.clone();
            s.merge_probes = 0;
            s.fastpath_tokens = 0;
            s.fastpath_entries = 0;
            s.fastpath_exits = 0;
            s
        };
        assert_eq!(
            countable(&fast.result.stats),
            countable(&gen.result.stats),
            "diverging engine: parser counters differ \
             (left: fast path, right: general loop)\nsource:\n{src}"
        );
    });
    assert!(saw_fastpath, "no case ever entered the fast path");
    assert!(saw_fused, "no case ever fused a token run");
    assert!(
        saw_exits,
        "no case ever exited a stretch mid-unit (islands too weak)"
    );
}

/// Cross-profile mode is N honest single-profile runs interleaved over
/// one worker pool: for every seed, each per-profile slice of a
/// `process_corpus_profiles` run must equal what a plain single-profile
/// corpus run over the same source produces — portability rows, lint
/// records, and behavior counters alike.
#[test]
fn cross_profile_mode_agrees_with_single_profile_runs() {
    // Aggregated: the generator must actually produce profile-divergent
    // sources, or the property is vacuous.
    let mut saw_divergence = false;
    check(
        "cross_profile_mode_agrees_with_single_profile_runs",
        24,
        |g| {
            let items = gen_profile_soup(g);
            let mut src = String::new();
            let mut counter = 0;
            render(&items, &mut src, &mut counter);
            src.push_str("int trailer;\n");
            let fs = superc::MemFs::new().file("f.c", &src);
            let units = vec!["f.c".to_string()];
            let profiles = vec![
                Profile::gcc_linux(),
                Profile::clang_macos(),
                Profile::msvc_windows(),
            ];

            let cross_copts = CorpusOptions {
                jobs: 2,
                lint: Some(LintOptions::default()),
                ..CorpusOptions::default()
            };
            let cross =
                process_corpus_profiles(&fs, &units, &Options::default(), &profiles, &cross_copts);

            for (i, profile) in profiles.iter().enumerate() {
                let mut options = Options::default();
                options.pp.profile = profile.clone();
                let single_copts = CorpusOptions {
                    jobs: 1,
                    lint: Some(LintOptions::default()),
                    portability: true,
                    ..CorpusOptions::default()
                };
                let single = process_corpus(&fs, &units, &options, &single_copts);
                assert_eq!(
                    cross.runs[i].behavior_counters(),
                    single.behavior_counters(),
                    "profile {} counters diverged\nsource:\n{src}",
                    profile.name
                );
                assert_eq!(
                    cross.runs[i].units[0].portability, single.units[0].portability,
                    "profile {} portability slice diverged\nsource:\n{src}",
                    profile.name
                );
                assert_eq!(
                    cross.runs[i].units[0].lints, single.units[0].lints,
                    "profile {} lints diverged\nsource:\n{src}",
                    profile.name
                );
            }
            let records = cross.lint_records(&LintOptions::default());
            saw_divergence |= records.iter().any(|r| r.code.starts_with("portability-"));
        },
    );
    assert!(saw_divergence, "no case ever diverged across profiles");
}
