//! The parallel corpus driver must be a pure speedup: for any worker
//! count and any scheduling interleaving, per-unit results and merged
//! behavior counters are identical to the sequential run.
//!
//! The determinism surface deliberately excludes rendered conditions and
//! BDD/interner gauges — those depend on the order a worker's manager
//! first met each variable (see `superc::corpus` docs). What *is*
//! asserted byte-identical: configuration-restricted unparses of every
//! unit's choice-node AST, per-unit preprocessor and parser counters,
//! and the corpus-level behavior-counter fingerprint.
//!
//! `SUPERC_PAR_JOBS` overrides the default `1,2,8` jobs ladder
//! (`scripts/verify.sh` runs a wider, oversubscribed one).

use superc::corpus::{process_corpus, Capture, CorpusOptions, CorpusReport};
use superc::{Builtins, Options, PpOptions};
use superc_kernelgen::{generate, Corpus, CorpusSpec};

fn options() -> Options {
    Options {
        pp: PpOptions {
            builtins: Builtins::gcc_like(),
            ..PpOptions::default()
        },
        ..Options::default()
    }
}

fn jobs_ladder() -> Vec<usize> {
    match std::env::var("SUPERC_PAR_JOBS") {
        Ok(s) => s
            .split(',')
            .filter(|p| !p.is_empty())
            .map(|p| p.trim().parse().expect("SUPERC_PAR_JOBS: counts"))
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

/// Configurations the captured unparses are restricted to: the empty
/// configuration plus a few covering sets over the corpus's CONFIG vars.
fn capture_configs() -> Vec<Vec<String>> {
    vec![
        vec![],
        vec!["CONFIG_SMP".into(), "CONFIG_64BIT".into()],
        vec![
            "CONFIG_SMP".into(),
            "CONFIG_PREEMPT".into(),
            "CONFIG_NUMA".into(),
        ],
        vec!["CONFIG_64BIT".into(), "CONFIG_DEBUG".into()],
    ]
}

/// Preprocessor counters minus the one wall-clock field (`lex_nanos`),
/// which is real elapsed time and can never be byte-identical between
/// runs. Every *count* must be.
fn countable(pp: &superc::PpStats) -> superc::PpStats {
    superc::PpStats {
        lex_nanos: 0,
        ..*pp
    }
}

fn run(corpus: &Corpus, jobs: usize) -> CorpusReport {
    let copts = CorpusOptions {
        jobs,
        capture: Capture {
            preprocessed: false,
            ast: false,
            unparse_configs: capture_configs(),
        },
        lint: None,
    };
    process_corpus(&corpus.fs, &corpus.units, &options(), &copts)
}

/// Everything the determinism contract promises, for one run.
fn assert_reports_identical(base: &CorpusReport, other: &CorpusReport, jobs: usize) {
    assert_eq!(
        base.units.len(),
        other.units.len(),
        "jobs={jobs}: unit count"
    );
    for (b, o) in base.units.iter().zip(&other.units) {
        assert_eq!(b.path, o.path, "jobs={jobs}: input order not preserved");
        assert_eq!(
            countable(&b.pp),
            countable(&o.pp),
            "{}: jobs={jobs}: preprocessor counters",
            b.path
        );
        assert_eq!(b.parse, o.parse, "{}: jobs={jobs}: parser counters", b.path);
        assert_eq!(b.parsed, o.parsed, "{}: jobs={jobs}: parsed flag", b.path);
        assert_eq!(
            b.choice_nodes, o.choice_nodes,
            "{}: jobs={jobs}: choice nodes",
            b.path
        );
        assert_eq!(b.fatal, o.fatal, "{}: jobs={jobs}: fatal", b.path);
        assert_eq!(
            b.errors.len(),
            o.errors.len(),
            "{}: jobs={jobs}: error count",
            b.path
        );
        // The headline assertion: the AST restricted to each sampled
        // configuration unparses to byte-identical text.
        assert_eq!(
            b.unparses, o.unparses,
            "{}: jobs={jobs}: unparsed ASTs differ",
            b.path
        );
    }
    assert_eq!(
        countable(&base.pp),
        countable(&other.pp),
        "jobs={jobs}: merged preprocessor counters"
    );
    assert_eq!(base.parse, other.parse, "jobs={jobs}: merged parser counters");
    assert_eq!(
        base.behavior_counters(),
        other.behavior_counters(),
        "jobs={jobs}: behavior fingerprint"
    );
}

#[test]
fn parallel_runs_are_deterministic_across_job_counts() {
    let corpus = generate(&CorpusSpec::small());
    let ladder = jobs_ladder();
    let base = run(&corpus, ladder[0]);
    assert!(base.parsed_units() > 0, "corpus produced no ASTs");
    assert!(
        base.units.iter().any(|u| !u.unparses.is_empty()),
        "no unparses captured"
    );
    for &jobs in &ladder[1..] {
        let other = run(&corpus, jobs);
        assert_reports_identical(&base, &other, jobs);
    }
}

#[test]
fn worker_count_is_capped_and_defaulted() {
    let corpus = generate(&CorpusSpec {
        units: 2,
        ..CorpusSpec::small()
    });
    // More workers than units: capped at the unit count.
    let over = run(&corpus, 64);
    assert_eq!(over.workers, corpus.units.len());
    // jobs = 0 resolves to available parallelism (at least one worker).
    let auto = run(&corpus, 0);
    assert!(auto.workers >= 1);
    assert_reports_identical(&run(&corpus, 1), &over, 64);
}

#[test]
fn sequential_driver_and_parallel_driver_agree() {
    // The jobs=1 corpus path must match the plain `SuperC` loop the other
    // integration tests (and the paper's sequential numbers) use.
    let corpus = generate(&CorpusSpec::small());
    let report = run(&corpus, 1);
    let mut sc = superc::SuperC::new(options(), corpus.fs.clone());
    for (unit, r) in corpus.units.iter().zip(&report.units) {
        let p = sc.process(unit).unwrap_or_else(|e| panic!("{unit}: {e}"));
        assert_eq!(
            countable(&p.unit.stats),
            countable(&r.pp),
            "{unit}: preprocessor counters"
        );
        assert_eq!(p.result.stats, r.parse, "{unit}: parser counters");
        assert_eq!(p.result.ast.is_some(), r.parsed, "{unit}: parsed");
    }
}

#[test]
fn fatal_units_are_reported_not_panicked() {
    // A corpus with a deliberately broken unit: the driver must carry the
    // fatal error in that unit's slot and keep parsing the rest, at every
    // worker count.
    let fs = superc::MemFs::new()
        .file("ok.c", "int a;\n")
        .file("bad.c", "#error always broken\n")
        .file("also_ok.c", "int b;\n");
    let units = vec![
        "ok.c".to_string(),
        "bad.c".to_string(),
        "also_ok.c".to_string(),
    ];
    for jobs in [1, 3] {
        let copts = CorpusOptions {
            jobs,
            ..CorpusOptions::default()
        };
        let report = process_corpus(&fs, &units, &Options::default(), &copts);
        assert_eq!(report.fatal_units(), 1, "jobs={jobs}");
        assert!(report.units[1].fatal.is_some(), "jobs={jobs}");
        assert_eq!(report.parsed_units(), 2, "jobs={jobs}");
    }
}
