//! The parallel corpus driver must be a pure speedup: for any worker
//! count and any scheduling interleaving, per-unit results and merged
//! behavior counters are identical to the sequential run.
//!
//! The determinism surface deliberately excludes rendered conditions and
//! BDD/interner gauges — those depend on the order a worker's manager
//! first met each variable (see `superc::corpus` docs). What *is*
//! asserted byte-identical: configuration-restricted unparses of every
//! unit's choice-node AST, per-unit preprocessor and parser counters,
//! and the corpus-level behavior-counter fingerprint.
//!
//! The matrix runs every jobs count **with and without the shared
//! preprocessing cache**: the cache only moves lexing work between
//! workers, so cache-on and cache-off runs must also be byte-identical
//! (including lint output). Its hit/miss/saved-nanos counters are the
//! schedule-dependent exceptions, zeroed in [`countable`].
//!
//! `SUPERC_PAR_JOBS` overrides the default `1,2,8` jobs ladder
//! (`scripts/verify.sh` runs a wider, oversubscribed one).

use superc::analyze::LintOptions;
use superc::corpus::{process_corpus, Capture, CorpusOptions, CorpusReport};
use superc::{Options, PpOptions, Profile};
use superc_kernelgen::{generate, Corpus, CorpusSpec};

fn options() -> Options {
    Options {
        pp: PpOptions {
            profile: Profile::default(),
            ..PpOptions::default()
        },
        ..Options::default()
    }
}

fn jobs_ladder() -> Vec<usize> {
    match std::env::var("SUPERC_PAR_JOBS") {
        Ok(s) => s
            .split(',')
            .filter(|p| !p.is_empty())
            .map(|p| p.trim().parse().expect("SUPERC_PAR_JOBS: counts"))
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

/// Configurations the captured unparses are restricted to: the empty
/// configuration plus a few covering sets over the corpus's CONFIG vars.
fn capture_configs() -> Vec<Vec<String>> {
    vec![
        vec![],
        vec!["CONFIG_SMP".into(), "CONFIG_64BIT".into()],
        vec![
            "CONFIG_SMP".into(),
            "CONFIG_PREEMPT".into(),
            "CONFIG_NUMA".into(),
        ],
        vec!["CONFIG_64BIT".into(), "CONFIG_DEBUG".into()],
    ]
}

/// Preprocessor counters minus the wall-clock and schedule-dependent
/// fields. `lex_nanos`/`lex_nanos_saved` are real elapsed time; the
/// shared-cache and memo hit/miss counters depend on which worker got to
/// a file or expression first (`expansion_memo_hits` inherits this
/// through condexpr-memo delta replay — see `PpStats`). Every *other*
/// count must be byte-identical.
fn countable(pp: &superc::PpStats) -> superc::PpStats {
    superc::PpStats {
        lex_nanos: 0,
        lex_nanos_saved: 0,
        shared_cache_hits: 0,
        shared_cache_misses: 0,
        condexpr_memo_hits: 0,
        condexpr_memo_misses: 0,
        expansion_memo_hits: 0,
        ..*pp
    }
}

fn run_with_cache(corpus: &Corpus, jobs: usize, no_shared_cache: bool) -> CorpusReport {
    let copts = CorpusOptions {
        jobs,
        capture: Capture {
            preprocessed: false,
            ast: false,
            unparse_configs: capture_configs(),
        },
        lint: Some(LintOptions::default()),
        no_shared_cache,
        inject_panic: Vec::new(),
        portability: false,
        warm: false,
    };
    process_corpus(&corpus.fs, &corpus.units, &options(), &copts)
}

fn run(corpus: &Corpus, jobs: usize) -> CorpusReport {
    run_with_cache(corpus, jobs, false)
}

/// Everything the determinism contract promises, for one run. `label`
/// names the varied knob (`jobs=8`, `jobs=2 cache=off`, ...).
fn assert_reports_identical(base: &CorpusReport, other: &CorpusReport, label: &str) {
    assert_eq!(base.units.len(), other.units.len(), "{label}: unit count");
    for (b, o) in base.units.iter().zip(&other.units) {
        assert_eq!(b.path, o.path, "{label}: input order not preserved");
        assert_eq!(
            countable(&b.pp),
            countable(&o.pp),
            "{}: {label}: preprocessor counters",
            b.path
        );
        assert_eq!(b.parse, o.parse, "{}: {label}: parser counters", b.path);
        assert_eq!(b.parsed, o.parsed, "{}: {label}: parsed flag", b.path);
        assert_eq!(
            b.choice_nodes, o.choice_nodes,
            "{}: {label}: choice nodes",
            b.path
        );
        assert_eq!(b.fatal, o.fatal, "{}: {label}: fatal", b.path);
        assert_eq!(
            b.errors.len(),
            o.errors.len(),
            "{}: {label}: error count",
            b.path
        );
        // Lint records render conditions canonically, so they are
        // byte-identical across schedules and cache settings.
        assert_eq!(b.lints, o.lints, "{}: {label}: lint records", b.path);
        // The headline assertion: the AST restricted to each sampled
        // configuration unparses to byte-identical text.
        assert_eq!(
            b.unparses, o.unparses,
            "{}: {label}: unparsed ASTs differ",
            b.path
        );
    }
    assert_eq!(
        countable(&base.pp),
        countable(&other.pp),
        "{label}: merged preprocessor counters"
    );
    assert_eq!(base.parse, other.parse, "{label}: merged parser counters");
    assert_eq!(
        base.behavior_counters(),
        other.behavior_counters(),
        "{label}: behavior fingerprint"
    );
}

#[test]
fn parallel_runs_are_deterministic_across_job_counts_and_cache_settings() {
    let corpus = generate(&CorpusSpec::small());
    let ladder = jobs_ladder();
    let base = run(&corpus, ladder[0]);
    assert!(base.parsed_units() > 0, "corpus produced no ASTs");
    assert!(
        base.units.iter().any(|u| !u.unparses.is_empty()),
        "no unparses captured"
    );
    assert!(base.lint_count() > 0, "corpus produced no lint findings");
    // Full matrix: every jobs count × shared cache {on, off} must match
    // the base run (which used the cache). The cache moves lexing work
    // between workers but must never change any output.
    for &jobs in &ladder {
        for no_cache in [false, true] {
            if jobs == ladder[0] && !no_cache {
                continue; // that run *is* the base
            }
            let other = run_with_cache(&corpus, jobs, no_cache);
            let label = format!("jobs={jobs} cache={}", if no_cache { "off" } else { "on" });
            assert_reports_identical(&base, &other, &label);
        }
    }
}

#[test]
fn worker_count_is_capped_and_defaulted() {
    let corpus = generate(&CorpusSpec {
        units: 2,
        ..CorpusSpec::small()
    });
    // More workers than units: capped at the unit count.
    let over = run(&corpus, 64);
    assert_eq!(over.workers, corpus.units.len());
    // jobs = 0 resolves to available parallelism (at least one worker).
    let auto = run(&corpus, 0);
    assert!(auto.workers >= 1);
    assert_reports_identical(&run(&corpus, 1), &over, "jobs=64");
}

#[test]
fn sequential_driver_and_parallel_driver_agree() {
    // The jobs=1 corpus path must match the plain `SuperC` loop the other
    // integration tests (and the paper's sequential numbers) use.
    let corpus = generate(&CorpusSpec::small());
    let report = run(&corpus, 1);
    let mut sc = superc::SuperC::new(options(), corpus.fs.clone());
    for (unit, r) in corpus.units.iter().zip(&report.units) {
        let p = sc.process(unit).unwrap_or_else(|e| panic!("{unit}: {e}"));
        assert_eq!(
            countable(&p.unit.stats),
            countable(&r.pp),
            "{unit}: preprocessor counters"
        );
        assert_eq!(p.result.stats, r.parse, "{unit}: parser counters");
        assert_eq!(p.result.ast.is_some(), r.parsed, "{unit}: parsed");
    }
}

#[test]
fn fatal_units_are_reported_not_panicked() {
    // A corpus with a deliberately broken unit: the driver must carry the
    // fatal error in that unit's slot and keep parsing the rest, at every
    // worker count.
    let fs = superc::MemFs::new()
        .file("ok.c", "int a;\n")
        .file("bad.c", "#error always broken\n")
        .file("also_ok.c", "int b;\n");
    let units = vec![
        "ok.c".to_string(),
        "bad.c".to_string(),
        "also_ok.c".to_string(),
    ];
    for jobs in [1, 3] {
        let copts = CorpusOptions {
            jobs,
            ..CorpusOptions::default()
        };
        let report = process_corpus(&fs, &units, &Options::default(), &copts);
        assert_eq!(report.fatal_units(), 1, "jobs={jobs}");
        assert!(report.units[1].fatal.is_some(), "jobs={jobs}");
        assert_eq!(report.parsed_units(), 2, "jobs={jobs}");
    }
}
