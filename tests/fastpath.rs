//! Differential oracle for the deterministic fast path.
//!
//! The fast path (`ParserConfig::fastpath` + `PpOptions::fuse_lexing`,
//! `--no-fastpath` on the CLI) is a pure scheduling change: when exactly
//! one subparser is live, the engine steps it on a scratch stack with no
//! priority queue and no merge probes, and conditional-free text runs
//! stream past the expansion queue. This suite is the proof obligation:
//! every fixture corpus — the lint fixtures, the pathological
//! robustness fixtures under tight budgets, and the 128-unit kernelgen
//! corpus — runs through the full {fastpath on/off} × {jobs 1/2/8} ×
//! {shared cache on/off} matrix, and every schedule-invariant surface
//! must be byte-identical: per-unit preprocessor and parser counters,
//! lint records, diagnostics, errors, degradations, and ASTs unparsed
//! under sampled configurations.
//!
//! The only counters allowed to differ between fastpath on and off are
//! the gauges that *define* the difference: `merge_probes` (the general
//! loop probes the merge index on every step; the fast path never
//! does), the `fastpath_*` gauges, and the preprocessor's
//! `fused_tokens` — all zeroed in [`countable_parse`]/[`countable_pp`]
//! alongside the schedule-dependent cache counters.
//!
//! Presence conditions are compared two ways: the canonically rendered
//! text inside lint records and degradations is byte-compared, and the
//! accepted-configuration conditions are additionally compared by BDD
//! *evaluation* over every assignment of the configuration variables the
//! fixtures test — semantic equivalence that does not lean on the
//! renderer.
//!
//! Unit tests at the bottom pin the `fastpath_entries`/`fastpath_exits`
//! transitions at the three stretch-ending events: static conditionals,
//! ambiguous typedef reclassification, and budget trips.

use superc::analyze::LintOptions;
use superc::corpus::{process_corpus, Capture, CorpusOptions, CorpusReport};
use superc::{Budgets, DiskFs, MemFs, Options, PpOptions, Profile, SuperC};
use superc_kernelgen::{generate, CorpusSpec};

/// Baseline options with the fast path (parser + fused lexing) switched
/// together, the way `--no-fastpath` switches them.
fn options(fastpath: bool, budgets: Budgets) -> Options {
    let mut o = Options {
        pp: PpOptions {
            profile: Profile::default(),
            ..PpOptions::default()
        },
        budgets,
        ..Options::default()
    };
    o.parser.fastpath = fastpath;
    o.pp.fuse_lexing = fastpath;
    o
}

/// Preprocessor counters minus the schedule-dependent fields (see
/// `tests/parallel.rs`) and `fused_tokens`, which is zero with fusion
/// off by definition.
fn countable_pp(pp: &superc::PpStats) -> superc::PpStats {
    superc::PpStats {
        lex_nanos: 0,
        lex_nanos_saved: 0,
        shared_cache_hits: 0,
        shared_cache_misses: 0,
        condexpr_memo_hits: 0,
        condexpr_memo_misses: 0,
        expansion_memo_hits: 0,
        fused_tokens: 0,
        ..*pp
    }
}

/// Parser counters minus the fastpath gauges and `merge_probes` — the
/// fast path skips the per-step merge-index probe (that *is* the
/// optimization), and with a single live subparser no live merge
/// candidate can exist, so skipping the probe can never change merges.
fn countable_parse(p: &superc::ParseStats) -> superc::ParseStats {
    let mut p = p.clone();
    p.merge_probes = 0;
    p.fastpath_tokens = 0;
    p.fastpath_entries = 0;
    p.fastpath_exits = 0;
    p
}

/// Every schedule-invariant surface of two corpus runs must match.
fn assert_reports_identical(base: &CorpusReport, other: &CorpusReport, label: &str) {
    assert_eq!(base.units.len(), other.units.len(), "{label}: unit count");
    for (b, o) in base.units.iter().zip(&other.units) {
        assert_eq!(b.path, o.path, "{label}: input order not preserved");
        assert_eq!(
            countable_pp(&b.pp),
            countable_pp(&o.pp),
            "{}: {label}: preprocessor counters",
            b.path
        );
        assert_eq!(
            countable_parse(&b.parse),
            countable_parse(&o.parse),
            "{}: {label}: parser counters",
            b.path
        );
        assert_eq!(b.parsed, o.parsed, "{}: {label}: parsed flag", b.path);
        assert_eq!(b.partial, o.partial, "{}: {label}: partial flag", b.path);
        assert_eq!(
            b.degradations, o.degradations,
            "{}: {label}: degradations",
            b.path
        );
        assert_eq!(
            b.choice_nodes, o.choice_nodes,
            "{}: {label}: choice nodes",
            b.path
        );
        assert_eq!(b.errors, o.errors, "{}: {label}: errors", b.path);
        assert_eq!(
            b.diagnostics, o.diagnostics,
            "{}: {label}: diagnostics",
            b.path
        );
        assert_eq!(b.lints, o.lints, "{}: {label}: lint records", b.path);
        assert_eq!(b.fatal, o.fatal, "{}: {label}: fatal", b.path);
        assert_eq!(
            b.unparses, o.unparses,
            "{}: {label}: unparsed ASTs differ",
            b.path
        );
    }
    assert_eq!(
        countable_pp(&base.pp),
        countable_pp(&other.pp),
        "{label}: merged preprocessor counters"
    );
    assert_eq!(
        countable_parse(&base.parse),
        countable_parse(&other.parse),
        "{label}: merged parser counters"
    );
    assert_eq!(
        base.behavior_counters(),
        other.behavior_counters(),
        "{label}: behavior fingerprint"
    );
}

/// Runs one corpus through the full matrix and compares every cell
/// against the fastpath-on, jobs=1, cache-on base run.
fn matrix(
    fs: &(impl superc::FileSystem + Sync),
    units: &[String],
    budgets: Budgets,
    copts: &CorpusOptions,
) {
    let run = |fastpath: bool, jobs: usize, no_cache: bool| {
        let copts = CorpusOptions {
            jobs,
            no_shared_cache: no_cache,
            capture: copts.capture.clone(),
            lint: copts.lint.clone(),
            inject_panic: Vec::new(),
            portability: false,
            warm: false,
        };
        process_corpus(fs, units, &options(fastpath, budgets), &copts)
    };
    let base = run(true, 1, false);
    // The base run must actually exercise the fast path, or the whole
    // matrix proves nothing.
    assert!(
        base.parse.fastpath_entries > 0 && base.parse.fastpath_tokens > 0,
        "fast path never entered on this corpus"
    );
    assert!(base.pp.fused_tokens > 0, "fused lexing never fired");
    for fastpath in [true, false] {
        for jobs in [1usize, 2, 8] {
            for no_cache in [false, true] {
                if fastpath && jobs == 1 && !no_cache {
                    continue; // that run *is* the base
                }
                let other = run(fastpath, jobs, no_cache);
                if !fastpath {
                    assert_eq!(
                        other.parse.fastpath_entries + other.parse.fastpath_tokens,
                        0,
                        "fastpath counters nonzero with the fast path off"
                    );
                    assert_eq!(other.pp.fused_tokens, 0, "fused tokens with fusion off");
                }
                let label = format!(
                    "fastpath={fastpath} jobs={jobs} cache={}",
                    if no_cache { "off" } else { "on" }
                );
                assert_reports_identical(&base, &other, &label);
            }
        }
    }
}

#[test]
fn lint_fixture_corpus_is_fastpath_invariant() {
    let fs = DiskFs::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/lint"));
    let units: Vec<String> = [
        "clean_header.c",
        "clean_variants.c",
        "config_redecl.c",
        "dead_branch.c",
        "macro_conflict.c",
        "partial_parse.c",
        "undef_macro.c",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let copts = CorpusOptions {
        lint: Some(LintOptions::default()),
        capture: Capture {
            preprocessed: true,
            ast: true,
            unparse_configs: vec![
                vec![],
                vec!["CONFIG_A".into()],
                vec!["CONFIG_B".into()],
                vec!["CONFIG_A".into(), "CONFIG_B".into(), "CONFIG_C".into()],
            ],
        },
        ..CorpusOptions::default()
    };
    matrix(&fs, &units, Budgets::unlimited(), &copts);
}

#[test]
fn robustness_fixture_corpus_is_fastpath_invariant_under_tight_budgets() {
    let fs = DiskFs::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/robustness"
    ));
    let units: Vec<String> = [
        "bomb.c",
        "deep_nest.c",
        "self_include.c",
        "typedef_maze.c",
        "paste_mess.c",
        "ok.c",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    // The same deterministic budgets tests/robustness.rs uses: the
    // hostile fixtures must degrade *identically* with the fast path on
    // and off — a budget trip inside a fast stretch must be counted and
    // condition-scoped exactly like one in the general loop.
    let budgets = Budgets {
        max_steps: 400,
        max_include_depth: 8,
        ..Budgets::unlimited()
    };
    matrix(&fs, &units, budgets, &CorpusOptions::default());
}

#[test]
fn kernelgen_corpus_is_fastpath_invariant() {
    let corpus = generate(&CorpusSpec::kernel().units(128));
    let copts = CorpusOptions {
        lint: Some(LintOptions::default()),
        capture: Capture {
            preprocessed: false,
            ast: false,
            unparse_configs: vec![
                vec![],
                vec!["CONFIG_SMP".into(), "CONFIG_64BIT".into()],
                vec!["CONFIG_64BIT".into(), "CONFIG_DEBUG".into()],
            ],
        },
        ..CorpusOptions::default()
    };
    matrix(&corpus.fs, &corpus.units, Budgets::unlimited(), &copts);
}

/// Semantic (not textual) equivalence of accepted-configuration
/// conditions: evaluate both engines' conditions over every assignment
/// of the tested configuration variables. This does not lean on the
/// canonical renderer, so a renderer bug cannot mask a condition drift.
#[test]
fn accepted_conditions_are_bdd_equivalent_across_engines() {
    let src = "\
#if defined(CONFIG_A)\n\
typedef int T;\n\
#endif\n\
#if defined(CONFIG_B)\n\
int b_only;\n\
#else\n\
long not_b;\n\
#endif\n\
int tail;\n";
    let fs = MemFs::new().file("u.c", src);
    let vars = ["defined(CONFIG_A)", "defined(CONFIG_B)"];
    let conds = |fastpath: bool| {
        let mut sc = SuperC::new(options(fastpath, Budgets::unlimited()), fs.clone());
        let p = sc.process("u.c").expect("processes");
        let accepted = p.result.accepted.expect("accepted condition");
        // Truth table over the tested vars, in assignment order.
        (0..1u32 << vars.len())
            .map(|bits| {
                accepted.eval(|name| {
                    vars.iter()
                        .position(|v| *v == name)
                        .map(|i| bits & (1 << i) != 0)
                })
            })
            .collect::<Vec<bool>>()
    };
    assert_eq!(
        conds(true),
        conds(false),
        "accepted conditions diverge between engines"
    );
}

// ---------------------------------------------------------------------
// Transition pins: exact fastpath_entries/fastpath_exits at each kind of
// stretch boundary. These values are deterministic per unit (never
// schedule-dependent), so they pin exactly.
// ---------------------------------------------------------------------

fn process_one(src: &str, fastpath: bool, budgets: Budgets) -> superc::ProcessedUnit {
    let fs = MemFs::new().file("u.c", src);
    let mut sc = SuperC::new(options(fastpath, budgets), fs);
    sc.process("u.c").expect("processes")
}

#[test]
fn conditional_free_unit_runs_entirely_in_the_fast_path() {
    let src = "int a = 1;\nlong f(long x) { return x * 3 + a; }\n";
    let p = process_one(src, true, Budgets::unlimited());
    let s = &p.result.stats;
    assert!(p.result.errors.is_empty(), "{:?}", p.result.errors);
    // One stretch, entered once, never exited: the accept happens inside
    // the fast path (termination is not an exit).
    assert_eq!(s.fastpath_entries, 1, "{s:?}");
    assert_eq!(s.fastpath_exits, 0, "{s:?}");
    // Every shift of the parse happened on the scratch stack.
    assert_eq!(s.fastpath_tokens, s.shifts, "{s:?}");
    assert!(s.fastpath_tokens > 0);
    // No conditionals and no macros: every output token was fused past
    // the expansion queue.
    assert_eq!(p.unit.stats.fused_tokens, p.unit.stats.output_tokens);
}

#[test]
fn static_conditional_ends_and_restarts_the_stretch() {
    let src = "\
int before;\n\
#if defined(CONFIG_X)\n\
int inside;\n\
#endif\n\
int after;\n";
    let p = process_one(src, true, Budgets::unlimited());
    let s = &p.result.stats;
    assert!(p.result.errors.is_empty(), "{:?}", p.result.errors);
    assert!(
        s.max_subparsers > 1 && s.merges > 0,
        "conditional must split and re-merge subparsers: {s:?}"
    );
    // Stretch 1 ends at the conditional (one exit, scratch stack
    // persisted); the forked region runs in the general engine; after
    // the merge a second stretch carries the parse to the accept.
    assert_eq!(s.fastpath_entries, 2, "{s:?}");
    assert_eq!(s.fastpath_exits, 1, "{s:?}");
    // Both engines produce the same AST and acceptance.
    let q = process_one(src, false, Budgets::unlimited());
    assert_eq!(q.result.stats.fastpath_entries, 0);
    assert_eq!(
        p.result.ast.as_ref().map(|a| a.to_string()),
        q.result.ast.as_ref().map(|a| a.to_string())
    );
}

#[test]
fn ambiguous_typedef_ends_the_stretch() {
    // `T` is a typedef name only under CONFIG_T: classification splits,
    // which the fast path must decline (it would fork), handing the
    // token back to the general engine.
    let src = "\
#if defined(CONFIG_T)\n\
typedef int T;\n\
#else\n\
int T;\n\
#endif\n\
int a;\n\
int b;\n\
T x;\n\
int tail;\n";
    let p = process_one(src, true, Budgets::unlimited());
    let s = &p.result.stats;
    assert!(
        s.reclassify_forks > 0,
        "fixture must force a typedef split: {s:?}"
    );
    // The stretch over `int a; int b;` is live when it peeks `T`: the
    // ambiguous classification declines mid-stretch, so the scratch
    // stack persists and an exit is counted there.
    assert!(s.fastpath_exits >= 1, "{s:?}");
    let q = process_one(src, false, Budgets::unlimited());
    assert_eq!(
        countable_parse(s),
        countable_parse(&q.result.stats),
        "typedef-split behavior drifted"
    );
}

#[test]
fn budget_trip_inside_a_stretch_degrades_identically() {
    // A conditional-free unit long enough to blow a tiny step budget
    // while inside the fast path: the trip must be recorded exactly as
    // the general engine records it — same trip kind, same condition,
    // same partial outcome — and the killed stretch is not an "exit".
    let src = {
        let mut s = String::from("int acc;\nvoid f(void) {\n");
        for i in 0..200 {
            s.push_str(&format!("    acc = acc * {} + {i};\n", (i % 7) + 2));
        }
        s.push_str("}\n");
        s
    };
    let budgets = Budgets {
        max_steps: 50,
        ..Budgets::unlimited()
    };
    let p = process_one(&src, true, budgets);
    let q = process_one(&src, false, budgets);
    let (s, t) = (&p.result.stats, &q.result.stats);
    assert!(s.budget_trips > 0, "budget never tripped: {s:?}");
    assert_eq!(s.fastpath_entries, 1, "{s:?}");
    assert_eq!(s.fastpath_exits, 0, "a budget kill is not an exit: {s:?}");
    assert_eq!(countable_parse(s), countable_parse(t), "trip drifted");
    assert_eq!(
        p.result.trips.len(),
        q.result.trips.len(),
        "trip records drifted"
    );
    for (a, b) in p.result.trips.iter().zip(&q.result.trips) {
        assert_eq!(
            superc::corpus::render_trip(a),
            superc::corpus::render_trip(b),
            "trip rendering drifted"
        );
    }
}

#[test]
fn no_fastpath_runs_report_zero_fastpath_counters() {
    let src = "int a;\n#if defined(X)\nint b;\n#endif\nint c;\n";
    let p = process_one(src, false, Budgets::unlimited());
    let s = &p.result.stats;
    assert_eq!(s.fastpath_entries, 0);
    assert_eq!(s.fastpath_exits, 0);
    assert_eq!(s.fastpath_tokens, 0);
    assert_eq!(p.unit.stats.fused_tokens, 0);
}
