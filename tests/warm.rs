//! Incremental warm re-runs: the pooled [`CorpusRunner`]'s unit result
//! memo must make warm output **byte-identical to a cold run over the
//! same (edited) tree**, while skipping recomputation for exactly the
//! units whose include closure was untouched.
//!
//! The matrix here crosses edit site × jobs × fastpath × profile count:
//!
//! * edit sites: none / a leaf header included by one unit / a shared
//!   header deep in every unit's closure / a unit's own source / a
//!   *shadowing* header created at a path that include resolution
//!   probed and missed in the first batch (a negative dependency);
//! * `jobs` 1, 2, 8 over the same pool size ladder as
//!   `tests/parallel.rs`;
//! * fast path (fused lexing + deterministic LR fast path) on and off;
//! * one profile ([`CorpusRunner::run`]) and a three-profile grid
//!   ([`CorpusRunner::run_profiles`]).
//!
//! Every cell asserts two things: the warm report matches a fresh cold
//! reference over the edited tree (per-unit deterministic fields and
//! behavior counters), and the per-unit `memo_hit` flags match the edit
//! — edited-closure units recompute, untouched units replay.

use std::sync::Arc;

use superc::analyze::LintOptions;
use superc::corpus::{
    process_corpus, process_corpus_profiles, CorpusOptions, CorpusReport, CorpusRunner,
};
use superc::{Options, Profile, SharedMemFs};

/// Three units over a small header tree:
///
/// * `include/leaf.h` — included only by `a.c`;
/// * `include/deep.h` → `include/deeper.h` — a two-level chain included
///   by every unit;
/// * each unit also has private content so their reports differ.
fn fixture() -> SharedMemFs {
    let fs = SharedMemFs::new();
    fs.set("include/leaf.h", "int leaf_decl(int);\n#define LEAF 1\n");
    fs.set(
        "include/deep.h",
        "#include \"deeper.h\"\nint deep_decl(void);\n",
    );
    fs.set(
        "include/deeper.h",
        "#ifdef CONFIG_SMP\n#define WIDTH 8\n#else\n#define WIDTH 1\n#endif\nint deeper_decl(void);\n",
    );
    fs.set(
        "a.c",
        "#include <leaf.h>\n#include <deep.h>\nint a_fn(void) { return LEAF + WIDTH; }\n",
    );
    fs.set(
        "b.c",
        "#include <deep.h>\n#ifdef CONFIG_B\nint b_extra;\n#endif\nint b_fn(void) { return WIDTH; }\n",
    );
    fs.set(
        "c.c",
        "#include <deep.h>\nint c_fn(void) { return WIDTH * 2; }\n",
    );
    fs
}

fn units() -> Vec<String> {
    vec!["a.c".to_string(), "b.c".to_string(), "c.c".to_string()]
}

fn options(fastpath: bool) -> Options {
    let mut options = Options::default();
    options.pp.include_paths = vec!["include".to_string()];
    if !fastpath {
        options.parser.fastpath = false;
        options.pp.fuse_lexing = false;
    }
    options
}

fn copts(warm: bool) -> CorpusOptions {
    CorpusOptions {
        lint: Some(LintOptions::default()),
        warm,
        ..CorpusOptions::default()
    }
}

/// One edit scenario: a label, the file to touch (`None` = no edit),
/// and which units' closures that invalidates.
struct Edit {
    label: &'static str,
    touch: Option<(&'static str, &'static str)>,
    /// Expected `memo_hit` per unit (a.c, b.c, c.c) on the re-run.
    hits: [bool; 3],
    /// Files in the tree after the edit (the rehash ceiling per batch).
    files: u64,
}

fn edits() -> Vec<Edit> {
    vec![
        Edit {
            label: "none",
            touch: None,
            hits: [true, true, true],
            files: 6,
        },
        Edit {
            label: "leaf-header",
            touch: Some(("include/leaf.h", "int leaf_decl(int);\n#define LEAF 2\n")),
            hits: [false, true, true],
            files: 6,
        },
        Edit {
            label: "deep-shared-header",
            touch: Some((
                "include/deeper.h",
                "#ifdef CONFIG_SMP\n#define WIDTH 16\n#else\n#define WIDTH 2\n#endif\nint deeper_decl(void);\n",
            )),
            hits: [false, false, false],
            files: 6,
        },
        Edit {
            label: "unit-source",
            touch: Some((
                "b.c",
                "#include <deep.h>\nint b_fn(void) { return WIDTH + 1; }\n",
            )),
            hits: [true, false, true],
            files: 6,
        },
        // Shadowing edits: the touched path did not exist in the first
        // batch — it is a *failed probe* on some unit's include
        // resolution path. `a.c`'s `#include <leaf.h>` probes bare
        // `leaf.h` before `include/leaf.h`, so creating `leaf.h`
        // changes what a.c resolves without touching any file a.c
        // read. Only negative-dependency fingerprints catch this.
        Edit {
            label: "shadow-leaf-header",
            touch: Some((
                "leaf.h",
                "int leaf_decl(int);\nint leaf_shadow;\n#define LEAF 7\n",
            )),
            hits: [false, true, true],
            files: 7,
        },
        // Every unit includes `<deep.h>` and probes bare `deep.h`
        // first, so this shadow invalidates the whole corpus.
        Edit {
            label: "shadow-deep-header",
            touch: Some((
                "deep.h",
                "#include \"deeper.h\"\nint deep_decl(void);\nint deep_shadow;\n",
            )),
            hits: [false, false, false],
            files: 7,
        },
    ]
}

/// Schedule-independent view of the per-unit preprocessor counters (the
/// cache/memo hit gauges depend on who got somewhere first).
fn countable(pp: &superc::PpStats) -> superc::PpStats {
    superc::PpStats {
        lex_nanos: 0,
        lex_nanos_saved: 0,
        shared_cache_hits: 0,
        shared_cache_misses: 0,
        condexpr_memo_hits: 0,
        condexpr_memo_misses: 0,
        expansion_memo_hits: 0,
        ..*pp
    }
}

fn assert_reports_identical(base: &CorpusReport, other: &CorpusReport, label: &str) {
    assert_eq!(base.units.len(), other.units.len(), "{label}: unit count");
    for (b, o) in base.units.iter().zip(&other.units) {
        assert_eq!(b.path, o.path, "{label}: input order not preserved");
        assert_eq!(
            countable(&b.pp),
            countable(&o.pp),
            "{}: {label}: preprocessor counters",
            b.path
        );
        assert_eq!(b.parse, o.parse, "{}: {label}: parser counters", b.path);
        assert_eq!(b.parsed, o.parsed, "{}: {label}: parsed flag", b.path);
        assert_eq!(b.fatal, o.fatal, "{}: {label}: fatal", b.path);
        assert_eq!(b.lints, o.lints, "{}: {label}: lint records", b.path);
        assert_eq!(
            b.degradations, o.degradations,
            "{}: {label}: degradations",
            b.path
        );
    }
    assert_eq!(
        base.behavior_counters(),
        other.behavior_counters(),
        "{label}: behavior fingerprint"
    );
}

#[test]
fn warm_rerun_matches_cold_run_across_edit_jobs_fastpath_matrix() {
    let units = units();
    for edit in edits() {
        for jobs in [1usize, 2, 8] {
            for fastpath in [true, false] {
                let label = format!("edit={} jobs={jobs} fastpath={fastpath}", edit.label);
                let opts = options(fastpath);
                let fs = Arc::new(fixture());
                let mut pool = CorpusRunner::new(&opts, Arc::clone(&fs), jobs, false);

                // Batch 1 fills the memo: nothing can hit yet.
                let first = pool.run(&units, &copts(true));
                assert_eq!(first.unit_memo_hits, 0, "{label}: batch 1 hits");
                assert_eq!(
                    first.unit_memo_misses,
                    units.len() as u64,
                    "{label}: batch 1 misses"
                );
                assert!(first.parsed_units() == 3, "{label}: fixture must parse");

                if let Some((path, contents)) = edit.touch {
                    fs.set(path, contents);
                }

                // Batch 2 (warm, over the edited tree) vs a fresh cold
                // run over the same tree — the fresh-process reference.
                let second = pool.run(&units, &copts(true));
                let reference = process_corpus(&*fs, &units, &opts, &copts(false));
                assert_reports_identical(&reference, &second, &label);

                let expected_hits = edit.hits.iter().filter(|&&h| h).count() as u64;
                assert_eq!(
                    second.unit_memo_hits, expected_hits,
                    "{label}: memo hit count"
                );
                assert_eq!(
                    second.unit_memo_misses,
                    units.len() as u64 - expected_hits,
                    "{label}: memo miss count"
                );
                for (u, expect_hit) in second.units.iter().zip(edit.hits) {
                    assert_eq!(u.memo_hit, expect_hit, "{label}: {}: memo_hit flag", u.path);
                }
                // Every file is content-hashed at most once per batch,
                // however many workers and profiles probed it.
                assert!(
                    second.files_rehashed <= edit.files,
                    "{label}: rehashed {} files of {}",
                    second.files_rehashed,
                    edit.files
                );
            }
        }
    }
}

#[test]
fn warm_profiles_rerun_matches_cold_grid() {
    let units = units();
    let profiles: Vec<Profile> = ["gcc-linux", "clang-linux", "msvc-windows"]
        .iter()
        .map(|n| Profile::named(n).expect("shipped profile"))
        .collect();
    for edit in edits() {
        for jobs in [1usize, 2, 8] {
            for fastpath in [true, false] {
                let label = format!(
                    "profiles=3 edit={} jobs={jobs} fastpath={fastpath}",
                    edit.label
                );
                let opts = options(fastpath);
                let fs = Arc::new(fixture());
                let mut pool = CorpusRunner::new(&opts, Arc::clone(&fs), jobs, false);

                let first = pool.run_profiles(&units, &profiles, &copts(true));
                assert_eq!(first.runs[0].unit_memo_hits, 0, "{label}: batch 1 hits");
                assert_eq!(
                    first.runs[0].unit_memo_misses,
                    (units.len() * profiles.len()) as u64,
                    "{label}: batch 1 misses"
                );

                if let Some((path, contents)) = edit.touch {
                    fs.set(path, contents);
                }

                let second = pool.run_profiles(&units, &profiles, &copts(true));
                let reference =
                    process_corpus_profiles(&*fs, &units, &opts, &profiles, &copts(false));
                assert_eq!(
                    reference.behavior_counters(),
                    second.behavior_counters(),
                    "{label}: per-profile behavior fingerprints"
                );
                for (p, (rref, rwarm)) in reference.runs.iter().zip(&second.runs).enumerate() {
                    assert_reports_identical(rref, rwarm, &format!("{label} profile {p}"));
                    // The memo is per (unit, profile-signature): the
                    // same hit pattern must hold under every profile.
                    for (u, expect_hit) in rwarm.units.iter().zip(edit.hits) {
                        assert_eq!(
                            u.memo_hit, expect_hit,
                            "{label}: profile {p}: {}: memo_hit flag",
                            u.path
                        );
                    }
                }
                // Merged lint output (including portability diffs) is
                // part of the byte-identity contract too.
                let lopts = LintOptions::default();
                assert_eq!(
                    reference.lint_records(&lopts),
                    second.lint_records(&lopts),
                    "{label}: merged lint records"
                );

                let expected_hits =
                    (edit.hits.iter().filter(|&&h| h).count() * profiles.len()) as u64;
                assert_eq!(
                    second.runs[0].unit_memo_hits, expected_hits,
                    "{label}: grid memo hit count"
                );
                // Fingerprints are profile-independent *per file*: one
                // rehash per touched file per batch, shared by all
                // three profile runs.
                assert!(
                    second.runs[0].files_rehashed <= edit.files,
                    "{label}: rehashed {} files of {}",
                    second.runs[0].files_rehashed,
                    edit.files
                );
            }
        }
    }
}

#[test]
fn budget_tripped_units_are_never_memoized() {
    let units = units();
    let mut opts = options(true);
    // A one-step parse budget degrades every unit to a partial parse;
    // partial/tripped units must recompute on every warm batch.
    opts.budgets.max_steps = 1;
    let fs = Arc::new(fixture());
    let mut pool = CorpusRunner::new(&opts, Arc::clone(&fs), 2, false);
    let first = pool.run(&units, &copts(true));
    assert_eq!(first.partial_units(), 3, "budget must trip every unit");
    let second = pool.run(&units, &copts(true));
    assert_eq!(
        second.unit_memo_hits, 0,
        "budget-degraded units must not replay from the memo"
    );
    assert_eq!(second.partial_units(), 3);
}

#[test]
fn failed_units_are_never_memoized() {
    let fs = Arc::new(fixture());
    fs.set("broken.c", "#error this unit is intentionally fatal\n");
    let units = vec!["a.c".to_string(), "broken.c".to_string()];
    let mut pool = CorpusRunner::new(&options(true), Arc::clone(&fs), 2, false);
    let first = pool.run(&units, &copts(true));
    assert_eq!(first.failed_units(), 1);
    let second = pool.run(&units, &copts(true));
    assert_eq!(
        second.unit_memo_hits, 1,
        "only the healthy unit replays; the failed one recomputes"
    );
    assert!(second.units[1].failure.is_some());
    assert!(!second.units[1].memo_hit);
}

#[test]
fn no_shared_cache_pool_stays_edit_correct() {
    // Without the shared cache there is no generation protocol and no
    // memo; the pool must still see edits (workers drop their L1 caches
    // at batch boundaries) and produce cold-identical output.
    let units = units();
    let opts = options(true);
    let fs = Arc::new(fixture());
    let mut pool = CorpusRunner::new(&opts, Arc::clone(&fs), 2, true);
    let first = pool.run(&units, &copts(true));
    assert_eq!(first.unit_memo_hits + first.unit_memo_misses, 0);
    fs.set(
        "include/deeper.h",
        "#define WIDTH 99\nint deeper_decl(void);\n",
    );
    let second = pool.run(&units, &copts(true));
    assert_eq!(second.unit_memo_hits, 0, "no shared cache, no memo");
    let reference = process_corpus(&*fs, &units, &opts, &copts(false));
    assert_reports_identical(&reference, &second, "no-shared-cache warm pool");
}

#[test]
fn warm_sweep_evicts_dead_artifacts() {
    let units = units();
    let opts = options(true);
    let fs = Arc::new(fixture());
    let mut pool = CorpusRunner::new(&opts, Arc::clone(&fs), 2, false);
    pool.run(&units, &copts(true));
    let cache = Arc::clone(pool.shared_cache().expect("pool has a shared cache"));
    let cold_len = cache.len();
    assert!(cold_len > 0, "cold batch must populate the cache");
    // Edit one header: its old artifact is dead after the next batch's
    // sweep, and the cache must not grow monotonically across edits.
    for width in [5, 6, 7] {
        fs.set(
            "include/deeper.h",
            &format!("#define WIDTH {width}\nint deeper_decl(void);\n"),
        );
        pool.run(&units, &copts(true));
        assert_eq!(
            cache.len(),
            cold_len,
            "sweep must evict each edit's dead artifact"
        );
    }
}
