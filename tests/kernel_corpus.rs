//! End-to-end: every unit of the synthetic Linux-like corpus must
//! preprocess and parse under every configuration (except branches the
//! corpus deliberately poisons with `#error`).

use superc::{Options, PpOptions, Profile, SuperC};
use superc_kernelgen::{generate, CorpusSpec};

fn options() -> Options {
    Options {
        pp: PpOptions {
            profile: Profile::default(),
            ..PpOptions::default()
        },
        ..Options::default()
    }
}

#[test]
fn whole_corpus_parses() {
    let corpus = generate(&CorpusSpec::small());
    let mut sc = SuperC::new(options(), corpus.fs.clone());
    for unit in &corpus.units {
        let p = sc.process(unit).unwrap_or_else(|e| panic!("{unit}: {e}"));
        assert!(
            p.result.errors.is_empty(),
            "{unit}: {:?}\n--- preprocessed ---\n{}",
            p.result
                .errors
                .iter()
                .map(|e| format!("{e}"))
                .collect::<Vec<_>>(),
            p.unit.display_text()
        );
        let acc = p.result.accepted.as_ref().expect("accepted");
        assert!(acc.is_true(), "{unit}: partial accept");
        // Variability survived the pipeline.
        assert!(p.unit.stats.output_conditionals > 0, "{unit}");
        assert!(p.result.ast.expect("ast").choice_count() > 0, "{unit}");
    }
}

#[test]
fn corpus_is_variability_rich() {
    let corpus = generate(&CorpusSpec::small());
    let mut sc = SuperC::new(options(), corpus.fs.clone());
    let mut saw_hoisted_invocation = false;
    let mut saw_nonbool = false;
    let mut saw_paste = false;
    let mut saw_stringify = false;
    let mut saw_reinclude = false;
    let mut saw_computed = false;
    for unit in &corpus.units {
        let p = sc.process(unit).expect("processes");
        let s = &p.unit.stats;
        saw_hoisted_invocation |= s.invocations_hoisted > 0;
        saw_nonbool |= s.non_boolean_exprs > 0;
        saw_paste |= s.token_pastes > 0;
        saw_stringify |= s.stringifications > 0;
        saw_reinclude |= s.reincluded_headers > 0;
        saw_computed |= s.computed_includes > 0;
    }
    assert!(saw_hoisted_invocation, "no hoisted invocations generated");
    assert!(saw_nonbool, "no non-boolean expressions generated");
    assert!(saw_paste, "no token pasting generated");
    assert!(saw_stringify, "no stringification generated");
    let _ = saw_reinclude; // guards make reinclusion rare by design
    assert!(saw_computed, "no computed includes generated");
}

#[test]
fn gcc_baseline_handles_the_corpus() {
    let corpus = generate(&CorpusSpec::small());
    let mut opts = Options::gcc_baseline(vec![
        ("CONFIG_SMP".into(), "1".into()),
        ("CONFIG_64BIT".into(), "1".into()),
        ("NR_CPUS".into(), "64".into()),
    ]);
    opts.pp.profile = Profile::default();
    let mut sc = SuperC::new(opts, corpus.fs.clone());
    for unit in &corpus.units {
        let p = sc.process(unit).unwrap_or_else(|e| panic!("{unit}: {e}"));
        assert_eq!(p.unit.stats.output_conditionals, 0, "{unit}: not flat");
        assert!(
            p.result.errors.is_empty(),
            "{unit}: {:?}",
            p.result
                .errors
                .iter()
                .map(|e| format!("{e}"))
                .collect::<Vec<_>>()
        );
        assert_eq!(p.result.stats.max_subparsers, 1, "{unit}: plain LR");
    }
}

#[test]
fn ambiguous_typedef_corpus_forks_and_parses() {
    // Linux has zero ambiguously-defined names (Table 3), but the
    // generator can produce them; the parser must fork and still cover
    // every configuration.
    let corpus = generate(&CorpusSpec {
        ambiguous_typedefs: true,
        ..CorpusSpec::small()
    });
    let mut sc = SuperC::new(options(), corpus.fs.clone());
    let mut any_forks = false;
    for unit in &corpus.units {
        let p = sc.process(unit).unwrap_or_else(|e| panic!("{unit}: {e}"));
        assert!(
            p.result.errors.is_empty(),
            "{unit}: {:?}",
            p.result
                .errors
                .iter()
                .map(|e| format!("{e}"))
                .collect::<Vec<_>>()
        );
        any_forks |= p.result.stats.reclassify_forks > 0;
    }
    // The ambiguous names live in headers; at least one unit must have
    // used one ambiguously. (The generator only declares them, so forks
    // come from uses of the subNN_t types guarded differently — if no
    // unit used an ambiguous name, the corpus still parses.)
    let _ = any_forks;
}

#[test]
fn corpus_scales_up_cleanly() {
    // A denser corpus slice: more functions, deeper nesting.
    let corpus = generate(&CorpusSpec {
        units: 4,
        functions_per_unit: (20, 30),
        init_members: (10, 18),
        ..CorpusSpec::default()
    });
    let mut sc = SuperC::new(options(), corpus.fs.clone());
    for unit in &corpus.units {
        let p = sc.process(unit).unwrap_or_else(|e| panic!("{unit}: {e}"));
        assert!(p.result.errors.is_empty(), "{unit}");
        assert!(
            p.result.stats.max_subparsers <= 64,
            "{unit}: {} subparsers",
            p.result.stats.max_subparsers
        );
    }
}
