//! One end-to-end test per gray cell of the paper's Table 1 — the
//! preprocessor/parser interactions SuperC newly supports over TypeChef —
//! plus the non-gray interactions worth pinning down. Each test drives
//! the full pipeline (lexer → configuration-preserving preprocessor →
//! FMLR parser with the C grammar).

use superc::{CompilationUnit, CondCtx, MemFs, Options, PpOptions, Profile, SuperC};

fn run(files: &[(&str, &str)]) -> (CompilationUnit, superc::ParseResult, CondCtx) {
    let mut fs = MemFs::new();
    for (p, c) in files {
        fs.add(p, c);
    }
    let opts = Options {
        pp: PpOptions {
            profile: Profile::bare(),
            ..PpOptions::default()
        },
        ..Options::default()
    };
    let mut sc = SuperC::new(opts, fs);
    let p = sc.process("main.c").expect("processes");
    let ctx = sc.ctx().clone();
    (p.unit, p.result, ctx)
}

fn assert_clean(r: &superc::ParseResult) {
    assert!(
        r.errors.is_empty(),
        "{:?}",
        r.errors.iter().map(|e| format!("{e}")).collect::<Vec<_>>()
    );
    assert!(r.accepted.as_ref().expect("accepted").is_true());
}

/// Row "Macro (Un)Definition" × "Contain Conditionals": multiple entries
/// in the conditional macro table.
#[test]
fn multiply_defined_macro_table_entries() {
    let (unit, r, _) = run(&[(
        "main.c",
        "#ifdef CONFIG_64BIT\n#define WORD 64\n#else\n#define WORD 32\n#endif\nint w = WORD;\n",
    )]);
    assert_clean(&r);
    assert_eq!(unit.stats.output_conditionals, 1);
}

/// Row "Macro (Un)Definition" × "Other": trimming infeasible entries on
/// redefinition.
#[test]
fn redefinition_trims_infeasible_entries() {
    let (unit, r, _) = run(&[("main.c", "#define V 1\n#define V 2\nint x = V;\n")]);
    assert_clean(&r);
    assert!(unit.stats.trimmed_entries >= 1);
    assert!(unit.display_text().contains("= 2"));
}

/// Row "Object-Like Macro Invocations" × "Surrounded by Conditionals":
/// infeasible definitions are ignored at the invocation site.
#[test]
fn invocation_ignores_infeasible_definitions() {
    let (unit, r, ctx) = run(&[(
        "main.c",
        "#ifdef A\n#define V 1\n#endif\n#ifndef A\nint x = V;\n#endif\nint done;\n",
    )]);
    assert_clean(&r);
    let _ = ctx;
    // V stays an identifier: its only definition is infeasible under !A.
    assert!(unit.display_text().contains("x = V"));
}

/// Row "Function-Like Macro Invocations" × "Contain Conditionals" (gray):
/// hoisting conditionals around the invocation, with arguments differing
/// per branch.
#[test]
fn function_invocation_hoists_conditionals() {
    let (_, r, ctx) = run(&[(
        "main.c",
        "#define twice(x) ((x) + (x))\nint r = twice(\n#ifdef BIG\n100\n#else\n1\n#endif\n);\n",
    )]);
    assert_clean(&r);
    let ast = r.ast.expect("ast");
    let with = superc::unparse_config(&ast, &ctx, &|n| Some(n == "defined(BIG)"));
    assert!(with.contains("( 100 ) + ( 100 )"), "{with}");
}

/// Same row, "Other": differing argument numbers and variadics across
/// branches (gray).
#[test]
fn differing_arity_and_variadics_across_branches() {
    let (_, r, ctx) = run(&[(
        "main.c",
        "#ifdef TRACE\n#define log(fmt, ...) trace(fmt, __VA_ARGS__)\n#else\n#define log(fmt, ...) nop(fmt)\n#endif\nvoid f(void) { log(\"x\", 1, 2); }\n",
    )]);
    assert_clean(&r);
    let ast = r.ast.expect("ast");
    let on = superc::unparse_config(&ast, &ctx, &|n| Some(n == "defined(TRACE)"));
    let off = superc::unparse_config(&ast, &ctx, &|_| Some(false));
    assert!(on.contains("trace ( \"x\" , 1 , 2 )"), "{on}");
    assert!(off.contains("nop ( \"x\" )"), "{off}");
}

/// Row "Token Pasting & Stringification" × "Contain Conditionals" (gray):
/// Figure 5's hoist around `##`.
#[test]
fn token_pasting_hoists_fig5() {
    let (_, r, ctx) = run(&[(
        "main.c",
        "#ifdef CONFIG_64BIT\n#define BPL 64\n#else\n#define BPL 32\n#endif\n#define uintBPL_t uint(BPL)\n#define uint(x) xuint(x)\n#define xuint(x) __le ## x\ntypedef int __le64;\ntypedef int __le32;\nuintBPL_t *p;\n",
    )]);
    assert_clean(&r);
    let ast = r.ast.expect("ast");
    let on = superc::unparse_config(&ast, &ctx, &|n| Some(n == "defined(CONFIG_64BIT)"));
    assert!(on.contains("__le64 * p"), "{on}");
}

/// Row "File Includes" × "Surrounded by Conditionals": headers are
/// preprocessed under the inclusion's presence condition.
#[test]
fn include_under_presence_condition() {
    let (_, r, ctx) = run(&[
        (
            "main.c",
            "#ifdef NEED_EXTRA\n#include \"extra.h\"\n#endif\nint tail = EXTRA;\n",
        ),
        ("extra.h", "#define EXTRA 7\n"),
    ]);
    assert_clean(&r);
    let ast = r.ast.expect("ast");
    let on = superc::unparse_config(&ast, &ctx, &|n| Some(n == "defined(NEED_EXTRA)"));
    let off = superc::unparse_config(&ast, &ctx, &|_| Some(false));
    assert!(on.contains("tail = 7"), "{on}");
    assert!(off.contains("tail = EXTRA"), "{off}");
}

/// Row "File Includes" × "Contain Conditionals" (gray): computed include
/// with a multiply-defined macro operand.
#[test]
fn computed_include_with_hoisting() {
    let (unit, r, ctx) = run(&[
        (
            "main.c",
            "#ifdef ALT\n#define HDR \"b.h\"\n#else\n#define HDR \"a.h\"\n#endif\n#include HDR\nint x = N;\n",
        ),
        ("a.h", "#define N 1\n"),
        ("b.h", "#define N 2\n"),
    ]);
    assert_clean(&r);
    assert!(unit.stats.includes_hoisted >= 1);
    let ast = r.ast.expect("ast");
    let alt = superc::unparse_config(&ast, &ctx, &|n| Some(n == "defined(ALT)"));
    assert!(alt.contains("x = 2"), "{alt}");
}

/// Row "File Includes" × "Other" (gray): reinclusion when the guard macro
/// is not definitely false.
#[test]
fn reinclusion_with_undefined_guard() {
    let (unit, r, _) = run(&[
        (
            "main.c",
            "#include \"g.h\"\n#undef G_H\n#include \"g.h\"\nint t;\n",
        ),
        ("g.h", "#ifndef G_H\n#define G_H\nint decl;\n#endif\n"),
    ]);
    assert_clean(&r);
    assert_eq!(unit.stats.reincluded_headers, 1);
    // Two copies of the declaration.
    assert_eq!(unit.display_text().matches("int decl").count(), 2);
}

/// Row "Conditional Expressions" × "Contain Conditionals" (gray):
/// hoisting a multiply-defined macro around a conditional expression
/// (the paper's `BITS_PER_LONG == 32` walkthrough).
#[test]
fn conditional_expression_hoisting() {
    let (unit, r, ctx) = run(&[(
        "main.c",
        "#ifdef CONFIG_64BIT\n#define BPL 64\n#else\n#define BPL 32\n#endif\n#if BPL == 32\nint small_long;\n#endif\nint always;\n",
    )]);
    assert_clean(&r);
    assert!(unit.stats.conditionals_hoisted >= 1);
    let ast = r.ast.expect("ast");
    let on64 = superc::unparse_config(&ast, &ctx, &|n| Some(n == "defined(CONFIG_64BIT)"));
    assert!(!on64.contains("small_long"), "{on64}");
    let on32 = superc::unparse_config(&ast, &ctx, &|_| Some(false));
    assert!(on32.contains("small_long"), "{on32}");
}

/// Row "Conditional Expressions" × "Other": non-boolean expressions stay
/// opaque but identical occurrences correlate.
#[test]
fn non_boolean_expressions_preserved() {
    let (unit, r, _) = run(&[(
        "main.c",
        "#if NR_CPUS < 256\nint byte_cpu;\n#endif\n#if NR_CPUS < 256\nint byte_cpu2;\n#endif\nint always;\n",
    )]);
    assert_clean(&r);
    assert!(unit.stats.non_boolean_exprs >= 1);
    // Correlated: both blocks share one opaque variable, so there are
    // exactly two configuration classes. The adjacent declarations merge
    // into a single grouped choice node.
    let ast = r.ast.expect("ast");
    assert_eq!(ast.choice_count(), 1);
}

/// Row "Error Directives": erroneous branches are infeasible.
#[test]
fn error_directives_disable_branches() {
    let (unit, r, _) = run(&[(
        "main.c",
        "#ifdef BROKEN\n#error nope\nint junk(;\n#endif\nint good;\n",
    )]);
    // The branch's configurations are disabled (not parsed at all), so
    // even its syntax error never surfaces.
    assert_clean(&r);
    assert_eq!(unit.stats.error_directives, 1);
    assert!(!unit.display_text().contains("junk"));
}

/// Row "C Constructs" × FMLR: fork and merge around a statement-splitting
/// conditional (Figure 1).
#[test]
fn fmlr_forks_and_merges_around_c_constructs() {
    let (_, r, _) = run(&[(
        "main.c",
        "int f(int a, int b) {\n  int i;\n#ifdef PS\n  if (a == 10)\n    i = 31;\n  else\n#endif\n  i = b - 32;\n  return i;\n}\n",
    )]);
    assert_clean(&r);
    let ast = r.ast.expect("ast");
    assert_eq!(ast.choice_count(), 1);
    assert!(r.stats.merges >= 1);
}

/// Row "Typedef Names" × "Contain Conditionals" (gray): conditional
/// symbol-table entries and forking on ambiguously defined names.
#[test]
fn ambiguous_typedef_forks_subparsers() {
    let (_, r, _) = run(&[(
        "main.c",
        "#ifdef HAS_T\ntypedef int T;\n#endif\nvoid f(void) { T * p; }\n",
    )]);
    assert_clean(&r);
    assert!(r.stats.reclassify_forks >= 1);
}

/// The include-guard translation (§3.2 case 4a): guards never become
/// configuration variables.
#[test]
fn guards_do_not_pollute_presence_conditions() {
    let (unit, r, _) = run(&[
        (
            "main.c",
            "#include \"g.h\"\n#include \"g.h\"\nint x = VAL;\n",
        ),
        ("g.h", "#ifndef G_H\n#define G_H\n#define VAL 3\n#endif\n"),
    ]);
    assert_clean(&r);
    assert_eq!(unit.stats.output_conditionals, 0);
    assert_eq!(r.ast.expect("ast").choice_count(), 0);
}
