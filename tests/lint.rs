//! Acceptance tests for `superc lint` over the seeded fixture corpus in
//! `tests/fixtures/lint/`.
//!
//! Each buggy fixture plants exactly one variability bug with a known
//! presence condition; the lints must report it at the right position
//! with the *exact* PC (checked by BDD equivalence against a formula
//! built here, never by string comparison). The clean fixtures exercise
//! the same preprocessor features in legitimate patterns and must stay
//! silent. Finally, the rendered JSON report must be byte-identical for
//! any `--jobs` count — the determinism contract the CLI advertises.

use superc::analyze::{render, Diagnostic, LintCode, LintOptions};
use superc::corpus::{process_corpus, Capture, CorpusOptions};
use superc::{CondCtx, DiskFs, Options, SuperC};

fn fixture_fs() -> DiskFs {
    DiskFs::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/lint"))
}

/// Processes one fixture end to end and lints it with defaults.
fn lint_one(file: &str) -> (Vec<Diagnostic>, CondCtx) {
    let mut tool = SuperC::new(Options::default(), fixture_fs());
    let processed = tool.process(file).expect("fixture preprocesses");
    let diags = tool.lint(&processed, &LintOptions::default());
    (diags, tool.ctx().clone())
}

fn assert_pc(d: &Diagnostic, expected: &superc::Cond) {
    assert!(
        d.cond.semantically_equal(expected),
        "expected PC {expected} for {} at {}:{}, got {}",
        d.code,
        d.file,
        d.pos.line,
        d.cond_text
    );
}

#[test]
fn seeded_dead_branch_reports_exact_pc() {
    let (diags, ctx) = lint_one("dead_branch.c");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, LintCode::DeadBranch);
    assert_eq!((d.file.as_str(), d.pos.line), ("dead_branch.c", 5));
    assert_pc(d, &ctx.var("defined(CONFIG_A)"));
}

#[test]
fn seeded_macro_conflict_reports_exact_pc() {
    let (diags, ctx) = lint_one("macro_conflict.c");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, LintCode::MacroConflict);
    assert_eq!((d.file.as_str(), d.pos.line), ("macro_conflict.c", 8));
    let overlap = ctx
        .var("defined(CONFIG_NET)")
        .and(&ctx.var("defined(CONFIG_NET_JUMBO)"));
    assert_pc(d, &overlap);
    assert!(d.message.contains("MTU"), "{}", d.message);
}

#[test]
fn seeded_undef_macro_test_reports_exact_pc() {
    let (diags, ctx) = lint_one("undef_macro.c");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, LintCode::UndefMacroTest);
    assert_eq!((d.file.as_str(), d.pos.line), ("undef_macro.c", 5));
    assert_pc(d, &ctx.tru());
    assert!(d.message.contains("CONFG_TYPO"), "{}", d.message);
}

#[test]
fn seeded_config_redecl_reports_exact_pc() {
    let (diags, ctx) = lint_one("config_redecl.c");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, LintCode::ConfigRedecl);
    assert_eq!(d.file.as_str(), "config_redecl.c");
    let overlap = ctx
        .var("defined(CONFIG_X)")
        .and(&ctx.var("defined(CONFIG_Y)"));
    assert_pc(d, &overlap);
    assert!(d.message.contains("shared_counter"), "{}", d.message);
}

#[test]
fn seeded_partial_parse_reports_exact_pc() {
    let (diags, ctx) = lint_one("partial_parse.c");
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, LintCode::PartialParse);
    assert_eq!(d.file.as_str(), "partial_parse.c");
    assert_pc(d, &ctx.var("defined(CONFIG_BROKEN)"));
}

#[test]
fn clean_fixtures_stay_silent() {
    for file in ["clean_variants.c", "clean_header.c"] {
        let (diags, _) = lint_one(file);
        assert!(diags.is_empty(), "{file}: {diags:?}");
    }
}

/// All fixtures, buggy and clean, in a fixed input order.
fn corpus_files() -> Vec<String> {
    [
        "dead_branch.c",
        "macro_conflict.c",
        "undef_macro.c",
        "config_redecl.c",
        "partial_parse.c",
        "clean_variants.c",
        "clean_header.c",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn lint_json_is_byte_identical_across_job_counts() {
    let files = corpus_files();
    let render_for = |jobs: usize, no_shared_cache: bool, fastpath: bool| -> String {
        let mut options = Options::default();
        if !fastpath {
            options.parser.fastpath = false;
            options.pp.fuse_lexing = false;
        }
        let copts = CorpusOptions {
            jobs,
            capture: Capture::default(),
            lint: Some(LintOptions::default()),
            no_shared_cache,
            inject_panic: Vec::new(),
            portability: false,
            warm: false,
        };
        let report = process_corpus(&fixture_fs(), &files, &options, &copts);
        assert_eq!(report.fatal_units(), 0);
        let records: Vec<_> = report
            .units
            .iter()
            .flat_map(|u| u.lints.iter().cloned())
            .collect();
        render::render_json(&records)
    };
    let base = render_for(1, false, true);
    // One diagnostic per buggy fixture, none from the clean ones. The
    // portability-* codes only fire in cross-profile mode (see
    // tests/portability.rs), so only the single-profile lints appear.
    for code in &LintCode::ALL[..5] {
        assert!(base.contains(code.as_str()), "missing {code} in {base}");
    }
    assert_eq!(base.matches("\"code\"").count(), 5, "{base}");
    assert!(!base.contains("portability-"), "{base}");
    for jobs in [1, 2, 8] {
        for no_cache in [false, true] {
            for fastpath in [true, false] {
                assert_eq!(
                    render_for(jobs, no_cache, fastpath),
                    base,
                    "jobs={jobs} cache={} fastpath={fastpath} diverged",
                    if no_cache { "off" } else { "on" }
                );
            }
        }
    }
}
