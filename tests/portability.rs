//! Acceptance tests for the cross-profile portability lints over the
//! seeded corpus in `tests/fixtures/portability/`.
//!
//! Each fixture plants one kind of profile divergence against the
//! shipped compiler/OS profiles (`_WIN32`, `__APPLE__`, `__GNUC__`,
//! `__STDC_VERSION__`); the differ must report it with the exact
//! profile partition and a presence condition checked by BDD
//! equivalence (never by string comparison against the formula). The
//! clean fixture must stay silent. The rendered report must be
//! byte-identical across the whole
//! `{profiles 1/3} x {jobs 1/2/8} x {cache on/off} x {fastpath on/off}`
//! matrix, and cross-profile per-profile slices must agree with plain
//! single-profile runs.

use std::sync::Arc;

use superc::analyze::{render, LintOptions, Record};
use superc::corpus::{
    process_corpus, process_corpus_profiles, Capture, CorpusOptions, CorpusRunner, UnitFailure,
};
use superc::{CondBackend, CondCtx, DiskFs, Options, Profile};

fn fixture_fs() -> DiskFs {
    DiskFs::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/portability"
    ))
}

/// All fixtures, divergent and clean, in a fixed input order.
fn corpus_files() -> Vec<String> {
    [
        "win_ifdef.c",
        "gnuc_version.c",
        "apple_decl.c",
        "stdc_version.c",
        "nested_guard.c",
        "clean_portable.c",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn profiles3() -> Vec<Profile> {
    vec![
        Profile::gcc_linux(),
        Profile::clang_macos(),
        Profile::msvc_windows(),
    ]
}

fn copts(jobs: usize, no_shared_cache: bool) -> CorpusOptions {
    CorpusOptions {
        jobs,
        capture: Capture::default(),
        lint: Some(LintOptions::default()),
        no_shared_cache,
        inject_panic: Vec::new(),
        portability: false,
        warm: false,
    }
}

fn options(fastpath: bool) -> Options {
    let mut o = Options::default();
    if !fastpath {
        o.parser.fastpath = false;
        o.pp.fuse_lexing = false;
    }
    o
}

/// One cross-profile run, merged and rendered in every format.
fn run_matrix_point(profiles: &[Profile], jobs: usize, no_cache: bool, fastpath: bool) -> String {
    let report = process_corpus_profiles(
        &fixture_fs(),
        &corpus_files(),
        &options(fastpath),
        profiles,
        &copts(jobs, no_cache),
    );
    let records = report.lint_records(&LintOptions::default());
    format!(
        "{}{}{}",
        render::render_text(&records),
        render::render_json(&records),
        render::render_sarif(&records)
    )
}

fn merged_records() -> Vec<Record> {
    let report = process_corpus_profiles(
        &fixture_fs(),
        &corpus_files(),
        &Options::default(),
        &profiles3(),
        &copts(1, false),
    );
    report.lint_records(&LintOptions::default())
}

/// The exact profile partition and profile-set stamp, checked verbatim.
#[test]
fn seeded_fixtures_report_all_three_portability_kinds() {
    let records = merged_records();
    let find = |code: &str, file: &str, line: u32| -> &Record {
        records
            .iter()
            .find(|r| r.code == code && r.file == file && r.line == line)
            .unwrap_or_else(|| panic!("no {code} at {file}:{line} in {records:#?}"))
    };

    let d = find("portability-definedness", "win_ifdef.c", 5);
    assert_eq!(d.profiles, "gcc-linux,clang-macos,msvc-windows");
    assert!(
        d.message.contains(
            "macro _WIN32 differs across profiles: never defined under \
             {gcc-linux, clang-macos}; always defined under {msvc-windows}"
        ),
        "{}",
        d.message
    );

    let c = find("portability-divergent-condition", "win_ifdef.c", 5);
    assert!(
        c.message
            .contains("defined(_WIN32) under {gcc-linux, clang-macos}; true under {msvc-windows}"),
        "{}",
        c.message
    );

    let decl = find("portability-divergent-decl", "win_ifdef.c", 8);
    assert!(
        decl.message.contains("declaration of posix_fd")
            && decl.message.contains("<absent> under {msvc-windows}"),
        "{}",
        decl.message
    );

    // Three-way partition: each profile in its own state group.
    let three = find("portability-divergent-condition", "stdc_version.c", 4);
    assert!(
        three.message.contains("false under {gcc-linux}")
            && three.message.contains("true under {clang-macos}")
            && three.message.contains("under {msvc-windows}"),
        "{}",
        three.message
    );

    // Ordinary lints merge across profiles with the subset they fired in.
    let undef = find("undef-macro-test", "win_ifdef.c", 5);
    assert_eq!(undef.profiles, "gcc-linux,clang-macos");

    // The portable fixture is silent.
    assert!(
        records.iter().all(|r| r.file != "clean_portable.c"),
        "{records:#?}"
    );
}

/// Presence conditions on portability records are checked by BDD
/// equivalence: the canonical string is lifted back into a context and
/// compared semantically, not textually.
#[test]
fn portability_records_carry_exact_presence_conditions() {
    let records = merged_records();
    let ctx = CondCtx::new(CondBackend::Bdd);
    let cond_of = |code: &str, file: &str, line: u32| {
        let r = records
            .iter()
            .find(|r| r.code == code && r.file == file && r.line == line)
            .unwrap_or_else(|| panic!("no {code} at {file}:{line}"));
        render::parse_canonical(&r.cond, &ctx)
            .unwrap_or_else(|| panic!("non-canonical cond {}", r.cond))
    };

    // nested_guard: the inner conditional exists when CONFIG_FEATURE is
    // on — the union of `CF && WIN32` (unix profiles) and `CF` (msvc).
    let cf = ctx.var("defined(CONFIG_FEATURE)");
    let c = cond_of("portability-divergent-condition", "nested_guard.c", 5);
    assert!(c.semantically_equal(&cf), "got {c}");

    // win_ifdef: the #else arm diverges exactly where _WIN32 is off.
    let not_win = ctx.tru().and_not(&ctx.var("defined(_WIN32)"));
    let e = cond_of("portability-divergent-condition", "win_ifdef.c", 7);
    assert!(e.semantically_equal(&not_win), "got {e}");
    let d = cond_of("portability-divergent-decl", "win_ifdef.c", 8);
    assert!(d.semantically_equal(&not_win), "got {d}");

    // Definedness of _WIN32 diverges in every configuration.
    let w = cond_of("portability-definedness", "win_ifdef.c", 5);
    assert!(w.semantically_equal(&ctx.tru()), "got {w}");
}

/// The acceptance matrix: the full rendered report (text + JSON +
/// SARIF) is byte-identical across
/// `{profiles 1/3} x {jobs 1/2/8} x {cache on/off} x {fastpath on/off}`.
#[test]
fn cross_profile_report_is_byte_identical_across_matrix() {
    for profiles in [&profiles3()[..1], &profiles3()[..]] {
        let base = run_matrix_point(profiles, 1, false, true);
        if profiles.len() == 3 {
            for kind in [
                "portability-definedness",
                "portability-divergent-condition",
                "portability-divergent-decl",
            ] {
                assert!(base.contains(kind), "missing {kind}");
            }
        } else {
            // One profile has nothing to diff; ordinary lints remain,
            // stamped with the single profile.
            assert!(!base.contains("portability-"), "{base}");
            assert!(base.contains("[profiles {gcc-linux}]"), "{base}");
        }
        for jobs in [1, 2, 8] {
            for no_cache in [false, true] {
                for fastpath in [true, false] {
                    assert_eq!(
                        run_matrix_point(profiles, jobs, no_cache, fastpath),
                        base,
                        "profiles={} jobs={jobs} cache={} fastpath={fastpath} diverged",
                        profiles.len(),
                        !no_cache
                    );
                }
            }
        }
    }
}

/// The pooled runner's cross-profile batches produce the same bytes as
/// the one-shot driver, warm or cold.
#[test]
fn pooled_runner_matches_one_shot_cross_profile() {
    let files = corpus_files();
    let profiles = profiles3();
    let one_shot = process_corpus_profiles(
        &fixture_fs(),
        &files,
        &Options::default(),
        &profiles,
        &copts(2, false),
    );
    let base = render::render_text(&one_shot.lint_records(&LintOptions::default()));
    assert_eq!(
        one_shot.behavior_counters(),
        {
            let mut pool = CorpusRunner::new(&Options::default(), Arc::new(fixture_fs()), 2, false);
            let first = pool.run_profiles(&files, &profiles, &copts(2, false));
            let again = pool.run_profiles(&files, &profiles, &copts(2, false));
            assert_eq!(
                render::render_text(&first.lint_records(&LintOptions::default())),
                base
            );
            assert_eq!(
                render::render_text(&again.lint_records(&LintOptions::default())),
                base
            );
            again.behavior_counters()
        },
        "pooled counters diverged from one-shot"
    );
}

/// Cross-profile mode is N honest single-profile runs interleaved: each
/// per-profile slice (and lint list) must equal what a plain
/// single-profile corpus run over the same units produces.
#[test]
fn cross_profile_slices_agree_with_single_profile_runs() {
    let files = corpus_files();
    let profiles = profiles3();
    let cross = process_corpus_profiles(
        &fixture_fs(),
        &files,
        &Options::default(),
        &profiles,
        &copts(3, false),
    );
    for (i, profile) in profiles.iter().enumerate() {
        let mut options = Options::default();
        options.pp.profile = profile.clone();
        let mut single_copts = copts(1, false);
        single_copts.portability = true;
        let single = process_corpus(&fixture_fs(), &files, &options, &single_copts);
        assert_eq!(
            cross.runs[i].behavior_counters(),
            single.behavior_counters(),
            "profile {}",
            profile.name
        );
        for (cu, su) in cross.runs[i].units.iter().zip(&single.units) {
            assert_eq!(
                cu.portability, su.portability,
                "{}: {}",
                profile.name, cu.path
            );
            assert_eq!(cu.lints, su.lints, "{}: {}", profile.name, cu.path);
        }
    }
}

/// A unit fatal under only some profiles surfaces as a
/// `portability-divergent-decl` through the synthetic fatal row.
#[test]
fn fatal_divergence_surfaces_as_divergent_decl() {
    let files = vec!["win_ifdef.c".to_string()];
    let mut report = process_corpus_profiles(
        &fixture_fs(),
        &files,
        &Options::default(),
        &profiles3(),
        &copts(1, false),
    );
    // Simulate a unit the pipeline could not process under one profile
    // (the firewall path produces exactly this report shape).
    let unit = &mut report.runs[2].units[0];
    unit.portability.clear();
    unit.lints.clear();
    unit.failure = Some(UnitFailure {
        stage: "panic".to_string(),
        message: "panic: poisoned unit".to_string(),
    });
    unit.fatal = Some("panic: poisoned unit".to_string());
    let records = report.lint_records(&LintOptions::default());
    let fatal = records
        .iter()
        .find(|r| r.code == "portability-divergent-decl" && r.message.contains("fatal panic"))
        .unwrap_or_else(|| panic!("no fatal divergence in {records:#?}"));
    assert!(
        fatal
            .message
            .contains("<absent> under {gcc-linux, clang-macos}")
            && fatal.message.contains("under {msvc-windows}"),
        "{}",
        fatal.message
    );
}
