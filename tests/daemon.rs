//! The `superc daemon` NDJSON protocol, driven in-process: every parse
//! and lint response must be **byte-identical to a fresh one-shot CLI
//! run over the same tree** (the same render functions the binary
//! prints with), across jobs {1, 2, 8}, warm replays, disk edits, and
//! the cross-profile grid. `scripts/verify.sh` repeats the same checks
//! end-to-end against the real binary over stdin/stdout.

use std::fs;
use std::path::PathBuf;

use superc::analyze::LintOptions;
use superc::cli::{self, LintFormat};
use superc::corpus::{process_corpus, process_corpus_profiles, CorpusOptions};
use superc::service::{daemon, Driver};
use superc::{DiskFs, Options, Profile};
use superc_util::json::Json;

/// A scratch tree on disk (the daemon serves the working directory, so
/// the fixture must be real files).
struct Tree {
    root: PathBuf,
}

impl Tree {
    fn new(tag: &str) -> Tree {
        let root = std::env::temp_dir().join(format!("superc-daemon-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("include")).expect("mkdir fixture");
        let tree = Tree { root };
        tree.write("include/leaf.h", "int leaf_decl(int);\n#define LEAF 1\n");
        tree.write(
            "include/deep.h",
            "#include \"deeper.h\"\nint deep_decl(void);\n",
        );
        tree.write(
            "include/deeper.h",
            "#ifdef CONFIG_SMP\n#define WIDTH 8\n#else\n#define WIDTH 1\n#endif\n",
        );
        tree.write(
            "a.c",
            "#include <leaf.h>\n#include <deep.h>\nint a_fn(void) { return LEAF + WIDTH; }\n",
        );
        tree.write(
            "b.c",
            "#include <deep.h>\nint b_fn(void) { return WIDTH; }\n",
        );
        tree.write(
            "c.c",
            "#include <deep.h>\nint c_fn(void) { return WIDTH * 2; }\n",
        );
        tree
    }

    fn write(&self, path: &str, contents: &str) {
        fs::write(self.root.join(path), contents).expect("write fixture file");
    }

    fn root_str(&self) -> &str {
        self.root.to_str().expect("utf-8 temp path")
    }
}

impl Drop for Tree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn units() -> Vec<String> {
    vec!["a.c".to_string(), "b.c".to_string(), "c.c".to_string()]
}

/// Sends one request line, expecting `"ok":true`; returns the response.
fn request(driver: &mut Driver, line: &str) -> Json {
    let (response, quit) = daemon::handle_line(driver, line);
    assert!(!quit, "unexpected shutdown for {line}");
    let json = Json::parse(&response).expect("well-formed response line");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "request {line} failed: {response}"
    );
    json
}

/// Asserts a parse/lint response carries exactly the fresh one-shot
/// bytes.
fn assert_rendered(label: &str, response: &Json, want: &cli::Rendered) {
    assert_eq!(
        response.get("stdout").and_then(Json::as_str),
        Some(want.stdout.as_str()),
        "{label}: stdout bytes"
    );
    assert_eq!(
        response.get("stderr").and_then(Json::as_str),
        Some(want.stderr.as_str()),
        "{label}: stderr bytes"
    );
    assert_eq!(
        response.get("failed").and_then(Json::as_bool),
        Some(want.failed),
        "{label}: failed flag"
    );
}

#[test]
fn daemon_responses_match_fresh_one_shot_runs_across_jobs() {
    let units = units();
    let unit_list = "\"a.c\",\"b.c\",\"c.c\"";
    for jobs in [1usize, 2, 8] {
        let label = format!("jobs={jobs}");
        let tree = Tree::new(&format!("j{jobs}"));
        let fresh_fs = DiskFs::new(tree.root.clone());
        let mut driver = Driver::with_disk_root(Options::default(), jobs, tree.root_str());
        driver.end_generation().expect("commit the empty overlay");

        // parse: byte-identical to `superc a.c b.c c.c` over the tree.
        let response = request(
            &mut driver,
            &format!("{{\"cmd\":\"parse\",\"units\":[{unit_list}]}}"),
        );
        let reference = process_corpus(
            &fresh_fs,
            &units,
            &Options::default(),
            &CorpusOptions::default(),
        );
        assert_rendered(
            &label,
            &response,
            &cli::render_corpus_report(&reference, false, false),
        );

        // lint (all three formats): byte-identical to
        // `superc lint --format <f> ...` over the tree.
        let lint_reference = || {
            let copts = CorpusOptions {
                lint: Some(LintOptions::default()),
                ..CorpusOptions::default()
            };
            process_corpus(&fresh_fs, &units, &Options::default(), &copts)
        };
        for (name, format) in [
            ("text", LintFormat::Text),
            ("json", LintFormat::Json),
            ("sarif", LintFormat::Sarif),
        ] {
            let response = request(
                &mut driver,
                &format!("{{\"cmd\":\"lint\",\"units\":[{unit_list}],\"format\":\"{name}\"}}"),
            );
            let want = cli::render_lint_report(&lint_reference(), format, false);
            assert_rendered(&format!("{label} format={name}"), &response, &want);
        }

        // Disk edit + notify-only edit request: the next batch must
        // recompute the edited closure and still match a fresh run.
        tree.write("include/leaf.h", "int leaf_decl(int);\n#define LEAF 2\n");
        let response = request(
            &mut driver,
            "{\"cmd\":\"edit\",\"path\":\"include/leaf.h\"}",
        );
        assert_eq!(
            response.get("stdout").and_then(Json::as_str),
            Some("generation 2\n"),
            "{label}: edit response"
        );
        let response = request(
            &mut driver,
            &format!("{{\"cmd\":\"lint\",\"units\":[{unit_list}],\"format\":\"json\"}}"),
        );
        let want = cli::render_lint_report(&lint_reference(), LintFormat::Json, false);
        assert_rendered(&format!("{label} after edit"), &response, &want);
        let stats = request(&mut driver, "{\"cmd\":\"stats\"}");
        assert_eq!(
            stats.get("unit_memo_hits").and_then(Json::as_f64),
            Some(2.0),
            "{label}: b.c and c.c replay after the leaf edit"
        );

        // Shadowing header: create a file at a formerly-failed include
        // probe path (bare `leaf.h` precedes `include/leaf.h` for
        // `#include <leaf.h>`). Negative-dependency fingerprints must
        // force a.c to recompute — and the bytes must match fresh.
        tree.write(
            "leaf.h",
            "int leaf_decl(int);\nint leaf_shadow;\n#define LEAF 7\n",
        );
        request(&mut driver, "{\"cmd\":\"edit\",\"path\":\"leaf.h\"}");
        let response = request(
            &mut driver,
            &format!("{{\"cmd\":\"lint\",\"units\":[{unit_list}],\"format\":\"json\"}}"),
        );
        let want = cli::render_lint_report(&lint_reference(), LintFormat::Json, false);
        assert_rendered(&format!("{label} after shadowing edit"), &response, &want);
        let stats = request(&mut driver, "{\"cmd\":\"stats\"}");
        assert_eq!(
            stats.get("unit_memo_misses").and_then(Json::as_f64),
            Some(1.0),
            "{label}: only a.c walks past the shadow path"
        );

        // Cross-profile grid.
        let profiles: Vec<Profile> = ["gcc-linux", "clang-linux", "msvc-windows"]
            .iter()
            .map(|n| Profile::named(n).expect("shipped profile"))
            .collect();
        let response = request(
            &mut driver,
            &format!(
                "{{\"cmd\":\"lint\",\"units\":[{unit_list}],\"format\":\"json\",\
                 \"profiles\":[\"gcc-linux\",\"clang-linux\",\"msvc-windows\"]}}"
            ),
        );
        let copts = CorpusOptions {
            lint: Some(LintOptions::default()),
            ..CorpusOptions::default()
        };
        let reference =
            process_corpus_profiles(&fresh_fs, &units, &Options::default(), &profiles, &copts);
        let want =
            cli::render_lint_profiles(&reference, LintFormat::Json, &LintOptions::default(), false);
        assert_rendered(&format!("{label} profiles"), &response, &want);

        // Shutdown ends the session.
        let (response, quit) = daemon::handle_line(&mut driver, "{\"cmd\":\"shutdown\"}");
        assert!(quit, "{label}: shutdown must stop the loop");
        assert!(
            response.contains("\"shutdown\":true"),
            "{label}: {response}"
        );
    }
}

#[test]
fn daemon_rejects_malformed_requests_without_dying() {
    let tree = Tree::new("errors");
    let mut driver = Driver::with_disk_root(Options::default(), 2, tree.root_str());
    driver.end_generation().expect("commit");
    for (line, needle) in [
        ("not json at all", "bad request"),
        ("{\"units\":[\"a.c\"]}", "needs a \"cmd\""),
        ("{\"cmd\":\"levitate\"}", "unknown cmd"),
        ("{\"cmd\":\"parse\"}", "units"),
        (
            "{\"cmd\":\"lint\",\"units\":[\"a.c\"],\"format\":\"yaml\"}",
            "unknown format",
        ),
        (
            "{\"cmd\":\"lint\",\"units\":[\"a.c\"],\"profiles\":[\"dos\"]}",
            "unknown profile",
        ),
        ("{\"cmd\":\"edit\"}", "needs a \"path\""),
    ] {
        let (response, quit) = daemon::handle_line(&mut driver, line);
        assert!(!quit, "{line} must not stop the daemon");
        let json = Json::parse(&response).expect("well-formed error response");
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(false),
            "{line}"
        );
        let err = json.get("error").and_then(Json::as_str).unwrap_or("");
        assert!(err.contains(needle), "{line}: got error {err:?}");
    }
    // The session still works after every rejected request.
    let response = request(&mut driver, "{\"cmd\":\"parse\",\"units\":[\"a.c\"]}");
    assert_eq!(response.get("failed").and_then(Json::as_bool), Some(false));
}
