//! Token, position, and punctuator definitions.

use std::fmt;
use std::rc::Rc;

/// Identifies a source file in a compilation; the pipeline keeps the
/// id-to-path mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FileId(pub u32);

/// A position in a source file (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct SourcePos {
    /// File containing the token.
    pub file: FileId,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file.0, self.line, self.col)
    }
}

macro_rules! puncts {
    ($( $name:ident => $text:literal ),+ $(,)?) => {
        /// A C punctuator.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub enum Punct {
            $(#[doc = $text] $name),+
        }

        impl Punct {
            /// The punctuator's spelling.
            pub fn as_str(self) -> &'static str {
                match self { $(Punct::$name => $text),+ }
            }

            /// Parses a spelling back to a punctuator.
            #[allow(clippy::should_implement_trait)] // fallible, Option-returning
            pub fn from_str(s: &str) -> Option<Punct> {
                match s { $($text => Some(Punct::$name),)+ _ => None }
            }

            /// All punctuators, longest spelling first (for maximal munch).
            pub fn all() -> &'static [Punct] {
                &[$(Punct::$name),+]
            }
        }
    };
}

// Ordered longest-first so the scanner can use maximal munch directly.
puncts! {
    Ellipsis => "...",
    ShlAssign => "<<=",
    ShrAssign => ">>=",
    Arrow => "->",
    Inc => "++",
    Dec => "--",
    Shl => "<<",
    Shr => ">>",
    Le => "<=",
    Ge => ">=",
    EqEq => "==",
    Ne => "!=",
    AmpAmp => "&&",
    PipePipe => "||",
    PlusAssign => "+=",
    MinusAssign => "-=",
    StarAssign => "*=",
    SlashAssign => "/=",
    PercentAssign => "%=",
    AmpAssign => "&=",
    CaretAssign => "^=",
    PipeAssign => "|=",
    HashHash => "##",
    LBracket => "[",
    RBracket => "]",
    LParen => "(",
    RParen => ")",
    LBrace => "{",
    RBrace => "}",
    Dot => ".",
    Amp => "&",
    Star => "*",
    Plus => "+",
    Minus => "-",
    Tilde => "~",
    Bang => "!",
    Slash => "/",
    Percent => "%",
    Lt => "<",
    Gt => ">",
    Caret => "^",
    Pipe => "|",
    Question => "?",
    Colon => ":",
    Semi => ";",
    Assign => "=",
    Comma => ",",
    Hash => "#",
    At => "@",
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// The lexical class of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An identifier — including C keywords, which are classified later.
    Ident,
    /// A preprocessing number (integer or floating constant, any suffix).
    Number,
    /// A character constant, including any `L` prefix.
    CharLit,
    /// A string literal, including any `L` prefix.
    StringLit,
    /// A punctuator.
    Punct(Punct),
    /// End of a logical source line (backslash-continuations are spliced).
    Newline,
    /// End of input. Emitted once, last.
    Eof,
}

impl TokenKind {
    /// Shorthand for `TokenKind::Punct` from a spelling. Returns `None`
    /// when `s` is not a C punctuator — callers decide whether that is a
    /// diagnostic (an error token in a real token stream) or a bug (a
    /// typo in a test table); neither should bring the process down.
    pub fn punct(s: &str) -> Option<TokenKind> {
        Punct::from_str(s).map(TokenKind::Punct)
    }
}

/// A lexed token: kind, exact source text, position, preceding-layout flag.
///
/// The text is reference-counted so the preprocessor can duplicate token
/// streams (hoisting copies tokens into every conditional branch) without
/// copying string data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact source spelling (shared).
    pub text: Rc<str>,
    /// Where the token started.
    pub pos: SourcePos,
    /// Whether whitespace or a comment immediately preceded this token —
    /// needed to re-spell `#include <...>` paths and to keep stringification
    /// faithful.
    pub ws_before: bool,
}

impl Token {
    /// Creates a token; primarily for the scanner and for synthesizing
    /// tokens during macro expansion.
    pub fn new(kind: TokenKind, text: impl Into<Rc<str>>, pos: SourcePos, ws_before: bool) -> Self {
        Token {
            kind,
            text: text.into(),
            pos,
            ws_before,
        }
    }

    /// The token's source spelling.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// True for identifiers (the only tokens that can be macro names).
    pub fn is_ident(&self) -> bool {
        self.kind == TokenKind::Ident
    }

    /// True if this token is the given punctuator.
    pub fn is_punct(&self, p: Punct) -> bool {
        self.kind == TokenKind::Punct(p)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TokenKind::Newline => write!(f, "\\n"),
            TokenKind::Eof => write!(f, "<eof>"),
            _ => write!(f, "{}", self.text),
        }
    }
}
