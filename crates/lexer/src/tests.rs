use super::*;
use superc_util::prop::{check, Gen};

fn kinds(src: &str) -> Vec<TokenKind> {
    lex(src, FileId(0))
        .unwrap()
        .iter()
        .map(|t| t.kind)
        .collect()
}

fn texts(src: &str) -> Vec<String> {
    lex(src, FileId(0))
        .unwrap()
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Newline | TokenKind::Eof))
        .map(|t| t.text().to_string())
        .collect()
}

#[test]
fn empty_input_is_just_eof() {
    assert_eq!(kinds(""), vec![TokenKind::Eof]);
}

#[test]
fn identifiers_and_keywords_lex_alike() {
    // Keywords are classified later, after macro expansion.
    assert_eq!(
        texts("int x while _y $z a1_2"),
        vec!["int", "x", "while", "_y", "$z", "a1_2"]
    );
    assert!(lex("int", FileId(0)).unwrap()[0].is_ident());
}

#[test]
fn numbers_are_pp_numbers() {
    assert_eq!(
        texts("0 42 0x1F 017 1.5 1e10 1E-5 0x1p+2 1ULL 3.14f .5"),
        vec!["0", "42", "0x1F", "017", "1.5", "1e10", "1E-5", "0x1p+2", "1ULL", "3.14f", ".5"]
    );
    for t in lex("42 1.5e-3", FileId(0)).unwrap() {
        if !matches!(t.kind, TokenKind::Newline | TokenKind::Eof) {
            assert_eq!(t.kind, TokenKind::Number);
        }
    }
}

#[test]
fn dot_not_followed_by_digit_is_punct() {
    assert_eq!(
        kinds("a.b"),
        vec![
            TokenKind::Ident,
            TokenKind::punct(".").unwrap(),
            TokenKind::Ident,
            TokenKind::Newline,
            TokenKind::Eof
        ]
    );
}

#[test]
fn string_and_char_literals() {
    assert_eq!(
        texts(r#""hi" 'c' L"wide" L'w' "es\"c" '\n' '\0'"#),
        vec![
            r#""hi""#,
            "'c'",
            r#"L"wide""#,
            "L'w'",
            r#""es\"c""#,
            r"'\n'",
            r"'\0'"
        ]
    );
    let toks = lex(r#""a" 'b'"#, FileId(0)).unwrap();
    assert_eq!(toks[0].kind, TokenKind::StringLit);
    assert_eq!(toks[1].kind, TokenKind::CharLit);
}

#[test]
fn punctuators_maximal_munch() {
    assert_eq!(
        texts("a<<=b >>= -> ++ -- ... ## # <% no"),
        vec!["a", "<<=", "b", ">>=", "->", "++", "--", "...", "##", "#", "<", "%", "no"]
    );
    assert_eq!(
        kinds("+++")[..2],
        [
            TokenKind::punct("++").unwrap(),
            TokenKind::punct("+").unwrap()
        ]
    );
}

#[test]
fn comments_become_layout() {
    let toks = lex("a /* c1 */ b // c2\nc", FileId(0)).unwrap();
    let sig: Vec<(String, bool)> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| (t.text().to_string(), t.ws_before))
        .collect();
    assert_eq!(
        sig,
        vec![
            ("a".to_string(), false),
            ("b".to_string(), true),
            ("c".to_string(), false),
        ]
    );
}

#[test]
fn block_comment_spans_lines() {
    assert_eq!(texts("a /* x\ny */ b"), vec!["a", "b"]);
    // The newline inside the comment does not produce a Newline token,
    // matching cpp's behavior of splicing comments to one space.
    let n = kinds("a /* x\ny */ b")
        .iter()
        .filter(|k| matches!(k, TokenKind::Newline))
        .count();
    assert_eq!(n, 1);
}

#[test]
fn line_continuations_are_spliced() {
    // Inside an identifier.
    assert_eq!(texts("ab\\\ncd"), vec!["abcd"]);
    // Inside a directive line: no Newline token in the middle.
    let toks = lex("#define A \\\n 1\nB", FileId(0)).unwrap();
    let newline_count = toks.iter().filter(|t| t.kind == TokenKind::Newline).count();
    assert_eq!(newline_count, 2);
    // Inside a string literal.
    assert_eq!(texts("\"ab\\\ncd\""), vec!["\"abcd\""]);
    // Inside a punctuator.
    assert_eq!(texts("a <\\\n< b"), vec!["a", "<<", "b"]);
}

#[test]
fn newlines_terminate_lines_and_final_newline_is_synthesized() {
    assert_eq!(
        kinds("a"),
        vec![TokenKind::Ident, TokenKind::Newline, TokenKind::Eof]
    );
    assert_eq!(
        kinds("a\n"),
        vec![TokenKind::Ident, TokenKind::Newline, TokenKind::Eof]
    );
    // CRLF handled.
    assert_eq!(
        kinds("a\r\nb\r\n"),
        vec![
            TokenKind::Ident,
            TokenKind::Newline,
            TokenKind::Ident,
            TokenKind::Newline,
            TokenKind::Eof
        ]
    );
}

#[test]
fn positions_track_lines_and_columns() {
    let toks = lex("ab cd\n  ef\n", FileId(7)).unwrap();
    assert_eq!(
        toks[0].pos,
        SourcePos {
            file: FileId(7),
            line: 1,
            col: 1
        }
    );
    assert_eq!(toks[1].pos.col, 4);
    assert_eq!(
        toks[3].pos,
        SourcePos {
            file: FileId(7),
            line: 2,
            col: 3
        }
    );
    assert_eq!(format!("{}", toks[0].pos), "7:1:1");
}

#[test]
fn errors_have_positions() {
    let err = lex("\"unterminated", FileId(0)).unwrap_err();
    assert!(err.message.contains("unterminated string"));
    assert_eq!(err.pos.line, 1);
    let err = lex("/* never closed", FileId(0)).unwrap_err();
    assert!(err.message.contains("comment"));
    let err = lex("`", FileId(0)).unwrap_err();
    assert!(err.message.contains("unrecognized"));
    assert!(!format!("{err}").is_empty());
}

#[test]
fn ws_before_distinguishes_include_spellings() {
    // `<a / b.h>` vs `<a/b.h>` must be reconstructible.
    let spaced = lex("< a / b . h >", FileId(0)).unwrap();
    let tight = lex("<a/b.h>", FileId(0)).unwrap();
    assert!(spaced[1].ws_before);
    assert!(!tight[1].ws_before);
}

#[test]
fn hash_directives_lex_as_plain_tokens() {
    let toks = lex("#ifdef CONFIG_SMP\n#endif\n", FileId(0)).unwrap();
    assert!(toks[0].is_punct(Punct::Hash));
    assert_eq!(toks[1].text(), "ifdef");
    assert_eq!(toks[2].text(), "CONFIG_SMP");
}

#[test]
fn display_round_trips_simple_tokens() {
    let toks = lex("x + 1", FileId(0)).unwrap();
    let s: Vec<String> = toks.iter().map(|t| format!("{t}")).collect();
    assert_eq!(s, vec!["x", "+", "1", "\\n", "<eof>"]);
}

#[test]
fn punct_round_trips() {
    for &p in Punct::all() {
        assert_eq!(Punct::from_str(p.as_str()), Some(p));
        assert_eq!(format!("{p}"), p.as_str());
    }
    assert_eq!(Punct::from_str("@@"), None);
}

/// Any lexable input re-lexes identically after being printed with
/// single spaces between tokens (token-stream idempotence).
#[test]
fn relex_is_stable() {
    const ALPHABET: &str = "abcXYZ019_+-*/=<>!&|^%;,(){}[] \n.#";
    check("relex_is_stable", 256, |g: &mut Gen| {
        let src = g.string(ALPHABET, 0..=80);
        if let Ok(toks) = lex(&src, FileId(0)) {
            let printed: String = toks
                .iter()
                .filter(|t| !matches!(t.kind, TokenKind::Newline | TokenKind::Eof))
                .map(|t| t.text().to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let again = lex(&printed, FileId(0)).unwrap();
            let k1: Vec<_> = toks
                .iter()
                .filter(|t| !matches!(t.kind, TokenKind::Newline | TokenKind::Eof))
                .map(|t| (t.kind, t.text().to_string()))
                .collect();
            let k2: Vec<_> = again
                .iter()
                .filter(|t| !matches!(t.kind, TokenKind::Newline | TokenKind::Eof))
                .map(|t| (t.kind, t.text().to_string()))
                .collect();
            assert_eq!(k1, k2);
        }
    });
}

/// The scanner never panics on arbitrary ASCII soup.
#[test]
fn never_panics() {
    check("never_panics", 256, |g: &mut Gen| {
        let src: String = (0..g.usize(0..=120))
            .map(|_| {
                // Printable ASCII plus newline and tab.
                match g.usize(0..97) {
                    95 => '\n',
                    96 => '\t',
                    i => (b' ' + i as u8) as char,
                }
            })
            .collect();
        let _ = lex(&src, FileId(0));
    });
}
