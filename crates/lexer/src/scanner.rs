//! The hand-written scanner.
//!
//! Equivalent in coverage to the JFlex scanner SuperC generates from
//! Roskind's rules: identifiers, pp-numbers, character/string literals with
//! escapes and `L` prefixes, all C punctuators with maximal munch, block and
//! line comments, and backslash-newline splicing.

use std::fmt;
use std::rc::Rc;

use crate::token::{FileId, Punct, SourcePos, Token, TokenKind};

/// A lexical error with its position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Where the problem was detected.
    pub pos: SourcePos,
    /// Human-readable description, lowercase, no trailing period.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

struct Scanner<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    file: FileId,
}

impl<'a> Scanner<'a> {
    fn pos(&self) -> SourcePos {
        SourcePos {
            file: self.file,
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes a backslash-newline sequence if present. Returns true if
    /// a splice happened.
    fn splice(&mut self) -> bool {
        if self.peek() == Some(b'\\') {
            // Allow trailing spaces between backslash and newline like gcc.
            let mut j = self.i + 1;
            while self.src.get(j) == Some(&b' ') || self.src.get(j) == Some(&b'\t') {
                j += 1;
            }
            let j = match self.src.get(j) {
                Some(b'\n') => j + 1,
                Some(b'\r') if self.src.get(j + 1) == Some(&b'\n') => j + 2,
                _ => return false,
            };
            while self.i < j {
                self.bump();
            }
            return true;
        }
        false
    }

    /// Current byte with continuations spliced away.
    fn cur(&mut self) -> Option<u8> {
        while self.splice() {}
        self.peek()
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b'$'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'$'
}

/// Lexes a whole file into tokens, ending with a single [`TokenKind::Eof`].
///
/// Newlines inside the file become [`TokenKind::Newline`] tokens; a final
/// newline is synthesized if the file doesn't end with one, so the
/// preprocessor always sees complete logical lines.
///
/// # Errors
///
/// Returns [`LexError`] for unterminated block comments, character
/// constants, or string literals, and for non-ASCII or unrecognizable bytes
/// outside literals.
///
/// # Examples
///
/// ```
/// use superc_lexer::{lex, FileId, TokenKind};
/// let toks = lex("x += 1; // note\n", FileId(0))?;
/// let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
/// assert_eq!(kinds, vec![
///     TokenKind::Ident,
///     TokenKind::punct("+=").unwrap(),
///     TokenKind::Number,
///     TokenKind::punct(";").unwrap(),
///     TokenKind::Newline,
///     TokenKind::Eof,
/// ]);
/// # Ok::<(), superc_lexer::LexError>(())
/// ```
pub fn lex(src: &str, file: FileId) -> Result<Vec<Token>, LexError> {
    let mut s = Scanner {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
        file,
    };
    let mut out: Vec<Token> = Vec::new();
    let mut ws_before = false;

    macro_rules! push {
        ($kind:expr, $text:expr, $pos:expr) => {{
            out.push(Token::new($kind, $text, $pos, ws_before));
            ws_before = false;
        }};
    }

    loop {
        let c = match s.cur() {
            None => break,
            Some(c) => c,
        };
        let start_pos = s.pos();
        match c {
            b'\n' => {
                s.bump();
                push!(TokenKind::Newline, "\n", start_pos);
            }
            b'\r' => {
                s.bump();
            }
            b' ' | b'\t' | 0x0b | 0x0c => {
                s.bump();
                ws_before = true;
            }
            b'/' if s.peek2() == Some(b'/') => {
                // Line comment: runs to newline (which is NOT consumed).
                while let Some(c) = s.cur() {
                    if c == b'\n' {
                        break;
                    }
                    s.bump();
                }
                ws_before = true;
            }
            b'/' if s.peek2() == Some(b'*') => {
                s.bump();
                s.bump();
                let mut closed = false;
                while let Some(c) = s.bump() {
                    if c == b'*' && s.peek() == Some(b'/') {
                        s.bump();
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(LexError {
                        pos: start_pos,
                        message: "unterminated block comment".to_string(),
                    });
                }
                ws_before = true;
            }
            c if is_ident_start(c) => {
                // `L"..."` / `L'...'` wide literals.
                if c == b'L' && matches!(s.peek2(), Some(b'"') | Some(b'\'')) {
                    let quote = s.peek2().unwrap();
                    let text = scan_quoted(&mut s, quote, true)?;
                    let kind = if quote == b'"' {
                        TokenKind::StringLit
                    } else {
                        TokenKind::CharLit
                    };
                    push!(kind, text, start_pos);
                    continue;
                }
                let mut text = String::new();
                while let Some(c) = s.cur() {
                    if is_ident_cont(c) {
                        text.push(c as char);
                        s.bump();
                    } else {
                        break;
                    }
                }
                push!(TokenKind::Ident, text, start_pos);
            }
            c if c.is_ascii_digit()
                || (c == b'.' && s.peek2().map(|d| d.is_ascii_digit()).unwrap_or(false)) =>
            {
                // pp-number: digits, idents, dots, and sign after e/E/p/P.
                let mut text = String::new();
                text.push(s.bump().unwrap() as char);
                while let Some(c) = s.cur() {
                    if is_ident_cont(c) || c == b'.' {
                        text.push(c as char);
                        s.bump();
                        let last = text.bytes().last().unwrap();
                        if matches!(last, b'e' | b'E' | b'p' | b'P') {
                            if let Some(sign @ (b'+' | b'-')) = s.cur() {
                                text.push(sign as char);
                                s.bump();
                            }
                        }
                    } else {
                        break;
                    }
                }
                push!(TokenKind::Number, text, start_pos);
            }
            b'"' => {
                let text = scan_quoted(&mut s, b'"', false)?;
                push!(TokenKind::StringLit, text, start_pos);
            }
            b'\'' => {
                let text = scan_quoted(&mut s, b'\'', false)?;
                push!(TokenKind::CharLit, text, start_pos);
            }
            _ => {
                // Punctuators, longest first. `Punct::all` is ordered for
                // maximal munch but splices make byte slices unreliable, so
                // match incrementally on up-to-3 current bytes.
                let mut matched = None;
                for &p in Punct::all() {
                    let spell = p.as_str().as_bytes();
                    if lookahead_matches(&mut s, spell) {
                        matched = Some(p);
                        break;
                    }
                }
                match matched {
                    Some(p) => {
                        for _ in 0..p.as_str().len() {
                            while s.splice() {}
                            s.bump();
                        }
                        push!(TokenKind::Punct(p), p.as_str(), start_pos);
                    }
                    None => {
                        return Err(LexError {
                            pos: start_pos,
                            message: format!("unrecognized character 0x{c:02x}"),
                        });
                    }
                }
            }
        }
    }

    // Ensure the last logical line is terminated.
    if !matches!(out.last().map(|t| t.kind), Some(TokenKind::Newline) | None) {
        out.push(Token::new(TokenKind::Newline, "\n", s.pos(), false));
    }
    out.push(Token::new(TokenKind::Eof, "", s.pos(), false));
    Ok(out)
}

/// Tests whether the upcoming bytes (with splices resolved) spell `spell`,
/// without consuming anything.
fn lookahead_matches(s: &mut Scanner<'_>, spell: &[u8]) -> bool {
    // Fast path: no backslash nearby means no splice can interfere.
    let window = &s.src[s.i..(s.i + spell.len() + 4).min(s.src.len())];
    if !window.contains(&b'\\') {
        return window.starts_with(spell);
    }
    // Slow path: simulate with a scratch scanner.
    let mut probe = Scanner {
        src: s.src,
        i: s.i,
        line: s.line,
        col: s.col,
        file: s.file,
    };
    for &want in spell {
        match probe.cur() {
            Some(c) if c == want => {
                probe.bump();
            }
            _ => return false,
        }
    }
    true
}

fn scan_quoted(s: &mut Scanner<'_>, quote: u8, wide: bool) -> Result<Rc<str>, LexError> {
    let start = s.pos();
    let mut text = String::new();
    if wide {
        text.push(s.bump().unwrap() as char); // 'L'
    }
    text.push(s.bump().unwrap() as char); // opening quote
    loop {
        while s.splice() {}
        match s.peek() {
            None | Some(b'\n') => {
                let what = if quote == b'"' {
                    "unterminated string literal"
                } else {
                    "unterminated character constant"
                };
                return Err(LexError {
                    pos: start,
                    message: what.to_string(),
                });
            }
            Some(b'\\') => {
                // An escape: keep backslash and the next byte verbatim.
                text.push(s.bump().unwrap() as char);
                if let Some(c) = s.bump() {
                    text.push(c as char);
                }
            }
            Some(c) if c == quote => {
                text.push(s.bump().unwrap() as char);
                break;
            }
            Some(c) => {
                text.push(c as char);
                s.bump();
            }
        }
    }
    Ok(Rc::from(text.as_str()))
}
