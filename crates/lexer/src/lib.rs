//! A C lexer producing preprocessor-ready tokens.
//!
//! SuperC's first stage converts raw program text into tokens before
//! preprocessing and parsing (§2, "Layout"). The original used a JFlex
//! scanner with Roskind's tokenization rules; this crate is a from-scratch
//! equivalent with the properties the later stages rely on:
//!
//! * **Preprocessor-oriented tokens.** All words lex as [`TokenKind::Ident`];
//!   keyword classification is a *parser* concern (and must happen after
//!   macro expansion, since macros may be named after keywords). Numbers lex
//!   as C *pp-numbers*. `#` and `##` are ordinary punctuators here.
//! * **Line structure.** The preprocessor is line-oriented, so the lexer
//!   emits [`TokenKind::Newline`] tokens and resolves backslash-newline
//!   continuations, letting the directive parser group logical lines.
//! * **Layout.** Whitespace and comments are stripped but each token records
//!   whether layout preceded it ([`Token::ws_before`]), enough to
//!   reconstruct `#include` path spellings and stringification spacing.
//!   (Full layout annotation for refactoring was removed from SuperC itself;
//!   we follow suit.)
//!
//! # Examples
//!
//! ```
//! use superc_lexer::{lex, FileId, TokenKind};
//!
//! let toks = lex("#ifdef A\nint x;\n#endif\n", FileId(0)).unwrap();
//! assert_eq!(Some(toks[0].kind), TokenKind::punct("#"));
//! assert_eq!(toks[1].text(), "ifdef");
//! assert_eq!(toks[2].text(), "A");
//! assert!(matches!(toks[3].kind, TokenKind::Newline));
//! ```

mod scanner;
mod token;

pub use scanner::{lex, LexError};
pub use token::{FileId, Punct, SourcePos, Token, TokenKind};

#[cfg(test)]
mod tests;
