//! Conditional-expression evaluation (SuperC §3.2).
//!
//! `#if` expressions are converted to presence conditions in four steps:
//!
//! 1. `defined(M)` operands are resolved *against the conditional macro
//!    table* — the disjunction of conditions under which `M` is defined,
//!    a BDD variable when `M` is free, or `false` when `M` is a detected
//!    include guard — and replaced by opaque placeholder tokens.
//! 2. The remaining tokens are macro-expanded under the current presence
//!    condition; multiply-defined macros introduce implicit conditionals.
//! 3. Those conditionals are hoisted around the whole expression,
//!    yielding flat per-configuration token runs (the paper's
//!    `BITS_PER_LONG == 32` example).
//! 4. Each run is parsed with a full C preprocessor-expression grammar and
//!    evaluated with constant folding. Non-constant leaves become
//!    condition variables: a free macro by its name, an arithmetic
//!    subexpression by its normalized text (`NR_CPUS < 256` stays opaque
//!    but identical occurrences share one variable).

use std::hash::{Hash, Hasher};
use std::rc::Rc;

use superc_cond::Cond;
use superc_lexer::{Punct, SourcePos, Token, TokenKind};
use superc_util::{FastSet, FxHasher};

use crate::elements::{Element, HideSet, PTok};
use crate::files::FileSystem;
use crate::macrotable::MacroDef;
use crate::preprocessor::{Preprocessor, Severity};
use crate::stats::PpStats;

/// Memo key for one conditional-expression evaluation: the expression's
/// token signature, a signature of the macro environment its identifiers
/// (transitively) resolve to, and the identity of the enclosing presence
/// condition. All three determine the result, so equal keys may share it.
pub(crate) type CondExprKey = (u64, u64, (u8, u64));

/// Memoized result of one conditional-expression evaluation, plus the
/// [`PpStats`] delta its (expansion-heavy) evaluation produced so a memo
/// hit replays the counters and reports stay byte-identical with an
/// unmemoized run.
#[derive(Clone)]
pub(crate) struct CondExprEntry {
    cond: Cond,
    hoisted: bool,
    nonbool: bool,
    delta: PpStats,
}

/// Normalizes an expression's token spelling: single spaces between
/// tokens, comments and layout dropped. This is the variable-interning key
/// for opaque non-boolean subexpressions.
pub fn normalize_expr_text(tokens: &[Token]) -> String {
    tokens
        .iter()
        .map(|t| t.text().to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn normalize_ptoks(tokens: &[PTok]) -> String {
    tokens
        .iter()
        .map(|t| t.text().to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// A partially evaluated subexpression.
#[derive(Clone, Debug)]
enum V {
    /// A compile-time integer constant.
    Int(i64),
    /// A boolean condition (from `defined`, `!`, `&&`, `||`, or folded
    /// comparisons of conditions).
    Bool(Cond),
    /// An opaque non-constant term, keyed by normalized text.
    Opaque(String),
}

struct ExprParser<'t> {
    toks: &'t [PTok],
    i: usize,
    /// defined-placeholder index -> resolved condition.
    defined: &'t [Cond],
    ctx: superc_cond::CondCtx,
    nonbool: bool,
    /// Fold free identifiers to `0` instead of making them condition
    /// variables. Set from [`Preprocessor::fold_free_idents`] — the same
    /// policy seat `defined_as_cond` consults — never decided locally.
    fold_free: bool,
    /// Identifiers folded to `0` under `fold_free`, for the profile's
    /// [`crate::UndefIdentPolicy`] to report (MSVC C4668).
    folded: Vec<(Rc<str>, SourcePos)>,
    error: Option<String>,
}

const DEFINED_PREFIX: &str = "\u{1}defined";

impl<'t> ExprParser<'t> {
    fn peek(&self) -> Option<&PTok> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<PTok> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek().map(|t| t.tok.is_punct(p)) == Some(true) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn fail(&mut self, msg: &str) -> V {
        if self.error.is_none() {
            self.error = Some(msg.to_string());
        }
        V::Int(0)
    }

    fn cond_of(&mut self, v: &V) -> Cond {
        match v {
            V::Int(0) => self.ctx.fls(),
            V::Int(_) => self.ctx.tru(),
            V::Bool(c) => c.clone(),
            V::Opaque(s) => {
                self.nonbool = true;
                self.ctx.var(s)
            }
        }
    }

    /// Renders a value back to opaque text for embedding in larger opaque
    /// expressions.
    fn to_text(&self, v: &V) -> String {
        match v {
            V::Int(n) => n.to_string(),
            V::Bool(c) => format!("({c})"),
            V::Opaque(s) => s.clone(),
        }
    }

    // Expression grammar, lowest precedence first.

    fn ternary(&mut self) -> V {
        let c = self.or();
        if !self.eat_punct(Punct::Question) {
            return c;
        }
        let a = self.ternary();
        if !self.eat_punct(Punct::Colon) {
            return self.fail("expected ':' in conditional expression");
        }
        let b = self.ternary();
        match c {
            V::Int(n) => {
                if n != 0 {
                    a
                } else {
                    b
                }
            }
            _ => {
                self.nonbool = true;
                V::Opaque(format!(
                    "{} ? {} : {}",
                    self.to_text(&c),
                    self.to_text(&a),
                    self.to_text(&b)
                ))
            }
        }
    }

    fn or(&mut self) -> V {
        let mut v = self.and();
        while self.eat_punct(Punct::PipePipe) {
            let r = self.and();
            let (lc, rc) = (self.cond_of(&v), self.cond_of(&r));
            v = V::Bool(lc.or(&rc));
        }
        v
    }

    fn and(&mut self) -> V {
        let mut v = self.bit_or();
        while self.eat_punct(Punct::AmpAmp) {
            let r = self.bit_or();
            let (lc, rc) = (self.cond_of(&v), self.cond_of(&r));
            v = V::Bool(lc.and(&rc));
        }
        v
    }

    fn bit_or(&mut self) -> V {
        let mut v = self.bit_xor();
        while self.peek().map(|t| t.tok.is_punct(Punct::Pipe)) == Some(true) {
            self.i += 1;
            let r = self.bit_xor();
            v = self.arith2(v, r, "|", |a, b| Some(a | b));
        }
        v
    }

    fn bit_xor(&mut self) -> V {
        let mut v = self.bit_and();
        while self.eat_punct(Punct::Caret) {
            let r = self.bit_and();
            v = self.arith2(v, r, "^", |a, b| Some(a ^ b));
        }
        v
    }

    fn bit_and(&mut self) -> V {
        let mut v = self.equality();
        while self.peek().map(|t| t.tok.is_punct(Punct::Amp)) == Some(true) {
            self.i += 1;
            let r = self.equality();
            v = self.arith2(v, r, "&", |a, b| Some(a & b));
        }
        v
    }

    fn equality(&mut self) -> V {
        let mut v = self.relational();
        loop {
            if self.eat_punct(Punct::EqEq) {
                let r = self.relational();
                v = self.cmp2(v, r, "==", |a, b| a == b);
            } else if self.eat_punct(Punct::Ne) {
                let r = self.relational();
                v = self.cmp2(v, r, "!=", |a, b| a != b);
            } else {
                break;
            }
        }
        v
    }

    fn relational(&mut self) -> V {
        let mut v = self.shift();
        loop {
            if self.eat_punct(Punct::Le) {
                let r = self.shift();
                v = self.cmp2(v, r, "<=", |a, b| a <= b);
            } else if self.eat_punct(Punct::Ge) {
                let r = self.shift();
                v = self.cmp2(v, r, ">=", |a, b| a >= b);
            } else if self.eat_punct(Punct::Lt) {
                let r = self.shift();
                v = self.cmp2(v, r, "<", |a, b| a < b);
            } else if self.eat_punct(Punct::Gt) {
                let r = self.shift();
                v = self.cmp2(v, r, ">", |a, b| a > b);
            } else {
                break;
            }
        }
        v
    }

    fn shift(&mut self) -> V {
        let mut v = self.additive();
        loop {
            if self.eat_punct(Punct::Shl) {
                let r = self.additive();
                v = self.arith2(v, r, "<<", |a, b| a.checked_shl(b.try_into().ok()?));
            } else if self.eat_punct(Punct::Shr) {
                let r = self.additive();
                v = self.arith2(v, r, ">>", |a, b| a.checked_shr(b.try_into().ok()?));
            } else {
                break;
            }
        }
        v
    }

    fn additive(&mut self) -> V {
        let mut v = self.multiplicative();
        loop {
            if self.eat_punct(Punct::Plus) {
                let r = self.multiplicative();
                v = self.arith2(v, r, "+", |a, b| a.checked_add(b));
            } else if self.eat_punct(Punct::Minus) {
                let r = self.multiplicative();
                v = self.arith2(v, r, "-", |a, b| a.checked_sub(b));
            } else {
                break;
            }
        }
        v
    }

    fn multiplicative(&mut self) -> V {
        let mut v = self.unary();
        loop {
            if self.eat_punct(Punct::Star) {
                let r = self.unary();
                v = self.arith2(v, r, "*", |a, b| a.checked_mul(b));
            } else if self.eat_punct(Punct::Slash) {
                let r = self.unary();
                v = self.arith2(v, r, "/", |a, b| a.checked_div(b));
            } else if self.eat_punct(Punct::Percent) {
                let r = self.unary();
                v = self.arith2(v, r, "%", |a, b| a.checked_rem(b));
            } else {
                break;
            }
        }
        v
    }

    fn unary(&mut self) -> V {
        if self.eat_punct(Punct::Bang) {
            let v = self.unary();
            let c = self.cond_of(&v);
            return V::Bool(c.not());
        }
        if self.eat_punct(Punct::Minus) {
            let v = self.unary();
            return match v {
                V::Int(n) => V::Int(n.wrapping_neg()),
                other => {
                    self.nonbool = true;
                    V::Opaque(format!("- {}", self.to_text(&other)))
                }
            };
        }
        if self.eat_punct(Punct::Plus) {
            return self.unary();
        }
        if self.eat_punct(Punct::Tilde) {
            let v = self.unary();
            return match v {
                V::Int(n) => V::Int(!n),
                other => {
                    self.nonbool = true;
                    V::Opaque(format!("~ {}", self.to_text(&other)))
                }
            };
        }
        self.primary()
    }

    fn primary(&mut self) -> V {
        if self.eat_punct(Punct::LParen) {
            let v = self.ternary();
            if !self.eat_punct(Punct::RParen) {
                return self.fail("expected ')'");
            }
            return v;
        }
        let Some(t) = self.bump() else {
            return self.fail("unexpected end of conditional expression");
        };
        match t.tok.kind {
            TokenKind::Number => match parse_int(t.text()) {
                Some(n) => V::Int(n),
                None => {
                    self.nonbool = true;
                    V::Opaque(t.text().to_string())
                }
            },
            TokenKind::CharLit => match char_value(t.text()) {
                Some(n) => V::Int(n),
                None => {
                    self.nonbool = true;
                    V::Opaque(t.text().to_string())
                }
            },
            TokenKind::Ident => {
                let text = t.text();
                if let Some(idx) = text.strip_prefix(DEFINED_PREFIX) {
                    let i: usize = idx.parse().expect("placeholder index");
                    return V::Bool(self.defined[i].clone());
                }
                if self.fold_free {
                    // Undefined identifiers evaluate to 0. Whether that
                    // fold is silent (gcc) or diagnosed (MSVC /Wall) is
                    // the profile's call; record it and let the caller
                    // apply `UndefIdentPolicy`.
                    self.folded.push((t.tok.text.clone(), t.tok.pos));
                    return V::Int(0);
                }
                // A free (or unexpandable) macro used as a value.
                V::Opaque(text.to_string())
            }
            _ => {
                let text = t.text().to_string();
                self.fail(&format!(
                    "unexpected token '{text}' in conditional expression"
                ))
            }
        }
    }

    fn arith2(&mut self, l: V, r: V, op: &str, f: impl Fn(i64, i64) -> Option<i64>) -> V {
        match (&l, &r) {
            (V::Int(a), V::Int(b)) => match f(*a, *b) {
                Some(n) => V::Int(n),
                None => self.fail(&format!("arithmetic error evaluating '{op}'")),
            },
            _ => {
                self.nonbool = true;
                V::Opaque(format!("{} {op} {}", self.to_text(&l), self.to_text(&r)))
            }
        }
    }

    fn cmp2(&mut self, l: V, r: V, op: &str, f: impl Fn(i64, i64) -> bool) -> V {
        match (&l, &r) {
            (V::Int(a), V::Int(b)) => V::Int(f(*a, *b) as i64),
            // Comparing two conditions for equality folds to a condition.
            (V::Bool(a), V::Bool(b)) if op == "==" => V::Bool(a.and(b).or(&a.not().and(&b.not()))),
            (V::Bool(a), V::Bool(b)) if op == "!=" => V::Bool(a.and(&b.not()).or(&a.not().and(b))),
            _ => {
                self.nonbool = true;
                V::Opaque(format!("{} {op} {}", self.to_text(&l), self.to_text(&r)))
            }
        }
    }
}

/// Parses a C integer literal (decimal/octal/hex, with suffixes).
fn parse_int(text: &str) -> Option<i64> {
    let t = text
        .trim_end_matches(['u', 'U', 'l', 'L'])
        .to_ascii_lowercase();
    if let Some(hex) = t.strip_prefix("0x") {
        return i64::from_str_radix(hex, 16).ok();
    }
    if t.len() > 1 && t.starts_with('0') && t.bytes().all(|b| b.is_ascii_digit()) {
        return i64::from_str_radix(&t[1..], 8).ok();
    }
    t.parse().ok()
}

/// Value of a character constant (first character, simple escapes).
fn char_value(text: &str) -> Option<i64> {
    let inner = text
        .trim_start_matches('L')
        .strip_prefix('\'')?
        .strip_suffix('\'')?;
    let mut chars = inner.chars();
    match chars.next()? {
        '\\' => match chars.next()? {
            'n' => Some(10),
            't' => Some(9),
            'r' => Some(13),
            '0' => Some(0),
            '\\' => Some(92),
            '\'' => Some(39),
            '"' => Some(34),
            'x' => i64::from_str_radix(chars.as_str(), 16).ok(),
            c => Some(c as i64),
        },
        c => Some(c as i64),
    }
}

impl<F: FileSystem> Preprocessor<F> {
    /// Converts a `#if`/`#elif` expression to a presence condition,
    /// restricted to `c`. Returns the condition plus flags: whether a
    /// multiply-defined macro was hoisted around the expression, and
    /// whether opaque non-boolean subterms appeared.
    ///
    /// Results are memoized per worker: repeated guard expressions (the
    /// same header's `#ifndef` re-evaluated in every unit, the same
    /// `#if defined(...)` ladder across files) skip expansion, hoisting,
    /// and the BDD applies entirely. The memo key covers everything the
    /// evaluation can observe — see [`Preprocessor::condexpr_memo_key`] —
    /// and memo hits replay the exact counter mutations of the original
    /// evaluation, so all deterministic statistics are unchanged.
    pub(crate) fn eval_cond_expr(
        &mut self,
        tokens: &[Token],
        c: &Cond,
        pos: SourcePos,
    ) -> (Cond, bool, bool) {
        let key = self.condexpr_memo_key(tokens, c);
        if let Some(key) = key {
            if let Some(e) = self.condexpr_memo.get(&key) {
                let e = e.clone();
                self.stats.apply_delta(&e.delta);
                self.stats.condexpr_memo_hits += 1;
                return (e.cond, e.hoisted, e.nonbool);
            }
        }
        let diags_before = self.diags.len();
        let stats_before = self.stats;
        let (cond, hoisted, nonbool) = self.eval_cond_expr_uncached(tokens, c, pos);
        let delta = self.stats.delta_since(&stats_before);
        self.stats.condexpr_memo_misses += 1;
        // Evaluations that emitted diagnostics are not memoized: a hit
        // would have to replay position-tagged diagnostics too, and such
        // expressions (hoist blow-ups, parse errors) are rare by design.
        if self.diags.len() == diags_before {
            if let Some(key) = key {
                self.condexpr_memo.insert(
                    key,
                    CondExprEntry {
                        cond: cond.clone(),
                        hoisted,
                        nonbool,
                        delta,
                    },
                );
            }
        }
        (cond, hoisted, nonbool)
    }

    /// The memo key for evaluating `tokens` under `c`, or `None` when the
    /// expression is not safely memoizable.
    ///
    /// The signature must cover every input the evaluation reads:
    ///
    /// * the expression's tokens (kind, spelling, spacing);
    /// * the enclosing presence condition (by stable handle identity);
    /// * for every identifier the expression mentions — *transitively
    ///   through macro bodies*, since expansion rescans — the macro
    ///   table's entry list for that name (entry conditions by handle,
    ///   definitions by content, so per-unit rebuilt builtins still
    ///   match) and its include-guard bit (§3.2 case 4a).
    ///
    /// Definition bodies are hashed by content rather than pointer
    /// because built-ins and command-line defines are re-lexed into
    /// fresh `Rc`s every unit; content hashing is what lets the memo hit
    /// *across* units. `__FILE__`/`__LINE__` (when not shadowed) expand
    /// position-dependently, so expressions reaching them bail out.
    fn condexpr_memo_key(&self, tokens: &[Token], c: &Cond) -> Option<CondExprKey> {
        fn hash_tok(h: &mut FxHasher, t: &Token) {
            t.kind.hash(h);
            (*t.text).hash(h);
            t.ws_before.hash(h);
        }
        let mut eh = FxHasher::default();
        for t in tokens {
            hash_tok(&mut eh, t);
        }
        let expr_sig = eh.finish();

        let mut env = FxHasher::default();
        let mut seen: FastSet<Rc<str>> = FastSet::default();
        let mut work: Vec<Rc<str>> = tokens
            .iter()
            .filter(|t| t.is_ident() && t.text() != "defined")
            .map(|t| t.text.clone())
            .collect();
        while let Some(name) = work.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            if (&*name == "__FILE__" || &*name == "__LINE__") && !self.table.mentioned(&name) {
                return None;
            }
            (*name).hash(&mut env);
            env.write_u8(self.table.is_guard(&name) as u8);
            match self.table.entries(&name) {
                None => env.write_u8(0),
                Some(entries) => {
                    env.write_u8(1);
                    env.write_usize(entries.len());
                    for e in entries {
                        e.cond.memo_key().hash(&mut env);
                        match &e.def {
                            None => env.write_u8(0),
                            Some(def) => {
                                let body = match &**def {
                                    MacroDef::Object { body } => {
                                        env.write_u8(1);
                                        body
                                    }
                                    MacroDef::Function {
                                        params,
                                        variadic,
                                        body,
                                    } => {
                                        env.write_u8(2);
                                        env.write_usize(params.len());
                                        for p in params {
                                            (**p).hash(&mut env);
                                        }
                                        variadic.hash(&mut env);
                                        body
                                    }
                                };
                                env.write_usize(body.len());
                                for t in body {
                                    hash_tok(&mut env, t);
                                    if t.is_ident() && t.text() != "defined" {
                                        work.push(t.text.clone());
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Some((expr_sig, env.finish(), c.memo_key()))
    }

    /// The unmemoized four-step evaluation (see the module docs).
    fn eval_cond_expr_uncached(
        &mut self,
        tokens: &[Token],
        c: &Cond,
        pos: SourcePos,
    ) -> (Cond, bool, bool) {
        // Step 1: resolve `defined` operators before expansion.
        let mut defined: Vec<Cond> = Vec::new();
        let mut protected: Vec<Element> = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if t.is_ident() && t.text() == "defined" {
                let (name, skip) =
                    if tokens.get(i + 1).map(|t| t.is_punct(Punct::LParen)) == Some(true) {
                        match (tokens.get(i + 2), tokens.get(i + 3)) {
                            (Some(n), Some(r)) if n.is_ident() && r.is_punct(Punct::RParen) => {
                                (Some(n.text.clone()), 4)
                            }
                            _ => (None, 1),
                        }
                    } else {
                        match tokens.get(i + 1) {
                            Some(n) if n.is_ident() => (Some(n.text.clone()), 2),
                            _ => (None, 1),
                        }
                    };
                match name {
                    Some(name) => {
                        let cond = self.defined_as_cond(&name, c);
                        let idx = defined.len();
                        defined.push(cond);
                        let ph = Token::new(
                            TokenKind::Ident,
                            format!("{DEFINED_PREFIX}{idx}"),
                            t.pos,
                            t.ws_before,
                        );
                        // Paint the placeholder so expansion skips it.
                        let text: Rc<str> = ph.text.clone();
                        protected.push(Element::Token(PTok {
                            tok: ph,
                            hide: HideSet::new().insert(text),
                        }));
                        i += skip;
                        continue;
                    }
                    None => {
                        self.diag(
                            Severity::Warning,
                            t.pos,
                            c,
                            "malformed defined() operator".to_string(),
                        );
                    }
                }
            }
            protected.push(Element::Token(PTok::new(t.clone())));
            i += 1;
        }

        // Step 2: expand macros in the expression.
        let expanded = self.expand_segment(protected, c);

        // Step 3: hoist implicit/explicit conditionals around the whole
        // expression.
        let hoisted = expanded
            .iter()
            .any(|e| matches!(e, Element::Conditional(_)));
        let flats = match self.hoist_elements(&expanded, c) {
            Some(f) => f,
            None => {
                self.diag(
                    Severity::Warning,
                    pos,
                    c,
                    "conditional expression too variable; treating as opaque".to_string(),
                );
                let key = normalize_expr_text(tokens);
                return (self.ctx.var(&key).and(c), false, true);
            }
        };

        // Step 4: parse and evaluate each flat configuration.
        let mut result = self.ctx.fls();
        let mut nonbool = false;
        // Free identifiers folded to 0, merged across flat configurations
        // (first position, ORed conditions, first-encounter order) for the
        // profile's `UndefIdentPolicy` to report.
        let mut folded: Vec<(Rc<str>, SourcePos, Cond)> = Vec::new();
        for (fc, toks) in flats {
            let mut p = ExprParser {
                toks: &toks,
                i: 0,
                defined: &defined,
                ctx: self.ctx.clone(),
                nonbool: false,
                fold_free: self.fold_free_idents(),
                folded: Vec::new(),
                error: None,
            };
            let v = p.ternary();
            if p.i < p.toks.len() && p.error.is_none() {
                let txt = normalize_ptoks(&toks);
                p.error = Some(format!("trailing tokens in conditional expression: {txt}"));
            }
            if let Some(msg) = p.error.take() {
                self.diag(Severity::Warning, pos, &fc, msg);
                // Treat the whole branch expression as opaque.
                let key = normalize_ptoks(&toks);
                nonbool = true;
                result = result.or(&fc.and(&self.ctx.var(&key)));
                continue;
            }
            let vc = p.cond_of(&v);
            nonbool |= p.nonbool;
            for (name, npos) in p.folded {
                match folded.iter_mut().find(|(n, _, _)| *n == name) {
                    Some((_, _, cond)) => *cond = cond.or(&fc),
                    None => folded.push((name, npos, fc.clone())),
                }
            }
            result = result.or(&fc.and(&vc));
        }
        for (name, npos, cond) in folded {
            self.warn_folded(&name, npos, &cond);
        }
        (result, hoisted, nonbool)
    }

    /// The condition under which `name` is `defined` (§3.2 case 4),
    /// restricted to `c`: defined entries' disjunction; free residue maps
    /// to a fresh condition variable, or `false` for guard macros.
    pub(crate) fn defined_as_cond(&mut self, name: &str, c: &Cond) -> Cond {
        let (defined, free) = self.table.defined_cond(name, c);
        if free.is_false() {
            return defined;
        }
        if self.fold_free_idents() {
            // Free macros resolve to plain-undefined (the other seat of
            // the policy `ExprParser::primary` applies to value uses).
            // `defined` is well-defined on undefined names, so no profile
            // diagnoses this fold.
            return defined;
        }
        if self.table.is_guard(name) {
            // Case 4a: guard macros translate to false when free.
            return defined;
        }
        let var = self.ctx.var(&format!("defined({name})"));
        defined.or(&free.and(&var))
    }
}
