//! Per-compilation-unit usage counters.
//!
//! These counters instrument the preprocessor exactly where the paper's
//! "tool's view" (Table 3) measures: definitions, invocations and their
//! interactions with conditionals, hoists, pasting/stringification,
//! includes, and conditional statistics. The benchmark harness aggregates
//! them into 50·90·100 percentiles across compilation units.

/// Counters gathered while preprocessing one compilation unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PpStats {
    /// `#define` directives processed (including those in headers).
    pub macro_definitions: u64,
    /// `#define`s for a name that already had a feasible entry.
    pub redefinitions: u64,
    /// `#undef` directives processed.
    pub undefs: u64,
    /// Macro invocations expanded (object- and function-like).
    pub macro_invocations: u64,
    /// Invocations where at least one table entry was infeasible and
    /// ignored ("Trimmed definitions").
    pub invocations_trimmed: u64,
    /// Invocations requiring conditionals hoisted around them (implicit
    /// multiply-defined conditionals or explicit conditionals in args).
    pub invocations_hoisted: u64,
    /// Invocations of macros from within macro bodies ("Nested invocations").
    pub nested_invocations: u64,
    /// Invocations of compiler built-in macros.
    pub builtin_invocations: u64,
    /// Token-pasting (`##`) operations applied.
    pub token_pastes: u64,
    /// Pastes whose operands contained conditionals (hoisted).
    pub token_pastes_hoisted: u64,
    /// Stringification (`#`) operations applied.
    pub stringifications: u64,
    /// Stringifications whose operand contained conditionals (hoisted).
    pub stringifications_hoisted: u64,
    /// `#include` directives processed (after resolution).
    pub includes: u64,
    /// Includes whose operand contained hoisted conditionals.
    pub includes_hoisted: u64,
    /// Computed includes (operand required macro expansion).
    pub computed_includes: u64,
    /// Headers processed more than once (guard not definitely defined).
    pub reincluded_headers: u64,
    /// Static conditional *directives* evaluated (`#if`/`#ifdef`/`#ifndef`).
    pub conditionals: u64,
    /// Conditional expressions whose evaluation required hoisting a
    /// multiply-defined macro around the expression.
    pub conditionals_hoisted: u64,
    /// Maximum conditional nesting depth observed.
    pub max_depth: u64,
    /// Conditional expressions containing opaque non-boolean subterms.
    pub non_boolean_exprs: u64,
    /// `#error` directives under some feasible condition.
    pub error_directives: u64,
    /// `#warning` directives.
    pub warning_directives: u64,
    /// Macro-table entries trimmed as infeasible on (re)definition.
    pub trimmed_entries: u64,
    /// Ordinary tokens in the final compilation unit.
    pub output_tokens: u64,
    /// Static conditionals remaining in the final compilation unit.
    pub output_conditionals: u64,
    /// Files lexed (compilation unit plus headers, counting repeats).
    pub files_processed: u64,
    /// Total bytes of source lexed (counting repeats).
    pub bytes_processed: u64,
    /// Nanoseconds spent in the lexer (Figure 10's "lexing" share;
    /// cached headers contribute their first lex only).
    pub lex_nanos: u64,
    /// Headers served from the process-wide shared artifact cache
    /// (another worker — or an earlier unit — already lexed them).
    /// Schedule-dependent: excluded from determinism comparisons.
    pub shared_cache_hits: u64,
    /// Headers this worker lexed and published to the shared cache.
    /// Schedule-dependent: excluded from determinism comparisons.
    pub shared_cache_misses: u64,
    /// Nanoseconds of lexing+structuring avoided by shared-cache hits
    /// (the original producer's cost, credited on each hit).
    pub lex_nanos_saved: u64,
    /// Conditional-expression evaluations served from the per-worker
    /// memo. Schedule-dependent: excluded from determinism comparisons.
    pub condexpr_memo_hits: u64,
    /// Conditional-expression evaluations that ran in full and seeded
    /// the memo. Schedule-dependent like the hits.
    pub condexpr_memo_misses: u64,
    /// Object-like macro expansions served from the per-unit closed-body
    /// memo. The memo itself resets every compilation unit, but a
    /// condexpr-memo hit replays the *original* evaluation's expansion
    /// hits (whatever the memo's warmth was then), so this counter is
    /// schedule-dependent too and excluded from determinism comparisons.
    pub expansion_memo_hits: u64,
    /// Tokens streamed straight from the lexer to the output by the fused
    /// fast path (inert tokens at the front of a conditional-free text
    /// run, bypassing the expansion queue). Deterministic for a given
    /// `fuse_lexing` setting but zero with fusion off, so it is excluded
    /// from fastpath-on/off determinism comparisons like the cache
    /// counters.
    pub fused_tokens: u64,
}

impl PpStats {
    /// Adds another unit's counters into this one (for corpus totals).
    pub fn merge(&mut self, other: &PpStats) {
        macro_rules! add {
            ($($f:ident),+ $(,)?) => { $( self.$f += other.$f; )+ };
        }
        add!(
            macro_definitions,
            redefinitions,
            undefs,
            macro_invocations,
            invocations_trimmed,
            invocations_hoisted,
            nested_invocations,
            builtin_invocations,
            token_pastes,
            token_pastes_hoisted,
            stringifications,
            stringifications_hoisted,
            includes,
            includes_hoisted,
            computed_includes,
            reincluded_headers,
            conditionals,
            conditionals_hoisted,
            non_boolean_exprs,
            error_directives,
            warning_directives,
            trimmed_entries,
            output_tokens,
            output_conditionals,
            files_processed,
            bytes_processed,
            lex_nanos,
            shared_cache_hits,
            shared_cache_misses,
            lex_nanos_saved,
            condexpr_memo_hits,
            condexpr_memo_misses,
            expansion_memo_hits,
            fused_tokens,
        );
        self.max_depth = self.max_depth.max(other.max_depth);
    }

    /// Field-wise saturating difference `self - earlier`, used by the
    /// conditional-expression memo to capture the counter mutations one
    /// evaluation performed so a later memo hit can replay them exactly.
    /// `max_depth` carries the later snapshot's value (it is a running
    /// maximum, not a sum; the replay site restores it with `max`).
    pub fn delta_since(&self, earlier: &PpStats) -> PpStats {
        macro_rules! sub {
            ($($f:ident),+ $(,)?) => {
                PpStats {
                    $( $f: self.$f.saturating_sub(earlier.$f), )+
                    max_depth: self.max_depth,
                }
            };
        }
        sub!(
            macro_definitions,
            redefinitions,
            undefs,
            macro_invocations,
            invocations_trimmed,
            invocations_hoisted,
            nested_invocations,
            builtin_invocations,
            token_pastes,
            token_pastes_hoisted,
            stringifications,
            stringifications_hoisted,
            includes,
            includes_hoisted,
            computed_includes,
            reincluded_headers,
            conditionals,
            conditionals_hoisted,
            non_boolean_exprs,
            error_directives,
            warning_directives,
            trimmed_entries,
            output_tokens,
            output_conditionals,
            files_processed,
            bytes_processed,
            lex_nanos,
            shared_cache_hits,
            shared_cache_misses,
            lex_nanos_saved,
            condexpr_memo_hits,
            condexpr_memo_misses,
            expansion_memo_hits,
            fused_tokens,
        )
    }

    /// Replays a delta captured with [`delta_since`](Self::delta_since).
    /// [`merge`](Self::merge) already has replay semantics — additive
    /// fields sum, `max_depth` takes the maximum — so this is an alias
    /// that documents the intent at the memo-hit call site.
    pub fn apply_delta(&mut self, delta: &PpStats) {
        self.merge(delta);
    }
}
