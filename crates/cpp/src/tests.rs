use super::*;
use superc_cond::{Cond, CondBackend, CondCtx};

/// Preprocesses `main.c` (plus extra files) and returns the unit.
fn pp_with(files: &[(&str, &str)]) -> CompilationUnit {
    pp_with_backend(files, CondBackend::Bdd).expect("preprocess")
}

fn pp_with_backend(
    files: &[(&str, &str)],
    backend: CondBackend,
) -> Result<CompilationUnit, PpError> {
    let mut fs = MemFs::new();
    for (p, c) in files {
        fs.add(p, c);
    }
    let ctx = CondCtx::new(backend);
    let opts = PpOptions {
        profile: Profile::bare(),
        ..PpOptions::default()
    };
    let mut pp = Preprocessor::new(ctx, opts, fs);
    pp.preprocess("main.c")
}

fn pp(src: &str) -> CompilationUnit {
    pp_with(&[("main.c", src)])
}

/// Flattens a unit to one whitespace-normalized string per *feasible*
/// configuration: `(condition-display, token-texts)`.
fn configs(unit: &CompilationUnit) -> Vec<(String, String)> {
    fn find_ctx(elements: &[Element]) -> Option<CondCtx> {
        for e in elements {
            if let Element::Conditional(k) = e {
                if let Some(b) = k.branches.first() {
                    return Some(b.cond.ctx().clone());
                }
            }
        }
        None
    }
    fn rec(elements: &[Element], mut fronts: Vec<(Cond, String)>) -> Vec<(Cond, String)> {
        for e in elements {
            match e {
                Element::Token(t) => {
                    for f in &mut fronts {
                        if !f.1.is_empty() {
                            f.1.push(' ');
                        }
                        f.1.push_str(t.text());
                    }
                }
                Element::Conditional(k) => {
                    let mut next = Vec::new();
                    for f in &fronts {
                        for b in &k.branches {
                            let cc = f.0.and(&b.cond);
                            if cc.is_false() {
                                continue;
                            }
                            next.extend(rec(&b.elements, vec![(cc, f.1.clone())]));
                        }
                    }
                    fronts = next;
                }
            }
        }
        fronts
    }
    let Some(ctx) = find_ctx(&unit.elements) else {
        let mut s = String::new();
        for e in &unit.elements {
            if let Element::Token(t) = e {
                if !s.is_empty() {
                    s.push(' ');
                }
                s.push_str(t.text());
            }
        }
        return vec![(String::new(), s)];
    };
    rec(&unit.elements, vec![(ctx.tru(), String::new())])
        .into_iter()
        .map(|(c, t)| (format!("{c}"), t))
        .collect()
}

/// The token text of the single-configuration rendering, if no
/// conditionals remain.
fn flat_text(unit: &CompilationUnit) -> String {
    let cs = configs(unit);
    assert_eq!(cs.len(), 1, "unit is not flat: {:#?}", unit.elements);
    cs[0].1.clone()
}

// ---------------------------------------------------------------------
// Plain (single-configuration) preprocessing
// ---------------------------------------------------------------------

#[test]
fn object_macro_expands() {
    let u = pp("#define N 42\nint x = N;\n");
    assert_eq!(flat_text(&u), "int x = 42 ;");
    assert_eq!(u.stats.macro_definitions, 1);
    assert_eq!(u.stats.macro_invocations, 1);
}

#[test]
fn function_macro_expands_args() {
    let u = pp("#define MAX(a, b) ((a) > (b) ? (a) : (b))\nint m = MAX(x, y+1);\n");
    assert_eq!(
        flat_text(&u),
        "int m = ( ( x ) > ( y + 1 ) ? ( x ) : ( y + 1 ) ) ;"
    );
}

#[test]
fn function_macro_without_parens_is_not_invoked() {
    let u = pp("#define f(x) x\nint (*p)(int) = f;\n");
    assert_eq!(flat_text(&u), "int ( * p ) ( int ) = f ;");
}

#[test]
fn nested_macros_rescan() {
    let u = pp("#define A B\n#define B C\n#define C 7\nint x = A;\n");
    assert_eq!(flat_text(&u), "int x = 7 ;");
    assert!(u.stats.nested_invocations >= 2);
}

#[test]
fn recursive_macros_are_painted() {
    let u = pp("#define x x + 1\nint y = x;\n");
    assert_eq!(flat_text(&u), "int y = x + 1 ;");
    let u = pp("#define a b\n#define b a\nint y = a;\n");
    assert_eq!(flat_text(&u), "int y = a ;");
}

#[test]
fn invocation_spans_lines() {
    let u = pp("#define add(a,b) a+b\nint x = add(\n1,\n2);\n");
    assert_eq!(flat_text(&u), "int x = 1 + 2 ;");
}

#[test]
fn stringification() {
    let u = pp("#define S(x) #x\nconst char *s = S(a + b);\n");
    assert_eq!(flat_text(&u), "const char * s = \"a + b\" ;");
    let u = pp(r##"#define S(x) #x"##.to_string().as_str());
    let _ = u;
    // Embedded quotes/backslashes are escaped.
    let u = pp("#define S(x) #x\nconst char *s = S(\"q\");\n");
    assert_eq!(flat_text(&u), "const char * s = \"\\\"q\\\"\" ;");
}

#[test]
fn token_pasting() {
    let u = pp("#define GLUE(a,b) a ## b\nint GLUE(va, lue) = 1;\n");
    assert_eq!(flat_text(&u), "int value = 1 ;");
    assert_eq!(u.stats.token_pastes, 1);
    // Chains paste left to right.
    let u = pp("#define G3(a,b,c) a ## b ## c\nint G3(x, y, z);\n");
    assert_eq!(flat_text(&u), "int xyz ;");
}

#[test]
fn paste_builds_new_macro_name() {
    // The pasted token is eligible for further expansion (rescan).
    let u = pp("#define AB 99\n#define GLUE(a,b) a ## b\nint x = GLUE(A, B);\n");
    assert_eq!(flat_text(&u), "int x = 99 ;");
}

#[test]
fn variadic_macros() {
    let u = pp("#define P(fmt, ...) printf(fmt, __VA_ARGS__)\nP(\"%d\", 1, 2);\n");
    assert_eq!(flat_text(&u), "printf ( \"%d\" , 1 , 2 ) ;");
    // GNU named variadic.
    let u = pp("#define P(fmt, args...) printf(fmt, args)\nP(\"%d\", 7);\n");
    assert_eq!(flat_text(&u), "printf ( \"%d\" , 7 ) ;");
    // GNU comma deletion (empty varargs)...
    let u = pp("#define P(fmt, ...) printf(fmt , ## __VA_ARGS__)\nP(\"x\");\n");
    assert_eq!(flat_text(&u), "printf ( \"x\" ) ;");
    // ...and comma retention without pasting (non-empty varargs).
    let u = pp("#define P(fmt, ...) printf(fmt , ## __VA_ARGS__)\nP(\"x\", 1, 2);\n");
    assert_eq!(flat_text(&u), "printf ( \"x\" , 1 , 2 ) ;");
}

#[test]
fn undef_stops_expansion() {
    let u = pp("#define N 1\n#undef N\nint x = N;\n");
    assert_eq!(flat_text(&u), "int x = N ;");
    assert_eq!(u.stats.undefs, 1);
}

#[test]
fn dynamic_builtins() {
    let u = pp("int l = __LINE__;\nconst char *f = __FILE__;\n");
    assert_eq!(flat_text(&u), "int l = 1 ; const char * f = \"main.c\" ;");
    assert_eq!(u.stats.builtin_invocations, 2);
}

// ---------------------------------------------------------------------
// Includes
// ---------------------------------------------------------------------

#[test]
fn simple_include() {
    let u = pp_with(&[
        ("main.c", "#include \"defs.h\"\nint x = N;\n"),
        ("defs.h", "#define N 5\n"),
    ]);
    assert_eq!(flat_text(&u), "int x = 5 ;");
    assert_eq!(u.stats.includes, 1);
}

#[test]
fn system_include_via_search_path() {
    let u = pp_with(&[
        ("main.c", "#include <sys/defs.h>\nint x = N;\n"),
        ("include/sys/defs.h", "#define N 6\n"),
    ]);
    assert_eq!(flat_text(&u), "int x = 6 ;");
}

#[test]
fn quoted_include_prefers_including_dir() {
    let u = pp_with(&[
        ("main.c", "#include \"sub/a.h\"\nint x = N;\n"),
        ("sub/a.h", "#include \"b.h\"\n"),
        ("sub/b.h", "#define N 7\n"),
        ("include/b.h", "#define N 8\n"),
    ]);
    assert_eq!(flat_text(&u), "int x = 7 ;");
}

#[test]
fn include_guards_prevent_reprocessing() {
    let u = pp_with(&[
        ("main.c", "#include \"g.h\"\n#include \"g.h\"\nint x = N;\n"),
        ("g.h", "#ifndef G_H\n#define G_H\n#define N 9\n#endif\n"),
    ]);
    assert_eq!(flat_text(&u), "int x = 9 ;");
    // Processed once; second include is skipped by the guard fast path.
    assert_eq!(u.stats.reincluded_headers, 0);
}

#[test]
fn unguarded_headers_reprocess() {
    let u = pp_with(&[
        ("main.c", "#include \"u.h\"\n#include \"u.h\"\n"),
        ("u.h", "int bump;\n"),
    ]);
    assert_eq!(flat_text(&u), "int bump ; int bump ;");
    assert_eq!(u.stats.reincluded_headers, 1);
}

#[test]
fn guard_macro_translates_to_false_not_variable() {
    // §3.2 case 4a: the guard's #ifndef must not pollute presence
    // conditions — the unit stays conditional-free.
    let u = pp_with(&[
        ("main.c", "#include \"g.h\"\nint x = N;\n"),
        ("g.h", "#ifndef G_H\n#define G_H\n#define N 1\n#endif\n"),
    ]);
    assert_eq!(u.stats.output_conditionals, 0);
    assert_eq!(flat_text(&u), "int x = 1 ;");
}

#[test]
fn reinclusion_after_undef_of_guard() {
    // Paper: "Reinclude when guard macro is not false".
    let u = pp_with(&[
        ("main.c", "#include \"g.h\"\n#undef G_H\n#include \"g.h\"\n"),
        ("g.h", "#ifndef G_H\n#define G_H\nint decl;\n#endif\n"),
    ]);
    assert_eq!(flat_text(&u), "int decl ; int decl ;");
    assert_eq!(u.stats.reincluded_headers, 1);
}

#[test]
fn computed_include() {
    let u = pp_with(&[
        ("main.c", "#define HDR \"a.h\"\n#include HDR\nint x = N;\n"),
        ("a.h", "#define N 3\n"),
    ]);
    assert_eq!(flat_text(&u), "int x = 3 ;");
    assert_eq!(u.stats.computed_includes, 1);
}

#[test]
fn missing_include_is_a_diagnostic_not_a_crash() {
    let u = pp("#include \"nope.h\"\nint x;\n");
    assert_eq!(flat_text(&u), "int x ;");
    assert!(u
        .diagnostics
        .iter()
        .any(|d| d.message.contains("include not found")));
}

// ---------------------------------------------------------------------
// Static conditionals and presence conditions
// ---------------------------------------------------------------------

#[test]
fn ifdef_preserves_both_branches() {
    let u = pp("#ifdef CONFIG_A\nint a;\n#else\nint b;\n#endif\n");
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    let texts: Vec<&str> = cs.iter().map(|(_, t)| t.as_str()).collect();
    assert!(texts.contains(&"int a ;"));
    assert!(texts.contains(&"int b ;"));
    assert_eq!(u.stats.conditionals, 1);
}

#[test]
fn implicit_else_branch_is_materialized() {
    let u = pp("before\n#ifdef A\nmid\n#endif\nafter\n");
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs.iter().any(|(_, t)| t == "before mid after"));
    assert!(cs.iter().any(|(_, t)| t == "before after"));
}

#[test]
fn elif_chains_partition() {
    let u = pp("#if defined(A)\nint a;\n#elif defined(B)\nint b;\n#else\nint c;\n#endif\n");
    let cs = configs(&u);
    assert_eq!(cs.len(), 3);
    // The three conditions partition `true`: check pairwise via eval.
    let k = u.elements[0].as_conditional().expect("conditional");
    let eval = |cond: &Cond, a: bool, b: bool| {
        cond.eval(|n| match n {
            "defined(A)" => Some(a),
            "defined(B)" => Some(b),
            _ => None,
        })
    };
    for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
        let hits = k.branches.iter().filter(|br| eval(&br.cond, a, b)).count();
        assert_eq!(hits, 1, "configuration ({a},{b}) not covered exactly once");
    }
}

#[test]
fn if_expression_constant_folds() {
    let u = pp("#if 1 + 1 == 2\nyes\n#else\nno\n#endif\n");
    assert_eq!(flat_text(&u), "yes");
    let u = pp("#if 0\nyes\n#else\nno\n#endif\n");
    assert_eq!(flat_text(&u), "no");
    // Infeasible branch is trimmed entirely.
    assert_eq!(u.stats.output_conditionals, 0);
}

#[test]
fn if_with_macro_expansion() {
    let u = pp("#define FOUR 4\n#if FOUR > 3\nbig\n#endif\n");
    assert_eq!(flat_text(&u), "big");
}

#[test]
fn nested_conditionals_conjoin() {
    let u = pp("#ifdef A\n#ifdef B\nboth\n#endif\n#endif\n");
    let cs = configs(&u);
    // A∧B, A∧¬B, ¬A — three configurations.
    assert_eq!(cs.len(), 3);
    assert!(cs.iter().any(|(_, t)| t == "both"));
    assert_eq!(u.stats.max_depth, 2);
}

#[test]
fn defined_without_parens() {
    let u = pp("#if defined A\nyes\n#endif\n");
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
}

#[test]
fn undefined_macro_in_if_is_a_variable_not_zero() {
    // Configuration-preserving semantics: free macros keep both outcomes.
    let u = pp("#if FREE_MACRO\nyes\n#else\nno\n#endif\n");
    assert_eq!(configs(&u).len(), 2);
}

#[test]
fn defined_of_defined_macro_folds() {
    let u = pp("#define X 1\n#if defined(X)\nyes\n#else\nno\n#endif\n");
    assert_eq!(flat_text(&u), "yes");
    let u = pp("#define X 1\n#undef X\n#if defined(X)\nyes\n#else\nno\n#endif\n");
    assert_eq!(flat_text(&u), "no");
}

#[test]
fn non_boolean_expressions_are_opaque_but_consistent() {
    let src = "#if NR_CPUS < 256\nsmall\n#endif\n#if NR_CPUS < 256\nsmall2\n#endif\n";
    let u = pp(src);
    assert!(u.stats.non_boolean_exprs >= 1);
    let cs = configs(&u);
    // Identical opaque expressions share one variable, so the combinations
    // are (small,small2) and (neither) — not four.
    assert_eq!(cs.len(), 2);
}

#[test]
fn error_directive_outside_conditionals_fails() {
    let err = pp_with_backend(&[("main.c", "#error bad config\n")], CondBackend::Bdd)
        .expect_err("should fail");
    assert!(err.message.contains("bad config"));
}

#[test]
fn error_directive_in_branch_disables_it() {
    let u = pp("#ifdef BROKEN\n#error no good\nint junk;\n#else\nint ok;\n#endif\n");
    assert_eq!(u.stats.error_directives, 1);
    let cs = configs(&u);
    // The BROKEN branch is present but empty.
    assert!(cs.iter().any(|(_, t)| t == "int ok ;"));
    assert!(cs.iter().any(|(_, t)| t.is_empty()));
    assert!(!cs.iter().any(|(_, t)| t.contains("junk")));
}

#[test]
fn warnings_and_pragmas_are_annotations() {
    let u = pp("#warning heads up\n#pragma pack(1)\n#line 100\nint x;\n");
    assert_eq!(flat_text(&u), "int x ;");
    assert_eq!(u.stats.warning_directives, 1);
    assert!(u.diagnostics.iter().any(|d| d.severity == Severity::Note));
}

// ---------------------------------------------------------------------
// Multiply-defined macros and hoisting (the paper's Figures 2-5)
// ---------------------------------------------------------------------

/// Figure 2: BITS_PER_LONG depends on CONFIG_64BIT.
const FIG2: &str =
    "#ifdef CONFIG_64BIT\n#define BITS_PER_LONG 64\n#else\n#define BITS_PER_LONG 32\n#endif\n";

#[test]
fn fig2_multiply_defined_macro_propagates_conditional() {
    let u = pp(&format!("{FIG2}int n = BITS_PER_LONG;\n"));
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs
        .iter()
        .any(|(c, t)| t == "int n = 64 ;" && c.contains("CONFIG_64BIT")));
    assert!(cs
        .iter()
        .any(|(c, t)| t == "int n = 32 ;" && c.contains("!defined(CONFIG_64BIT)")));
    assert!(u.stats.invocations_hoisted >= 1);
}

#[test]
fn fig2_conditional_expression_hoists_macro() {
    // §3.2: `#if BITS_PER_LONG == 32` simplifies to !defined(CONFIG_64BIT).
    let u = pp(&format!(
        "{FIG2}#if BITS_PER_LONG == 32\nthirtytwo\n#endif\n"
    ));
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs
        .iter()
        .any(|(c, t)| t == "thirtytwo" && c.contains("!defined(CONFIG_64BIT)")));
    assert!(u.stats.conditionals_hoisted >= 1);
    // No opaque variables needed: constant folding resolved everything.
    assert_eq!(u.stats.non_boolean_exprs, 0);
}

/// Figures 3/4: a macro conditionally expanding to another (function-like)
/// macro; the invocation's arguments sit outside the conditional.
#[test]
fn fig4_cross_conditional_invocation_hoists() {
    let src = "\
#define __cpu_to_le32(x) ((__le32)(__u32)(x))
#ifdef __KERNEL__
#define cpu_to_le32 __cpu_to_le32
#endif
put_user(cpu_to_le32(val), buf);
";
    let u = pp(src);
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs.iter().any(|(c, t)| {
        c.contains("defined(__KERNEL__)")
            && !c.contains('!')
            && t == "put_user ( ( ( __le32 ) ( __u32 ) ( val ) ) , buf ) ;"
    }));
    assert!(cs.iter().any(|(c, t)| c.contains("!defined(__KERNEL__)")
        && t == "put_user ( cpu_to_le32 ( val ) , buf ) ;"));
    assert!(u.stats.invocations_hoisted >= 1);
}

#[test]
fn explicit_conditional_inside_arguments_hoists() {
    let src = "\
#define twice(x) ((x) + (x))
int r = twice(
#ifdef BIG
100
#else
1
#endif
);
";
    let u = pp(src);
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs
        .iter()
        .any(|(_, t)| t == "int r = ( ( 100 ) + ( 100 ) ) ;"));
    assert!(cs.iter().any(|(_, t)| t == "int r = ( ( 1 ) + ( 1 ) ) ;"));
}

#[test]
fn differing_argument_counts_across_branches() {
    // Table 1: "Support differing argument numbers and variadics".
    let src = "\
#ifdef TRACE
#define log(fmt, ...) trace(fmt, __VA_ARGS__)
#else
#define log(fmt, ...) nop(fmt)
#endif
log(\"x\", 1, 2);
";
    let u = pp(src);
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs.iter().any(|(_, t)| t == "trace ( \"x\" , 1 , 2 ) ;"));
    assert!(cs.iter().any(|(_, t)| t == "nop ( \"x\" ) ;"));
}

/// Figure 5: token pasting with a multiply-defined operand.
#[test]
fn fig5_token_pasting_hoists_conditional() {
    let src = &format!(
        "{FIG2}#define uintBPL_t uint(BITS_PER_LONG)\n#define uint(x) xuint(x)\n#define xuint(x) __le ## x\nuintBPL_t *p;\n"
    );
    let u = pp(src);
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs
        .iter()
        .any(|(c, t)| t == "__le64 * p ;" && c.contains("CONFIG_64BIT")));
    assert!(cs.iter().any(|(_, t)| t == "__le32 * p ;"));
    assert!(u.stats.token_pastes_hoisted >= 1);
}

#[test]
fn stringify_takes_argument_as_written() {
    // C semantics: `#x` stringifies the *unexpanded* argument.
    let src = &format!("{FIG2}#define S(x) #x\nconst char *s = S(BITS_PER_LONG);\n");
    let u = pp(src);
    assert_eq!(flat_text(&u), "const char * s = \"BITS_PER_LONG\" ;");
}

#[test]
fn stringify_hoists_explicit_conditional_argument() {
    let src = "\
#define S(x) #x
const char *s = S(
#ifdef CONFIG_64BIT
64
#else
32
#endif
);
";
    let u = pp(src);
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs.iter().any(|(_, t)| t.contains("\"64\"")));
    assert!(cs.iter().any(|(_, t)| t.contains("\"32\"")));
    assert!(u.stats.stringifications_hoisted >= 1);
}

#[test]
fn paste_hoists_explicit_conditional_argument() {
    let src = "\
#define GLUE(a, b) a ## b
int GLUE(__le,
#ifdef CONFIG_64BIT
64
#else
32
#endif
);
";
    let u = pp(src);
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs.iter().any(|(_, t)| t == "int __le64 ;"));
    assert!(cs.iter().any(|(_, t)| t == "int __le32 ;"));
    assert!(u.stats.token_pastes_hoisted >= 1);
}

#[test]
fn computed_include_with_multiply_defined_macro() {
    let u = pp_with(&[
        (
            "main.c",
            "#ifdef B\n#define HDR \"b.h\"\n#else\n#define HDR \"a.h\"\n#endif\n#include HDR\nint x = N;\n",
        ),
        ("a.h", "#define N 1\n"),
        ("b.h", "#define N 2\n"),
    ]);
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs.iter().any(|(_, t)| t == "int x = 2 ;"));
    assert!(cs.iter().any(|(_, t)| t == "int x = 1 ;"));
    assert!(u.stats.includes_hoisted >= 1);
}

#[test]
fn include_under_conditional_processes_under_presence_condition() {
    let u = pp_with(&[
        (
            "main.c",
            "#ifdef A\n#include \"x.h\"\n#endif\nint t = X_DEF;\n",
        ),
        ("x.h", "#define X_DEF 5\n"),
    ]);
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs
        .iter()
        .any(|(c, t)| c.contains("defined(A)") && t.ends_with("int t = 5 ;")));
    assert!(cs.iter().any(|(_, t)| t == "int t = X_DEF ;"));
}

#[test]
fn macro_defined_only_in_infeasible_config_is_ignored() {
    // Table 1: "Ignore infeasible definitions".
    let src = "\
#ifdef A
#define V 1
#endif
#ifndef A
int x = V;
#endif
";
    let u = pp(src);
    let cs = configs(&u);
    // Under !A, V has no feasible definition: stays an identifier.
    assert!(cs.iter().any(|(_, t)| t == "int x = V ;"));
    assert!(!cs.iter().any(|(_, t)| t.contains("= 1")));
}

#[test]
fn redefinition_trims_old_entry() {
    let u = pp("#define N 1\n#define N 2\nint x = N;\n");
    assert_eq!(flat_text(&u), "int x = 2 ;");
    assert!(u.stats.trimmed_entries >= 1);
    assert!(u.stats.redefinitions >= 1);
}

#[test]
fn conditional_undef_partitions_definitions() {
    let src = "#define N 1\n#ifdef A\n#undef N\n#endif\nint x = N;\n";
    let u = pp(src);
    let cs = configs(&u);
    assert_eq!(cs.len(), 2);
    assert!(cs.iter().any(|(_, t)| t == "int x = N ;"));
    assert!(cs.iter().any(|(_, t)| t == "int x = 1 ;"));
}

#[test]
fn three_way_multiply_defined_macro() {
    let src = "\
#if defined(A)
#define V 1
#elif defined(B)
#define V 2
#else
#define V 3
#endif
int x = V;
";
    let u = pp(src);
    let cs = configs(&u);
    assert_eq!(cs.len(), 3);
    for want in ["int x = 1 ;", "int x = 2 ;", "int x = 3 ;"] {
        assert!(cs.iter().any(|(_, t)| t == want), "missing {want}");
    }
}

// ---------------------------------------------------------------------
// Backends agree
// ---------------------------------------------------------------------

#[test]
fn sat_backend_produces_same_configurations() {
    let src = &format!("{FIG2}#if BITS_PER_LONG == 32\nthirtytwo\n#else\nsixtyfour\n#endif\n");
    let u_bdd = pp_with_backend(&[("main.c", src)], CondBackend::Bdd).unwrap();
    let u_sat = pp_with_backend(&[("main.c", src)], CondBackend::Sat).unwrap();
    let mut t1: Vec<String> = configs(&u_bdd).into_iter().map(|(_, t)| t).collect();
    let mut t2: Vec<String> = configs(&u_sat).into_iter().map(|(_, t)| t).collect();
    t1.sort();
    t2.sort();
    assert_eq!(t1, t2);
}

// ---------------------------------------------------------------------
// Display / misc
// ---------------------------------------------------------------------

#[test]
fn display_text_reproduces_fig1_shape() {
    // Figure 1(a) → 1(b): includes and macros resolved, conditional kept.
    let src = "\
#include \"major.h\"
#define MOUSEDEV_MIX 31
static int mousedev_open(void)
{
  int i;
#ifdef CONFIG_INPUT_MOUSEDEV_PSAUX
  if (imajor() == MISC_MAJOR_X)
    i = MOUSEDEV_MIX;
  else
#endif
  i = 7;
  return 0;
}
";
    let u = pp_with(&[("main.c", src), ("major.h", "#define MISC_MAJOR_X 10\n")]);
    let text = u.display_text();
    assert!(text.contains("i = 31"), "macro expanded: {text}");
    assert!(text.contains("== 10"), "include's macro expanded: {text}");
    assert!(text.contains("#if"), "conditional preserved: {text}");
    assert_eq!(u.stats.output_conditionals, 1);
}

#[test]
fn stats_merge_accumulates() {
    let a = pp("#define X 1\nint x = X;\n").stats;
    let b = pp("#ifdef Y\nint y;\n#endif\n").stats;
    let mut total = a;
    total.merge(&b);
    assert_eq!(
        total.macro_definitions,
        a.macro_definitions + b.macro_definitions
    );
    assert_eq!(total.conditionals, a.conditionals + b.conditionals);
    assert!(total.max_depth >= b.max_depth);
}

#[test]
fn pperror_and_diagnostic_display() {
    let err = pp_with_backend(&[("main.c", "#if 1\nunclosed\n")], CondBackend::Bdd)
        .expect_err("unbalanced");
    assert!(format!("{err}").contains("unterminated"));
    let missing = pp_with_backend(&[], CondBackend::Bdd).expect_err("missing");
    assert!(missing.message.contains("not found"));
}

#[test]
fn token_and_conditional_counts() {
    let u = pp("#ifdef A\nint a;\n#endif\nint b;\n");
    assert_eq!(u.token_count(), 6);
    assert_eq!(u.stats.output_conditionals, 1);
}

// ---------------------------------------------------------------------
// Shared (cross-worker) preprocessing cache

/// Builds a preprocessor over `files`, optionally attached to a shared
/// artifact cache — the per-worker setup the corpus driver performs.
fn pp_tool(
    files: &[(&str, &str)],
    shared: Option<&std::sync::Arc<SharedCache>>,
) -> Preprocessor<MemFs> {
    let mut fs = MemFs::new();
    for (p, c) in files {
        fs.add(p, c);
    }
    let ctx = CondCtx::new(CondBackend::Bdd);
    let opts = PpOptions {
        profile: Profile::bare(),
        ..PpOptions::default()
    };
    let mut pp = Preprocessor::new(ctx, opts, fs);
    if let Some(cache) = shared {
        pp.set_shared_cache(std::sync::Arc::clone(cache));
    }
    pp
}

/// Stats with the wall-clock and schedule-dependent fields zeroed, for
/// cache-on vs cache-off comparisons (mirrors `tests/parallel.rs`).
fn deterministic_stats(s: &PpStats) -> PpStats {
    PpStats {
        lex_nanos: 0,
        lex_nanos_saved: 0,
        shared_cache_hits: 0,
        shared_cache_misses: 0,
        condexpr_memo_hits: 0,
        condexpr_memo_misses: 0,
        expansion_memo_hits: 0,
        ..*s
    }
}

#[test]
fn shared_cache_serves_other_workers_without_changing_output() {
    let files = [
        (
            "main.c",
            "#include \"g.h\"\n#ifdef CONFIG_A\nint a = N;\n#endif\nint x = N;\n",
        ),
        ("g.h", "#ifndef G_H\n#define G_H\n#define N 9\n#endif\n"),
    ];
    let cache = std::sync::Arc::new(SharedCache::new());

    // Worker 1: cold cache — every file is a miss and gets published.
    let mut w1 = pp_tool(&files, Some(&cache));
    let u1 = w1.preprocess("main.c").expect("preprocess");
    assert_eq!(u1.stats.shared_cache_hits, 0);
    assert_eq!(u1.stats.shared_cache_misses, 2, "main.c and g.h published");
    assert_eq!(cache.len(), 2);

    // Worker 2: same tree, fresh preprocessor — every file is served
    // from the shared cache; nothing is lexed or re-published.
    let mut w2 = pp_tool(&files, Some(&cache));
    let u2 = w2.preprocess("main.c").expect("preprocess");
    assert_eq!(u2.stats.shared_cache_hits, 2);
    assert_eq!(u2.stats.shared_cache_misses, 0);
    assert_eq!(u2.stats.lex_nanos, 0, "no lexing on a fully warm cache");
    assert!(u2.stats.lex_nanos_saved > 0, "credited the producer's cost");
    assert_eq!(cache.len(), 2, "insert-once: no re-publication");

    // A cache-less run is the reference: byte-identical rendered output
    // and identical deterministic counters on both workers.
    let mut plain = pp_tool(&files, None);
    let up = plain.preprocess("main.c").expect("preprocess");
    assert_eq!(up.stats.shared_cache_hits + up.stats.shared_cache_misses, 0);
    assert_eq!(u1.display_text(), up.display_text());
    assert_eq!(u2.display_text(), up.display_text());
    assert_eq!(
        deterministic_stats(&u1.stats),
        deterministic_stats(&up.stats)
    );
    assert_eq!(
        deterministic_stats(&u2.stats),
        deterministic_stats(&up.stats)
    );
}

#[test]
fn guarded_header_included_many_times_is_lexed_exactly_once() {
    // One guard-protected header, included three times by each of three
    // units, across two workers. The shared-cache counters prove the
    // header was lexed exactly once in the whole process: one miss
    // (the publish) and pure hits afterwards.
    // Units differ by one identifier: distinct content, so each is its
    // own artifact under content-hash keying (identical contents would
    // share one — see `identical_contents_share_one_artifact`).
    let hdr = "#ifndef G_H\n#define G_H\n#define N 4\n#endif\n";
    let unit_a = "#include \"g.h\"\n#include \"g.h\"\n#include \"g.h\"\nint x = N;\n";
    let unit_b = "#include \"g.h\"\n#include \"g.h\"\n#include \"g.h\"\nint y = N;\n";
    let unit_c = "#include \"g.h\"\n#include \"g.h\"\n#include \"g.h\"\nint z = N;\n";
    let files = [
        ("a.c", unit_a),
        ("b.c", unit_b),
        ("c.c", unit_c),
        ("g.h", hdr),
    ];
    let cache = std::sync::Arc::new(SharedCache::new());

    let mut w1 = pp_tool(&files, Some(&cache));
    let ua = w1.preprocess("a.c").expect("a.c");
    // §3.2 case 4a: with the guard definitely defined, repeat includes
    // are skipped before reprocessing — and never pollute conditions.
    assert_eq!(ua.stats.includes, 3);
    assert_eq!(ua.stats.reincluded_headers, 0);
    assert_eq!(ua.stats.output_conditionals, 0);
    assert_eq!(ua.stats.shared_cache_misses, 2, "a.c + g.h lexed");

    // Second unit, same worker: the L1 cache serves g.h (no L2 traffic),
    // and `load_cached` re-registers the guard into the fresh per-unit
    // macro table, so the case-4a skip still fires.
    let ub = w1.preprocess("b.c").expect("b.c");
    assert_eq!(ub.stats.reincluded_headers, 0);
    assert_eq!(ub.stats.shared_cache_misses, 1, "only b.c itself");
    assert_eq!(ub.stats.shared_cache_hits, 0, "g.h came from L1");
    assert_eq!(flat_text(&ub), "int y = 4 ;");

    // Third unit, different worker: g.h arrives via L2 thaw, which must
    // also re-register the guard for the skip to fire.
    let mut w2 = pp_tool(&files, Some(&cache));
    let uc = w2.preprocess("c.c").expect("c.c");
    assert_eq!(uc.stats.shared_cache_hits, 1, "g.h served from L2");
    assert_eq!(uc.stats.shared_cache_misses, 1, "only c.c itself lexed");
    assert_eq!(uc.stats.reincluded_headers, 0, "guard skip after thaw");
    assert_eq!(uc.stats.output_conditionals, 0);
    assert_eq!(flat_text(&uc), "int z = 4 ;");

    // Every file in the tree was lexed exactly once for the whole
    // process: one miss per distinct path, no re-publication.
    let total_misses =
        ua.stats.shared_cache_misses + ub.stats.shared_cache_misses + uc.stats.shared_cache_misses;
    assert_eq!(total_misses, 4, "a.c, b.c, c.c, g.h — each lexed once");
    assert_eq!(cache.len(), 4);
}

#[test]
fn failed_lexes_are_never_published() {
    let files = [
        ("main.c", "#include \"bad.h\"\nint x;\n"),
        ("bad.h", "#ifdef OPEN\n"),
    ];
    let cache = std::sync::Arc::new(SharedCache::new());
    let mut pp = pp_tool(&files, Some(&cache));
    let u = pp.preprocess("main.c");
    assert!(u.is_err(), "unterminated conditional in header is fatal");
    let bad_hash = SharedCache::content_hash("#ifdef OPEN\n".as_bytes());
    assert!(
        cache.get(bad_hash).is_none(),
        "broken artifacts must not be cached"
    );
    assert_eq!(cache.len(), 1, "only main.c itself was published");
}

#[test]
fn identical_contents_share_one_artifact() {
    // Content-hash keying makes the cache content-addressed: two paths
    // with identical bytes publish one artifact, and the second path
    // *hits* even though it was never lexed under that name.
    let body = "#define N 7\nint n = N;\n";
    let files = [("a.c", body), ("copy_of_a.c", body)];
    let cache = std::sync::Arc::new(SharedCache::new());
    let mut pp = pp_tool(&files, Some(&cache));
    let ua = pp.preprocess("a.c").expect("a.c");
    assert_eq!(ua.stats.shared_cache_misses, 1);
    let mut pp2 = pp_tool(&files, Some(&cache));
    let ub = pp2.preprocess("copy_of_a.c").expect("copy");
    assert_eq!(ub.stats.shared_cache_hits, 1, "same bytes, shared artifact");
    assert_eq!(ub.stats.shared_cache_misses, 0);
    assert_eq!(cache.len(), 1);
    assert_eq!(flat_text(&ua), flat_text(&ub));
}

#[test]
fn duplicate_insert_skips_the_freeze() {
    // The incumbent re-check under the write lock must run *before* the
    // freeze closure: a second publish for the same hash adopts the
    // existing artifact without invoking `make`, and the counter proves
    // the race path was taken.
    let cache = SharedCache::new();
    let items: Vec<crate::directives::RawItem> = Vec::new();
    let first = cache.insert_with(42, || SharedArtifact::freeze(&items, None, 3, 11));
    assert_eq!(cache.duplicate_freezes(), 0);
    let second = cache.insert_with(42, || panic!("freeze must not run for an incumbent"));
    assert!(std::sync::Arc::ptr_eq(&first, &second));
    assert_eq!(cache.duplicate_freezes(), 1);
    assert_eq!(cache.len(), 1);
}

#[test]
fn hash_memo_rereads_only_across_generations() {
    let cache = SharedCache::new();
    let reads = std::cell::Cell::new(0u32);
    let read = || {
        reads.set(reads.get() + 1);
        Some(std::sync::Arc::<str>::from("int a;\n"))
    };
    let (h1, src1) = cache.current_hash("a.h", read).expect("exists");
    assert_eq!(reads.get(), 1);
    assert!(src1.is_some(), "fresh read handed back to the caller");
    // Same generation: memoized, no read, no contents handed back.
    let (h2, src2) = cache.current_hash("a.h", read).expect("exists");
    assert_eq!((h2, reads.get()), (h1, 1));
    assert!(src2.is_none());
    assert_eq!(cache.rehashes(), 1);
    // New generation: the memo is stale, the file is re-read; changed
    // bytes hash to a new key.
    cache.next_generation();
    let edited = || Some(std::sync::Arc::<str>::from("int a2;\n"));
    let (h3, _) = cache.current_hash("a.h", edited).expect("exists");
    assert_ne!(h3, h1, "edited contents must change the key");
    assert_eq!(cache.rehashes(), 2);
    // Missing files are not memoized as anything.
    assert!(cache.current_hash("gone.h", || None).is_none());
}

#[test]
fn sweep_evicts_dead_hashes_and_keeps_live_ones() {
    let files = [
        ("main.c", "#include \"g.h\"\nint x = N;\n"),
        ("g.h", "#define N 9\n"),
    ];
    let cache = std::sync::Arc::new(SharedCache::new());
    let mut pp = pp_tool(&files, Some(&cache));
    pp.preprocess("main.c").expect("preprocess");
    assert_eq!(cache.len(), 2);

    // Next batch: g.h is edited; main.c revalidates, g.h re-publishes
    // under its new hash. The old g.h artifact is now a dead hash.
    let files2 = [
        ("main.c", "#include \"g.h\"\nint x = N;\n"),
        ("g.h", "#define N 10\n"),
    ];
    cache.next_generation();
    let mut pp2 = pp_tool(&files2, Some(&cache));
    let u2 = pp2.preprocess("main.c").expect("preprocess");
    assert_eq!(u2.stats.shared_cache_hits, 1, "main.c unchanged: hit");
    assert_eq!(u2.stats.shared_cache_misses, 1, "g.h edited: relexed");
    assert_eq!(cache.len(), 3, "old g.h artifact still resident");
    assert_eq!(cache.sweep(), 1, "exactly the dead hash evicted");
    assert_eq!(cache.len(), 2);
    assert_eq!(flat_text(&u2), "int x = 10 ;");
}

#[test]
fn warm_worker_revalidates_its_l1_across_generations() {
    // One worker, two batches: the worker's L1 entry for an edited file
    // must be evicted at the generation boundary (hash mismatch) while
    // the unchanged header's entry revalidates in place.
    let fs = {
        let mem = MemFs::new()
            .file("main.c", "#include \"g.h\"\nint x = N;\n")
            .file("g.h", "#define N 1\n");
        std::sync::Arc::new(crate::SharedMemFs::from_mem(&mem))
    };
    let cache = std::sync::Arc::new(SharedCache::new());
    let ctx = CondCtx::new(CondBackend::Bdd);
    let opts = PpOptions {
        profile: Profile::bare(),
        ..PpOptions::default()
    };
    let mut pp = Preprocessor::new(ctx, opts, std::sync::Arc::clone(&fs));
    pp.set_shared_cache(std::sync::Arc::clone(&cache));

    let u1 = pp.preprocess("main.c").expect("batch 1");
    assert_eq!(flat_text(&u1), "int x = 1 ;");
    let deps1 = pp.unit_deps();
    assert_eq!(
        deps1.iter().map(|(p, _)| p.as_str()).collect::<Vec<_>>(),
        vec!["g.h", "main.c"],
        "sorted include-closure fingerprint"
    );

    // Edit between batches, as the pooled runner would see it.
    fs.set("main.c", "#include \"g.h\"\nint x = N + N;\n");
    cache.next_generation();
    let u2 = pp.preprocess("main.c").expect("batch 2");
    assert_eq!(flat_text(&u2), "int x = 1 + 1 ;", "edit visible through L1");
    let deps2 = pp.unit_deps();
    assert_eq!(deps1[0], deps2[0], "unchanged header: same hash");
    assert_ne!(deps1[1].1, deps2[1].1, "edited unit: new hash");
}
