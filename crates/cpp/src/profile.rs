//! Compiler/OS **profiles**: the built-in macro ground truth and dialect
//! policies of one compiler/OS target.
//!
//! The paper configures SuperC with gcc's built-ins (§2). That is one
//! point in a larger scenario space: the same unit means different things
//! under GCC/Clang/MSVC × Linux/macOS/Windows, because each target
//! predefines different macros (`__GNUC__`, `__clang__`, `_MSC_VER`,
//! `_WIN32`, `__APPLE__`, ...) and applies different dialect policies.
//! A [`Profile`] makes that target a first-class, named value:
//!
//! * the **built-in macro table** ([`Builtins`]) installed before every
//!   unit;
//! * the **undefined-identifier policy** ([`UndefIdentPolicy`]): what a
//!   free identifier does when a conditional expression forces it to a
//!   value — gcc silently folds it to `0`, MSVC's `/Wall` diagnoses it
//!   first (warning C4668);
//! * the **`#pragma once` quirk**: whether the preprocessor honors
//!   `#pragma once` as an include guard (all four shipped targets do;
//!   the bare test profile keeps the historical ignore-it behavior).
//!
//! The analysis layer runs a corpus under *several* profiles at once and
//! diffs the per-profile results into portability lints; see
//! `superc-analyze` and the `--profiles` flag on `superc lint`.

/// Compiler "ground truth" macros (§2: built-ins like `__STDC_VERSION__`).
///
/// A profile carries one of these; standalone construction is kept for
/// tests and custom embeddings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Builtins {
    /// `(name, replacement-text)` pairs, object-like.
    pub defs: Vec<(String, String)>,
}

impl Default for Builtins {
    fn default() -> Self {
        Builtins::gcc_like()
    }
}

fn to_defs(defs: &[(&str, &str)]) -> Vec<(String, String)> {
    defs.iter()
        .map(|&(n, b)| (n.to_string(), b.to_string()))
        .collect()
}

/// Macros every hosted gcc/clang-style C99 target predefines, shared by
/// the gcc and clang profiles (MSVC predefines almost none of these).
const GNU_COMMON: &[(&str, &str)] = &[
    ("__STDC__", "1"),
    ("__STDC_HOSTED__", "1"),
    ("__SIZEOF_INT__", "4"),
    ("__SIZEOF_LONG__", "8"),
    ("__SIZEOF_POINTER__", "8"),
    ("__CHAR_BIT__", "8"),
    ("__INT_MAX__", "2147483647"),
    ("__LONG_MAX__", "9223372036854775807L"),
    ("__x86_64__", "1"),
];

impl Builtins {
    /// No built-ins at all (for tests).
    pub fn none() -> Self {
        Builtins { defs: Vec::new() }
    }

    /// A representative gcc-4-on-x86-Linux set (the paper's target).
    pub fn gcc_like() -> Self {
        let mut defs = to_defs(GNU_COMMON);
        defs.extend(to_defs(&[
            ("__STDC_VERSION__", "199901L"),
            ("__GNUC__", "4"),
            ("__GNUC_MINOR__", "5"),
            ("__GNUC_PATCHLEVEL__", "1"),
            ("__ELF__", "1"),
            ("__linux__", "1"),
            ("__unix__", "1"),
        ]));
        Builtins { defs }
    }

    /// A representative clang set (clang masquerades as gcc 4.2, speaks
    /// C11, and adds its own version macros). OS macros come from the
    /// profile constructors.
    fn clang_like() -> Self {
        let mut defs = to_defs(GNU_COMMON);
        defs.extend(to_defs(&[
            ("__STDC_VERSION__", "201112L"),
            ("__GNUC__", "4"),
            ("__GNUC_MINOR__", "2"),
            ("__GNUC_PATCHLEVEL__", "1"),
            ("__clang__", "1"),
            ("__clang_major__", "11"),
            ("__clang_minor__", "0"),
            ("__llvm__", "1"),
        ]));
        Builtins { defs }
    }

    /// A representative MSVC x64 set. MSVC predefines neither the
    /// `__GNUC__` family nor `__STDC_VERSION__` (pre-C11 mode), which is
    /// exactly the divergence the portability lints exist to surface.
    fn msvc_like() -> Self {
        Builtins {
            defs: to_defs(&[
                ("_MSC_VER", "1916"),
                ("_MSC_FULL_VER", "191627030"),
                ("_WIN32", "1"),
                ("_WIN64", "1"),
                ("_M_X64", "100"),
                ("_M_AMD64", "100"),
                ("_INTEGRAL_MAX_BITS", "64"),
            ]),
        }
    }
}

/// What a *free* identifier (never defined, never undefined) does when a
/// conditional expression forces it to a concrete value — which only
/// happens in single-configuration mode, where there is no condition
/// variable to fall back to. This is the policy `condexpr.rs` used to
/// hard-code as "gcc semantics" in two places; hoisting it here gives
/// each profile one seat at the single decision point
/// (`Preprocessor::fold_free_idents` / `note_folded_idents`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UndefIdentPolicy {
    /// gcc/clang default: the identifier silently evaluates to `0`.
    Zero,
    /// MSVC `/Wall` strictness (warning C4668): the identifier still
    /// evaluates to `0`, but every folded name is diagnosed.
    WarnThenZero,
}

/// A named compiler/OS target: built-in macros plus dialect policies.
///
/// # Examples
///
/// ```
/// use superc_cpp::Profile;
///
/// let p = Profile::named("msvc-windows").unwrap();
/// assert!(p.builtins.defs.iter().any(|(n, _)| n == "_WIN32"));
/// assert!(Profile::named("gcc-windows").is_none());
/// assert_eq!(Profile::default().name, "gcc-linux");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// Stable profile name (`gcc-linux`, `msvc-windows`, ...), carried
    /// into portability diagnostics.
    pub name: String,
    /// Compiler family (`gcc`, `clang`, `msvc`, or `none`).
    pub compiler: String,
    /// Operating system (`linux`, `macos`, `windows`, or `none`).
    pub os: String,
    /// Built-in macros installed before every compilation unit.
    pub builtins: Builtins,
    /// Free-identifier evaluation policy in single-configuration mode.
    pub undef_ident: UndefIdentPolicy,
    /// Honor `#pragma once` as an include guard (configuration-aware:
    /// only configurations that already included the file skip it).
    pub pragma_once: bool,
}

impl Default for Profile {
    fn default() -> Self {
        Profile::gcc_linux()
    }
}

impl Profile {
    /// The paper's target: gcc 4 on x86-64 Linux.
    pub fn gcc_linux() -> Self {
        Profile {
            name: "gcc-linux".to_string(),
            compiler: "gcc".to_string(),
            os: "linux".to_string(),
            builtins: Builtins::gcc_like(),
            undef_ident: UndefIdentPolicy::Zero,
            pragma_once: true,
        }
    }

    /// clang on x86-64 Linux (gcc-compatible macros plus `__clang__`,
    /// C11 `__STDC_VERSION__`).
    pub fn clang_linux() -> Self {
        let mut builtins = Builtins::clang_like();
        builtins.defs.extend(to_defs(&[
            ("__ELF__", "1"),
            ("__linux__", "1"),
            ("__unix__", "1"),
        ]));
        Profile {
            name: "clang-linux".to_string(),
            compiler: "clang".to_string(),
            os: "linux".to_string(),
            builtins,
            undef_ident: UndefIdentPolicy::Zero,
            pragma_once: true,
        }
    }

    /// Apple clang on x86-64 macOS: `__APPLE__`/`__MACH__`, Mach-O (no
    /// `__ELF__`), and no `__linux__`/`__unix__`.
    pub fn clang_macos() -> Self {
        let mut builtins = Builtins::clang_like();
        builtins
            .defs
            .extend(to_defs(&[("__APPLE__", "1"), ("__MACH__", "1")]));
        Profile {
            name: "clang-macos".to_string(),
            compiler: "clang".to_string(),
            os: "macos".to_string(),
            builtins,
            undef_ident: UndefIdentPolicy::Zero,
            pragma_once: true,
        }
    }

    /// MSVC on x64 Windows, with `/Wall`-style strictness about
    /// undefined identifiers in `#if` expressions (C4668).
    pub fn msvc_windows() -> Self {
        Profile {
            name: "msvc-windows".to_string(),
            compiler: "msvc".to_string(),
            os: "windows".to_string(),
            builtins: Builtins::msvc_like(),
            undef_ident: UndefIdentPolicy::WarnThenZero,
            pragma_once: true,
        }
    }

    /// No built-ins, no quirks: the profile tests run under (it also
    /// preserves the historical ignore-`#pragma once` behavior).
    pub fn bare() -> Self {
        Profile {
            name: "bare".to_string(),
            compiler: "none".to_string(),
            os: "none".to_string(),
            builtins: Builtins::none(),
            undef_ident: UndefIdentPolicy::Zero,
            pragma_once: false,
        }
    }

    /// Looks up a shipped profile by name.
    pub fn named(name: &str) -> Option<Profile> {
        match name {
            "gcc-linux" => Some(Profile::gcc_linux()),
            "clang-linux" => Some(Profile::clang_linux()),
            "clang-macos" => Some(Profile::clang_macos()),
            "msvc-windows" => Some(Profile::msvc_windows()),
            "bare" => Some(Profile::bare()),
            _ => None,
        }
    }

    /// Every shipped profile name, in a stable order (for `--help` text
    /// and error messages).
    pub fn all_names() -> &'static [&'static str] {
        &[
            "gcc-linux",
            "clang-linux",
            "clang-macos",
            "msvc-windows",
            "bare",
        ]
    }

    /// Replaces the built-in table, keeping the dialect policies — for
    /// callers that used to construct a bare `Builtins` value.
    pub fn with_builtins(mut self, builtins: Builtins) -> Self {
        self.builtins = builtins;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_round_trips_every_shipped_profile() {
        for name in Profile::all_names() {
            let p = Profile::named(name).expect("shipped profile resolves");
            assert_eq!(&p.name, name);
        }
        assert_eq!(Profile::named("tcc-plan9"), None);
    }

    #[test]
    fn profiles_diverge_on_the_portability_axes() {
        let gcc = Profile::gcc_linux();
        let msvc = Profile::msvc_windows();
        let mac = Profile::clang_macos();
        let has = |p: &Profile, n: &str| p.builtins.defs.iter().any(|(name, _)| name == n);
        assert!(has(&gcc, "__GNUC__") && !has(&msvc, "__GNUC__"));
        assert!(has(&msvc, "_WIN32") && !has(&gcc, "_WIN32"));
        assert!(has(&mac, "__APPLE__") && !has(&gcc, "__APPLE__"));
        assert!(has(&gcc, "__STDC_VERSION__") && !has(&msvc, "__STDC_VERSION__"));
        assert_eq!(msvc.undef_ident, UndefIdentPolicy::WarnThenZero);
        assert_eq!(gcc.undef_ident, UndefIdentPolicy::Zero);
    }
}
