//! Process-wide shared preprocessing artifact cache (the "L2").
//!
//! Corpus workers repeat the most expensive *configuration-independent*
//! preprocessing work per worker: lexing a header and structuring its
//! token stream into the raw directive tree ([`crate::directives`]).
//! Those artifacts depend only on the file's bytes — never on the macro
//! table, presence conditions, or worker identity — so one worker's lex
//! can serve every other worker.
//!
//! The obstacle is that the per-worker caches hold `Rc`-based trees
//! ([`Token`] text is `Rc<str>`, definitions are `Rc<MacroDef>`), which
//! are not `Send`. This module mirrors the raw tree into `Arc`-based
//! [`SharedItem`]s ("freeze"), stores them in a sharded, insert-once
//! map, and converts back into a fresh `Rc` tree per worker ("thaw").
//! Freezing content-dedups token spellings into shared `Arc<str>`s, so
//! thawing can dedup by pointer alone — one `Rc<str>` per distinct
//! spelling per worker, preserving the memory-sharing the per-worker
//! cache already had.
//!
//! Two deliberate simplifications keep the cache coherent without any
//! invalidation protocol:
//!
//! * **Insert-once / read-many.** Source files do not change during a
//!   corpus run, so the first worker to lex a path publishes the
//!   artifact and every later `insert` for that path adopts the
//!   existing entry. There is no eviction and no invalidation.
//! * **Positions are restamped on thaw.** Token positions embed the
//!   lexing worker's [`FileId`], which is a per-worker notion; the
//!   frozen form stores only line/column and the thaw stamps the local
//!   worker's id so downstream behavior (diagnostics, `__FILE__`) is
//!   byte-identical with a cache-off run.
//!
//! Failed lexes are *not* cached: errors are rare, unit-fatal, and
//! re-deriving them per worker keeps the error path identical to the
//! cache-off pipeline.

use std::rc::Rc;
use std::sync::{Arc, RwLock};

use superc_lexer::{FileId, SourcePos, Token, TokenKind};
use superc_util::{FastMap, FxBuildHasher};

use crate::directives::{detect_pragma_once, RawGroup, RawItem, RawTest};
use crate::macrotable::MacroDef;

/// Shard count; a small power of two is plenty — contention is already
/// low because workers mostly *read* after the first few units warm the
/// cache.
const SHARDS: usize = 16;

/// A frozen source position: line/column only. The owning artifact was
/// lexed from a single file, so the [`FileId`] is carried once at thaw
/// time rather than per token.
#[derive(Clone, Copy, Debug)]
struct FrozenPos {
    line: u32,
    col: u32,
}

impl FrozenPos {
    fn freeze(pos: SourcePos) -> FrozenPos {
        FrozenPos {
            line: pos.line,
            col: pos.col,
        }
    }

    fn thaw(self, file: FileId) -> SourcePos {
        SourcePos {
            file,
            line: self.line,
            col: self.col,
        }
    }
}

/// A [`Token`] with its spelling promoted to `Arc<str>`.
#[derive(Clone, Debug)]
struct FrozenTok {
    kind: TokenKind,
    text: Arc<str>,
    pos: FrozenPos,
    ws_before: bool,
}

/// Mirror of [`MacroDef`] with shared spellings.
#[derive(Debug)]
enum FrozenDef {
    Object {
        body: Vec<FrozenTok>,
    },
    Function {
        params: Vec<Arc<str>>,
        variadic: bool,
        body: Vec<FrozenTok>,
    },
}

/// Mirror of [`RawTest`].
#[derive(Debug)]
enum FrozenTest {
    Expr(Vec<FrozenTok>),
    Ifdef(Arc<str>),
    Ifndef(Arc<str>),
    Else,
}

/// Mirror of [`RawGroup`].
#[derive(Debug)]
struct FrozenGroup {
    test: FrozenTest,
    items: Vec<SharedItem>,
    pos: FrozenPos,
}

/// Mirror of [`RawItem`] over `Arc`-based leaves; `Send + Sync` so whole
/// directive trees can cross worker threads.
#[derive(Debug)]
enum SharedItem {
    Text(Vec<FrozenTok>),
    Define {
        name: Arc<str>,
        def: Arc<FrozenDef>,
        pos: FrozenPos,
    },
    Undef {
        name: Arc<str>,
        pos: FrozenPos,
    },
    Include {
        tokens: Vec<FrozenTok>,
        pos: FrozenPos,
    },
    Conditional {
        groups: Vec<FrozenGroup>,
        pos: FrozenPos,
    },
    Error {
        tokens: Vec<FrozenTok>,
        pos: FrozenPos,
    },
    Warning {
        tokens: Vec<FrozenTok>,
        pos: FrozenPos,
    },
    Pragma {
        tokens: Vec<FrozenTok>,
        pos: FrozenPos,
    },
    Line {
        tokens: Vec<FrozenTok>,
        pos: FrozenPos,
    },
}

/// One file's frozen preprocessing artifact: the structured directive
/// tree, the detected include guard, and the cost metadata the consumer
/// credits on a hit.
#[derive(Debug)]
pub struct SharedArtifact {
    items: Vec<SharedItem>,
    guard: Option<Arc<str>>,
    /// Source size in bytes (drives `bytes_processed` accounting).
    pub bytes: usize,
    /// What the producing worker spent lexing + structuring this file;
    /// credited to `lex_nanos_saved` on every shared-cache hit.
    pub lex_nanos: u64,
    /// The file opens with a top-level `#pragma once` (profile-independent
    /// syntax fact, so sharing across profiles stays sound).
    pub pragma_once: bool,
}

/// Freeze-side interning state: one `Arc<str>` per distinct spelling.
#[derive(Default)]
struct Freezer {
    strs: FastMap<String, Arc<str>>,
}

impl Freezer {
    fn text(&mut self, s: &str) -> Arc<str> {
        if let Some(a) = self.strs.get(s) {
            return Arc::clone(a);
        }
        let a: Arc<str> = Arc::from(s);
        self.strs.insert(s.to_string(), Arc::clone(&a));
        a
    }

    fn tok(&mut self, t: &Token) -> FrozenTok {
        FrozenTok {
            kind: t.kind,
            text: self.text(&t.text),
            pos: FrozenPos::freeze(t.pos),
            ws_before: t.ws_before,
        }
    }

    fn toks(&mut self, ts: &[Token]) -> Vec<FrozenTok> {
        ts.iter().map(|t| self.tok(t)).collect()
    }

    fn def(&mut self, d: &MacroDef) -> FrozenDef {
        match d {
            MacroDef::Object { body } => FrozenDef::Object {
                body: self.toks(body),
            },
            MacroDef::Function {
                params,
                variadic,
                body,
            } => FrozenDef::Function {
                params: params.iter().map(|p| self.text(p)).collect(),
                variadic: *variadic,
                body: self.toks(body),
            },
        }
    }

    fn item(&mut self, item: &RawItem) -> SharedItem {
        match item {
            RawItem::Text(ts) => SharedItem::Text(self.toks(ts)),
            RawItem::Define { name, def, pos } => SharedItem::Define {
                name: self.text(name),
                def: Arc::new(self.def(def)),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Undef { name, pos } => SharedItem::Undef {
                name: self.text(name),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Include { tokens, pos } => SharedItem::Include {
                tokens: self.toks(tokens),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Conditional { groups, pos } => SharedItem::Conditional {
                groups: groups.iter().map(|g| self.group(g)).collect(),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Error { tokens, pos } => SharedItem::Error {
                tokens: self.toks(tokens),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Warning { tokens, pos } => SharedItem::Warning {
                tokens: self.toks(tokens),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Pragma { tokens, pos } => SharedItem::Pragma {
                tokens: self.toks(tokens),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Line { tokens, pos } => SharedItem::Line {
                tokens: self.toks(tokens),
                pos: FrozenPos::freeze(*pos),
            },
        }
    }

    fn group(&mut self, g: &RawGroup) -> FrozenGroup {
        let test = match &g.test {
            RawTest::Expr(ts) => FrozenTest::Expr(self.toks(ts)),
            RawTest::Ifdef(n) => FrozenTest::Ifdef(self.text(n)),
            RawTest::Ifndef(n) => FrozenTest::Ifndef(self.text(n)),
            RawTest::Else => FrozenTest::Else,
        };
        FrozenGroup {
            test,
            items: g.items.iter().map(|i| self.item(i)).collect(),
            pos: FrozenPos::freeze(g.pos),
        }
    }
}

/// Thaw-side state: pointer-keyed because the freeze already
/// content-deduped every spelling, so `Arc` identity *is* content
/// identity — an O(1) lookup with no string hashing.
struct Thawer {
    file: FileId,
    strs: FastMap<usize, Rc<str>>,
}

impl Thawer {
    fn text(&mut self, s: &Arc<str>) -> Rc<str> {
        let key = Arc::as_ptr(s) as *const u8 as usize;
        if let Some(r) = self.strs.get(&key) {
            return Rc::clone(r);
        }
        let r: Rc<str> = Rc::from(&**s);
        self.strs.insert(key, Rc::clone(&r));
        r
    }

    fn tok(&mut self, t: &FrozenTok) -> Token {
        Token {
            kind: t.kind,
            text: self.text(&t.text),
            pos: t.pos.thaw(self.file),
            ws_before: t.ws_before,
        }
    }

    fn toks(&mut self, ts: &[FrozenTok]) -> Vec<Token> {
        ts.iter().map(|t| self.tok(t)).collect()
    }

    fn def(&mut self, d: &FrozenDef) -> MacroDef {
        match d {
            FrozenDef::Object { body } => MacroDef::Object {
                body: self.toks(body),
            },
            FrozenDef::Function {
                params,
                variadic,
                body,
            } => MacroDef::Function {
                params: params.iter().map(|p| self.text(p)).collect(),
                variadic: *variadic,
                body: self.toks(body),
            },
        }
    }

    fn item(&mut self, item: &SharedItem) -> RawItem {
        match item {
            SharedItem::Text(ts) => RawItem::Text(self.toks(ts)),
            SharedItem::Define { name, def, pos } => RawItem::Define {
                name: self.text(name),
                def: Rc::new(self.def(def)),
                pos: pos.thaw(self.file),
            },
            SharedItem::Undef { name, pos } => RawItem::Undef {
                name: self.text(name),
                pos: pos.thaw(self.file),
            },
            SharedItem::Include { tokens, pos } => RawItem::Include {
                tokens: self.toks(tokens),
                pos: pos.thaw(self.file),
            },
            SharedItem::Conditional { groups, pos } => RawItem::Conditional {
                groups: groups.iter().map(|g| self.group(g)).collect(),
                pos: pos.thaw(self.file),
            },
            SharedItem::Error { tokens, pos } => RawItem::Error {
                tokens: self.toks(tokens),
                pos: pos.thaw(self.file),
            },
            SharedItem::Warning { tokens, pos } => RawItem::Warning {
                tokens: self.toks(tokens),
                pos: pos.thaw(self.file),
            },
            SharedItem::Pragma { tokens, pos } => RawItem::Pragma {
                tokens: self.toks(tokens),
                pos: pos.thaw(self.file),
            },
            SharedItem::Line { tokens, pos } => RawItem::Line {
                tokens: self.toks(tokens),
                pos: pos.thaw(self.file),
            },
        }
    }

    fn group(&mut self, g: &FrozenGroup) -> RawGroup {
        let test = match &g.test {
            FrozenTest::Expr(ts) => RawTest::Expr(self.toks(ts)),
            FrozenTest::Ifdef(n) => RawTest::Ifdef(self.text(n)),
            FrozenTest::Ifndef(n) => RawTest::Ifndef(self.text(n)),
            FrozenTest::Else => RawTest::Else,
        };
        RawGroup {
            test,
            items: g.items.iter().map(|i| self.item(i)).collect(),
            pos: g.pos.thaw(self.file),
        }
    }
}

impl SharedArtifact {
    /// Freezes one file's raw directive tree into the shareable form,
    /// content-deduplicating spellings.
    pub fn freeze(
        items: &[RawItem],
        guard: Option<&Rc<str>>,
        bytes: usize,
        lex_nanos: u64,
    ) -> SharedArtifact {
        let pragma_once = detect_pragma_once(items);
        let mut fz = Freezer::default();
        let items = items.iter().map(|i| fz.item(i)).collect();
        let guard = guard.map(|g| fz.text(g));
        SharedArtifact {
            items,
            guard,
            bytes,
            lex_nanos,
            pragma_once,
        }
    }

    /// Rebuilds a worker-local `Rc` tree, stamping `file` — the *local*
    /// worker's id for this path — onto every position so downstream
    /// output matches a cache-off run byte for byte.
    pub fn thaw(&self, file: FileId) -> (Vec<RawItem>, Option<Rc<str>>) {
        let mut th = Thawer {
            file,
            strs: FastMap::default(),
        };
        let items = self.items.iter().map(|i| th.item(i)).collect();
        let guard = self.guard.as_ref().map(|g| th.text(g));
        (items, guard)
    }
}

/// The sharded insert-once/read-many artifact map. One instance per
/// corpus run, shared by `Arc` across workers; see the module docs for
/// the coherence argument.
/// One lock-guarded slice of the path → artifact map.
type Shard = RwLock<FastMap<String, Arc<SharedArtifact>>>;

pub struct SharedCache {
    shards: Box<[Shard]>,
}

impl Default for SharedCache {
    fn default() -> Self {
        SharedCache::new()
    }
}

impl SharedCache {
    /// An empty cache with a fixed shard count.
    pub fn new() -> SharedCache {
        let shards = (0..SHARDS)
            .map(|_| RwLock::new(FastMap::default()))
            .collect();
        SharedCache { shards }
    }

    fn shard(&self, path: &str) -> &Shard {
        use std::hash::BuildHasher;
        let h = FxBuildHasher::default().hash_one(path);
        &self.shards[(h as usize) % SHARDS]
    }

    /// The artifact for `path`, if some worker already published one.
    pub fn get(&self, path: &str) -> Option<Arc<SharedArtifact>> {
        self.shard(path)
            .read()
            .expect("shared cache shard poisoned")
            .get(path)
            .map(Arc::clone)
    }

    /// Publishes an artifact for `path`. First writer wins: if another
    /// worker raced us here, their artifact is returned and `artifact`
    /// is dropped — both were frozen from the same immutable bytes, so
    /// either is correct, and keeping the incumbent maximizes sharing.
    pub fn insert(&self, path: &str, artifact: SharedArtifact) -> Arc<SharedArtifact> {
        let mut shard = self
            .shard(path)
            .write()
            .expect("shared cache shard poisoned");
        if let Some(existing) = shard.get(path) {
            return Arc::clone(existing);
        }
        let arc = Arc::new(artifact);
        shard.insert(path.to_string(), Arc::clone(&arc));
        arc
    }

    /// Number of cached artifacts across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shared cache shard poisoned").len())
            .sum()
    }

    /// True when no artifact has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The whole point of the mirror types: artifacts must cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedCache>();
    assert_send_sync::<SharedArtifact>();
};
