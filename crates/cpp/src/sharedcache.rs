//! Process-wide shared preprocessing artifact cache (the "L2").
//!
//! Corpus workers repeat the most expensive *configuration-independent*
//! preprocessing work per worker: lexing a header and structuring its
//! token stream into the raw directive tree ([`crate::directives`]).
//! Those artifacts depend only on the file's bytes — never on the macro
//! table, presence conditions, or worker identity — so one worker's lex
//! can serve every other worker.
//!
//! The obstacle is that the per-worker caches hold `Rc`-based trees
//! ([`Token`] text is `Rc<str>`, definitions are `Rc<MacroDef>`), which
//! are not `Send`. This module mirrors the raw tree into `Arc`-based
//! [`SharedItem`]s ("freeze"), stores them in a sharded map, and
//! converts back into a fresh `Rc` tree per worker ("thaw"). Freezing
//! content-dedups token spellings into shared `Arc<str>`s, so thawing
//! can dedup by pointer alone — one `Rc<str>` per distinct spelling per
//! worker, preserving the memory-sharing the per-worker cache already
//! had.
//!
//! # Invalidation protocol
//!
//! Artifacts are keyed by the **content hash** of the file's bytes
//! (FxHash64, see [`SharedCache::content_hash`]), not by path. An
//! edited file therefore misses naturally — its new bytes hash to a new
//! key — while every unchanged file keeps hitting, and two paths with
//! identical bytes share one artifact. A sharded path → hash **memo**
//! ([`SharedCache::current_hash`]) keeps the hot path cheap: each file's
//! bytes are read and hashed at most once per **generation**.
//!
//! Generations model batch boundaries in a long-lived process: within a
//! generation, files are treated as immutable (the hash memo is
//! authoritative); a caller that may have seen edits — the pooled
//! corpus runner, at the start of every batch — calls
//! [`SharedCache::next_generation`], which invalidates the hash memo
//! wholesale and forces revalidation-by-rehash on first touch. Artifact
//! entries whose hash is no longer any path's current content ("dead
//! hashes") are reclaimed by [`SharedCache::sweep`].
//!
//! Remaining coherence notes:
//!
//! * **Positions are restamped on thaw.** Token positions embed the
//!   lexing worker's [`FileId`], which is a per-worker notion; the
//!   frozen form stores only line/column and the thaw stamps the local
//!   worker's id so downstream behavior (diagnostics, `__FILE__`) is
//!   byte-identical with a cache-off run.
//! * **Publishing is deferred-freeze.** [`SharedCache::insert_with`]
//!   re-checks for an incumbent under the write lock *before* invoking
//!   the freeze closure, so two workers racing to publish the same
//!   content pay the (expensive) freeze once; the loser's avoided work
//!   is counted in [`SharedCache::duplicate_freezes`].
//! * **Hash collisions are accepted.** Two distinct file contents
//!   colliding in 64 bits has probability ~n²/2⁶⁵ for n distinct files
//!   — negligible against the corpus sizes this serves.
//!
//! Failed lexes are *not* cached: errors are rare, unit-fatal, and
//! re-deriving them per worker keeps the error path identical to the
//! cache-off pipeline.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use superc_lexer::{FileId, SourcePos, Token, TokenKind};
use superc_util::{FastMap, FastSet, FxBuildHasher};

use crate::directives::{detect_pragma_once, RawGroup, RawItem, RawTest};
use crate::macrotable::MacroDef;

/// Shard count; a small power of two is plenty — contention is already
/// low because workers mostly *read* after the first few units warm the
/// cache.
const SHARDS: usize = 16;

/// A frozen source position: line/column only. The owning artifact was
/// lexed from a single file, so the [`FileId`] is carried once at thaw
/// time rather than per token.
#[derive(Clone, Copy, Debug)]
struct FrozenPos {
    line: u32,
    col: u32,
}

impl FrozenPos {
    fn freeze(pos: SourcePos) -> FrozenPos {
        FrozenPos {
            line: pos.line,
            col: pos.col,
        }
    }

    fn thaw(self, file: FileId) -> SourcePos {
        SourcePos {
            file,
            line: self.line,
            col: self.col,
        }
    }
}

/// A [`Token`] with its spelling promoted to `Arc<str>`.
#[derive(Clone, Debug)]
struct FrozenTok {
    kind: TokenKind,
    text: Arc<str>,
    pos: FrozenPos,
    ws_before: bool,
}

/// Mirror of [`MacroDef`] with shared spellings.
#[derive(Debug)]
enum FrozenDef {
    Object {
        body: Vec<FrozenTok>,
    },
    Function {
        params: Vec<Arc<str>>,
        variadic: bool,
        body: Vec<FrozenTok>,
    },
}

/// Mirror of [`RawTest`].
#[derive(Debug)]
enum FrozenTest {
    Expr(Vec<FrozenTok>),
    Ifdef(Arc<str>),
    Ifndef(Arc<str>),
    Else,
}

/// Mirror of [`RawGroup`].
#[derive(Debug)]
struct FrozenGroup {
    test: FrozenTest,
    items: Vec<SharedItem>,
    pos: FrozenPos,
}

/// Mirror of [`RawItem`] over `Arc`-based leaves; `Send + Sync` so whole
/// directive trees can cross worker threads.
#[derive(Debug)]
enum SharedItem {
    Text(Vec<FrozenTok>),
    Define {
        name: Arc<str>,
        def: Arc<FrozenDef>,
        pos: FrozenPos,
    },
    Undef {
        name: Arc<str>,
        pos: FrozenPos,
    },
    Include {
        tokens: Vec<FrozenTok>,
        pos: FrozenPos,
    },
    Conditional {
        groups: Vec<FrozenGroup>,
        pos: FrozenPos,
    },
    Error {
        tokens: Vec<FrozenTok>,
        pos: FrozenPos,
    },
    Warning {
        tokens: Vec<FrozenTok>,
        pos: FrozenPos,
    },
    Pragma {
        tokens: Vec<FrozenTok>,
        pos: FrozenPos,
    },
    Line {
        tokens: Vec<FrozenTok>,
        pos: FrozenPos,
    },
}

/// One file's frozen preprocessing artifact: the structured directive
/// tree, the detected include guard, and the cost metadata the consumer
/// credits on a hit.
#[derive(Debug)]
pub struct SharedArtifact {
    items: Vec<SharedItem>,
    guard: Option<Arc<str>>,
    /// Source size in bytes (drives `bytes_processed` accounting).
    pub bytes: usize,
    /// What the producing worker spent lexing + structuring this file;
    /// credited to `lex_nanos_saved` on every shared-cache hit.
    pub lex_nanos: u64,
    /// The file opens with a top-level `#pragma once` (profile-independent
    /// syntax fact, so sharing across profiles stays sound).
    pub pragma_once: bool,
}

/// Freeze-side interning state: one `Arc<str>` per distinct spelling.
#[derive(Default)]
struct Freezer {
    strs: FastMap<String, Arc<str>>,
}

impl Freezer {
    fn text(&mut self, s: &str) -> Arc<str> {
        if let Some(a) = self.strs.get(s) {
            return Arc::clone(a);
        }
        let a: Arc<str> = Arc::from(s);
        self.strs.insert(s.to_string(), Arc::clone(&a));
        a
    }

    fn tok(&mut self, t: &Token) -> FrozenTok {
        FrozenTok {
            kind: t.kind,
            text: self.text(&t.text),
            pos: FrozenPos::freeze(t.pos),
            ws_before: t.ws_before,
        }
    }

    fn toks(&mut self, ts: &[Token]) -> Vec<FrozenTok> {
        ts.iter().map(|t| self.tok(t)).collect()
    }

    fn def(&mut self, d: &MacroDef) -> FrozenDef {
        match d {
            MacroDef::Object { body } => FrozenDef::Object {
                body: self.toks(body),
            },
            MacroDef::Function {
                params,
                variadic,
                body,
            } => FrozenDef::Function {
                params: params.iter().map(|p| self.text(p)).collect(),
                variadic: *variadic,
                body: self.toks(body),
            },
        }
    }

    fn item(&mut self, item: &RawItem) -> SharedItem {
        match item {
            RawItem::Text(ts) => SharedItem::Text(self.toks(ts)),
            RawItem::Define { name, def, pos } => SharedItem::Define {
                name: self.text(name),
                def: Arc::new(self.def(def)),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Undef { name, pos } => SharedItem::Undef {
                name: self.text(name),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Include { tokens, pos } => SharedItem::Include {
                tokens: self.toks(tokens),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Conditional { groups, pos } => SharedItem::Conditional {
                groups: groups.iter().map(|g| self.group(g)).collect(),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Error { tokens, pos } => SharedItem::Error {
                tokens: self.toks(tokens),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Warning { tokens, pos } => SharedItem::Warning {
                tokens: self.toks(tokens),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Pragma { tokens, pos } => SharedItem::Pragma {
                tokens: self.toks(tokens),
                pos: FrozenPos::freeze(*pos),
            },
            RawItem::Line { tokens, pos } => SharedItem::Line {
                tokens: self.toks(tokens),
                pos: FrozenPos::freeze(*pos),
            },
        }
    }

    fn group(&mut self, g: &RawGroup) -> FrozenGroup {
        let test = match &g.test {
            RawTest::Expr(ts) => FrozenTest::Expr(self.toks(ts)),
            RawTest::Ifdef(n) => FrozenTest::Ifdef(self.text(n)),
            RawTest::Ifndef(n) => FrozenTest::Ifndef(self.text(n)),
            RawTest::Else => FrozenTest::Else,
        };
        FrozenGroup {
            test,
            items: g.items.iter().map(|i| self.item(i)).collect(),
            pos: FrozenPos::freeze(g.pos),
        }
    }
}

/// Thaw-side state: pointer-keyed because the freeze already
/// content-deduped every spelling, so `Arc` identity *is* content
/// identity — an O(1) lookup with no string hashing.
struct Thawer {
    file: FileId,
    strs: FastMap<usize, Rc<str>>,
}

impl Thawer {
    fn text(&mut self, s: &Arc<str>) -> Rc<str> {
        let key = Arc::as_ptr(s) as *const u8 as usize;
        if let Some(r) = self.strs.get(&key) {
            return Rc::clone(r);
        }
        let r: Rc<str> = Rc::from(&**s);
        self.strs.insert(key, Rc::clone(&r));
        r
    }

    fn tok(&mut self, t: &FrozenTok) -> Token {
        Token {
            kind: t.kind,
            text: self.text(&t.text),
            pos: t.pos.thaw(self.file),
            ws_before: t.ws_before,
        }
    }

    fn toks(&mut self, ts: &[FrozenTok]) -> Vec<Token> {
        ts.iter().map(|t| self.tok(t)).collect()
    }

    fn def(&mut self, d: &FrozenDef) -> MacroDef {
        match d {
            FrozenDef::Object { body } => MacroDef::Object {
                body: self.toks(body),
            },
            FrozenDef::Function {
                params,
                variadic,
                body,
            } => MacroDef::Function {
                params: params.iter().map(|p| self.text(p)).collect(),
                variadic: *variadic,
                body: self.toks(body),
            },
        }
    }

    fn item(&mut self, item: &SharedItem) -> RawItem {
        match item {
            SharedItem::Text(ts) => RawItem::Text(self.toks(ts)),
            SharedItem::Define { name, def, pos } => RawItem::Define {
                name: self.text(name),
                def: Rc::new(self.def(def)),
                pos: pos.thaw(self.file),
            },
            SharedItem::Undef { name, pos } => RawItem::Undef {
                name: self.text(name),
                pos: pos.thaw(self.file),
            },
            SharedItem::Include { tokens, pos } => RawItem::Include {
                tokens: self.toks(tokens),
                pos: pos.thaw(self.file),
            },
            SharedItem::Conditional { groups, pos } => RawItem::Conditional {
                groups: groups.iter().map(|g| self.group(g)).collect(),
                pos: pos.thaw(self.file),
            },
            SharedItem::Error { tokens, pos } => RawItem::Error {
                tokens: self.toks(tokens),
                pos: pos.thaw(self.file),
            },
            SharedItem::Warning { tokens, pos } => RawItem::Warning {
                tokens: self.toks(tokens),
                pos: pos.thaw(self.file),
            },
            SharedItem::Pragma { tokens, pos } => RawItem::Pragma {
                tokens: self.toks(tokens),
                pos: pos.thaw(self.file),
            },
            SharedItem::Line { tokens, pos } => RawItem::Line {
                tokens: self.toks(tokens),
                pos: pos.thaw(self.file),
            },
        }
    }

    fn group(&mut self, g: &FrozenGroup) -> RawGroup {
        let test = match &g.test {
            FrozenTest::Expr(ts) => RawTest::Expr(self.toks(ts)),
            FrozenTest::Ifdef(n) => RawTest::Ifdef(self.text(n)),
            FrozenTest::Ifndef(n) => RawTest::Ifndef(self.text(n)),
            FrozenTest::Else => RawTest::Else,
        };
        RawGroup {
            test,
            items: g.items.iter().map(|i| self.item(i)).collect(),
            pos: g.pos.thaw(self.file),
        }
    }
}

impl SharedArtifact {
    /// Freezes one file's raw directive tree into the shareable form,
    /// content-deduplicating spellings.
    pub fn freeze(
        items: &[RawItem],
        guard: Option<&Rc<str>>,
        bytes: usize,
        lex_nanos: u64,
    ) -> SharedArtifact {
        let pragma_once = detect_pragma_once(items);
        let mut fz = Freezer::default();
        let items = items.iter().map(|i| fz.item(i)).collect();
        let guard = guard.map(|g| fz.text(g));
        SharedArtifact {
            items,
            guard,
            bytes,
            lex_nanos,
            pragma_once,
        }
    }

    /// Rebuilds a worker-local `Rc` tree, stamping `file` — the *local*
    /// worker's id for this path — onto every position so downstream
    /// output matches a cache-off run byte for byte.
    pub fn thaw(&self, file: FileId) -> (Vec<RawItem>, Option<Rc<str>>) {
        let mut th = Thawer {
            file,
            strs: FastMap::default(),
        };
        let items = self.items.iter().map(|i| th.item(i)).collect();
        let guard = self.guard.as_ref().map(|g| th.text(g));
        (items, guard)
    }
}

/// One lock-guarded slice of the content-hash → artifact map.
type Shard = RwLock<FastMap<u64, Arc<SharedArtifact>>>;

/// One lock-guarded slice of the path → `(generation, content hash)`
/// memo behind [`SharedCache::current_hash`].
type HashShard = RwLock<FastMap<String, (u64, u64)>>;

/// The sharded content-hash-keyed artifact map plus the path → hash
/// memo. One instance per corpus run or pooled runner, shared by `Arc`
/// across workers; see the module docs for the invalidation protocol.
pub struct SharedCache {
    shards: Box<[Shard]>,
    hashes: Box<[HashShard]>,
    /// Current generation; bumped by [`SharedCache::next_generation`]
    /// at batch boundaries to force hash revalidation.
    generation: AtomicU64,
    /// Files whose bytes were read and hashed (hash-memo misses).
    rehashes: AtomicU64,
    /// Freezes avoided because [`SharedCache::insert_with`] found an
    /// incumbent under the write lock.
    duplicate_freezes: AtomicU64,
}

impl Default for SharedCache {
    fn default() -> Self {
        SharedCache::new()
    }
}

impl SharedCache {
    /// An empty cache with a fixed shard count, at generation 1.
    pub fn new() -> SharedCache {
        let shards = (0..SHARDS)
            .map(|_| RwLock::new(FastMap::default()))
            .collect();
        let hashes = (0..SHARDS)
            .map(|_| RwLock::new(FastMap::default()))
            .collect();
        SharedCache {
            shards,
            hashes,
            generation: AtomicU64::new(1),
            rehashes: AtomicU64::new(0),
            duplicate_freezes: AtomicU64::new(0),
        }
    }

    /// FxHash64 of a file's bytes: the cache key. Deterministic across
    /// processes (fixed seed), so fingerprints built from it are stable.
    pub fn content_hash(bytes: &[u8]) -> u64 {
        use std::hash::BuildHasher;
        FxBuildHasher::default().hash_one(bytes)
    }

    fn shard(&self, hash: u64) -> &Shard {
        &self.shards[(hash as usize) % SHARDS]
    }

    fn hash_shard(&self, path: &str) -> &HashShard {
        use std::hash::BuildHasher;
        let h = FxBuildHasher::default().hash_one(path);
        &self.hashes[(h as usize) % SHARDS]
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Starts a new generation: every path's hash must be revalidated
    /// against its current bytes before being trusted again. Called by
    /// the pooled corpus runner at each batch boundary (the only point
    /// where the file tree may have been edited).
    pub fn next_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The content hash of `path`'s current bytes, memoized per
    /// generation. On a memo miss, `read` supplies the bytes (returning
    /// `None` for a missing file); the freshly read contents are handed
    /// back so the caller can lex them without a second read. Returns
    /// `None` when the file does not exist.
    pub fn current_hash(
        &self,
        path: &str,
        read: impl FnOnce() -> Option<Arc<str>>,
    ) -> Option<(u64, Option<Arc<str>>)> {
        let gen = self.generation();
        {
            let memo = self
                .hash_shard(path)
                .read()
                .expect("shared cache shard poisoned");
            if let Some(&(g, h)) = memo.get(path) {
                if g == gen {
                    return Some((h, None));
                }
            }
        }
        let src = read()?;
        let h = SharedCache::content_hash(src.as_bytes());
        self.rehashes.fetch_add(1, Ordering::Relaxed);
        self.hash_shard(path)
            .write()
            .expect("shared cache shard poisoned")
            .insert(path.to_string(), (gen, h));
        Some((h, Some(src)))
    }

    /// The artifact for this content hash, if some worker already
    /// published one.
    pub fn get(&self, hash: u64) -> Option<Arc<SharedArtifact>> {
        self.shard(hash)
            .read()
            .expect("shared cache shard poisoned")
            .get(&hash)
            .map(Arc::clone)
    }

    /// Publishes an artifact for `hash`, building it with `make` only if
    /// no incumbent exists. The check happens under the shard's write
    /// lock, so two workers racing to publish the same content freeze it
    /// once: the loser adopts the incumbent without invoking `make`, and
    /// the avoided work is counted in
    /// [`SharedCache::duplicate_freezes`].
    pub fn insert_with(
        &self,
        hash: u64,
        make: impl FnOnce() -> SharedArtifact,
    ) -> Arc<SharedArtifact> {
        let mut shard = self
            .shard(hash)
            .write()
            .expect("shared cache shard poisoned");
        if let Some(existing) = shard.get(&hash) {
            self.duplicate_freezes.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(existing);
        }
        let arc = Arc::new(make());
        shard.insert(hash, Arc::clone(&arc));
        arc
    }

    /// Evicts artifacts for **dead hashes**: entries whose hash is not
    /// the current-generation hash of any path in the memo. Intended to
    /// run right after a batch, while the memo reflects exactly the
    /// files that batch touched; entries for files the batch never saw
    /// are evicted too (they re-enter on next use). Also drops stale
    /// hash-memo rows from earlier generations. Returns the number of
    /// artifacts evicted.
    pub fn sweep(&self) -> usize {
        let gen = self.generation();
        let mut live: FastSet<u64> = FastSet::default();
        for hs in &self.hashes {
            let memo = hs.read().expect("shared cache shard poisoned");
            for &(g, h) in memo.values() {
                if g == gen {
                    live.insert(h);
                }
            }
        }
        let mut evicted = 0;
        for s in &self.shards {
            let mut shard = s.write().expect("shared cache shard poisoned");
            let before = shard.len();
            shard.retain(|h, _| live.contains(h));
            evicted += before - shard.len();
        }
        for hs in &self.hashes {
            hs.write()
                .expect("shared cache shard poisoned")
                .retain(|_, &mut (g, _)| g == gen);
        }
        evicted
    }

    /// Files read-and-hashed so far (hash-memo misses, cumulative).
    pub fn rehashes(&self) -> u64 {
        self.rehashes.load(Ordering::Relaxed)
    }

    /// Freezes avoided by the incumbent re-check in
    /// [`SharedCache::insert_with`] (cumulative).
    pub fn duplicate_freezes(&self) -> u64 {
        self.duplicate_freezes.load(Ordering::Relaxed)
    }

    /// Number of cached artifacts across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shared cache shard poisoned").len())
            .sum()
    }

    /// True when no artifact has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The whole point of the mirror types: artifacts must cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedCache>();
    assert_send_sync::<SharedArtifact>();
};
