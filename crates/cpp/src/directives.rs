//! Directive recognition: groups lexed lines into a raw tree of text lines,
//! directives, and nested conditional regions, before any evaluation.
//!
//! This stage is purely syntactic; presence conditions enter later when the
//! preprocessor walks the tree. Keeping it separate lets included files be
//! lexed and structured once and then *evaluated* many times under
//! different inclusion conditions (Linux includes `module.h` in half its
//! compilation units; re-lexing it each time would dominate).

use std::rc::Rc;

use superc_lexer::{Punct, SourcePos, Token, TokenKind};

use crate::macrotable::MacroDef;
use crate::preprocessor::PpError;

/// The test introducing a conditional group.
#[derive(Clone, Debug)]
pub enum RawTest {
    /// `#if expr` / `#elif expr` (the tokens of the expression).
    Expr(Vec<Token>),
    /// `#ifdef name`
    Ifdef(Rc<str>),
    /// `#ifndef name`
    Ifndef(Rc<str>),
    /// `#else`
    Else,
}

/// One `#if`/`#elif`/`#else` group and its contents.
#[derive(Clone, Debug)]
pub struct RawGroup {
    /// The group's test.
    pub test: RawTest,
    /// Items inside the group.
    pub items: Vec<RawItem>,
    /// Position of the introducing directive.
    pub pos: SourcePos,
}

/// A structured item: a text line, a directive, or a whole conditional.
#[derive(Clone, Debug)]
pub enum RawItem {
    /// A logical line of ordinary tokens (no trailing newline token).
    Text(Vec<Token>),
    /// `#define`.
    Define {
        /// The macro name.
        name: Rc<str>,
        /// The parsed definition.
        def: Rc<MacroDef>,
        /// Directive position.
        pos: SourcePos,
    },
    /// `#undef`.
    Undef {
        /// The macro name.
        name: Rc<str>,
        /// Directive position.
        pos: SourcePos,
    },
    /// `#include` with its raw operand tokens (before macro expansion).
    Include {
        /// Everything after the `include` keyword.
        tokens: Vec<Token>,
        /// Directive position.
        pos: SourcePos,
    },
    /// A whole `#if .. [#elif ..]* [#else ..] #endif` region.
    Conditional {
        /// The groups in order.
        groups: Vec<RawGroup>,
        /// Position of the opening `#if`.
        pos: SourcePos,
    },
    /// `#error`.
    Error {
        /// Message tokens.
        tokens: Vec<Token>,
        /// Directive position.
        pos: SourcePos,
    },
    /// `#warning`.
    Warning {
        /// Message tokens.
        tokens: Vec<Token>,
        /// Directive position.
        pos: SourcePos,
    },
    /// `#pragma` — preserved as an annotation.
    Pragma {
        /// Operand tokens.
        tokens: Vec<Token>,
        /// Directive position.
        pos: SourcePos,
    },
    /// `#line` — preserved as an annotation.
    Line {
        /// Operand tokens.
        tokens: Vec<Token>,
        /// Directive position.
        pos: SourcePos,
    },
}

/// Structures a lexed token stream (including `Newline`/`Eof`) into a raw
/// tree.
///
/// # Errors
///
/// Reports unbalanced conditionals, malformed `#define` parameter lists,
/// and unknown directives.
pub fn structure(tokens: &[Token]) -> Result<Vec<RawItem>, PpError> {
    let mut lines = split_lines(tokens);
    type Frame = (Option<(RawTest, SourcePos)>, Vec<RawGroup>, Vec<RawItem>);
    let mut stack: Vec<Frame> = Vec::new();
    let mut cur_items: Vec<RawItem> = Vec::new();
    let mut cur_test: Option<(RawTest, SourcePos)> = None;
    let mut cur_groups: Vec<RawGroup> = Vec::new();

    for line in lines.drain(..) {
        if line.is_empty() {
            continue;
        }
        if !line[0].is_punct(Punct::Hash) {
            cur_items.push(RawItem::Text(line));
            continue;
        }
        let pos = line[0].pos;
        // Null directive `#` alone.
        if line.len() == 1 {
            continue;
        }
        let dname = line[1].text().to_string();
        let rest = &line[2..];
        match dname.as_str() {
            "define" => cur_items.push(parse_define(rest, pos)?),
            "undef" => {
                let name = ident_operand(rest, pos, "undef")?;
                cur_items.push(RawItem::Undef { name, pos });
            }
            "include" | "include_next" => cur_items.push(RawItem::Include {
                tokens: rest.to_vec(),
                pos,
            }),
            "if" | "ifdef" | "ifndef" => {
                let test = match dname.as_str() {
                    "if" => RawTest::Expr(rest.to_vec()),
                    "ifdef" => RawTest::Ifdef(ident_operand(rest, pos, "ifdef")?),
                    _ => RawTest::Ifndef(ident_operand(rest, pos, "ifndef")?),
                };
                // Push current state; start a fresh conditional.
                stack.push((
                    cur_test.take(),
                    std::mem::take(&mut cur_groups),
                    std::mem::take(&mut cur_items),
                ));
                cur_test = Some((test, pos));
            }
            "elif" | "else" => {
                let (prev_test, prev_pos) = cur_test.take().ok_or_else(|| PpError {
                    pos,
                    message: format!("#{dname} without matching #if"),
                })?;
                cur_groups.push(RawGroup {
                    test: prev_test,
                    items: std::mem::take(&mut cur_items),
                    pos: prev_pos,
                });
                let test = if dname == "elif" {
                    RawTest::Expr(rest.to_vec())
                } else {
                    RawTest::Else
                };
                cur_test = Some((test, pos));
            }
            "endif" => {
                let (prev_test, prev_pos) = cur_test.take().ok_or_else(|| PpError {
                    pos,
                    message: "#endif without matching #if".to_string(),
                })?;
                cur_groups.push(RawGroup {
                    test: prev_test,
                    items: std::mem::take(&mut cur_items),
                    pos: prev_pos,
                });
                let groups = std::mem::take(&mut cur_groups);
                let (outer_test, outer_groups, outer_items) =
                    stack.pop().expect("stack in sync with cur_test");
                cur_test = outer_test;
                cur_groups = outer_groups;
                cur_items = outer_items;
                let pos0 = groups.first().map(|g| g.pos).unwrap_or(pos);
                cur_items.push(RawItem::Conditional { groups, pos: pos0 });
            }
            "error" => cur_items.push(RawItem::Error {
                tokens: rest.to_vec(),
                pos,
            }),
            "warning" => cur_items.push(RawItem::Warning {
                tokens: rest.to_vec(),
                pos,
            }),
            "pragma" => cur_items.push(RawItem::Pragma {
                tokens: rest.to_vec(),
                pos,
            }),
            "line" => cur_items.push(RawItem::Line {
                tokens: rest.to_vec(),
                pos,
            }),
            other => {
                // gcc accepts `# <number>` line markers.
                if line[1].kind == TokenKind::Number {
                    cur_items.push(RawItem::Line {
                        tokens: line[1..].to_vec(),
                        pos,
                    });
                } else {
                    return Err(PpError {
                        pos,
                        message: format!("unknown directive #{other}"),
                    });
                }
            }
        }
    }

    if cur_test.is_some() || !stack.is_empty() {
        return Err(PpError {
            pos: SourcePos::default(),
            message: "unterminated #if at end of file".to_string(),
        });
    }
    Ok(cur_items)
}

/// Splits a token stream into logical lines, dropping `Newline`/`Eof`.
fn split_lines(tokens: &[Token]) -> Vec<Vec<Token>> {
    let mut lines = Vec::new();
    let mut cur = Vec::new();
    for t in tokens {
        match t.kind {
            TokenKind::Newline => {
                lines.push(std::mem::take(&mut cur));
            }
            TokenKind::Eof => {}
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        lines.push(cur);
    }
    lines
}

fn ident_operand(rest: &[Token], pos: SourcePos, what: &str) -> Result<Rc<str>, PpError> {
    match rest.first() {
        Some(t) if t.is_ident() => Ok(t.text.clone()),
        _ => Err(PpError {
            pos,
            message: format!("#{what} expects a macro name"),
        }),
    }
}

fn parse_define(rest: &[Token], pos: SourcePos) -> Result<RawItem, PpError> {
    let name_tok = match rest.first() {
        Some(t) if t.is_ident() => t,
        _ => {
            return Err(PpError {
                pos,
                message: "#define expects a macro name".to_string(),
            })
        }
    };
    let name = name_tok.text.clone();
    // Function-like only when `(` immediately follows the name (no space).
    let function_like = rest
        .get(1)
        .map(|t| t.is_punct(Punct::LParen) && !t.ws_before)
        .unwrap_or(false);
    if !function_like {
        return Ok(RawItem::Define {
            name,
            def: Rc::new(MacroDef::Object {
                body: rest[1..].to_vec(),
            }),
            pos,
        });
    }
    let mut params: Vec<Rc<str>> = Vec::new();
    let mut variadic = false;
    let mut i = 2;
    loop {
        match rest.get(i) {
            Some(t) if t.is_punct(Punct::RParen) => {
                i += 1;
                break;
            }
            Some(t) if t.is_punct(Punct::Ellipsis) => {
                params.push(Rc::from("__VA_ARGS__"));
                variadic = true;
                i += 1;
            }
            Some(t) if t.is_ident() => {
                let pname = t.text.clone();
                i += 1;
                // gcc named variadic: `args...`
                if rest.get(i).map(|t| t.is_punct(Punct::Ellipsis)) == Some(true) {
                    variadic = true;
                    i += 1;
                }
                params.push(pname);
            }
            Some(t) if t.is_punct(Punct::Comma) => {
                i += 1;
            }
            _ => {
                return Err(PpError {
                    pos,
                    message: format!("malformed parameter list for macro {name}"),
                })
            }
        }
        if variadic {
            // `...` must be last; expect `)` next (tolerate comma).
            match rest.get(i) {
                Some(t) if t.is_punct(Punct::RParen) => {
                    i += 1;
                    break;
                }
                _ => {
                    return Err(PpError {
                        pos,
                        message: format!("variadic parameter must be last in macro {name}"),
                    })
                }
            }
        }
    }
    Ok(RawItem::Define {
        name,
        def: Rc::new(MacroDef::Function {
            params,
            variadic,
            body: rest[i..].to_vec(),
        }),
        pos,
    })
}

/// Detects the gcc include-guard shape (§3.2 case 4a): the file is exactly
/// one conditional testing `#ifndef M` (or `#if !defined(M)`) whose first
/// contained directive is `#define M`, with no `#else`/`#elif` and nothing
/// outside it. Returns the guard macro name.
pub fn detect_guard(items: &[RawItem]) -> Option<Rc<str>> {
    let mut it = items.iter();
    let only = it.next()?;
    if it.next().is_some() {
        return None;
    }
    let RawItem::Conditional { groups, .. } = only else {
        return None;
    };
    if groups.len() != 1 {
        return None;
    }
    let g = &groups[0];
    let name = match &g.test {
        RawTest::Ifndef(n) => n.clone(),
        RawTest::Expr(toks) => not_defined_name(toks)?,
        _ => return None,
    };
    // First directive inside must define the guard.
    for item in &g.items {
        match item {
            RawItem::Text(_) => continue,
            RawItem::Define { name: dname, .. } => {
                return (dname == &name).then(|| name.clone());
            }
            _ => return None,
        }
    }
    None
}

/// Detects a top-level `#pragma once` (a `Pragma` whose operand is the
/// single identifier `once`, outside any conditional). A syntax fact of
/// the file, recorded at structuring time; whether the pragma is honored
/// as an include guard is the active profile's dialect call.
pub fn detect_pragma_once(items: &[RawItem]) -> bool {
    items.iter().any(|item| match item {
        RawItem::Pragma { tokens, .. } => {
            tokens.len() == 1
                && matches!(tokens[0].kind, TokenKind::Ident)
                && tokens[0].text() == "once"
        }
        _ => false,
    })
}

/// Matches `! defined ( M )` or `! defined M`.
fn not_defined_name(toks: &[Token]) -> Option<Rc<str>> {
    let mut i = 0;
    if !toks.get(i)?.is_punct(Punct::Bang) {
        return None;
    }
    i += 1;
    if toks.get(i)?.text() != "defined" {
        return None;
    }
    i += 1;
    if toks.get(i)?.is_punct(Punct::LParen) {
        i += 1;
        let name = toks.get(i)?;
        if !name.is_ident() {
            return None;
        }
        if !toks.get(i + 1)?.is_punct(Punct::RParen) || toks.len() != i + 2 {
            return None;
        }
        Some(name.text.clone())
    } else {
        let name = toks.get(i)?;
        (name.is_ident() && toks.len() == i + 1).then(|| name.text.clone())
    }
}
