//! Configuration-preserving macro expansion with hoisting (SuperC §3.1).
//!
//! The expansion loop rescans macro output the way an ordinary C
//! preprocessor does, but whenever a static conditional interferes with a
//! preprocessor operation the conditional is *hoisted around* the
//! operation (Algorithm 1 of the paper):
//!
//! * A **multiply-defined macro** splits the presence condition: its use
//!   becomes a [`Conditional`] with one branch per feasible definition plus
//!   a residual branch where the token stays put; each branch then
//!   re-expands under its narrowed condition, where the macro has a single
//!   definition.
//! * A **function-like invocation spanning conditionals** — explicit
//!   conditionals in the argument list, or a name at the end of a
//!   conditional branch with its arguments after the conditional (Fig. 4) —
//!   is first *recognized* by simulating per-configuration readers that
//!   track parentheses and commas across branches, then the whole region is
//!   hoisted into flat per-configuration token runs and each is expanded
//!   separately.
//! * **Token pasting and stringification** whose operands contain
//!   conditionals hoist them likewise (Fig. 5).

use std::collections::VecDeque;
use std::rc::Rc;

use superc_cond::Cond;
use superc_lexer::{lex, Punct, Token, TokenKind};

use crate::elements::{Branch, Conditional, Element, HideSet, PTok};
use crate::files::FileSystem;
use crate::macrotable::{MacroDef, MacroEntry};
use crate::preprocessor::{Preprocessor, Severity};

// The per-operation hoisted-branch ceiling lives in
// `PpOptions::hoist_cap` (default 4096); beyond it the operation degrades
// gracefully (diagnostic + unexpanded tokens) rather than blowing up.
// Real code stays far below (the paper's worst region is small even when
// the *parser* sees 2^18 configurations).
/// Upper bound on reader states during invocation recognition.
const SCAN_CAP: usize = 512;

/// Result of recognizing a function-like invocation across conditionals.
pub(crate) struct InvScan {
    /// Number of top-level elements covered by the invocation in the
    /// configuration where it reaches furthest.
    pub consumed: usize,
    /// True when the region is conditional-free (fast path: parse args
    /// directly).
    pub flat: bool,
}

fn push_front_all(items: &mut VecDeque<Element>, mut elems: Vec<Element>) {
    while let Some(e) = elems.pop() {
        items.push_front(e);
    }
}

impl<F: FileSystem> Preprocessor<F> {
    /// Expands a segment of elements under presence condition `c`.
    ///
    /// Idempotent on already-expanded content: painted tokens do not
    /// re-expand, and re-examining expanded conditionals is exactly what
    /// enables cross-conditional invocations to complete.
    pub(crate) fn expand_segment(&mut self, input: Vec<Element>, c: &Cond) -> Vec<Element> {
        let mut items: VecDeque<Element> = input.into();
        let mut out = Vec::new();
        while let Some(el) = items.pop_front() {
            match el {
                Element::Token(t) if t.tok.is_ident() && !t.hide.contains(t.text()) => {
                    self.expand_ident(t, &mut items, &mut out, c);
                }
                Element::Token(t) => out.push(Element::Token(t)),
                Element::Conditional(k) => self.expand_conditional(k, &mut items, &mut out, c),
            }
        }
        out
    }

    fn expand_conditional(
        &mut self,
        k: Conditional,
        items: &mut VecDeque<Element>,
        out: &mut Vec<Element>,
        c: &Cond,
    ) {
        // (Re-)expand branch contents under their own conditions.
        let mut branches = Vec::with_capacity(k.branches.len());
        for b in k.branches {
            let cond = b.cond.clone();
            let elements = self.expand_segment(b.elements, &cond);
            branches.push(Branch { cond, elements });
        }
        let k = Conditional { branches };

        // Cross-conditional invocation (Fig. 4): a branch ends with a
        // feasible function-like macro name and `( ... )` follows the
        // conditional. Hoist the conditional together with the invocation
        // region and retry each flat branch.
        if !items.is_empty() && self.pending_invocation(&k) {
            if let Some(scan) = self.scan_invocation(items.make_contiguous(), c) {
                self.stats.invocations_hoisted += 1;
                let mut region: Vec<Element> = vec![Element::Conditional(k)];
                region.extend(items.drain(..scan.consumed));
                match self.hoist_elements(&region, c) {
                    Some(flats) => {
                        let branches = flats
                            .into_iter()
                            .map(|(cond, toks)| Branch {
                                cond,
                                elements: toks.into_iter().map(Element::Token).collect(),
                            })
                            .collect();
                        items.push_front(Element::Conditional(Conditional { branches }));
                        return;
                    }
                    None => {
                        // Hoist blow-up: emit the region unexpanded.
                        out.extend(region);
                        return;
                    }
                }
            }
        }
        out.push(Element::Conditional(k));
    }

    /// Does some branch of `k` end with an un-painted identifier that has a
    /// feasible function-like definition?
    fn pending_invocation(&self, k: &Conditional) -> bool {
        k.branches
            .iter()
            .any(|b| self.ends_with_fnlike(&b.elements, &b.cond))
    }

    fn ends_with_fnlike(&self, elems: &[Element], c: &Cond) -> bool {
        match elems.last() {
            Some(Element::Token(t)) => {
                t.tok.is_ident() && !t.hide.contains(t.text()) && {
                    let (entries, _) = self.table.lookup(t.text(), c);
                    entries
                        .iter()
                        .any(|e| e.def.as_deref().map(MacroDef::is_function).unwrap_or(false))
                }
            }
            Some(Element::Conditional(k)) => k
                .branches
                .iter()
                .any(|b| self.ends_with_fnlike(&b.elements, &b.cond)),
            None => false,
        }
    }

    fn expand_ident(
        &mut self,
        t: PTok,
        items: &mut VecDeque<Element>,
        out: &mut Vec<Element>,
        c: &Cond,
    ) {
        let name: Rc<str> = t.tok.text.clone();

        // Dynamic built-ins, unless the user shadowed them.
        if (&*name == "__FILE__" || &*name == "__LINE__") && !self.table.mentioned(&name) {
            self.stats.macro_invocations += 1;
            self.stats.builtin_invocations += 1;
            let tok = if &*name == "__FILE__" {
                Token::new(
                    TokenKind::StringLit,
                    format!("\"{}\"", self.current_file()),
                    t.tok.pos,
                    t.tok.ws_before,
                )
            } else {
                Token::new(
                    TokenKind::Number,
                    t.tok.pos.line.to_string(),
                    t.tok.pos,
                    t.tok.ws_before,
                )
            };
            out.push(Element::Token(PTok { tok, hide: t.hide }));
            return;
        }

        // One intern (an FxHash of the spelling, shared with the token's
        // `Rc<str>` storage) replaces every downstream string hash.
        let sym = self.table.interner().intern_rc(&name);
        let (entries, free, ignored) = self.table.lookup_full_sym(sym, c);
        if ignored > 0 {
            self.stats.invocations_trimmed += 1;
        }
        let defined: Vec<&MacroEntry> = entries.iter().filter(|e| e.def.is_some()).collect();
        if defined.is_empty() {
            out.push(Element::Token(t));
            return;
        }
        // Configurations where the token stays as written: free plus
        // explicitly-undefined entries.
        let mut residual = free;
        for e in &entries {
            if e.def.is_none() {
                residual = residual.or(&e.cond);
            }
        }

        if residual.is_false() && defined.len() == 1 {
            let def = defined[0].def.clone().expect("defined entry");
            match &*def {
                MacroDef::Object { body } => {
                    self.count_invocation(&t, &name);
                    let hide = t.hide.insert(name.clone());
                    // Closed-body fast path: a body with no identifiers and
                    // no `##` substitutes to itself verbatim (modulo the
                    // leading-whitespace fixup) and its output can never
                    // re-expand, so the substitute + requeue + rescan cycle
                    // collapses to a direct splice. The memo pins the
                    // definition `Rc` so the address key stays unique for
                    // the unit.
                    let key = Rc::as_ptr(&def) as usize;
                    let template = match self.expansion_memo.get(&key) {
                        Some((_, tmpl)) => {
                            self.stats.expansion_memo_hits += 1;
                            Some(Rc::clone(tmpl))
                        }
                        None if body_is_closed(body) => {
                            let tmpl = Rc::new(body.clone());
                            self.expansion_memo
                                .insert(key, (Rc::clone(&def), Rc::clone(&tmpl)));
                            Some(tmpl)
                        }
                        None => None,
                    };
                    if let Some(tmpl) = template {
                        for (i, tok) in tmpl.iter().enumerate() {
                            let mut tok = tok.clone();
                            if i == 0 {
                                tok.ws_before = t.tok.ws_before;
                            }
                            out.push(Element::Token(PTok {
                                tok,
                                hide: hide.clone(),
                            }));
                        }
                        return;
                    }
                    let subst = self.substitute(&def, &name, None, hide, &t, c);
                    push_front_all(items, subst);
                }
                MacroDef::Function { .. } => {
                    match self.scan_invocation(items.make_contiguous(), c) {
                        None => out.push(Element::Token(t)), // not an invocation
                        Some(scan) => {
                            if !scan.flat {
                                self.stats.invocations_hoisted += 1;
                            }
                            let region: Vec<Element> = items.drain(..scan.consumed).collect();
                            // Conditionals whose parenthesis/comma structure
                            // is configuration-invariant stay embedded in the
                            // arguments; only structure-variant regions hoist.
                            match self.parse_args_elements(&region) {
                                Some(args) => {
                                    self.count_invocation(&t, &name);
                                    let args = self.fix_arity(&def, args, &t);
                                    let hide = t.hide.insert(name.clone());
                                    let subst =
                                        self.substitute(&def, &name, Some(args), hide, &t, c);
                                    push_front_all(items, subst);
                                }
                                None if scan.flat => {
                                    self.diag(
                                        Severity::Warning,
                                        t.tok.pos,
                                        c,
                                        format!("malformed invocation of macro {name}"),
                                    );
                                    out.push(Element::Token(t));
                                    out.extend(region);
                                }
                                None => {
                                    // Structure varies across configurations:
                                    // hoist name + region, retry per config.
                                    let mut full: Vec<Element> = vec![Element::Token(t)];
                                    full.extend(region);
                                    match self.hoist_elements(&full, c) {
                                        Some(flats) => {
                                            let branches = flats
                                                .into_iter()
                                                .map(|(cond, toks)| Branch {
                                                    cond,
                                                    elements: toks
                                                        .into_iter()
                                                        .map(Element::Token)
                                                        .collect(),
                                                })
                                                .collect();
                                            items.push_front(Element::Conditional(Conditional {
                                                branches,
                                            }));
                                        }
                                        None => out.extend(full),
                                    }
                                }
                            }
                        }
                    }
                }
            }
            return;
        }

        // Multiply-defined (or partially defined) macro: the use propagates
        // an implicit conditional. Split the condition; each branch retries
        // the token under a condition where it has a single meaning.
        self.stats.invocations_hoisted += 1;
        let any_fn = defined
            .iter()
            .any(|e| e.def.as_deref().map(MacroDef::is_function).unwrap_or(false));
        let region: Vec<Element> = if any_fn {
            match self.scan_invocation(items.make_contiguous(), c) {
                Some(scan) => items.drain(..scan.consumed).collect(),
                None => Vec::new(),
            }
        } else {
            Vec::new()
        };
        let mut alts: Vec<Cond> = defined.iter().map(|e| e.cond.clone()).collect();
        if !residual.is_false() {
            alts.push(residual);
        }
        let mut branches: Vec<Branch> = Vec::new();
        for cond in alts {
            if region.is_empty() {
                branches.push(Branch {
                    cond,
                    elements: vec![Element::Token(t.clone())],
                });
            } else {
                match self.hoist_elements(&region, &cond) {
                    Some(flats) => {
                        for (fc, toks) in flats {
                            let mut elements = vec![Element::Token(t.clone())];
                            elements.extend(toks.into_iter().map(Element::Token));
                            branches.push(Branch { cond: fc, elements });
                        }
                    }
                    None => {
                        let mut elements = vec![Element::Token(t.clone())];
                        elements.extend(region.iter().cloned());
                        branches.push(Branch { cond, elements });
                    }
                }
            }
        }
        items.push_front(Element::Conditional(Conditional { branches }));
    }

    fn count_invocation(&mut self, t: &PTok, name: &str) {
        self.stats.macro_invocations += 1;
        if !t.hide.is_empty() {
            self.stats.nested_invocations += 1;
        }
        if self.builtin_names.contains(name) {
            self.stats.builtin_invocations += 1;
        }
    }

    /// Recognizes a function-like invocation starting at the front of
    /// `items`, across conditionals, by per-configuration reader states
    /// tracking parenthesis depth (the interleaved hoisting of §3.1).
    ///
    /// Returns `None` when no feasible configuration completes an
    /// invocation (the name is then left as an ordinary identifier).
    pub(crate) fn scan_invocation(&mut self, items: &[Element], c: &Cond) -> Option<InvScan> {
        #[derive(Clone)]
        enum Status {
            Before,
            Open(u32),
            Closed,
            NoParen,
        }
        #[derive(Clone)]
        struct St {
            cond: Cond,
            status: Status,
        }
        impl St {
            fn terminal(&self) -> bool {
                matches!(self.status, Status::Closed | Status::NoParen)
            }
        }

        fn step_token(s: &mut St, t: &PTok) {
            match s.status {
                Status::Before => {
                    s.status = if t.tok.is_punct(Punct::LParen) {
                        Status::Open(1)
                    } else {
                        Status::NoParen
                    };
                }
                Status::Open(d) => {
                    if t.tok.is_punct(Punct::LParen) {
                        s.status = Status::Open(d + 1);
                    } else if t.tok.is_punct(Punct::RParen) {
                        s.status = if d == 1 {
                            Status::Closed
                        } else {
                            Status::Open(d - 1)
                        };
                    }
                }
                _ => {}
            }
        }

        fn step_element(s: St, el: &Element, out: &mut Vec<St>, overflow: &mut bool) {
            match el {
                Element::Token(t) => {
                    let mut s = s;
                    step_token(&mut s, t);
                    out.push(s);
                }
                Element::Conditional(k) => {
                    for b in &k.branches {
                        let cc = s.cond.and(&b.cond);
                        if cc.is_false() {
                            continue;
                        }
                        let mut states = vec![St {
                            cond: cc,
                            status: s.status.clone(),
                        }];
                        for el in &b.elements {
                            let mut next = Vec::new();
                            for st in states {
                                if st.terminal() {
                                    next.push(st);
                                } else {
                                    step_element(st, el, &mut next, overflow);
                                }
                            }
                            states = next;
                            if states.len() > SCAN_CAP {
                                *overflow = true;
                                return;
                            }
                        }
                        out.extend(states);
                    }
                }
            }
        }

        let mut states = vec![St {
            cond: c.clone(),
            status: Status::Before,
        }];
        let mut consumed = 0;
        let mut flat = true;
        let mut overflow = false;
        for (i, el) in items.iter().enumerate() {
            if states.iter().all(St::terminal) {
                break;
            }
            if matches!(el, Element::Conditional(_)) {
                flat = false;
            }
            let mut next = Vec::new();
            for s in states {
                if s.terminal() {
                    next.push(s);
                } else {
                    step_element(s, el, &mut next, &mut overflow);
                }
            }
            states = next;
            if overflow || states.len() > SCAN_CAP {
                return None;
            }
            consumed = i + 1;
        }
        if !states.iter().any(|s| matches!(s.status, Status::Closed)) {
            return None;
        }
        Some(InvScan { consumed, flat })
    }

    /// Algorithm 1: hoists conditionals out of `elements`, producing flat
    /// per-configuration token runs partitioning `c`. `None` on blow-up
    /// beyond `PpOptions::hoist_cap`.
    pub(crate) fn hoist_elements(
        &mut self,
        elements: &[Element],
        c: &Cond,
    ) -> Option<Vec<(Cond, Vec<PTok>)>> {
        let mut acc: Vec<(Cond, Vec<PTok>)> = vec![(c.clone(), Vec::new())];
        for el in elements {
            match el {
                Element::Token(t) => {
                    for (_, ts) in &mut acc {
                        ts.push(t.clone());
                    }
                }
                Element::Conditional(k) => {
                    let mut next = Vec::new();
                    for (ca, ta) in &acc {
                        for b in &k.branches {
                            let cc = ca.and(&b.cond);
                            if cc.is_false() {
                                continue;
                            }
                            for (cb, tb) in self.hoist_elements(&b.elements, &cc)? {
                                let mut ts = ta.clone();
                                ts.extend(tb);
                                next.push((cb, ts));
                            }
                        }
                    }
                    if next.len() > self.opts.hoist_cap {
                        self.diag(
                            Severity::Warning,
                            Default::default(),
                            c,
                            "hoisting exceeded branch cap; leaving region unexpanded".to_string(),
                        );
                        return None;
                    }
                    acc = next;
                }
            }
        }
        Some(acc)
    }

    /// Parses `( a1 , a2 , ... )` from an invocation region, allowing
    /// conditionals *inside* arguments as long as the invocation structure
    /// is configuration-invariant: every branch of every embedded
    /// conditional is parenthesis-balanced and introduces no argument
    /// separator at invocation depth. Commas nested in parens belong to the
    /// argument. Returns raw argument element lists; `()` yields one empty
    /// argument (arity fixup resolves it). `None` means the structure
    /// varies across configurations (hoist instead) or is malformed.
    fn parse_args_elements(&self, region: &[Element]) -> Option<Vec<Vec<Element>>> {
        let mut it = region.iter();
        match it.next()? {
            Element::Token(t) if t.tok.is_punct(Punct::LParen) => {}
            _ => return None,
        }
        let mut args: Vec<Vec<Element>> = vec![Vec::new()];
        let mut depth = 1u32;
        for el in it {
            match el {
                Element::Token(t) => {
                    if t.tok.is_punct(Punct::LParen) {
                        depth += 1;
                    } else if t.tok.is_punct(Punct::RParen) {
                        depth -= 1;
                        if depth == 0 {
                            return Some(args);
                        }
                    } else if t.tok.is_punct(Punct::Comma) && depth == 1 {
                        args.push(Vec::new());
                        continue;
                    }
                }
                Element::Conditional(k) => {
                    if !structure_invariant(k, depth) {
                        return None;
                    }
                }
            }
            args.last_mut().unwrap().push(el.clone());
        }
        None
    }

    /// Adjusts parsed arguments to the definition's parameter count:
    /// collects variadic rest-arguments (re-inserting the commas), treats a
    /// single empty argument as zero arguments, and pads/merges on
    /// mismatch with a diagnostic.
    fn fix_arity(
        &mut self,
        def: &MacroDef,
        mut args: Vec<Vec<Element>>,
        inv: &PTok,
    ) -> Vec<Vec<Element>> {
        let MacroDef::Function {
            params, variadic, ..
        } = def
        else {
            return args;
        };
        let want = params.len();
        if *variadic {
            let fixed = want - 1;
            if args.len() > want {
                // Join surplus arguments into the variadic slot with commas.
                let extra = args.split_off(want);
                let last = args.last_mut().expect("variadic slot");
                for e in extra {
                    last.push(Element::Token(PTok::new(Token::new(
                        TokenKind::Punct(Punct::Comma),
                        ",",
                        inv.tok.pos,
                        false,
                    ))));
                    last.extend(e);
                }
            }
            while args.len() < fixed {
                self.arity_diag(inv);
                args.push(Vec::new());
            }
            if args.len() == fixed {
                args.push(Vec::new()); // empty __VA_ARGS__ (GNU-permitted)
            }
            return args;
        }
        if args.len() == want {
            return args;
        }
        if want == 0 && args.len() == 1 && args[0].is_empty() {
            return Vec::new();
        }
        self.arity_diag(inv);
        args.truncate(want);
        while args.len() < want {
            args.push(Vec::new());
        }
        args
    }

    fn arity_diag(&mut self, inv: &PTok) {
        let msg = format!(
            "macro {} invoked with wrong number of arguments",
            inv.text()
        );
        let c = self.ctx.tru();
        self.diag(Severity::Warning, inv.tok.pos, &c, msg);
    }

    /// Substitutes a macro body: parameter replacement with fully expanded
    /// arguments, stringification, token pasting (with hoisting when
    /// operands contain conditionals), and blue paint via `hide`.
    fn substitute(
        &mut self,
        def: &MacroDef,
        _name: &Rc<str>,
        args: Option<Vec<Vec<Element>>>,
        hide: HideSet,
        inv: &PTok,
        c: &Cond,
    ) -> Vec<Element> {
        let (params, body): (&[Rc<str>], &[Token]) = match def {
            MacroDef::Object { body } => (&[], body),
            MacroDef::Function { params, body, .. } => (params, body),
        };
        let args = args.unwrap_or_default();
        let param_index = |text: &str| params.iter().position(|p| &**p == text);
        let variadic_index = match def {
            MacroDef::Function {
                variadic: true,
                params,
                ..
            } => Some(params.len() - 1),
            _ => None,
        };
        // Lazily expanded arguments (C99: args expand before substitution,
        // except as operands of # and ##).
        let mut expanded: Vec<Option<Vec<Element>>> = vec![None; args.len()];

        /// An operand of substitution: a body token or a raw argument.
        enum Item<'x> {
            Tok(&'x Token),
            Arg(usize, &'x [Element]),
        }

        let mut out: Vec<Element> = Vec::new();
        let mut i = 0;
        let mut first = true;
        while i < body.len() {
            let tok = &body[i];
            // Stringification: `# param` (function-like only).
            if tok.is_punct(Punct::Hash) && !params.is_empty() {
                if let Some(next) = body.get(i + 1) {
                    if let Some(pi) = next.is_ident().then(|| param_index(next.text())).flatten() {
                        let arg = args.get(pi).map(|a| a.as_slice()).unwrap_or(&[]);
                        out.extend(self.stringify(arg, tok, c));
                        i += 2;
                        first = false;
                        continue;
                    }
                }
            }
            // Token pasting: collect a whole `a ## b ## c` chain.
            if body.get(i + 1).map(|t| t.is_punct(Punct::HashHash)) == Some(true) {
                let mut chain: Vec<Item> = Vec::new();
                let mut j = i;
                loop {
                    let t = &body[j];
                    if let Some(pi) = t.is_ident().then(|| param_index(t.text())).flatten() {
                        chain.push(Item::Arg(
                            pi,
                            args.get(pi).map(|a| a.as_slice()).unwrap_or(&[]),
                        ));
                    } else {
                        chain.push(Item::Tok(t));
                    }
                    if body.get(j + 1).map(|t| t.is_punct(Punct::HashHash)) == Some(true)
                        && j + 2 < body.len()
                    {
                        j += 2;
                    } else {
                        break;
                    }
                }
                // Build operand element lists (raw args, unexpanded).
                let mut op_elems: Vec<Vec<Element>> = Vec::new();
                let mut any_cond = false;
                // GNU `, ## __VA_ARGS__`: with empty varargs the comma is
                // deleted; otherwise the comma stays and *no pasting*
                // happens at that seam.
                let mut gnu_comma: Option<bool> = None; // Some(empty?)
                for (idx, item) in chain.iter().enumerate() {
                    match item {
                        Item::Tok(t) => {
                            if t.is_punct(Punct::Comma) && idx + 1 == chain.len() - 1 {
                                if let Some(Item::Arg(pi, a)) = chain.last() {
                                    if Some(*pi) == variadic_index {
                                        gnu_comma = Some(a.is_empty());
                                    }
                                }
                            }
                            op_elems.push(vec![Element::Token(PTok {
                                tok: (*t).clone(),
                                hide: hide.clone(),
                            })]);
                        }
                        Item::Arg(_, a) => {
                            if a.iter().any(|e| matches!(e, Element::Conditional(_))) {
                                any_cond = true;
                            }
                            op_elems.push(a.to_vec());
                        }
                    }
                }
                if let Some(empty) = gnu_comma {
                    let keep = op_elems.len().saturating_sub(2);
                    let tail: Vec<Vec<Element>> = op_elems.split_off(keep);
                    out.extend(op_elems.into_iter().flatten());
                    if !empty {
                        // Keep the comma and the (unpasted) varargs.
                        out.extend(tail.into_iter().flatten());
                    }
                } else {
                    // Flatten the operands; a conditional surviving here
                    // even though the argument scan saw none is an input
                    // condition, not an invariant — diagnose and fall
                    // back to the hoist path instead of crashing.
                    let flat: Option<Vec<Vec<PTok>>> = if any_cond {
                        None
                    } else {
                        op_elems
                            .iter()
                            .map(|es| {
                                es.iter()
                                    .map(|e| match e {
                                        Element::Token(t) => Some(t.clone()),
                                        Element::Conditional(_) => None,
                                    })
                                    .collect()
                            })
                            .collect()
                    };
                    match flat {
                        Some(flat) => out.extend(
                            self.paste_run(&flat, &hide, inv)
                                .into_iter()
                                .map(Element::Token),
                        ),
                        None => {
                            if !any_cond {
                                self.diag(
                                    Severity::Warning,
                                    inv.tok.pos,
                                    c,
                                    "conditional in `##` operand; hoisting".to_string(),
                                );
                            }
                            self.stats.token_pastes_hoisted += 1;
                            let all: Vec<Element> = op_elems.iter().flatten().cloned().collect();
                            // Hoist, then paste within each flat branch:
                            // since the operands are concatenated we
                            // re-split per branch by pasting adjacent
                            // boundary tokens pairwise.
                            match self.hoist_with_paste(&op_elems, c, &hide, inv) {
                                Some(kond) => out.push(kond),
                                None => out.extend(all),
                            }
                        }
                    }
                }
                i = j + 1;
                first = false;
                continue;
            }
            // Plain parameter: splice the expanded argument.
            if let Some(pi) = tok.is_ident().then(|| param_index(tok.text())).flatten() {
                if expanded[pi].is_none() {
                    let raw = args.get(pi).cloned().unwrap_or_default();
                    expanded[pi] = Some(self.expand_segment(raw, c));
                }
                let mut spliced = expanded[pi].clone().expect("just filled");
                if first {
                    set_leading_ws(&mut spliced, inv.tok.ws_before);
                }
                out.extend(spliced);
                i += 1;
                first = false;
                continue;
            }
            // Ordinary body token.
            let mut t = tok.clone();
            if first {
                t.ws_before = inv.tok.ws_before;
            }
            out.push(Element::Token(PTok {
                tok: t,
                hide: hide.clone(),
            }));
            i += 1;
            first = false;
        }
        out
    }

    /// Hoists a paste chain whose operands contain conditionals (Fig. 5)
    /// and pastes within each flat branch.
    fn hoist_with_paste(
        &mut self,
        op_elems: &[Vec<Element>],
        c: &Cond,
        hide: &HideSet,
        inv: &PTok,
    ) -> Option<Element> {
        // Hoist each operand independently, then cross-combine, keeping the
        // operand boundaries so pasting happens at the right seams.
        let mut acc: Vec<(Cond, Vec<Vec<PTok>>)> = vec![(c.clone(), Vec::new())];
        for op in op_elems {
            let mut next = Vec::new();
            for (ca, ops) in &acc {
                for (cb, toks) in self.hoist_elements(op, ca)? {
                    let mut ops2 = ops.clone();
                    ops2.push(toks);
                    next.push((cb, ops2));
                }
            }
            if next.len() > self.opts.hoist_cap {
                return None;
            }
            acc = next;
        }
        let branches = acc
            .into_iter()
            .map(|(cond, ops)| Branch {
                cond,
                elements: self
                    .paste_run(&ops, hide, inv)
                    .into_iter()
                    .map(Element::Token)
                    .collect(),
            })
            .collect();
        Some(Element::Conditional(Conditional { branches }))
    }

    /// Pastes a run of flat operands: the last token of each accumulated
    /// prefix fuses with the first token of the next operand; empty
    /// operands act as placemarkers.
    fn paste_run(&mut self, ops: &[Vec<PTok>], hide: &HideSet, inv: &PTok) -> Vec<PTok> {
        let mut acc: Vec<PTok> = Vec::new();
        for (idx, op) in ops.iter().enumerate() {
            if idx == 0 {
                acc.extend(op.iter().cloned());
                continue;
            }
            self.stats.token_pastes += 1;
            let mut rest = op.as_slice();
            match (acc.pop(), rest.first()) {
                (None, _) => acc.extend(rest.iter().cloned()),
                (Some(l), None) => acc.push(l), // placemarker right
                (Some(l), Some(r)) => {
                    rest = &rest[1..];
                    acc.extend(self.paste_two(&l, r, hide, inv));
                    acc.extend(rest.iter().cloned());
                }
            }
        }
        acc
    }

    fn paste_two(&mut self, l: &PTok, r: &PTok, hide: &HideSet, inv: &PTok) -> Vec<PTok> {
        let glued = format!("{}{}", l.text(), r.text());
        match lex(&glued, l.tok.pos.file) {
            Ok(toks) => {
                let real: Vec<&Token> = toks
                    .iter()
                    .filter(|t| !matches!(t.kind, TokenKind::Newline | TokenKind::Eof))
                    .collect();
                if real.len() == 1 {
                    let mut tok = real[0].clone();
                    tok.pos = l.tok.pos;
                    tok.ws_before = l.tok.ws_before;
                    return vec![PTok {
                        tok,
                        hide: hide.clone(),
                    }];
                }
                self.paste_error(&glued, inv);
                vec![l.clone(), r.clone()]
            }
            Err(_) => {
                self.paste_error(&glued, inv);
                vec![l.clone(), r.clone()]
            }
        }
    }

    fn paste_error(&mut self, glued: &str, inv: &PTok) {
        let c = self.ctx.tru();
        self.diag(
            Severity::Warning,
            inv.tok.pos,
            &c,
            format!("pasting does not give a valid token: {glued}"),
        );
    }

    /// Stringifies a raw argument. If the argument contains conditionals
    /// they are hoisted, producing a conditional over string literals.
    fn stringify(&mut self, arg: &[Element], hash_tok: &Token, c: &Cond) -> Vec<Element> {
        self.stats.stringifications += 1;
        let has_cond = arg.iter().any(|e| matches!(e, Element::Conditional(_)));
        if !has_cond {
            // A conditional surviving the scan above would be an input
            // condition, not an invariant: diagnose and retry through the
            // hoist path below instead of crashing.
            let toks: Option<Vec<PTok>> = arg
                .iter()
                .map(|e| match e {
                    Element::Token(t) => Some(t.clone()),
                    Element::Conditional(_) => None,
                })
                .collect();
            match toks {
                Some(toks) => return vec![Element::Token(self.make_string(&toks, hash_tok))],
                None => self.diag(
                    Severity::Warning,
                    hash_tok.pos,
                    c,
                    "conditional in `#` operand; hoisting".to_string(),
                ),
            }
        }
        self.stats.stringifications_hoisted += 1;
        match self.hoist_elements(arg, c) {
            Some(flats) => {
                let branches = flats
                    .into_iter()
                    .map(|(cond, toks)| Branch {
                        cond,
                        elements: vec![Element::Token(self.make_string(&toks, hash_tok))],
                    })
                    .collect();
                vec![Element::Conditional(Conditional { branches })]
            }
            None => arg.to_vec(),
        }
    }

    fn make_string(&self, toks: &[PTok], hash_tok: &Token) -> PTok {
        let mut s = String::from("\"");
        for (i, t) in toks.iter().enumerate() {
            if i > 0 && t.tok.ws_before {
                s.push(' ');
            }
            for ch in t.text().chars() {
                if ch == '"' || ch == '\\' {
                    s.push('\\');
                }
                s.push(ch);
            }
        }
        s.push('"');
        PTok::new(Token::new(
            TokenKind::StringLit,
            s,
            hash_tok.pos,
            hash_tok.ws_before,
        ))
    }
}

/// True for object-macro bodies whose expansion is a verbatim splice:
/// no identifiers (nothing can re-expand on rescan, and there are no
/// parameters to substitute) and no `##` (no pasting side effects).
/// A lone `#` is an ordinary token in object-like bodies.
fn body_is_closed(body: &[Token]) -> bool {
    body.iter()
        .all(|t| !t.is_ident() && !t.is_punct(Punct::HashHash))
}

fn set_leading_ws(elems: &mut [Element], ws: bool) {
    match elems.first_mut() {
        Some(Element::Token(t)) => {
            // Tokens are shared; rebuild with the new flag.
            let mut tok = t.tok.clone();
            tok.ws_before = ws;
            t.tok = tok;
        }
        Some(Element::Conditional(k)) => {
            for b in &mut k.branches {
                set_leading_ws(&mut b.elements, ws);
            }
        }
        None => {}
    }
}

/// True when every branch of `k` is parenthesis-balanced (net zero, never
/// dipping to the invocation's closing paren) and contains no argument
/// separator at invocation depth 1, so embedding the conditional inside an
/// argument cannot change the invocation's shape.
fn structure_invariant(k: &Conditional, depth: u32) -> bool {
    fn branch_ok(elements: &[Element], mut depth: u32) -> Option<u32> {
        for el in elements {
            match el {
                Element::Token(t) => {
                    if t.tok.is_punct(Punct::LParen) {
                        depth += 1;
                    } else if t.tok.is_punct(Punct::RParen) {
                        if depth <= 1 {
                            return None; // would close the invocation
                        }
                        depth -= 1;
                    } else if t.tok.is_punct(Punct::Comma) && depth == 1 {
                        return None; // would split arguments
                    }
                }
                Element::Conditional(k) => {
                    for b in &k.branches {
                        if branch_ok(&b.elements, depth) != Some(depth) {
                            return None;
                        }
                    }
                }
            }
        }
        Some(depth)
    }
    k.branches
        .iter()
        .all(|b| branch_ok(&b.elements, depth) == Some(depth))
}
