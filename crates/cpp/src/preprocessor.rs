//! The preprocessor driver: walks structured files, maintains the
//! conditional macro table, resolves includes, and assembles configuration-
//! preserving compilation units.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use superc_cond::{Cond, CondCtx};
use superc_lexer::{lex, FileId, LexError, Punct, SourcePos, Token, TokenKind};
use superc_util::{FastMap, FastSet};

use crate::condexpr::{CondExprEntry, CondExprKey};
use crate::directives::{detect_guard, detect_pragma_once, structure, RawItem, RawTest};
use crate::elements::{self, Branch, Conditional, Element, PTok};
use crate::files::FileSystem;
use crate::macrotable::{MacroDef, MacroTable};
use crate::profile::{Profile, UndefIdentPolicy};
use crate::sharedcache::{SharedArtifact, SharedCache};
use crate::stats::PpStats;

/// A fatal preprocessing error (lexical error, unbalanced conditionals,
/// `#error` outside conditionals, missing main file).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PpError {
    /// Where the error was detected.
    pub pos: SourcePos,
    /// Lowercase description.
    pub message: String,
}

impl fmt::Display for PpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for PpError {}

impl From<LexError> for PpError {
    fn from(e: LexError) -> Self {
        PpError {
            pos: e.pos,
            message: e.message,
        }
    }
}

/// Diagnostic severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A hard problem confined to some configurations.
    Error,
    /// Suspicious but recoverable.
    Warning,
    /// Preserved annotations (`#pragma`, `#line`, `#warning` text).
    Note,
}

/// A non-fatal diagnostic, tagged with the presence condition under which
/// it applies.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Source position.
    pub pos: SourcePos,
    /// Configurations the diagnostic applies to.
    pub cond: Cond,
    /// Message text.
    pub message: String,
}

/// A conditional group that could never be entered: its branch condition
/// was infeasible under the enclosing presence condition (or earlier
/// branches of the chain had already covered every configuration).
///
/// The preprocessor trims such branches from the output stream entirely,
/// so the analysis layer needs this side record to report them.
#[derive(Clone, Debug)]
pub struct DeadBranch {
    /// Position of the dead group's directive (`#if`/`#elif`/`#else`).
    pub pos: SourcePos,
    /// The enclosing presence condition of the whole conditional.
    pub context: Cond,
    /// True when the chain up to and including this group contains an
    /// identifier-free `#if` test (`#if 0`, `#if 1 … #else`): a
    /// deliberate toggle idiom, not a configuration surprise.
    pub chain_constant: bool,
}

/// A macro name tested by a conditional directive (`#ifdef NAME`,
/// `#ifndef NAME`, or an identifier inside an `#if`/`#elif` expression).
///
/// The analysis layer cross-checks these against the macro table to flag
/// names that are tested but never defined or undefined anywhere in the
/// unit — a likely typo.
#[derive(Clone, Debug)]
pub struct TestedMacro {
    /// The tested name.
    pub name: Rc<str>,
    /// Position of the test (the identifier token for expression tests,
    /// the directive for `#ifdef`/`#ifndef`).
    pub pos: SourcePos,
    /// Presence condition under which the directive is evaluated.
    pub cond: Cond,
}

/// One static conditional group that survived trimming, with its final
/// branch presence condition.
///
/// The cross-profile analysis diffs these site-by-site: a conditional
/// whose condition is `defined(CONFIG_X)` under one profile but `false`
/// under another (because a built-in decided the test) is a portability
/// hazard. Recorded in source order, which is schedule-independent.
#[derive(Clone, Debug)]
pub struct CondSite {
    /// Position of the group's directive (`#if`/`#elif`/`#else`).
    pub pos: SourcePos,
    /// The group's branch condition after trimming (`false` for dead
    /// groups, so profiles that kill a branch still produce a row).
    pub cond: Cond,
}

/// Preprocessor configuration.
#[derive(Clone, Debug)]
pub struct PpOptions {
    /// Search paths for includes (after the including file's directory).
    pub include_paths: Vec<String>,
    /// Command-line definitions, like `-Dname=body` (`body` may be empty).
    pub defines: Vec<(String, String)>,
    /// The compiler/OS target: built-in macros plus dialect policies
    /// (undefined-identifier handling, `#pragma once`).
    pub profile: Profile,
    /// Include nesting limit.
    pub max_include_depth: usize,
    /// Ceiling on hoisted branches per pasting/stringification/expansion
    /// operation; beyond it the operation degrades with a warning
    /// diagnostic instead of enumerating configurations.
    pub hoist_cap: usize,
    /// Single-configuration ("gcc") mode: free macros count as undefined,
    /// conditionals fully resolve, and the output contains no
    /// conditionals. The configuration is given by `defines`. This is the
    /// baseline the paper measures SuperC against in §6.3.
    pub single_config: bool,
    /// Fused lexing: tokens at the front of a conditional-free text run
    /// that can never expand (non-identifiers, and identifiers the macro
    /// table has never seen) stream straight from the lexer's structured
    /// items to the output without passing through the expansion queue.
    /// Output is byte-identical either way; disabled by `--no-fastpath`
    /// together with the parser's fast path.
    pub fuse_lexing: bool,
}

impl Default for PpOptions {
    fn default() -> Self {
        PpOptions {
            include_paths: vec!["include".to_string()],
            defines: Vec::new(),
            profile: Profile::default(),
            max_include_depth: 200,
            hoist_cap: 4096,
            single_config: false,
            fuse_lexing: true,
        }
    }
}

/// A preprocessed compilation unit: all configurations preserved.
#[derive(Clone, Debug)]
pub struct CompilationUnit {
    /// The main file's path.
    pub file: String,
    /// Ordinary tokens and static conditionals.
    pub elements: Vec<Element>,
    /// Usage counters (Table 2/3 instrumentation).
    pub stats: PpStats,
    /// Diagnostics with presence conditions.
    pub diagnostics: Vec<Diagnostic>,
    /// Conditional branches trimmed as infeasible (empty in
    /// single-configuration mode, where untaken branches are the norm).
    pub dead_branches: Vec<DeadBranch>,
    /// Macro names tested by conditional directives (empty in
    /// single-configuration mode).
    pub tested_macros: Vec<TestedMacro>,
    /// Surviving conditional groups with their final branch conditions,
    /// in source order (empty in single-configuration mode). The
    /// cross-profile analysis diffs these per site.
    pub cond_sites: Vec<CondSite>,
}

impl CompilationUnit {
    /// Renders the unit back to `#if`-annotated text (for inspection and
    /// golden tests, like the paper's Figure 1b).
    pub fn display_text(&self) -> String {
        let mut s = String::new();
        elements::display_elements(&self.elements, &mut s);
        s
    }

    /// Total ordinary tokens across all branches.
    pub fn token_count(&self) -> usize {
        elements::count_tokens(&self.elements)
    }
}

struct CachedFile {
    items: Vec<RawItem>,
    guard: Option<Rc<str>>,
    /// The file opens with `#pragma once` (profile-independent syntax
    /// fact; whether it is *honored* is the profile's call).
    pragma_once: bool,
    bytes: usize,
    /// Content hash of the bytes this entry was built from (0 when no
    /// shared cache is attached — hashing only pays for itself as a
    /// cache key).
    hash: u64,
    /// Last shared-cache generation this entry was validated in. Within
    /// a generation files are immutable, so a matching stamp skips the
    /// revalidation entirely; across generations (a pooled runner's
    /// batch boundary) the entry re-earns its place by hash comparison.
    seen_gen: std::cell::Cell<u64>,
}

/// A freshly lexed file plus the time it took to produce — the cost a
/// shared-cache hit credits back via `lex_nanos_saved`.
struct LexedFile {
    file: CachedFile,
    produce_nanos: u64,
}

/// The configuration-preserving preprocessor.
///
/// Create one per corpus; call [`Preprocessor::preprocess`] per compilation
/// unit (macro state resets between units, lexed headers stay cached).
///
/// See the crate docs for an end-to-end example.
pub struct Preprocessor<F: FileSystem> {
    pub(crate) ctx: CondCtx,
    pub(crate) opts: PpOptions,
    fs: F,
    pub(crate) table: MacroTable,
    pub(crate) stats: PpStats,
    pub(crate) diags: Vec<Diagnostic>,
    dead_branches: Vec<DeadBranch>,
    tested_macros: Vec<TestedMacro>,
    cond_sites: Vec<CondSite>,
    pub(crate) builtin_names: HashSet<String>,
    /// Per-worker (L1) cache of lexed+structured files, keyed by path.
    file_cache: HashMap<String, Rc<CachedFile>>,
    /// Optional process-wide (L2) artifact cache shared across workers;
    /// probed on L1 misses, fed on lexes. `None` runs the worker fully
    /// isolated (the `--no-shared-cache` escape hatch).
    shared: Option<Arc<SharedCache>>,
    /// The current unit's include-closure dependency fingerprint: every
    /// file loaded so far (main file and headers, first occurrence
    /// only) mapped to its content hash. Reset per unit; only populated
    /// when a shared cache is attached (that is where hashes come from).
    unit_deps: FastMap<String, u64>,
    /// The current unit's **negative** include-resolution dependencies:
    /// every probe path that failed while resolving this unit's
    /// includes. A file appearing at any of them would change what
    /// `resolve` returns — a header shadowing the one actually used —
    /// so the warm unit memo must treat "formerly absent path now
    /// exists" as an invalidation, exactly like a content change on a
    /// positive dependency. Reset per unit; populated only alongside
    /// `unit_deps` (when a shared cache is attached).
    unit_neg_deps: FastSet<String>,
    /// Per-worker conditional-expression memo: presence conditions and
    /// replayable counter deltas for previously evaluated `#if`/`#elif`
    /// expressions. Persists across units — `Cond` handles stay valid
    /// because the worker's condition context does — but never crosses
    /// workers, whose BDD variable orders differ.
    pub(crate) condexpr_memo: FastMap<CondExprKey, CondExprEntry>,
    /// Per-unit memo of "closed" object-like macro bodies (no identifiers,
    /// no `##`): expansion is a verbatim body splice, so repeat
    /// invocations skip substitution and rescanning. Keyed by definition
    /// address; the kept `Rc<MacroDef>` pins the address for the unit.
    pub(crate) expansion_memo: FastMap<usize, (Rc<MacroDef>, Rc<Vec<Token>>)>,
    file_ids: HashMap<String, FileId>,
    file_names: Vec<String>,
    file_stack: Vec<String>,
    processed_files: HashSet<String>,
    /// Configurations that have already included each `#pragma once`
    /// file this unit (only consulted when the profile honors the
    /// pragma). A reinclusion proceeds only for the configurations not
    /// yet covered — the configuration-aware analogue of the guard fast
    /// path above it.
    pragma_once_files: HashMap<String, Cond>,
    include_counts: HashMap<String, u64>,
    max_depth_seen: u64,
    poisoned: bool,
}

impl<F: FileSystem> Preprocessor<F> {
    /// Creates a preprocessor over `fs` with the given condition context.
    pub fn new(ctx: CondCtx, opts: PpOptions, fs: F) -> Self {
        let builtin_names = opts
            .profile
            .builtins
            .defs
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        let table = MacroTable::with_interner(ctx.interner());
        Preprocessor {
            ctx,
            opts,
            fs,
            table,
            stats: PpStats::default(),
            diags: Vec::new(),
            dead_branches: Vec::new(),
            tested_macros: Vec::new(),
            cond_sites: Vec::new(),
            builtin_names,
            file_cache: HashMap::new(),
            shared: None,
            unit_deps: FastMap::default(),
            unit_neg_deps: FastSet::default(),
            condexpr_memo: FastMap::default(),
            expansion_memo: FastMap::default(),
            file_ids: HashMap::new(),
            file_names: Vec::new(),
            file_stack: Vec::new(),
            processed_files: HashSet::new(),
            pragma_once_files: HashMap::new(),
            include_counts: HashMap::new(),
            max_depth_seen: 0,
            poisoned: false,
        }
    }

    /// The condition context conditions are built in.
    pub fn ctx(&self) -> &CondCtx {
        &self.ctx
    }

    /// Attaches a process-wide shared artifact cache (L2); see
    /// [`crate::sharedcache`] — typically called once per worker by the
    /// corpus driver, with every worker handed a clone of the same `Arc`.
    pub fn set_shared_cache(&mut self, cache: Arc<SharedCache>) {
        self.shared = Some(cache);
    }

    /// Drops the per-worker (L1) file cache. Without a shared cache
    /// there is no generation protocol to revalidate entries against,
    /// so a caller that may have seen the tree change (the pooled
    /// runner with `--no-shared-cache`, at a batch boundary) clears it
    /// wholesale instead.
    pub fn invalidate_file_cache(&mut self) {
        self.file_cache.clear();
    }

    /// The include-closure dependency fingerprint of the last
    /// preprocessed unit: every file it loaded (main file plus headers)
    /// with its content hash, sorted by path. Empty when no shared
    /// cache is attached — content hashes are only computed for cache
    /// keying.
    pub fn unit_deps(&self) -> Vec<(String, u64)> {
        let mut deps: Vec<(String, u64)> = self
            .unit_deps
            .iter()
            .map(|(p, &h)| (p.clone(), h))
            .collect();
        deps.sort_unstable();
        deps
    }

    /// The negative half of the last unit's fingerprint: every include
    /// resolution probe path that *failed*, sorted. A memo entry built
    /// from this unit is stale as soon as any of these paths exists —
    /// the new file would have won (or changed) resolution. Empty when
    /// no shared cache is attached, like [`Preprocessor::unit_deps`].
    pub fn unit_neg_deps(&self) -> Vec<String> {
        let mut neg: Vec<String> = self.unit_neg_deps.iter().cloned().collect();
        neg.sort_unstable();
        neg
    }

    /// The current content hash of `path`, via the shared cache's
    /// per-generation memo (reading the file only on a memo miss).
    /// `None` when no shared cache is attached or the file is missing —
    /// either way a recorded fingerprint can't be revalidated.
    pub fn dep_hash(&self, path: &str) -> Option<u64> {
        let shared = self.shared.as_ref()?;
        shared
            .current_hash(path, || self.fs.read(path))
            .map(|(h, _)| h)
    }

    /// The macro table as of the last `preprocess` call (tests/inspection).
    pub fn table(&self) -> &MacroTable {
        &self.table
    }

    /// Per-header inclusion counts accumulated across units (Table 2b).
    pub fn include_counts(&self) -> &HashMap<String, u64> {
        &self.include_counts
    }

    /// The single seat of the "undefined identifiers evaluate to 0"
    /// policy that used to be duplicated across `condexpr`'s two folding
    /// sites: free identifiers in conditional expressions fold to a
    /// concrete value only in single-configuration mode (otherwise they
    /// become condition variables and no folding happens). How a fold is
    /// *reported* is the profile's [`UndefIdentPolicy`]; see
    /// [`Preprocessor::warn_folded`].
    pub(crate) fn fold_free_idents(&self) -> bool {
        self.opts.single_config
    }

    /// Applies the profile's [`UndefIdentPolicy`] to an identifier a
    /// conditional expression folded to `0`: gcc's `Zero` stays silent,
    /// MSVC's `WarnThenZero` diagnoses it (/Wall warning C4668).
    pub(crate) fn warn_folded(&mut self, name: &str, pos: SourcePos, c: &Cond) {
        if self.opts.profile.undef_ident == UndefIdentPolicy::WarnThenZero {
            self.diag(
                Severity::Warning,
                pos,
                c,
                format!("'{name}' is not defined as a macro; replacing with 0"),
            );
        }
    }

    /// The path of the file currently being processed (`__FILE__`).
    pub(crate) fn current_file(&self) -> String {
        self.file_stack.last().cloned().unwrap_or_default()
    }

    /// Records every macro name a conditional test mentions: the tested
    /// name for `#ifdef`/`#ifndef`, every identifier (including `defined`
    /// operands, excluding `defined` itself) for expression tests.
    fn record_tested(&mut self, test: &RawTest, pos: SourcePos, c: &Cond) {
        match test {
            RawTest::Ifdef(n) | RawTest::Ifndef(n) => self.tested_macros.push(TestedMacro {
                name: n.clone(),
                pos,
                cond: c.clone(),
            }),
            RawTest::Expr(toks) => {
                for t in toks {
                    if matches!(t.kind, TokenKind::Ident) && &*t.text != "defined" {
                        self.tested_macros.push(TestedMacro {
                            name: t.text.clone(),
                            pos: t.pos,
                            cond: c.clone(),
                        });
                    }
                }
            }
            RawTest::Else => {}
        }
    }

    pub(crate) fn diag(
        &mut self,
        severity: Severity,
        pos: SourcePos,
        cond: &Cond,
        message: String,
    ) {
        self.diags.push(Diagnostic {
            severity,
            pos,
            cond: cond.clone(),
            message,
        });
    }

    fn file_id(&mut self, path: &str) -> FileId {
        if let Some(&id) = self.file_ids.get(path) {
            return id;
        }
        let id = FileId(self.file_names.len() as u32);
        self.file_names.push(path.to_string());
        self.file_ids.insert(path.to_string(), id);
        id
    }

    /// The path registered for a [`FileId`].
    pub fn file_name(&self, id: FileId) -> Option<&str> {
        self.file_names.get(id.0 as usize).map(|s| s.as_str())
    }

    /// Records one file of the current unit's include closure (first
    /// occurrence per path wins; a closure member's hash cannot change
    /// mid-unit by the generation contract).
    fn record_dep(&mut self, path: &str, hash: u64) {
        if self.shared.is_some() && !self.unit_deps.contains_key(path) {
            self.unit_deps.insert(path.to_string(), hash);
        }
    }

    fn load_cached(&mut self, path: &str) -> Result<Rc<CachedFile>, PpError> {
        if let Some(f) = self.file_cache.get(path) {
            let f = Rc::clone(f);
            // Revalidate against the shared cache's generation: within
            // one generation files are immutable and the stamp makes
            // this free; across generations (a pooled runner's batch
            // boundary) the entry must re-match the file's current
            // content hash or be evicted. Without a shared cache there
            // is no generation protocol (see `invalidate_file_cache`).
            let mut valid = true;
            if let Some(shared) = self.shared.clone() {
                let gen = shared.generation();
                if f.seen_gen.get() != gen {
                    match shared.current_hash(path, || self.fs.read(path)) {
                        Some((h, _)) if h == f.hash => f.seen_gen.set(gen),
                        _ => valid = false,
                    }
                }
            }
            if valid {
                // The macro table (and its guard registry) resets per
                // unit; cached files must re-register their guards.
                if let Some(g) = &f.guard {
                    self.table.register_guard(g.clone());
                }
                self.stats.files_processed += 1;
                self.stats.bytes_processed += f.bytes as u64;
                self.record_dep(path, f.hash);
                return Ok(f);
            }
            self.file_cache.remove(path);
        }
        // L2 probe, by content hash: another worker (or an earlier unit
        // here) may already have lexed these bytes — under this path or
        // any other with identical content. Thaw into a worker-local
        // `Rc` tree under this worker's file id — everything downstream
        // is then byte-identical with a cache-off run, only the lex is
        // skipped.
        if let Some(shared) = self.shared.clone() {
            let gen = shared.generation();
            let Some((hash, src)) = shared.current_hash(path, || self.fs.read(path)) else {
                return Err(PpError {
                    pos: SourcePos::default(),
                    message: format!("file not found: {path}"),
                });
            };
            if let Some(art) = shared.get(hash) {
                let id = self.file_id(path);
                let (items, guard) = art.thaw(id);
                if let Some(g) = &guard {
                    self.table.register_guard(g.clone());
                }
                let cached = Rc::new(CachedFile {
                    items,
                    guard,
                    pragma_once: art.pragma_once,
                    bytes: art.bytes,
                    hash,
                    seen_gen: std::cell::Cell::new(gen),
                });
                self.file_cache.insert(path.to_string(), Rc::clone(&cached));
                self.stats.shared_cache_hits += 1;
                self.stats.lex_nanos_saved += art.lex_nanos;
                self.stats.files_processed += 1;
                self.stats.bytes_processed += cached.bytes as u64;
                self.record_dep(path, hash);
                return Ok(cached);
            }
            // The hash memo hands back the contents when it had to read
            // them; a memo hit re-reads here (once per file per
            // generation — the artifact was present on every other
            // probe).
            let src = match src {
                Some(s) => s,
                None => self.fs.read(path).ok_or_else(|| PpError {
                    pos: SourcePos::default(),
                    message: format!("file not found: {path}"),
                })?,
            };
            let lexed = self.lex_file(path, &src, hash, gen)?;
            // Publish for other workers. The freeze runs inside
            // `insert_with`'s write-locked incumbent re-check, so a
            // racing worker pays it at most once (`duplicate_freezes`
            // counts the avoided copies). Failed lexes never get here,
            // so the error path stays identical to the cache-off
            // pipeline.
            self.stats.shared_cache_misses += 1;
            shared.insert_with(hash, || {
                SharedArtifact::freeze(
                    &lexed.file.items,
                    lexed.file.guard.as_ref(),
                    lexed.file.bytes,
                    lexed.produce_nanos,
                )
            });
            let cached = Rc::new(lexed.file);
            self.file_cache.insert(path.to_string(), Rc::clone(&cached));
            self.stats.files_processed += 1;
            self.stats.bytes_processed += cached.bytes as u64;
            self.record_dep(path, hash);
            return Ok(cached);
        }
        // No shared cache: no hashing, no fingerprints — the original
        // fully-isolated pipeline.
        let src = self.fs.read(path).ok_or_else(|| PpError {
            pos: SourcePos::default(),
            message: format!("file not found: {path}"),
        })?;
        let lexed = self.lex_file(path, &src, 0, 0)?;
        let cached = Rc::new(lexed.file);
        self.file_cache.insert(path.to_string(), Rc::clone(&cached));
        self.stats.files_processed += 1;
        self.stats.bytes_processed += cached.bytes as u64;
        Ok(cached)
    }

    /// Lexes and structures one file into a [`CachedFile`], registering
    /// its include guard and crediting lex time.
    fn lex_file(
        &mut self,
        path: &str,
        src: &str,
        hash: u64,
        gen: u64,
    ) -> Result<LexedFile, PpError> {
        let id = self.file_id(path);
        let lex_start = std::time::Instant::now();
        let tokens = lex(src, id)?;
        self.stats.lex_nanos += lex_start.elapsed().as_nanos() as u64;
        let items = structure(&tokens)?;
        let produce_nanos = lex_start.elapsed().as_nanos() as u64;
        let guard = detect_guard(&items);
        if let Some(g) = &guard {
            self.table.register_guard(g.clone());
        }
        let pragma_once = detect_pragma_once(&items);
        Ok(LexedFile {
            file: CachedFile {
                items,
                guard,
                pragma_once,
                bytes: src.len(),
                hash,
                seen_gen: std::cell::Cell::new(gen),
            },
            produce_nanos,
        })
    }

    /// Preprocesses one compilation unit, preserving all configurations.
    ///
    /// Macro state and statistics reset per unit; the lexed-file cache and
    /// cumulative include counts persist.
    ///
    /// # Errors
    ///
    /// Fails on a missing main file, lexical errors, unbalanced
    /// conditionals, and `#error` outside static conditionals.
    pub fn preprocess(&mut self, path: &str) -> Result<CompilationUnit, PpError> {
        self.table = MacroTable::with_interner(self.ctx.interner());
        self.stats = PpStats::default();
        self.diags.clear();
        self.dead_branches.clear();
        self.tested_macros.clear();
        self.cond_sites.clear();
        self.processed_files.clear();
        self.pragma_once_files.clear();
        self.file_stack.clear();
        self.max_depth_seen = 0;
        self.poisoned = false;
        self.unit_deps.clear();
        self.unit_neg_deps.clear();
        // The expansion memo is deliberately per-unit: pinned `Rc`s must
        // not outlive the macro table they came from, and a fresh memo per
        // unit keeps *direct* hits a pure function of the unit. (The
        // condexpr memo persists — its Cond handles outlive units — and
        // replays counter deltas instead; since a replayed delta carries
        // the original evaluation's memo-hit gauges, all memo hit/miss
        // counters are schedule-dependent and excluded from determinism
        // comparisons.)
        self.expansion_memo.clear();

        // Install the profile's built-ins and command-line definitions
        // under `true`.
        let defs: Vec<(String, String)> = self
            .opts
            .profile
            .builtins
            .defs
            .iter()
            .chain(self.opts.defines.iter())
            .cloned()
            .collect();
        for (name, body) in defs {
            let pseudo = format!("{body}\n");
            let toks = lex(&pseudo, FileId(u32::MAX)).map_err(PpError::from)?;
            let body: Vec<Token> = toks
                .into_iter()
                .filter(|t| !matches!(t.kind, TokenKind::Newline | TokenKind::Eof))
                .collect();
            let tru = self.ctx.tru();
            self.table.define(
                Rc::from(name.as_str()),
                Rc::new(MacroDef::Object { body }),
                &tru,
            );
        }

        let cached = self.load_cached(path)?;
        // The guard cache may hold guards from other units; re-register this
        // unit's headers lazily as they load.
        self.file_stack.push(path.to_string());
        let tru = self.ctx.tru();
        let mut out = Vec::new();
        self.process_items(&cached.items, &tru, 0, &mut out)?;
        self.file_stack.pop();

        self.stats.max_depth = self.max_depth_seen.max(elements::max_depth(&out) as u64);
        self.stats.output_tokens = elements::count_tokens(&out) as u64;
        self.stats.output_conditionals = count_conditionals(&out);
        Ok(CompilationUnit {
            file: path.to_string(),
            elements: out,
            stats: self.stats,
            diagnostics: std::mem::take(&mut self.diags),
            dead_branches: std::mem::take(&mut self.dead_branches),
            tested_macros: std::mem::take(&mut self.tested_macros),
            cond_sites: std::mem::take(&mut self.cond_sites),
        })
    }

    fn flush_pending(&mut self, pending: &mut Vec<Element>, c: &Cond, out: &mut Vec<Element>) {
        if pending.is_empty() {
            return;
        }
        let mut rest = std::mem::take(pending);
        if self.opts.fuse_lexing {
            // Fused lexing: the maximal inert prefix of the segment streams
            // straight from the lexer's structured items to the output,
            // bypassing the expansion queue. Inertness is judged here — at
            // flush time, not when the tokens were accumulated — because a
            // conditional earlier in this segment may have installed
            // definitions that make a preceding token expandable; at flush
            // time the table state is exactly what `expand_segment` sees.
            let split = rest
                .iter()
                .position(|e| !self.element_is_inert(e))
                .unwrap_or(rest.len());
            if split > 0 {
                self.stats.fused_tokens += split as u64;
                if split == rest.len() {
                    out.extend(rest);
                    return;
                }
                out.extend(rest.drain(..split));
            }
        }
        let expanded = self.expand_segment(rest, c);
        out.extend(expanded);
    }

    /// True when `expand_segment` would pass `e` through verbatim with no
    /// side effects on the table, stats, or hide sets: non-identifier
    /// tokens, painted identifiers, and identifiers the macro table has
    /// never mentioned (no `#define` or `#undef` under any condition),
    /// excluding the dynamic built-ins. Conditionals always re-examine
    /// their branches, so they are never inert — the fused prefix cannot
    /// cross a conditional, which is what keeps cross-conditional
    /// invocation recognition (Fig. 4) intact.
    fn element_is_inert(&self, e: &Element) -> bool {
        match e {
            Element::Token(t) => {
                if !t.tok.is_ident() || t.hide.contains(t.text()) {
                    return true;
                }
                let name = t.text();
                if name == "__FILE__" || name == "__LINE__" {
                    return false;
                }
                !self.table.mentioned(name)
            }
            Element::Conditional(_) => false,
        }
    }

    fn process_items(
        &mut self,
        items: &[RawItem],
        c: &Cond,
        depth: u64,
        out: &mut Vec<Element>,
    ) -> Result<(), PpError> {
        self.max_depth_seen = self.max_depth_seen.max(depth);
        let mut pending: Vec<Element> = Vec::new();
        for item in items {
            match item {
                RawItem::Text(tokens) => {
                    pending.extend(tokens.iter().map(|t| Element::Token(PTok::new(t.clone()))));
                }
                RawItem::Conditional { groups, pos } => {
                    self.stats.conditionals += 1;
                    if depth >= 64 {
                        self.diag(
                            Severity::Warning,
                            *pos,
                            c,
                            "conditional nesting deeper than 64".to_string(),
                        );
                    }
                    let mut remaining = c.clone();
                    let mut branches: Vec<Branch> = Vec::new();
                    // Tracks whether the chain so far contains an
                    // identifier-free `#if` test (`#if 0`-style toggles);
                    // dead branches downstream of one are deliberate.
                    let mut chain_constant = false;
                    let record = !self.opts.single_config;
                    for g in groups {
                        chain_constant |= test_is_constant(&g.test);
                        if record {
                            self.record_tested(&g.test, g.pos, c);
                        }
                        if remaining.is_false() {
                            // Earlier branches cover every configuration:
                            // this group can never be entered. Record it
                            // (its test is not evaluated) and move on.
                            if record {
                                self.dead_branches.push(DeadBranch {
                                    pos: g.pos,
                                    context: c.clone(),
                                    chain_constant,
                                });
                                self.cond_sites.push(CondSite {
                                    pos: g.pos,
                                    cond: self.ctx.fls(),
                                });
                            }
                            continue;
                        }
                        let bc = match &g.test {
                            RawTest::Ifdef(n) => self.defined_as_cond(n, &remaining),
                            RawTest::Ifndef(n) => {
                                remaining.and_not(&self.defined_as_cond(n, &remaining))
                            }
                            RawTest::Expr(toks) => {
                                let (cond, hoisted, nonbool) =
                                    self.eval_cond_expr(toks, &remaining, g.pos);
                                if hoisted {
                                    self.stats.conditionals_hoisted += 1;
                                }
                                if nonbool {
                                    self.stats.non_boolean_exprs += 1;
                                }
                                cond
                            }
                            RawTest::Else => remaining.clone(),
                        };
                        let bc = bc.and(&remaining);
                        if bc.is_false() {
                            if record {
                                self.dead_branches.push(DeadBranch {
                                    pos: g.pos,
                                    context: c.clone(),
                                    chain_constant,
                                });
                                self.cond_sites.push(CondSite {
                                    pos: g.pos,
                                    cond: bc,
                                });
                            }
                            continue;
                        }
                        if record {
                            self.cond_sites.push(CondSite {
                                pos: g.pos,
                                cond: bc.clone(),
                            });
                        }
                        remaining = remaining.and_not(&bc);
                        let mut belems = Vec::new();
                        self.process_items(&g.items, &bc, depth + 1, &mut belems)?;
                        if self.poisoned {
                            // #error in this branch: its configurations are
                            // invalid; disable their parsing (paper §2).
                            self.poisoned = false;
                            belems.clear();
                        }
                        branches.push(Branch {
                            cond: bc,
                            elements: belems,
                        });
                    }
                    if !remaining.is_false() {
                        // Materialize the implicit else branch so branch
                        // conditions always partition the parent condition.
                        branches.push(Branch {
                            cond: remaining,
                            elements: Vec::new(),
                        });
                    }
                    if branches.iter().all(|b| b.elements.is_empty()) {
                        // Nothing but directives inside: no token-level
                        // variability to preserve.
                        continue;
                    }
                    match branches.len() {
                        0 => {}
                        1 if c.and_not(&branches[0].cond).is_false() => {
                            // Only one feasible branch covering everything:
                            // inline it (trimming, §2).
                            pending.extend(branches.pop().expect("one branch").elements);
                        }
                        _ => pending.push(Element::Conditional(Conditional { branches })),
                    }
                }
                RawItem::Define { name, def, pos } => {
                    self.flush_pending(&mut pending, c, out);
                    self.stats.macro_definitions += 1;
                    if self.table.any_defined(name, c) {
                        self.stats.redefinitions += 1;
                        self.diag(Severity::Note, *pos, c, format!("macro {name} redefined"));
                    }
                    let before = self.table.trims;
                    self.table.define_at(name.clone(), def.clone(), c, *pos);
                    self.stats.trimmed_entries += self.table.trims - before;
                }
                RawItem::Undef { name, pos } => {
                    self.flush_pending(&mut pending, c, out);
                    self.stats.undefs += 1;
                    if !self.table.any_defined(name, c) && !self.table.mentioned(name) {
                        self.diag(
                            Severity::Note,
                            *pos,
                            c,
                            format!("#undef of never-defined macro {name}"),
                        );
                    }
                    let before = self.table.trims;
                    self.table.undef(name.clone(), c);
                    self.stats.trimmed_entries += self.table.trims - before;
                }
                RawItem::Include { tokens, pos } => {
                    self.flush_pending(&mut pending, c, out);
                    self.process_include(tokens, c, *pos, depth, out)?;
                }
                RawItem::Error { tokens, pos } => {
                    self.flush_pending(&mut pending, c, out);
                    let msg = spell(tokens);
                    self.stats.error_directives += 1;
                    if depth == 0 {
                        return Err(PpError {
                            pos: *pos,
                            message: format!("#error {msg}"),
                        });
                    }
                    self.diag(Severity::Error, *pos, c, format!("#error {msg}"));
                    self.poisoned = true;
                }
                RawItem::Warning { tokens, pos } => {
                    self.stats.warning_directives += 1;
                    let msg = spell(tokens);
                    self.diag(Severity::Warning, *pos, c, format!("#warning {msg}"));
                }
                RawItem::Pragma { tokens, pos } => {
                    let msg = spell(tokens);
                    self.diag(Severity::Note, *pos, c, format!("#pragma {msg}"));
                }
                RawItem::Line { tokens, pos } => {
                    let msg = spell(tokens);
                    self.diag(Severity::Note, *pos, c, format!("#line {msg}"));
                }
            }
        }
        self.flush_pending(&mut pending, c, out);
        Ok(())
    }

    fn process_include(
        &mut self,
        tokens: &[Token],
        c: &Cond,
        pos: SourcePos,
        depth: u64,
        out: &mut Vec<Element>,
    ) -> Result<(), PpError> {
        match parse_include_operand(tokens) {
            Some((name, system)) => self.include_one(&name, system, c, pos, depth, out),
            None => {
                // Computed include: expand, hoist, include per configuration.
                self.stats.computed_includes += 1;
                let elems: Vec<Element> = tokens
                    .iter()
                    .map(|t| Element::Token(PTok::new(t.clone())))
                    .collect();
                let expanded = self.expand_segment(elems, c);
                let had_cond = expanded
                    .iter()
                    .any(|e| matches!(e, Element::Conditional(_)));
                let flats = match self.hoist_elements(&expanded, c) {
                    Some(f) => f,
                    None => {
                        self.diag(
                            Severity::Warning,
                            pos,
                            c,
                            "computed include too variable; skipped".to_string(),
                        );
                        return Ok(());
                    }
                };
                if had_cond || flats.len() > 1 {
                    self.stats.includes_hoisted += 1;
                }
                let single = flats.len() == 1;
                let mut branches: Vec<Branch> = Vec::new();
                for (fc, toks) in flats {
                    let raw: Vec<Token> = toks.iter().map(|t| t.tok.clone()).collect();
                    let mut belems = Vec::new();
                    match parse_include_operand(&raw) {
                        Some((name, system)) => {
                            self.include_one(&name, system, &fc, pos, depth, &mut belems)?;
                        }
                        None => {
                            self.diag(
                                Severity::Warning,
                                pos,
                                &fc,
                                format!("malformed computed include: {}", spell(&raw)),
                            );
                        }
                    }
                    branches.push(Branch {
                        cond: fc,
                        elements: belems,
                    });
                }
                if single {
                    out.extend(branches.pop().map(|b| b.elements).unwrap_or_default());
                } else if !branches.is_empty() {
                    out.push(Element::Conditional(Conditional { branches }));
                }
                Ok(())
            }
        }
    }

    fn include_one(
        &mut self,
        name: &str,
        system: bool,
        c: &Cond,
        pos: SourcePos,
        depth: u64,
        out: &mut Vec<Element>,
    ) -> Result<(), PpError> {
        if self.file_stack.len() > self.opts.max_include_depth {
            self.diag(
                Severity::Error,
                pos,
                c,
                format!("include nesting too deep at {name}"),
            );
            return Ok(());
        }
        let including_dir = self
            .file_stack
            .last()
            .and_then(|f| f.rsplit_once('/').map(|(d, _)| d.to_string()))
            .unwrap_or_default();
        // Failed probes are negative dependencies: a file appearing at
        // any of them would shadow (or supply) this include, so warm
        // memo fingerprints must record them. Only tracked when the
        // shared cache is on — without it there is no memo to guard.
        let mut failed_probes = Vec::new();
        let resolved = self.fs.resolve_probed(
            name,
            system,
            &including_dir,
            &self.opts.include_paths,
            &mut failed_probes,
        );
        if self.shared.is_some() {
            self.unit_neg_deps.extend(failed_probes);
        }
        let Some(path) = resolved else {
            self.diag(
                Severity::Warning,
                pos,
                c,
                format!("include not found: {name}"),
            );
            return Ok(());
        };
        let cached = self.load_cached(&path)?;
        self.stats.includes += 1;
        *self.include_counts.entry(path.clone()).or_insert(0) += 1;
        // Guard fast path: skip files whose guard is definitely defined.
        if let Some(g) = &cached.guard {
            if self.table.definitely_defined(g, c) {
                return Ok(());
            }
        }
        // `#pragma once` (profile dialect quirk): configurations that
        // already included the file skip it; a reinclusion proceeds for
        // the not-yet-covered configurations, keeping the semantics
        // configuration-aware like the guard fast path above.
        if cached.pragma_once && self.opts.profile.pragma_once {
            let seen = self.pragma_once_files.get(&path).cloned();
            if let Some(prev) = &seen {
                if c.and_not(prev).is_false() {
                    return Ok(());
                }
            }
            let covered = match seen {
                Some(prev) => prev.or(c),
                None => c.clone(),
            };
            self.pragma_once_files.insert(path.clone(), covered);
        }
        if !self.processed_files.insert(path.clone()) {
            self.stats.reincluded_headers += 1;
        }
        self.file_stack.push(path.clone());
        let r = self.process_items(&cached.items, c, depth, out);
        self.file_stack.pop();
        r
    }
}

/// Parses a non-computed include operand: `"name"` or `<name>`.
/// True for identifier-free `#if`/`#elif` expression tests (`#if 0`,
/// `#if 1`): syntactically constant, so any branch they kill is a
/// deliberate toggle rather than a configuration-space accident.
fn test_is_constant(test: &RawTest) -> bool {
    match test {
        RawTest::Expr(toks) => !toks.iter().any(|t| matches!(t.kind, TokenKind::Ident)),
        _ => false,
    }
}

fn parse_include_operand(tokens: &[Token]) -> Option<(String, bool)> {
    match tokens.first() {
        Some(t) if t.kind == TokenKind::StringLit && tokens.len() == 1 => {
            let s = t.text();
            Some((s[1..s.len() - 1].to_string(), false))
        }
        Some(t) if t.is_punct(Punct::Lt) => {
            let mut name = String::new();
            for t in &tokens[1..] {
                if t.is_punct(Punct::Gt) {
                    return Some((name, true));
                }
                if t.ws_before && !name.is_empty() {
                    name.push(' ');
                }
                name.push_str(t.text());
            }
            None
        }
        _ => None,
    }
}

fn spell(tokens: &[Token]) -> String {
    tokens
        .iter()
        .map(|t| t.text().to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn count_conditionals(elements: &[Element]) -> u64 {
    elements
        .iter()
        .map(|e| match e {
            Element::Token(_) => 0,
            Element::Conditional(k) => {
                1 + k
                    .branches
                    .iter()
                    .map(|b| count_conditionals(&b.elements))
                    .sum::<u64>()
            }
        })
        .sum()
}
