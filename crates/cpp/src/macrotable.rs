//! The conditional macro table (SuperC §2, "Macro (un)definitions").
//!
//! Definitions and undefinitions for the same name may appear in different
//! branches of static conditionals, making a macro's meaning depend on the
//! configuration. The table therefore keeps *a list of entries per name*,
//! each tagged with the presence condition under which it holds, and trims
//! entries made infeasible by later (re)definitions. Configurations in
//! which a name was never defined or undefined are *free* — that residue is
//! what makes a macro a configuration variable.

use std::rc::Rc;

use superc_cond::Cond;
use superc_lexer::{SourcePos, Token};
use superc_util::{FastMap, FastSet, Interner, Symbol};

/// A macro definition body.
#[derive(Clone, Debug, PartialEq)]
pub enum MacroDef {
    /// `#define name body`
    Object {
        /// Replacement tokens.
        body: Vec<Token>,
    },
    /// `#define name(params) body`
    Function {
        /// Parameter names, in order. A trailing variadic parameter is
        /// named here too (either `__VA_ARGS__` for `...` or the gcc-style
        /// `args...` name).
        params: Vec<Rc<str>>,
        /// Whether the last parameter is variadic.
        variadic: bool,
        /// Replacement tokens.
        body: Vec<Token>,
    },
}

impl MacroDef {
    /// True for function-like definitions.
    pub fn is_function(&self) -> bool {
        matches!(self, MacroDef::Function { .. })
    }

    /// Structural body equivalence: same shape, parameters, and
    /// replacement tokens *by kind and spelling* — token positions don't
    /// matter, so `#define SAME 1` on two different lines is equivalent.
    pub fn same_replacement(&self, other: &MacroDef) -> bool {
        fn toks_eq(a: &[Token], b: &[Token]) -> bool {
            a.len() == b.len()
                && a.iter()
                    .zip(b)
                    .all(|(x, y)| x.kind == y.kind && x.text == y.text)
        }
        match (self, other) {
            (MacroDef::Object { body: a }, MacroDef::Object { body: b }) => toks_eq(a, b),
            (
                MacroDef::Function {
                    params: pa,
                    variadic: va,
                    body: a,
                },
                MacroDef::Function {
                    params: pb,
                    variadic: vb,
                    body: b,
                },
            ) => pa == pb && va == vb && toks_eq(a, b),
            _ => false,
        }
    }
}

/// One row of the conditional macro table.
#[derive(Clone, Debug)]
pub struct MacroEntry {
    /// Configurations in which this entry governs the name.
    pub cond: Cond,
    /// `Some` for a definition, `None` for an explicit `#undef`.
    pub def: Option<Rc<MacroDef>>,
    /// Source position of the `#define`/`#undef`, when it came from a
    /// source file (`None` for built-ins and command-line defines).
    pub pos: Option<SourcePos>,
}

/// A recorded definition conflict: the same name `#define`d with a
/// *different* body while an earlier, different definition was still
/// feasible in an overlapping part of the configuration space. Benign
/// identical redefinitions and definitions after `#undef` (or in disjoint
/// configurations) do not conflict.
///
/// The analysis layer (`superc-analyze`) turns these into
/// `macro-conflict` diagnostics; the table records them because only it
/// sees entry conditions *before* trimming narrows them to be disjoint.
#[derive(Clone, Debug)]
pub struct MacroConflict {
    /// The multiply-defined macro.
    pub name: Rc<str>,
    /// Position of the later (conflicting) definition.
    pub pos: SourcePos,
    /// Position of the earlier definition it overlaps (`None` when that
    /// definition was a built-in or command-line define).
    pub prev_pos: Option<SourcePos>,
    /// Configurations in which both definitions were live: the overlap of
    /// the two entry conditions at definition time.
    pub cond: Cond,
}

/// The conditional macro table.
///
/// # Examples
///
/// ```
/// use std::rc::Rc;
/// use superc_cond::{CondBackend, CondCtx};
/// use superc_cpp::{MacroDef, MacroTable};
///
/// let ctx = CondCtx::new(CondBackend::Bdd);
/// let mut table = MacroTable::new();
/// let c64 = ctx.var("defined(CONFIG_64BIT)");
/// let def = |s: &str| Rc::new(MacroDef::Object { body: vec![] });
/// table.define("BITS_PER_LONG".into(), def("64"), &c64);
/// table.define("BITS_PER_LONG".into(), def("32"), &c64.not());
/// // Both definitions are feasible under `true`: the macro is
/// // multiply-defined and will propagate an implicit conditional.
/// let (entries, free) = table.lookup("BITS_PER_LONG", &ctx.tru());
/// assert_eq!(entries.len(), 2);
/// assert!(free.is_false()); // defined in every configuration
/// ```
#[derive(Clone, Debug, Default)]
pub struct MacroTable {
    /// Shared name interner: macro names hash once, entries key on `u32`.
    interner: Interner,
    map: FastMap<Symbol, Vec<MacroEntry>>,
    /// Names detected as include-guard macros (SuperC §3.2 case 4a).
    guards: FastSet<Symbol>,
    /// Definition conflicts recorded at `#define` time, in source order.
    conflicts: Vec<MacroConflict>,
    /// Trimmed-entry events, for Table 3's "Trimmed definitions" row.
    pub trims: u64,
}

impl MacroTable {
    /// Creates an empty table with a private interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table whose names live in `interner` — normally
    /// the pipeline-wide interner from `CondCtx::interner`, so macro-name
    /// symbols agree with condition-variable symbols.
    pub fn with_interner(interner: Interner) -> Self {
        MacroTable {
            interner,
            ..Self::default()
        }
    }

    /// The table's name interner (cheap to clone, shared).
    pub fn interner(&self) -> Interner {
        self.interner.clone()
    }

    /// The symbol for `name` if the table's interner has seen it.
    pub fn sym(&self, name: &str) -> Option<Symbol> {
        self.interner.get(name)
    }

    /// Records `#define name def` under presence condition `cond`,
    /// trimming existing entries that become infeasible. Used for
    /// built-ins and command-line defines, which have no source position
    /// and never participate in conflict detection.
    pub fn define(&mut self, name: Rc<str>, def: Rc<MacroDef>, cond: &Cond) {
        let sym = self.interner.intern_rc(&name);
        self.update(sym, &name, Some(def), cond, None);
    }

    /// Like [`MacroTable::define`], but for a `#define` at a known source
    /// position; overlapping, differing prior definitions are recorded as
    /// [`MacroConflict`]s.
    pub fn define_at(&mut self, name: Rc<str>, def: Rc<MacroDef>, cond: &Cond, pos: SourcePos) {
        let sym = self.interner.intern_rc(&name);
        self.update(sym, &name, Some(def), cond, Some(pos));
    }

    /// Records `#undef name` under presence condition `cond`.
    pub fn undef(&mut self, name: Rc<str>, cond: &Cond) {
        let sym = self.interner.intern_rc(&name);
        self.update(sym, &name, None, cond, None);
    }

    fn update(
        &mut self,
        name: Symbol,
        text: &Rc<str>,
        def: Option<Rc<MacroDef>>,
        cond: &Cond,
        pos: Option<SourcePos>,
    ) {
        let entries = self.map.entry(name).or_default();
        // Conflict check runs against the *pre-trim* entries: a later
        // trim narrows conditions to keep the table disjoint, hiding the
        // overlap this diagnostic is about.
        if let (Some(new_def), Some(at)) = (def.as_ref(), pos) {
            for e in entries.iter() {
                let overlap = e.cond.and(cond);
                if overlap.is_false() {
                    continue;
                }
                match &e.def {
                    Some(old) if old.same_replacement(new_def) => {} // benign redefinition
                    None => {} // redefining after #undef is fine
                    Some(_) => self.conflicts.push(MacroConflict {
                        name: text.clone(),
                        pos: at,
                        prev_pos: e.pos,
                        cond: overlap,
                    }),
                }
            }
        }
        let mut kept = Vec::with_capacity(entries.len() + 1);
        for e in entries.drain(..) {
            let remaining = e.cond.and_not(cond);
            if remaining.is_false() {
                self.trims += 1;
            } else {
                kept.push(MacroEntry {
                    cond: remaining,
                    def: e.def,
                    pos: e.pos,
                });
            }
        }
        kept.push(MacroEntry {
            cond: cond.clone(),
            def,
            pos,
        });
        *entries = kept;
    }

    /// Definition conflicts recorded so far, in source order.
    pub fn conflicts(&self) -> &[MacroConflict] {
        &self.conflicts
    }

    /// Was `name` ever mentioned in a `#define`/`#undef`?
    pub fn mentioned(&self, name: &str) -> bool {
        self.sym(name).is_some_and(|s| self.map.contains_key(&s))
    }

    /// True if `name` has at least one *defined* entry feasible under `cond`.
    pub fn any_defined(&self, name: &str, cond: &Cond) -> bool {
        self.sym(name)
            .and_then(|s| self.map.get(&s))
            .map(|es| {
                es.iter()
                    .any(|e| e.def.is_some() && e.cond.feasible_with(cond))
            })
            .unwrap_or(false)
    }

    /// True if `name` is defined in *every* configuration of `cond`.
    pub fn definitely_defined(&self, name: &str, cond: &Cond) -> bool {
        match self.sym(name).and_then(|s| self.map.get(&s)) {
            None => false,
            Some(es) => {
                let mut covered = cond.ctx().fls();
                for e in es {
                    if e.def.is_some() {
                        covered = covered.or(&e.cond);
                    } else if e.cond.feasible_with(cond) {
                        return false;
                    }
                }
                cond.and_not(&covered).is_false()
            }
        }
    }

    /// All entries feasible under `cond`, with their conditions narrowed to
    /// `cond`, plus the *free* residue — the configurations of `cond` where
    /// the name was never defined or undefined.
    ///
    /// Infeasible entries are ignored, which is how the table "ignores
    /// infeasible definitions" when an invocation site sits inside
    /// conditionals (Table 1).
    pub fn lookup(&self, name: &str, cond: &Cond) -> (Vec<MacroEntry>, Cond) {
        let (entries, free, _) = self.lookup_full(name, cond);
        (entries, free)
    }

    /// Like [`MacroTable::lookup`], but also reports how many entries were
    /// ignored as infeasible at this use site (for Table 3's "Trimmed"
    /// interaction count).
    pub fn lookup_full(&self, name: &str, cond: &Cond) -> (Vec<MacroEntry>, Cond, usize) {
        match self.sym(name) {
            None => (Vec::new(), cond.clone(), 0),
            Some(sym) => self.lookup_full_sym(sym, cond),
        }
    }

    /// [`MacroTable::lookup_full`] keyed on an interned symbol — the
    /// string-free fast path used per identifier during expansion.
    pub fn lookup_full_sym(&self, sym: Symbol, cond: &Cond) -> (Vec<MacroEntry>, Cond, usize) {
        match self.map.get(&sym) {
            None => (Vec::new(), cond.clone(), 0),
            Some(es) => {
                let mut out = Vec::new();
                let mut free = cond.clone();
                let mut ignored = 0;
                for e in es {
                    let narrowed = e.cond.and(cond);
                    if !narrowed.is_false() {
                        free = free.and_not(&e.cond);
                        out.push(MacroEntry {
                            cond: narrowed,
                            def: e.def.clone(),
                            pos: e.pos,
                        });
                    } else {
                        ignored += 1;
                    }
                }
                (out, free, ignored)
            }
        }
    }

    /// The disjunction of conditions under which `name` is defined,
    /// restricted to `cond` — the meaning of `defined(name)` (§3.2 case 4).
    pub fn defined_cond(&self, name: &str, cond: &Cond) -> (Cond, Cond) {
        let (entries, free) = self.lookup(name, cond);
        let mut defined = cond.ctx().fls();
        for e in &entries {
            if e.def.is_some() {
                defined = defined.or(&e.cond);
            }
        }
        (defined, free)
    }

    /// The raw (un-narrowed) entry list for `name`, in table order, or
    /// `None` when the name was never mentioned. Used by the
    /// conditional-expression memo to hash the macro environment an
    /// expression depends on.
    pub fn entries(&self, name: &str) -> Option<&[MacroEntry]> {
        self.sym(name)
            .and_then(|s| self.map.get(&s))
            .map(|v| v.as_slice())
    }

    /// Registers `name` as an include-guard macro.
    pub fn register_guard(&mut self, name: Rc<str>) {
        let sym = self.interner.intern_rc(&name);
        self.guards.insert(sym);
    }

    /// Is `name` a registered include-guard macro?
    pub fn is_guard(&self, name: &str) -> bool {
        self.sym(name).is_some_and(|s| self.guards.contains(&s))
    }

    /// Number of names with at least one entry.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no macro was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}
