//! File access for `#include` resolution.
//!
//! Real runs read from disk; tests and the synthetic corpus use an
//! in-memory tree. The preprocessor only needs path-keyed reads — include
//! *resolution* (search-path logic) lives here too so both backends share
//! it.
//!
//! File contents are handed out as `Arc<str>` so one file tree can be
//! **shared read-only across worker threads**: the parallel corpus driver
//! (`superc::corpus`) borrows a single [`MemFs`]/[`DiskFs`] from every
//! worker (via the blanket `impl FileSystem for &F`), and each worker's
//! preprocessor caches the lexed form privately.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// Source of included files.
pub trait FileSystem {
    /// Reads a file by exact path. `None` when absent.
    fn read(&self, path: &str) -> Option<Arc<str>>;

    /// Resolves an include operand against the search paths.
    ///
    /// `system` is true for `<...>` includes; `including_dir` is the
    /// directory of the including file (searched first for `"..."`).
    /// Returns the resolved path.
    fn resolve(
        &self,
        name: &str,
        system: bool,
        including_dir: &str,
        search_paths: &[String],
    ) -> Option<String> {
        let mut failed = Vec::new();
        self.resolve_probed(name, system, including_dir, search_paths, &mut failed)
    }

    /// [`FileSystem::resolve`] with probe recording: every candidate
    /// path tried *before* the winning one is pushed onto `failed`, in
    /// probe order (all of them when resolution fails outright). Those
    /// failed probes are negative dependencies of the including unit —
    /// creating a file at any of them later changes what this call
    /// returns, which is exactly what the warm unit memo's fingerprints
    /// must detect (see `superc::corpus`).
    fn resolve_probed(
        &self,
        name: &str,
        system: bool,
        including_dir: &str,
        search_paths: &[String],
        failed: &mut Vec<String>,
    ) -> Option<String> {
        if !system && !including_dir.is_empty() {
            let local = join(including_dir, name);
            if self.read(&local).is_some() {
                return Some(local);
            }
            failed.push(local);
        }
        if self.read(name).is_some() {
            return Some(name.to_string());
        }
        failed.push(name.to_string());
        for dir in search_paths {
            let p = join(dir, name);
            if self.read(&p).is_some() {
                return Some(p);
            }
            failed.push(p);
        }
        None
    }
}

/// Shared references are file systems too: `std::thread::scope` workers
/// each build a `Preprocessor<&MemFs>` over one borrowed tree.
impl<F: FileSystem + ?Sized> FileSystem for &F {
    fn read(&self, path: &str) -> Option<Arc<str>> {
        (**self).read(path)
    }
}

/// `Arc`-owned trees are file systems too: pooled corpus workers outlive
/// any one batch's borrow, so each holds a `Preprocessor<Arc<F>>` over
/// the same shared tree.
impl<F: FileSystem + ?Sized> FileSystem for Arc<F> {
    fn read(&self, path: &str) -> Option<Arc<str>> {
        (**self).read(path)
    }
}

fn join(dir: &str, name: &str) -> String {
    if dir.is_empty() {
        name.to_string()
    } else {
        format!("{}/{}", dir.trim_end_matches('/'), name)
    }
}

/// An in-memory file tree.
///
/// Cloning is cheap (contents are shared), and a `MemFs` is `Send + Sync`,
/// so a generated corpus can be parsed by many workers at once.
///
/// # Examples
///
/// ```
/// use superc_cpp::{FileSystem, MemFs};
/// let fs = MemFs::new().file("include/a.h", "#define A 1\n");
/// assert!(fs.read("include/a.h").is_some());
/// assert_eq!(
///     fs.resolve("a.h", true, "", &["include".to_string()]),
///     Some("include/a.h".to_string())
/// );
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemFs {
    files: HashMap<String, Arc<str>>,
}

impl MemFs {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a file, builder-style.
    pub fn file(mut self, path: &str, contents: &str) -> Self {
        self.files.insert(path.to_string(), Arc::from(contents));
        self
    }

    /// Adds a file in place.
    pub fn add(&mut self, path: &str, contents: &str) {
        self.files.insert(path.to_string(), Arc::from(contents));
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files were added.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates over `(path, contents)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(k, v)| (k.as_str(), &**v))
    }
}

impl FileSystem for MemFs {
    fn read(&self, path: &str) -> Option<Arc<str>> {
        self.files.get(path).cloned()
    }
}

/// An in-memory file tree with interior mutability: files can be
/// edited **between batches** while pooled corpus workers keep `Arc`
/// handles to the tree — the fixture behind warm-rerun tests and the
/// incremental benchmark.
///
/// Reads take a shared lock and bump a reference count; edits take the
/// exclusive lock. The coherence contract is the pooled runner's: edits
/// only happen at batch boundaries (no batch in flight), so workers
/// never observe a file changing mid-run.
///
/// # Examples
///
/// ```
/// use superc_cpp::{FileSystem, MemFs, SharedMemFs};
/// let fs = SharedMemFs::from_mem(&MemFs::new().file("a.h", "int a;\n"));
/// fs.set("a.h", "int a2;\n"); // &self: edits through a shared handle
/// assert_eq!(fs.read("a.h").as_deref(), Some("int a2;\n"));
/// ```
#[derive(Debug, Default)]
pub struct SharedMemFs {
    files: RwLock<HashMap<String, Arc<str>>>,
}

impl SharedMemFs {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a [`MemFs`] snapshot (contents are shared, not cloned).
    pub fn from_mem(fs: &MemFs) -> Self {
        let files = fs
            .files
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        SharedMemFs {
            files: RwLock::new(files),
        }
    }

    /// Adds or replaces a file through a shared handle.
    pub fn set(&self, path: &str, contents: &str) {
        self.files
            .write()
            .expect("file tree lock poisoned")
            .insert(path.to_string(), Arc::from(contents));
    }

    /// Removes a file; later reads of `path` see it as absent.
    pub fn remove(&self, path: &str) {
        self.files
            .write()
            .expect("file tree lock poisoned")
            .remove(path);
    }
}

impl FileSystem for SharedMemFs {
    fn read(&self, path: &str) -> Option<Arc<str>> {
        self.files
            .read()
            .expect("file tree lock poisoned")
            .get(path)
            .cloned()
    }
}

/// Reads files from disk, rooted at a base directory.
#[derive(Clone, Debug)]
pub struct DiskFs {
    root: PathBuf,
}

impl DiskFs {
    /// Creates a disk-backed file system rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DiskFs { root: root.into() }
    }
}

impl FileSystem for DiskFs {
    fn read(&self, path: &str) -> Option<Arc<str>> {
        let full = if Path::new(path).is_absolute() {
            PathBuf::from(path)
        } else {
            self.root.join(path)
        };
        std::fs::read_to_string(full).ok().map(Arc::from)
    }
}

#[cfg(test)]
mod shared_fs_tests {
    use super::*;

    #[test]
    fn mem_fs_is_send_and_sync() {
        fn assert_shareable<T: Send + Sync>() {}
        assert_shareable::<MemFs>();
        assert_shareable::<DiskFs>();
    }

    #[test]
    fn references_are_file_systems() {
        let fs = MemFs::new().file("x.h", "int x;\n");
        let by_ref: &MemFs = &fs;
        assert_eq!(by_ref.read("x.h").as_deref(), Some("int x;\n"));
        assert_eq!(
            by_ref.resolve("x.h", true, "", &[]),
            Some("x.h".to_string())
        );
    }
}
