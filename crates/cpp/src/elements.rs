//! Preprocessed token streams: ordinary tokens interleaved with static
//! conditionals, the output shape both stages of SuperC share.

use std::fmt;
use std::rc::Rc;

use superc_cond::Cond;
use superc_lexer::Token;

/// A persistent set of macro names used to prevent recursive expansion
/// ("blue paint"). Insertion shares structure; lookup is linear in the
/// nesting depth of live expansions, which stays small in practice.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HideSet(Option<Rc<HideNode>>);

#[derive(Debug, PartialEq, Eq)]
struct HideNode {
    name: Rc<str>,
    rest: HideSet,
}

impl HideSet {
    /// The empty hide set.
    pub fn new() -> Self {
        HideSet(None)
    }

    /// True if `name` is painted.
    pub fn contains(&self, name: &str) -> bool {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &*node.name == name {
                return true;
            }
            cur = &node.rest;
        }
        false
    }

    /// True for the empty hide set — i.e., the token never passed through a
    /// macro expansion (used for the "nested invocations" statistic).
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Returns this set extended with `name`.
    pub fn insert(&self, name: Rc<str>) -> HideSet {
        if self.contains(&name) {
            return self.clone();
        }
        HideSet(Some(Rc::new(HideNode {
            name,
            rest: self.clone(),
        })))
    }
}

/// A preprocessed token: the lexed token plus its hide set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PTok {
    /// The underlying lexical token.
    pub tok: Token,
    /// Macro names that must not expand this token again.
    pub hide: HideSet,
}

impl PTok {
    /// Wraps a bare lexer token with an empty hide set.
    pub fn new(tok: Token) -> Self {
        PTok {
            tok,
            hide: HideSet::new(),
        }
    }

    /// The token's source spelling.
    pub fn text(&self) -> &str {
        self.tok.text()
    }
}

impl fmt::Display for PTok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.tok)
    }
}

/// One branch of a [`Conditional`]: a presence condition and its contents.
#[derive(Clone, Debug)]
pub struct Branch {
    /// Presence condition of this branch (already conjoined with all
    /// enclosing conditions' refinements relative to the parent).
    pub cond: Cond,
    /// The branch's contents.
    pub elements: Vec<Element>,
}

/// A static conditional surviving preprocessing: an ordered list of
/// branches with mutually exclusive presence conditions.
///
/// An `#if/#elif/#else` chain becomes one `Conditional`; implicit else
/// branches appear as explicit branches with empty contents when any
/// configuration reaches them. Branch order preserves source order, which
/// matters for non-boolean conditional expressions (§2, "Conditionals").
#[derive(Clone, Debug)]
pub struct Conditional {
    /// The branches in source order.
    pub branches: Vec<Branch>,
}

/// An element of a preprocessed token stream.
#[derive(Clone, Debug)]
pub enum Element {
    /// An ordinary language token.
    Token(PTok),
    /// A static conditional with all (feasible) branches preserved.
    Conditional(Conditional),
}

impl Element {
    /// Shorthand: is this an ordinary token?
    pub fn is_token(&self) -> bool {
        matches!(self, Element::Token(_))
    }

    /// The token if this is one.
    pub fn as_token(&self) -> Option<&PTok> {
        match self {
            Element::Token(t) => Some(t),
            Element::Conditional(_) => None,
        }
    }

    /// The conditional if this is one.
    pub fn as_conditional(&self) -> Option<&Conditional> {
        match self {
            Element::Token(_) => None,
            Element::Conditional(c) => Some(c),
        }
    }
}

/// Counts ordinary tokens in a stream, descending into conditionals.
pub fn count_tokens(elements: &[Element]) -> usize {
    elements
        .iter()
        .map(|e| match e {
            Element::Token(_) => 1,
            Element::Conditional(c) => c.branches.iter().map(|b| count_tokens(&b.elements)).sum(),
        })
        .sum()
}

/// Maximum conditional nesting depth of a stream.
pub fn max_depth(elements: &[Element]) -> usize {
    elements
        .iter()
        .map(|e| match e {
            Element::Token(_) => 0,
            Element::Conditional(c) => {
                1 + c
                    .branches
                    .iter()
                    .map(|b| max_depth(&b.elements))
                    .max()
                    .unwrap_or(0)
            }
        })
        .max()
        .unwrap_or(0)
}

/// Renders a stream back to compilable-looking text with `#if` markers,
/// for debugging and golden tests.
pub fn display_elements(elements: &[Element], out: &mut String) {
    for e in elements {
        match e {
            Element::Token(t) => {
                let after_ws = t.tok.ws_before && !out.ends_with([' ', '\n']);
                let fusing =
                    !out.ends_with([' ', '\n', '(', '[', '{', '#']) && needs_space(out, t.text());
                if !out.is_empty() && (after_ws || fusing) {
                    out.push(' ');
                }
                out.push_str(t.text());
            }
            Element::Conditional(c) => {
                for (i, b) in c.branches.iter().enumerate() {
                    if !out.is_empty() && !out.ends_with('\n') {
                        out.push('\n');
                    }
                    let kw = if i == 0 { "#if" } else { "#elif" };
                    out.push_str(&format!("{kw} {}\n", b.cond));
                    display_elements(&b.elements, out);
                }
                if !out.is_empty() && !out.ends_with('\n') {
                    out.push('\n');
                }
                out.push_str("#endif\n");
            }
        }
    }
}

/// Conservative token-separation test so identifiers/numbers don't fuse.
fn needs_space(out: &str, next: &str) -> bool {
    let last = out.chars().last().unwrap_or(' ');
    let first = next.chars().next().unwrap_or(' ');
    let wordy = |c: char| c.is_ascii_alphanumeric() || c == '_' || c == '$';
    wordy(last) && wordy(first)
}
