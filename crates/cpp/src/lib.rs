//! The configuration-preserving C preprocessor (SuperC §3).
//!
//! An ordinary preprocessor resolves `#include` and macros *and* static
//! conditionals, producing a single configuration. This preprocessor
//! resolves includes and macros but **leaves static conditionals intact**,
//! preserving the program's entire configuration space. Its output is a
//! [`CompilationUnit`]: a tree of ordinary tokens and [`Conditional`]s whose
//! branches carry *presence conditions* ([`superc_cond::Cond`]).
//!
//! The implementation covers every interaction in the paper's Table 1:
//!
//! * **Conditional macro table** — `#define`/`#undef` under a presence
//!   condition; multiply-defined macros propagate implicit conditionals at
//!   each use; infeasible entries are trimmed on redefinition.
//! * **Hoisting (Algorithm 1)** — conditionals inside function-like macro
//!   invocations, token pasting, stringification, computed includes, and
//!   `#if` expressions are hoisted around the operation so each innermost
//!   branch holds only ordinary tokens. Function-like invocations use the
//!   interleaved recognize-then-hoist scheme of §3.1.
//! * **Conditional expressions (§3.2)** — expanded, constant-folded, and
//!   converted to presence conditions; free macros, `defined(M)`, and
//!   opaque non-boolean subexpressions become condition variables; guard
//!   macros translate to `false` (gcc-compatible guard detection).
//! * **Includes** — processed under the inclusion's presence condition,
//!   guard-aware reinclusion, computed includes with hoisting.
//! * **`#error`** — erroneous branches become infeasible; errors outside
//!   conditionals abort. `#warning`, `#pragma`, `#line` are preserved as
//!   annotations.
//!
//! # Examples
//!
//! ```
//! use superc_cond::{CondBackend, CondCtx};
//! use superc_cpp::{MemFs, Preprocessor, PpOptions};
//!
//! let fs = MemFs::new()
//!     .file("m.c", "#ifdef CONFIG_64BIT\n#define BITS 64\n#else\n#define BITS 32\n#endif\nint b = BITS;\n");
//! let ctx = CondCtx::new(CondBackend::Bdd);
//! let mut pp = Preprocessor::new(ctx, PpOptions::default(), fs);
//! let unit = pp.preprocess("m.c").unwrap();
//! // `BITS` is multiply-defined: its use expands to a static conditional.
//! assert_eq!(unit.stats.conditionals, 1);
//! let text = unit.display_text();
//! assert!(text.contains("64") && text.contains("32"));
//! ```

mod condexpr;
mod directives;
mod elements;
mod expand;
mod files;
mod macrotable;
mod preprocessor;
mod profile;
mod sharedcache;
mod stats;

pub use condexpr::normalize_expr_text;
pub use elements::{Branch, Conditional, Element, HideSet, PTok};
pub use files::{DiskFs, FileSystem, MemFs, SharedMemFs};
pub use macrotable::{MacroConflict, MacroDef, MacroEntry, MacroTable};
pub use preprocessor::{
    CompilationUnit, CondSite, DeadBranch, Diagnostic, PpError, PpOptions, Preprocessor, Severity,
    TestedMacro,
};
pub use profile::{Builtins, Profile, UndefIdentPolicy};
pub use sharedcache::{SharedArtifact, SharedCache};
pub use stats::PpStats;

#[cfg(test)]
mod tests;
