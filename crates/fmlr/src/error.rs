//! Parse errors carrying presence conditions.

use std::fmt;

use superc_cond::Cond;
use superc_lexer::SourcePos;

/// A parse failure in some part of the configuration space.
///
/// A configuration-preserving parse may fail under some configurations and
/// succeed under others; each failure records the conditions it covers.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Position of the offending token (`None` at end of input).
    pub pos: Option<SourcePos>,
    /// The token's spelling (`<eof>` at end of input).
    pub got: String,
    /// Configurations under which the error occurs.
    pub cond: Cond,
    /// LR state for debugging.
    pub state: u32,
    /// Description, e.g. the kill-switch message in MAPR mode.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(
                f,
                "{p}: {} (at '{}', config {})",
                self.message, self.got, self.cond
            ),
            None => write!(
                f,
                "{} (at end of input, config {})",
                self.message, self.cond
            ),
        }
    }
}

impl std::error::Error for ParseError {}
