//! Parse errors and budget trips, both carrying presence conditions.

use std::fmt;

use superc_cond::Cond;
use superc_lexer::SourcePos;

/// Which resource budget a governed parse exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BudgetKind {
    /// Live-subparser ceiling ([`ParseBudgets::max_live`]).
    ///
    /// [`ParseBudgets::max_live`]: crate::ParseBudgets::max_live
    Subparsers,
    /// Fork-count budget ([`ParseBudgets::max_forks`]).
    ///
    /// [`ParseBudgets::max_forks`]: crate::ParseBudgets::max_forks
    Forks,
    /// Main-loop step budget ([`ParseBudgets::max_steps`]).
    ///
    /// [`ParseBudgets::max_steps`]: crate::ParseBudgets::max_steps
    Steps,
    /// BDD node ceiling ([`ParseBudgets::max_cond_nodes`]).
    ///
    /// [`ParseBudgets::max_cond_nodes`]: crate::ParseBudgets::max_cond_nodes
    CondNodes,
    /// Wall-clock budget ([`ParseBudgets::max_millis`]).
    ///
    /// [`ParseBudgets::max_millis`]: crate::ParseBudgets::max_millis
    TimeMs,
}

impl BudgetKind {
    /// Human-readable budget name used in diagnostics.
    pub fn as_str(&self) -> &'static str {
        match self {
            BudgetKind::Subparsers => "live subparsers",
            BudgetKind::Forks => "forks",
            BudgetKind::Steps => "steps",
            BudgetKind::CondNodes => "condition nodes",
            BudgetKind::TimeMs => "milliseconds",
        }
    }
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One budget-exhaustion event, condition-scoped: the configurations in
/// `cond` were degraded (their subparsers killed) when `kind` tripped.
///
/// Trips of the same kind within one parse are coalesced: `cond` is the
/// disjunction of every affected subparser's presence condition and
/// `killed` the total count.
#[derive(Clone, Debug)]
pub struct BudgetTrip {
    /// The budget that tripped.
    pub kind: BudgetKind,
    /// The configured limit.
    pub limit: u64,
    /// Disjunction of the killed subparsers' presence conditions — the
    /// exact configurations whose parse was cut short.
    pub cond: Cond,
    /// Subparsers (or fork groups) dropped by this trip.
    pub killed: u64,
}

impl BudgetTrip {
    /// Deterministic one-line description (no condition text — conditions
    /// render schedule-dependently; callers wanting the condition should
    /// canonicalize `cond` themselves).
    pub fn describe(&self) -> String {
        format!(
            "budget exceeded: {} limit {} ({} subparsers dropped)",
            self.kind, self.limit, self.killed
        )
    }
}

impl fmt::Display for BudgetTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (config {})", self.describe(), self.cond)
    }
}

/// A parse failure in some part of the configuration space.
///
/// A configuration-preserving parse may fail under some configurations and
/// succeed under others; each failure records the conditions it covers.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Position of the offending token (`None` at end of input).
    pub pos: Option<SourcePos>,
    /// The token's spelling (`<eof>` at end of input).
    pub got: String,
    /// Configurations under which the error occurs.
    pub cond: Cond,
    /// LR state for debugging.
    pub state: u32,
    /// Description, e.g. the kill-switch message in MAPR mode.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(
                f,
                "{p}: {} (at '{}', config {})",
                self.message, self.got, self.cond
            ),
            None => write!(
                f,
                "{} (at end of input, config {})",
                self.message, self.cond
            ),
        }
    }
}

impl std::error::Error for ParseError {}
