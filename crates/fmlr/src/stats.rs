//! Parser instrumentation: the subparser counts behind the paper's
//! Figure 8 and the activity counters behind Table 3's parser rows.

use std::fmt;

/// Counters for one parse.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Iterations of the main FMLR loop (one subparser step each).
    pub iterations: u64,
    /// Maximum live subparsers observed at any iteration (Fig. 8a).
    pub max_subparsers: usize,
    /// Histogram: `subparser_hist[n]` = iterations that ran with exactly
    /// `n` live subparsers (Fig. 8b's distribution; saturates at the last
    /// bucket).
    pub subparser_hist: Vec<u64>,
    /// Subparsers created by forking.
    pub forks: u64,
    /// Merges performed.
    pub merges: u64,
    /// Merge-index candidates probed while looking for a merge partner
    /// (each probe walks two stack spines in the worst case).
    pub merge_probes: u64,
    /// Shift actions.
    pub shifts: u64,
    /// Reduce actions.
    pub reduces: u64,
    /// Reduces shared across multiple heads (shared-reduce savings).
    pub shared_reduces: u64,
    /// Shifts delayed by multi-headed subparsers (lazy-shift savings).
    pub lazy_shifts: u64,
    /// Extra subparsers forked on ambiguously-defined names (typedefs).
    pub reclassify_forks: u64,
    /// Static choice nodes created while merging semantic values.
    pub choice_nodes: u64,
    /// Budget-governance events (each shed/kill-all/fork-trim is one).
    pub budget_trips: u64,
    /// Subparsers (or fork groups) killed by budget governance.
    pub budget_killed: u64,
    /// Tokens shifted inside the deterministic fast path. A gauge of how
    /// much of the input ran on the scratch-stack loop; zero with
    /// `--no-fastpath`. Excluded from determinism comparisons (like
    /// `merge_probes`): the fast path changes *how* work is scheduled,
    /// never what it produces.
    pub fastpath_tokens: u64,
    /// Times the engine entered the deterministic fast path (committed at
    /// least one step there). Excluded from determinism comparisons.
    pub fastpath_entries: u64,
    /// Times the fast path persisted its scratch stack and re-entered the
    /// general FMLR queue (a conditional, typedef split, or fork ended the
    /// stretch). Entries that terminate inside the fast path — accept,
    /// error, budget kill — do not count an exit. Excluded from
    /// determinism comparisons.
    pub fastpath_exits: u64,
}

impl ParseStats {
    pub(crate) fn observe_live(&mut self, live: usize) {
        self.iterations += 1;
        self.max_subparsers = self.max_subparsers.max(live);
        let bucket = live.min(4095);
        if self.subparser_hist.len() <= bucket {
            self.subparser_hist.resize(bucket + 1, 0);
        }
        self.subparser_hist[bucket] += 1;
    }

    /// The `q`-quantile (e.g. 0.99) of live-subparser counts across
    /// iterations, from the histogram.
    pub fn subparser_quantile(&self, q: f64) -> usize {
        let total: u64 = self.subparser_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (total as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (n, &count) in self.subparser_hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return n;
            }
        }
        self.subparser_hist.len() - 1
    }

    /// Accumulates another parse's counters (for corpus-level reporting).
    pub fn merge(&mut self, other: &ParseStats) {
        self.iterations += other.iterations;
        self.max_subparsers = self.max_subparsers.max(other.max_subparsers);
        if self.subparser_hist.len() < other.subparser_hist.len() {
            self.subparser_hist.resize(other.subparser_hist.len(), 0);
        }
        for (i, &c) in other.subparser_hist.iter().enumerate() {
            self.subparser_hist[i] += c;
        }
        self.forks += other.forks;
        self.merges += other.merges;
        self.merge_probes += other.merge_probes;
        self.shifts += other.shifts;
        self.reduces += other.reduces;
        self.shared_reduces += other.shared_reduces;
        self.lazy_shifts += other.lazy_shifts;
        self.reclassify_forks += other.reclassify_forks;
        self.choice_nodes += other.choice_nodes;
        self.budget_trips += other.budget_trips;
        self.budget_killed += other.budget_killed;
        self.fastpath_tokens += other.fastpath_tokens;
        self.fastpath_entries += other.fastpath_entries;
        self.fastpath_exits += other.fastpath_exits;
    }
}

impl fmt::Display for ParseStats {
    /// One-line activity summary for logs and `--stats` output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shifts, {} reduces, {} forks, {} merges ({} probes), \
             {} choice nodes, max {} subparsers",
            self.shifts,
            self.reduces,
            self.forks,
            self.merges,
            self.merge_probes,
            self.choice_nodes,
            self.max_subparsers,
        )
    }
}
