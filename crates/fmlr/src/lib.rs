//! Fork-Merge LR (FMLR) parsing — SuperC's configuration-preserving parser
//! engine (§4).
//!
//! An FMLR parser is a table-driven LR parser generalized over static
//! conditionals. It maintains a priority queue of *subparsers*, each
//! recognizing one part of the configuration space:
//!
//! * On ordinary tokens a subparser behaves exactly like an LR parser.
//! * At a static conditional it computes the **token follow-set**
//!   (Algorithm 3): the first ordinary token on each path through the
//!   conditionals, with its presence condition. The subparser **forks**
//!   into one subparser per follow-set element — capturing the source's
//!   *actual* variability rather than its syntactic branch count, which is
//!   what makes parsing Linux tractable where MAPR's naive per-branch
//!   forking is not (Figure 8).
//! * Subparsers with the same head and stack **merge**, disjoining their
//!   presence conditions and combining semantic values into *static choice
//!   nodes*; the queue is ordered by input position so merges happen at
//!   the earliest opportunity.
//!
//! Three further optimizations are implemented exactly as in §4.4 and can
//! be toggled individually for the paper's ablation (Figure 8):
//! **early reduces** (queue tie-break favoring reduces), **lazy shifts**
//! and **shared reduces** (multi-headed subparsers). A **MAPR mode**
//! reproduces the naive baseline, including its largest-stack-first
//! tie-break and a kill switch.
//!
//! Context-sensitivity (C typedef names) is handled by a plug-in
//! ([`ContextPlugin`]) with the paper's four callbacks: reclassify,
//! forkContext, mayMerge, mergeContexts (§5.2).
//!
//! **Resource governance:** [`ParseBudgets`] bounds live subparsers,
//! forks, steps, BDD growth, and wall time. Unlike the MAPR kill switch,
//! exhaustion *degrades* the parse instead of aborting it: the affected
//! subparsers are killed, their presence conditions recorded as
//! [`BudgetTrip`]s, and the remaining configurations still produce an
//! AST ([`ParseOutcome::Partial`]).

mod engine;
mod error;
mod forest;
mod semval;
mod stats;

pub use engine::{
    ContextPlugin, NullContext, ParseBudgets, ParseOutcome, ParseResult, Parser, ParserConfig,
    Reclass,
};
pub use error::{BudgetKind, BudgetTrip, ParseError};
pub use forest::{Forest, NodeId, NodeRef};
pub use semval::{AstNode, SemVal};
pub use stats::ParseStats;

#[cfg(test)]
mod tests;
