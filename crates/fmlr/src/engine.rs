//! The FMLR parser engine: Algorithm 2, fork/merge, and the optimizations
//! of §4.3–§4.5.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use superc_util::FastMap;

use superc_cond::{Cond, CondCtx};
use superc_cpp::PTok;
use superc_grammar::{Action, AstBuild, Grammar, SymbolId};

use crate::error::{BudgetKind, BudgetTrip, ParseError};
use crate::forest::{FollowEntry, Forest, NodeRef};
use crate::semval::{AstNode, SemVal};
use crate::stats::ParseStats;

/// Per-parse resource budgets (0 = unlimited everywhere).
///
/// Unlike the MAPR-faithful [`ParserConfig::kill_switch`], which *aborts*
/// the parse with an error, budget exhaustion *degrades* it: the engine
/// kills the lowest-priority subparsers (or, for global budgets, all
/// remaining ones), records a [`BudgetTrip`] carrying the exact presence
/// condition that was cut short, and keeps going so the unit still yields
/// an AST for the surviving configurations and a
/// [`ParseOutcome::Partial`] result.
///
/// Determinism: the subparser queue is deterministic, so `max_live`,
/// `max_forks`, and `max_steps` trip identically on every run and across
/// worker counts. `max_cond_nodes` and `max_millis` are safety nets whose
/// trip points depend on shared-manager warmth and wall-clock speed —
/// enabling them forfeits the byte-identical-reports guarantee.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseBudgets {
    /// Ceiling on simultaneously live subparsers; excess lowest-priority
    /// queued subparsers are killed (condition-scoped), the rest resume.
    pub max_live: usize,
    /// Total forks allowed in one parse; past it, every fork keeps only
    /// its highest-priority group.
    pub max_forks: u64,
    /// Main-loop iteration budget; past it, all remaining subparsers are
    /// killed and the parse ends with whatever has accepted so far.
    pub max_steps: u64,
    /// Ceiling on BDD nodes allocated *during* this parse (checked
    /// periodically against the manager's node count at parse start).
    /// Schedule-dependent; see the type docs.
    pub max_cond_nodes: usize,
    /// Wall-clock budget in milliseconds, checked periodically.
    /// Schedule-dependent; see the type docs.
    pub max_millis: u64,
}

impl ParseBudgets {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        ParseBudgets::default()
    }

    /// True when every limit is 0 (disabled).
    pub fn is_unlimited(&self) -> bool {
        *self == ParseBudgets::default()
    }
}

/// Whether a parse ran to completion or was cut short by a budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParseOutcome {
    /// Every subparser ran to acceptance or a parse error.
    #[default]
    Complete,
    /// At least one budget tripped; some configurations were degraded.
    /// The trips in [`ParseResult::trips`] say which and why.
    Partial,
}

/// How often the (cheap) BDD-node ceiling is consulted, in main-loop
/// iterations; the wall-clock budget is checked 8× less often.
const COND_NODE_CHECK_MASK: u64 = 63;
const TIME_CHECK_MASK: u64 = 511;

/// Result of reclassifying a follow-set token (§5.2).
pub enum Reclass {
    /// Leave the terminal as classified.
    Keep,
    /// Replace the terminal (e.g. identifier → typedef name).
    Replace(SymbolId),
    /// Split the entry by condition — each part gets its own terminal.
    /// This is how an ambiguously-defined name forks an extra subparser
    /// even without an explicit conditional. Conditions must partition
    /// the entry's condition.
    Split(Vec<(Cond, SymbolId)>),
}

/// The context-management plug-in (§5.2): reclassify / forkContext /
/// mayMerge / mergeContexts, plus the reduce hook that drives semantic
/// actions (scope changes, symbol definitions).
pub trait ContextPlugin {
    /// Per-subparser context (e.g. a configuration-aware symbol table).
    type Ctx: Clone;

    /// The context of the initial subparser.
    fn initial(&mut self) -> Self::Ctx;

    /// Adjusts a follow-set token's terminal under the given context.
    fn reclassify(
        &mut self,
        _ctx: &Self::Ctx,
        _tok: &PTok,
        _term: SymbolId,
        _cond: &Cond,
    ) -> Reclass {
        Reclass::Keep
    }

    /// Observes a reduce: `value` is the just-built semantic value for
    /// `prod`, under presence condition `cond`. Mutates the context
    /// (symbol definitions, scope changes via helper productions).
    fn on_reduce(&mut self, _ctx: &mut Self::Ctx, _prod: u32, _value: &SemVal, _cond: &Cond) {}

    /// Duplicates a context for a forked subparser.
    fn fork(&mut self, ctx: &Self::Ctx) -> Self::Ctx {
        ctx.clone()
    }

    /// May two subparsers with these contexts merge?
    fn may_merge(&self, _a: &Self::Ctx, _b: &Self::Ctx) -> bool {
        true
    }

    /// Combines two mergeable contexts.
    fn merge(&mut self, a: &Self::Ctx, _b: &Self::Ctx) -> Self::Ctx {
        a.clone()
    }
}

/// A plug-in for context-free grammars: unit context, no reclassification.
pub struct NullContext;

impl ContextPlugin for NullContext {
    type Ctx = ();

    fn initial(&mut self) {}
}

/// Engine configuration: optimization toggles matching the paper's
/// Figure 8 ablation, plus the MAPR baseline.
#[derive(Clone, Copy, Debug)]
pub struct ParserConfig {
    /// Use the token follow-set (Alg. 3). `false` = MAPR's naive
    /// per-branch forking.
    pub follow_set: bool,
    /// Delay forking of subparsers that will shift (multi-headed).
    pub lazy_shifts: bool,
    /// Reduce one shared stack for several heads at once.
    pub shared_reduces: bool,
    /// Queue tie-break favoring reduces over shifts.
    pub early_reduces: bool,
    /// MAPR's tie-break: favor the subparser with the largest stack.
    pub largest_stack_first: bool,
    /// Merge subparsers whose stacks differ in *complete* semantic values
    /// by wrapping them in static choice nodes (§5.1). Disabled for the
    /// MAPR baseline, which merges only value-identical stacks — the gap
    /// that makes naive forking exponential.
    pub choice_merge: bool,
    /// Abort when live subparsers exceed this (0 = unlimited). The paper
    /// uses 16,000 for the MAPR comparison.
    pub kill_switch: usize,
    /// Deterministic fast path: when exactly one subparser with one head
    /// is live, step it in a tight LALR loop on a scratch stack — no
    /// priority queue, no merge probes — persisting back to the shared
    /// persistent stack only when the stretch ends at a conditional,
    /// typedef split, fork, or error. Output (ASTs, conditions,
    /// diagnostics, every determinism-surface counter) is byte-identical
    /// either way; only `merge_probes` and the `fastpath_*` gauges differ.
    pub fastpath: bool,
    /// Degrading resource budgets (all 0 = ungoverned). Orthogonal to the
    /// kill switch: budgets shed work and keep parsing, the kill switch
    /// aborts (the MAPR-faithful behavior the ablation tests rely on).
    pub budgets: ParseBudgets,
}

impl Default for ParserConfig {
    fn default() -> Self {
        ParserConfig::full()
    }
}

impl ParserConfig {
    /// All optimizations on (the paper's "Shared, Lazy, & Early").
    pub fn full() -> Self {
        ParserConfig {
            follow_set: true,
            lazy_shifts: true,
            shared_reduces: true,
            early_reduces: true,
            largest_stack_first: false,
            choice_merge: true,
            kill_switch: 0,
            fastpath: true,
            budgets: ParseBudgets::unlimited(),
        }
    }

    /// Follow-set only.
    pub fn follow_only() -> Self {
        ParserConfig {
            lazy_shifts: false,
            shared_reduces: false,
            early_reduces: false,
            ..Self::full()
        }
    }

    /// Follow-set + lazy shifts.
    pub fn lazy() -> Self {
        ParserConfig {
            shared_reduces: false,
            early_reduces: false,
            ..Self::full()
        }
    }

    /// Follow-set + shared reduces.
    pub fn shared() -> Self {
        ParserConfig {
            lazy_shifts: false,
            early_reduces: false,
            ..Self::full()
        }
    }

    /// Follow-set + shared + lazy (no early reduces).
    pub fn shared_lazy() -> Self {
        ParserConfig {
            early_reduces: false,
            ..Self::full()
        }
    }

    /// The MAPR baseline: naive forking, kill switch at 16,000.
    pub fn mapr() -> Self {
        ParserConfig {
            follow_set: false,
            lazy_shifts: false,
            shared_reduces: false,
            early_reduces: false,
            largest_stack_first: false,
            choice_merge: false,
            kill_switch: 16_000,
            fastpath: true,
            budgets: ParseBudgets::unlimited(),
        }
    }

    /// MAPR with its largest-stack-first queue tie-break.
    pub fn mapr_largest_first() -> Self {
        ParserConfig {
            largest_stack_first: true,
            ..Self::mapr()
        }
    }

    /// The named optimization levels of Figure 8, in the paper's order.
    pub fn levels() -> Vec<(&'static str, ParserConfig)> {
        vec![
            ("Shared, Lazy, & Early", Self::full()),
            ("Shared & Lazy", Self::shared_lazy()),
            ("Shared", Self::shared()),
            ("Lazy", Self::lazy()),
            ("Follow-Set Only", Self::follow_only()),
            ("MAPR & Largest First", Self::mapr_largest_first()),
            ("MAPR", Self::mapr()),
        ]
    }
}

/// The outcome of a configuration-preserving parse.
pub struct ParseResult {
    /// The AST (a static choice at the root if configurations accepted
    /// with different trees); `None` when nothing accepted.
    pub ast: Option<SemVal>,
    /// Disjunction of configurations that parsed successfully.
    pub accepted: Option<Cond>,
    /// Per-configuration parse errors.
    pub errors: Vec<ParseError>,
    /// [`Complete`](ParseOutcome::Complete) unless a budget tripped.
    pub outcome: ParseOutcome,
    /// Budget-exhaustion events, coalesced per [`BudgetKind`], each with
    /// the presence condition of the configurations it degraded. When
    /// anything accepted, each trip also contributes an error node to the
    /// root choice of `ast` under its condition.
    pub trips: Vec<BudgetTrip>,
    /// Instrumentation.
    pub stats: ParseStats,
}

struct StackNode {
    state: u32,
    sym: SymbolId,
    value: SemVal,
    prev: Option<Rc<StackNode>>,
    depth: u32,
}

type Stack = Option<Rc<StackNode>>;

#[derive(Clone)]
struct Head {
    cond: Cond,
    node: NodeRef,
    term: SymbolId,
}

struct Sub<C> {
    heads: Vec<Head>,
    stack: Stack,
    ctx: C,
}

/// A scratch-stack frame of the deterministic fast path: [`StackNode`]
/// without the `Rc` indirection, so shifts push and reduces pop by plain
/// vector moves. Frames are persisted into the `Rc` chain only when the
/// stretch ends.
struct FastFrame {
    state: u32,
    sym: SymbolId,
    value: SemVal,
    depth: u32,
}

/// One peeked fast-path step: the resolved lookahead terminal and the LR
/// action it selects in the current state.
struct FastStep {
    term: SymbolId,
    action: Action,
}

impl<C> Sub<C> {
    fn cond(&self) -> Cond {
        let mut c = self.heads[0].cond.clone();
        for h in &self.heads[1..] {
            c = c.or(&h.cond);
        }
        c
    }
}

/// Head fingerprints for a [`MergeKey`]. Single-headed subparsers — the
/// overwhelmingly common case — stay inline so building a key per
/// [`Run::insert`] does not allocate.
#[derive(PartialEq, Eq, Hash)]
enum HeadsKey {
    One(u32, u32),
    Many(Vec<(u32, u32)>),
}

#[derive(PartialEq, Eq, Hash)]
struct MergeKey {
    heads: HeadsKey,
    state: u32,
    depth: u32,
}

/// A Fork-Merge LR parser over a grammar, with a context plug-in.
///
/// # Examples
///
/// See the crate tests and `superc-csyntax` for end-to-end use; a minimal
/// context-free setup:
///
/// ```no_run
/// use superc_fmlr::{NullContext, Parser, ParserConfig};
/// # fn grammar() -> superc_grammar::Grammar { unimplemented!() }
/// let grammar = grammar();
/// let mut parser = Parser::new(&grammar, ParserConfig::full(), NullContext);
/// ```
pub struct Parser<'g, P: ContextPlugin> {
    grammar: &'g Grammar,
    config: ParserConfig,
    plugin: P,
    kind_names: Vec<Rc<str>>,
}

impl<'g, P: ContextPlugin> Parser<'g, P> {
    /// Creates a parser for `grammar` with the given configuration.
    pub fn new(grammar: &'g Grammar, config: ParserConfig, plugin: P) -> Self {
        let kind_names = (0..grammar.num_productions())
            .map(|p| Rc::from(grammar.lhs_name(p)))
            .collect();
        Parser {
            grammar,
            config,
            plugin,
            kind_names,
        }
    }

    /// Access to the plug-in (e.g. to inspect a symbol table afterwards).
    pub fn plugin(&self) -> &P {
        &self.plugin
    }

    /// Parses a forest under the `true` condition of `cctx`.
    pub fn parse(&mut self, forest: &Forest, cctx: &CondCtx) -> ParseResult {
        let budgets = self.config.budgets;
        let bdd_base = if budgets.max_cond_nodes > 0 {
            cctx.bdd_stats().map_or(0, |s| s.nodes)
        } else {
            0
        };
        let started = (budgets.max_millis > 0).then(std::time::Instant::now);
        Run {
            parser: self,
            forest,
            cctx: cctx.clone(),
            slab: Vec::new(),
            heap: BinaryHeap::new(),
            index: FastMap::default(),
            live: 0,
            seq: 0,
            accepted: Vec::new(),
            errors: Vec::new(),
            trips: Vec::new(),
            budgets,
            armed: !budgets.is_unlimited(),
            bdd_base,
            started,
            stats: ParseStats::default(),
            follow_buf: Vec::new(),
            entries_buf: Vec::new(),
            fast_buf: Vec::new(),
        }
        .run()
    }
}

struct Run<'a, 'g, P: ContextPlugin> {
    parser: &'a mut Parser<'g, P>,
    forest: &'a Forest,
    cctx: CondCtx,
    slab: Vec<Option<Sub<P::Ctx>>>,
    heap: BinaryHeap<Reverse<(u32, u32, u64, usize)>>,
    index: FastMap<MergeKey, Vec<usize>>,
    live: usize,
    seq: u64,
    accepted: Vec<(Cond, SemVal)>,
    errors: Vec<ParseError>,
    /// Budget trips so far, coalesced per kind.
    trips: Vec<BudgetTrip>,
    /// The configured budgets, hoisted out of the config for the
    /// per-iteration checks.
    budgets: ParseBudgets,
    /// `!budgets.is_unlimited()`, precomputed: the ungoverned hot loop
    /// pays exactly one predictable branch for the governance layer.
    armed: bool,
    /// BDD manager node count when the parse started (for the ceiling).
    bdd_base: usize,
    /// Set only when a wall-clock budget is active.
    started: Option<std::time::Instant>,
    stats: ParseStats,
    /// Scratch buffers reused across token steps so the hot
    /// follow → reclassify → act loop does not allocate.
    follow_buf: Vec<FollowEntry>,
    entries_buf: Vec<FollowEntry>,
    /// The fast path's scratch stack, reused across stretches.
    fast_buf: Vec<FastFrame>,
}

fn state_of(stack: &Stack, grammar: &Grammar) -> u32 {
    match stack {
        Some(n) => n.state,
        None => grammar.start_state(),
    }
}

fn depth_of(stack: &Stack) -> u32 {
    match stack {
        Some(n) => n.depth,
        None => 0,
    }
}

impl<'a, 'g, P: ContextPlugin> Run<'a, 'g, P> {
    fn run(mut self) -> ParseResult {
        let initial = Sub {
            heads: vec![Head {
                cond: self.cctx.tru(),
                node: self.forest.root(),
                term: self.parser.grammar.eof(),
            }],
            stack: None,
            ctx: self.parser.plugin.initial(),
        };
        self.insert(initial);
        while let Some(p) = self.pull() {
            self.stats.observe_live(self.live + 1);
            if self.parser.config.kill_switch > 0 && self.live + 1 > self.parser.config.kill_switch
            {
                self.errors.push(ParseError {
                    pos: None,
                    got: String::new(),
                    cond: p.cond(),
                    state: state_of(&p.stack, self.parser.grammar),
                    message: format!(
                        "kill switch: more than {} live subparsers",
                        self.parser.config.kill_switch
                    ),
                });
                break;
            }
            if self.armed {
                if let Some((kind, limit)) = self.tripped_budget() {
                    self.kill_all(kind, limit, p);
                    break; // a global budget tripped; queue is empty
                }
                if self.budgets.max_live > 0 && self.live + 1 > self.budgets.max_live {
                    self.shed_queued(self.budgets.max_live - 1, self.budgets.max_live as u64);
                }
            }
            if p.heads.len() > 1 {
                self.step_multi(p);
            } else if self.parser.config.fastpath && self.live == 0 {
                // Single-subparser stretch: run the deterministic fast
                // path. It hands `p` back untouched when the very first
                // step is not fast (conditional head, typedef split) —
                // this iteration is already counted, so the general
                // engine performs it directly.
                if let Some(p) = self.step_fast(p) {
                    self.step_single(p);
                }
            } else {
                self.step_single(p);
            }
        }
        let accepted_cond = match self.accepted.as_slice() {
            [] => None,
            [(c, _)] => Some(c.clone()),
            many => {
                let mut c = many[0].0.clone();
                for (ci, _) in &many[1..] {
                    c = c.or(ci);
                }
                Some(c)
            }
        };
        let ast = if self.accepted.is_empty() {
            None
        } else {
            // Degraded configurations appear in the AST as explicit error
            // nodes *after* the real alternatives, so configuration-
            // restricted queries of surviving configurations are
            // unaffected while degraded ones resolve to a marker node
            // carrying the budget that tripped.
            for t in &self.trips {
                self.accepted.push((
                    t.cond.clone(),
                    SemVal::Node(Rc::new(AstNode {
                        prod: u32::MAX,
                        sym: self.parser.grammar.eof(),
                        kind: Rc::from(format!("budget_error:{}", t.kind)),
                        children: Vec::new(),
                        list: false,
                    })),
                ));
            }
            Some(SemVal::choice(std::mem::take(&mut self.accepted)))
        };
        let outcome = if self.trips.is_empty() {
            ParseOutcome::Complete
        } else {
            ParseOutcome::Partial
        };
        ParseResult {
            ast,
            accepted: accepted_cond,
            errors: self.errors,
            outcome,
            trips: self.trips,
            stats: self.stats,
        }
    }

    // ----- resource governance -----------------------------------------

    /// Enforces the degrading budgets for the subparser about to step.
    /// Returns `None` when a *global* budget (steps / condition nodes /
    /// time) tripped — `p` and every queued subparser were killed and
    /// recorded, and the main loop should stop. The live-subparser
    /// ceiling instead sheds the lowest-priority queued subparsers and
    /// lets `p` proceed.
    /// Which global budget, if any, tripped this iteration. Inlined into
    /// the main loop: on governed runs this is a handful of predictable
    /// branches; the costlier probes (BDD node count, wall clock) only
    /// run every [`COND_NODE_CHECK_MASK`]/[`TIME_CHECK_MASK`] + 1 steps.
    #[inline]
    fn tripped_budget(&self) -> Option<(BudgetKind, u64)> {
        let b = &self.budgets;
        if b.max_steps > 0 && self.stats.iterations > b.max_steps {
            return Some((BudgetKind::Steps, b.max_steps));
        }
        if b.max_cond_nodes > 0 && self.stats.iterations & COND_NODE_CHECK_MASK == 0 {
            let grown = self
                .cctx
                .bdd_stats()
                .map_or(0, |s| s.nodes)
                .saturating_sub(self.bdd_base);
            if grown > b.max_cond_nodes {
                return Some((BudgetKind::CondNodes, b.max_cond_nodes as u64));
            }
        }
        if let Some(t0) = self.started {
            if self.stats.iterations & TIME_CHECK_MASK == 0
                && t0.elapsed().as_millis() as u64 > b.max_millis
            {
                return Some((BudgetKind::TimeMs, b.max_millis));
            }
        }
        None
    }

    /// Kills the current subparser and every queued one, recording one
    /// coalesced trip covering all their configurations.
    fn kill_all(&mut self, kind: BudgetKind, limit: u64, p: Sub<P::Ctx>) {
        let mut cond = p.cond();
        let mut killed = 1u64;
        for slot in &mut self.slab {
            if let Some(q) = slot.take() {
                cond = cond.or(&q.cond());
                killed += 1;
            }
        }
        self.heap.clear();
        self.live = 0;
        self.record_trip(kind, limit, cond, killed);
    }

    /// Sheds queued subparsers down to `keep`, killing the lowest-priority
    /// (furthest-position, latest-sequence) ones — the current subparser
    /// is untouched, so progress continues on the highest-priority work.
    fn shed_queued(&mut self, keep: usize, limit: u64) {
        // Every live slab entry has exactly one heap entry (merges mutate
        // in place); tombstones are filtered out here.
        let mut entries: Vec<(u32, u32, u64, usize)> = std::mem::take(&mut self.heap)
            .into_iter()
            .map(|Reverse(e)| e)
            .filter(|&(_, _, _, id)| self.slab[id].is_some())
            .collect();
        entries.sort_unstable();
        let victims = entries.split_off(keep.min(entries.len()));
        if victims.is_empty() {
            self.heap = entries.into_iter().map(Reverse).collect();
            return;
        }
        let mut cond: Option<Cond> = None;
        let mut killed = 0u64;
        for (_, _, _, id) in victims {
            let q = self.slab[id].take().expect("filtered live");
            let qc = q.cond();
            cond = Some(match cond {
                Some(c) => c.or(&qc),
                None => qc,
            });
            killed += 1;
        }
        self.live = entries.len() + 1; // queued survivors + the current one
        self.heap = entries.into_iter().map(Reverse).collect();
        self.record_trip(
            BudgetKind::Subparsers,
            limit,
            cond.expect("nonempty victims"),
            killed,
        );
    }

    /// Records a budget trip, coalescing with an earlier trip of the same
    /// kind (conditions OR, kill counts add).
    fn record_trip(&mut self, kind: BudgetKind, limit: u64, cond: Cond, killed: u64) {
        self.stats.budget_trips += 1;
        self.stats.budget_killed += killed;
        if let Some(t) = self.trips.iter_mut().find(|t| t.kind == kind) {
            t.cond = t.cond.or(&cond);
            t.killed += killed;
        } else {
            self.trips.push(BudgetTrip {
                kind,
                limit,
                cond,
                killed,
            });
        }
    }

    // ----- queue -------------------------------------------------------

    fn priority(&mut self, p: &Sub<P::Ctx>) -> (u32, u32, u64) {
        let g = self.parser.grammar;
        let pos = self.forest.position(p.heads[0].node);
        let rank = if self.parser.config.largest_stack_first {
            u32::MAX - depth_of(&p.stack)
        } else if self.parser.config.early_reduces {
            // Favor reduces; unknown (conditional head) counts as shift.
            let term = if p.heads.len() > 1 {
                Some(p.heads[0].term)
            } else {
                match p.heads[0].node {
                    None => Some(g.eof()),
                    Some(n) => self.forest.token(n).map(|(_, t)| t),
                }
            };
            match term.map(|t| g.action(state_of(&p.stack, g), t)) {
                Some(Action::Reduce(_)) | Some(Action::Accept) => 0,
                _ => 1,
            }
        } else {
            0
        };
        self.seq += 1;
        (pos, rank, self.seq)
    }

    fn merge_key(&self, p: &Sub<P::Ctx>) -> MergeKey {
        let fp = |h: &Head| (h.node.unwrap_or(u32::MAX), h.term.0);
        MergeKey {
            heads: match p.heads.as_slice() {
                [h] => HeadsKey::One(h.node.unwrap_or(u32::MAX), h.term.0),
                hs => HeadsKey::Many(hs.iter().map(fp).collect()),
            },
            state: state_of(&p.stack, self.parser.grammar),
            depth: depth_of(&p.stack),
        }
    }

    fn insert(&mut self, p: Sub<P::Ctx>) {
        let key = self.merge_key(&p);
        if let Some(cands) = self.index.get(&key) {
            // Bound the scan: recent candidates are the likely partners,
            // and unbounded scans are quadratic in MAPR's blow-up regime.
            let mut recent = [0usize; 16];
            let n = cands.len().min(16);
            for (slot, &cid) in recent.iter_mut().zip(cands.iter().rev()) {
                *slot = cid;
            }
            for &cid in &recent[..n] {
                self.stats.merge_probes += 1;
                if self.slab.get(cid).map(|s| s.is_some()) == Some(true) && self.try_merge(cid, &p)
                {
                    self.stats.merges += 1;
                    return;
                }
            }
        }
        let (pos, rank, seq) = self.priority(&p);
        let id = self.slab.len();
        self.slab.push(Some(p));
        self.index.entry(key).or_default().push(id);
        self.heap.push(Reverse((pos, rank, seq, id)));
        self.live += 1;
    }

    fn pull(&mut self) -> Option<Sub<P::Ctx>> {
        while let Some(Reverse((_, _, _, id))) = self.heap.pop() {
            if let Some(p) = self.slab[id].take() {
                self.live -= 1;
                return Some(p);
            }
        }
        None
    }

    /// Attempts to merge `p` into the queued subparser `cid` (same heads,
    /// state, and depth by key). Returns true on success.
    fn try_merge(&mut self, cid: usize, p: &Sub<P::Ctx>) -> bool {
        let g = self.parser.grammar;
        let (q_stack, q_cond) = {
            let q = self.slab[cid].as_ref().expect("checked live");
            if !self.parser.plugin.may_merge(&q.ctx, &p.ctx) {
                return false;
            }
            (q.stack.clone(), q.cond())
        };
        // Walk both stacks to the shared tail, checking mergeability.
        let mut qs = q_stack;
        let mut ps = p.stack.clone();
        let mut spine: Vec<(Rc<StackNode>, Rc<StackNode>)> = Vec::new();
        loop {
            match (&qs, &ps) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    if Rc::ptr_eq(a, b) {
                        break;
                    }
                    if a.state != b.state || a.sym != b.sym {
                        return false;
                    }
                    if !a.value.quick_eq(&b.value)
                        && (!self.parser.config.choice_merge || !g.is_complete(a.sym))
                    {
                        return false;
                    }
                    spine.push((a.clone(), b.clone()));
                    qs = a.prev.clone();
                    ps = b.prev.clone();
                }
                _ => return false,
            }
        }
        // Mergeable: rebuild the differing spine with choice values.
        let p_cond = p.cond();
        let mut stack = qs; // shared tail
        for (a, b) in spine.into_iter().rev() {
            let value = self.merge_values(&a.value, &b.value, &q_cond, &p_cond);
            stack = Some(Rc::new(StackNode {
                state: a.state,
                sym: a.sym,
                value,
                prev: stack,
                depth: a.depth,
            }));
        }
        let merged_ctx = {
            let q = self.slab[cid].as_ref().expect("checked live");
            self.parser.plugin.merge(&q.ctx, &p.ctx)
        };
        let q = self.slab[cid].as_mut().expect("checked live");
        for (hq, hp) in q.heads.iter_mut().zip(&p.heads) {
            hq.cond = hq.cond.or(&hp.cond);
        }
        q.stack = stack;
        q.ctx = merged_ctx;
        true
    }

    /// Combines two semantic values at a merge point. List values whose
    /// children share a prefix merge *element-wise*, putting choice nodes
    /// around only the differing members — this is what keeps the AST for
    /// Figure 6's initializer linear in the member count instead of
    /// nesting a choice per merge.
    fn merge_values(&mut self, a: &SemVal, b: &SemVal, ca: &Cond, cb: &Cond) -> SemVal {
        if a.quick_eq(b) {
            return a.clone();
        }
        if let (SemVal::Node(na), SemVal::Node(nb)) = (a, b) {
            if na.sym == nb.sym && na.list && nb.list {
                let k = na
                    .children
                    .iter()
                    .zip(&nb.children)
                    .take_while(|(x, y)| x.quick_eq(y))
                    .count();
                let ra = &na.children[k..];
                let rb = &nb.children[k..];
                let mergeable = ra.len() == rb.len() || ra.is_empty() || rb.is_empty();
                if mergeable {
                    let mut children = na.children[..k].to_vec();
                    if ra.len() == rb.len() {
                        for (x, y) in ra.iter().zip(rb) {
                            children.push(self.merge_values(x, y, ca, cb));
                        }
                    } else {
                        // One side extends the other: the absent run gets
                        // one choice node with an explicit empty
                        // alternative (one conditional member = one choice
                        // node, matching Fig. 1c's AST shape).
                        let (longer, lc, sc) = if rb.is_empty() {
                            (ra, ca, cb)
                        } else {
                            (rb, cb, ca)
                        };
                        let present = if longer.len() == 1 {
                            longer[0].clone()
                        } else {
                            SemVal::Node(Rc::new(AstNode {
                                prod: na.prod,
                                sym: na.sym,
                                kind: na.kind.clone(),
                                children: longer.to_vec(),
                                list: true,
                            }))
                        };
                        self.stats.choice_nodes += 1;
                        children.push(SemVal::choice(vec![
                            (lc.clone(), present),
                            (sc.clone(), SemVal::Empty),
                        ]));
                    }
                    return SemVal::Node(Rc::new(AstNode {
                        prod: na.prod,
                        sym: na.sym,
                        kind: na.kind.clone(),
                        children,
                        list: true,
                    }));
                }
            }
        }
        self.stats.choice_nodes += 1;
        SemVal::choice(vec![(ca.clone(), a.clone()), (cb.clone(), b.clone())])
    }

    // ----- stepping ----------------------------------------------------

    fn step_single(&mut self, p: Sub<P::Ctx>) {
        let g = self.parser.grammar;

        if !self.parser.config.follow_set {
            let head = p.heads[0].clone();
            // MAPR: naive per-branch forking on conditional heads.
            if let Some(n) = head.node {
                if self.forest.token(n).is_none() {
                    let mut branches = self.forest.naive_fork(&head.cond, n);
                    let b = self.parser.config.budgets;
                    if b.max_forks > 0
                        && branches.len() > 1
                        && self.stats.forks + (branches.len() - 1) as u64 > b.max_forks
                    {
                        let dropped = branches.split_off(1);
                        let mut cond = dropped[0].0.clone();
                        for (c, _) in &dropped[1..] {
                            cond = cond.or(c);
                        }
                        self.record_trip(
                            BudgetKind::Forks,
                            b.max_forks,
                            cond,
                            dropped.len() as u64,
                        );
                    }
                    self.stats.forks += branches.len().saturating_sub(1) as u64;
                    let Sub { stack, ctx, .. } = p;
                    let m = branches.len();
                    let mut ctx_slot = Some(ctx);
                    for (i, (cond, node)) in branches.into_iter().enumerate() {
                        let ctx = if i + 1 == m {
                            ctx_slot.take().expect("last branch reuses the context")
                        } else {
                            self.parser
                                .plugin
                                .fork(ctx_slot.as_ref().expect("context present"))
                        };
                        self.insert(Sub {
                            heads: vec![Head {
                                cond,
                                node,
                                term: g.eof(),
                            }],
                            stack: stack.clone(),
                            ctx,
                        });
                    }
                    return;
                }
            }
            // Token or EOF head: resolve directly.
            let entry = self.resolve_head(&p, &head);
            match entry {
                One(e) => self.do_action(p, e),
                Many(es) => self.fork(es, p),
            }
            return;
        }

        // FMLR: token follow-set, through the reusable scratch buffers.
        let mut raw = std::mem::take(&mut self.follow_buf);
        self.forest
            .follow_into(&p.heads[0].cond, p.heads[0].node, &mut raw);
        let mut entries = std::mem::take(&mut self.entries_buf);
        entries.reserve(raw.len());
        for e in raw.drain(..) {
            self.reclassify_into(&p, e, &mut entries);
        }
        self.follow_buf = raw;
        match entries.len() {
            0 => self.entries_buf = entries,
            1 => {
                let e = entries.pop().expect("one");
                self.entries_buf = entries;
                self.do_action(p, e);
            }
            // Forks are rare; the buffer is rebuilt on the next step.
            _ => self.fork(entries, p),
        }
    }

    /// Resolves a token/EOF head into follow entries with
    /// reclassification (used on the MAPR path).
    fn resolve_head(&mut self, p: &Sub<P::Ctx>, head: &Head) -> Resolved {
        let mut out = Vec::new();
        let e = FollowEntry {
            cond: head.cond.clone(),
            node: head.node,
            term: SymbolId(u32::MAX),
        };
        self.reclassify_into(p, e, &mut out);
        if out.len() == 1 {
            One(out.pop().expect("one"))
        } else {
            Many(out)
        }
    }

    /// Applies terminal resolution + plug-in reclassification to a raw
    /// follow entry, appending the result(s).
    fn reclassify_into(&mut self, p: &Sub<P::Ctx>, e: FollowEntry, out: &mut Vec<FollowEntry>) {
        let g = self.parser.grammar;
        let Some(node) = e.node else {
            out.push(FollowEntry {
                cond: e.cond,
                node: None,
                term: g.eof(),
            });
            return;
        };
        let (tok, term) = self.forest.token(node).expect("follow entries are tokens");
        let term = if e.term.0 != u32::MAX { e.term } else { term };
        match self.parser.plugin.reclassify(&p.ctx, tok, term, &e.cond) {
            Reclass::Keep => out.push(FollowEntry {
                cond: e.cond,
                node: Some(node),
                term,
            }),
            Reclass::Replace(t) => out.push(FollowEntry {
                cond: e.cond,
                node: Some(node),
                term: t,
            }),
            Reclass::Split(parts) => {
                self.stats.reclassify_forks += parts.len().saturating_sub(1) as u64;
                for (cond, t) in parts {
                    if !cond.is_false() {
                        out.push(FollowEntry {
                            cond,
                            node: Some(node),
                            term: t,
                        });
                    }
                }
            }
        }
    }

    /// Fig. 7: forks subparsers for a multi-element follow-set, with lazy
    /// shifts and shared reduces producing multi-headed subparsers.
    fn fork(&mut self, entries: Vec<FollowEntry>, p: Sub<P::Ctx>) {
        let g = self.parser.grammar;
        let state = state_of(&p.stack, g);
        let mut shifts: Vec<Head> = Vec::new();
        let mut reduces: FastMap<u32, Vec<Head>> = FastMap::default();
        let mut singles: Vec<Head> = Vec::new();
        for e in entries {
            let head = Head {
                cond: e.cond,
                node: e.node,
                term: e.term,
            };
            match g.action(state, e.term) {
                Action::Shift(_) if self.parser.config.lazy_shifts => shifts.push(head),
                Action::Reduce(pr) if self.parser.config.shared_reduces => {
                    reduces.entry(pr).or_default().push(head)
                }
                _ => singles.push(head),
            }
        }
        let Sub { stack, ctx, .. } = p;
        let mut groups: Vec<Vec<Head>> = Vec::new();
        if !shifts.is_empty() {
            groups.push(shifts);
        }
        let mut reduce_groups: Vec<(u32, Vec<Head>)> = reduces.into_iter().collect();
        reduce_groups.sort_by_key(|&(pr, _)| pr);
        for (_, hs) in reduce_groups {
            groups.push(hs);
        }
        for h in singles {
            groups.push(vec![h]);
        }
        let b = self.parser.config.budgets;
        if b.max_forks > 0
            && groups.len() > 1
            && self.stats.forks + (groups.len() - 1) as u64 > b.max_forks
        {
            // Fork budget exhausted: keep only the highest-priority group
            // (shifts, else the lowest-numbered reduce) and degrade the
            // configurations the dropped groups would have explored.
            let dropped = groups.split_off(1);
            let mut cond: Option<Cond> = None;
            for heads in &dropped {
                for h in heads {
                    cond = Some(match cond {
                        Some(c) => c.or(&h.cond),
                        None => h.cond.clone(),
                    });
                }
            }
            self.record_trip(
                BudgetKind::Forks,
                b.max_forks,
                cond.expect("dropped groups have heads"),
                dropped.len() as u64,
            );
        }
        self.stats.forks += groups.len().saturating_sub(1) as u64;
        let n = groups.len();
        let mut ctx_slot = Some(ctx);
        for (i, mut heads) in groups.into_iter().enumerate() {
            heads.sort_by_key(|h| self.forest.position(h.node));
            let ctx = if i + 1 == n {
                ctx_slot.take().expect("last group reuses the context")
            } else {
                self.parser
                    .plugin
                    .fork(ctx_slot.as_ref().expect("context present"))
            };
            self.insert(Sub {
                heads,
                stack: stack.clone(),
                ctx,
            });
        }
    }

    fn step_multi(&mut self, mut p: Sub<P::Ctx>) {
        let g = self.parser.grammar;
        let state = state_of(&p.stack, g);
        let head0 = p.heads[0].clone();
        match g.action(state, head0.term) {
            Action::Shift(_) => {
                // Lazy shifts: detach and shift only the earliest head.
                self.stats.lazy_shifts += (p.heads.len() - 1) as u64;
                let rest_heads: Vec<Head> = p.heads.drain(1..).collect();
                let single = Sub {
                    heads: vec![head0.clone()],
                    stack: p.stack.clone(),
                    ctx: self.parser.plugin.fork(&p.ctx),
                };
                self.do_action(
                    single,
                    FollowEntry {
                        cond: head0.cond,
                        node: head0.node,
                        term: head0.term,
                    },
                );
                if !rest_heads.is_empty() {
                    self.insert(Sub {
                        heads: rest_heads,
                        stack: p.stack,
                        ctx: p.ctx,
                    });
                }
            }
            Action::Reduce(pr) => {
                // Shared reduce: one reduction serves every head.
                self.stats.shared_reduces += (p.heads.len() - 1) as u64;
                self.stats.reduces += 1;
                let cond = p.cond();
                let (stack, ok) = self.do_reduce(p.stack, pr, &cond, &mut p.ctx);
                if !ok {
                    for h in &p.heads {
                        self.error(h, state, "no goto after reduce");
                    }
                    return;
                }
                // Re-fork: the next action may differ per head now, and
                // the reduce may have changed the context (e.g. the
                // `type_seen` flag of the C plug-in), so reclassify each
                // head afresh rather than keeping stale terminals.
                let sub = Sub {
                    heads: Vec::new(),
                    stack,
                    ctx: p.ctx,
                };
                let mut entries: Vec<FollowEntry> = Vec::with_capacity(p.heads.len());
                for h in &p.heads {
                    self.reclassify_into(
                        &sub,
                        FollowEntry {
                            cond: h.cond.clone(),
                            node: h.node,
                            term: SymbolId(u32::MAX),
                        },
                        &mut entries,
                    );
                }
                self.fork(entries, sub);
            }
            _ => {
                // Accept/error for the earliest head: detach it and let
                // the single-headed path handle it; requeue the rest.
                let rest: Vec<Head> = p.heads.drain(1..).collect();
                let single = Sub {
                    heads: vec![head0.clone()],
                    stack: p.stack.clone(),
                    ctx: self.parser.plugin.fork(&p.ctx),
                };
                self.do_action(
                    single,
                    FollowEntry {
                        cond: head0.cond,
                        node: head0.node,
                        term: head0.term,
                    },
                );
                if !rest.is_empty() {
                    self.insert(Sub {
                        heads: rest,
                        stack: p.stack,
                        ctx: p.ctx,
                    });
                }
            }
        }
    }

    // ----- deterministic fast path --------------------------------------

    /// Peeks whether the next step of a lone single-headed subparser is
    /// deterministic: the head is a token (or EOF) — not a static
    /// conditional — and reclassification does not split it. Returns the
    /// resolved terminal and LR action, or `None` when the stretch is
    /// over and the general engine must take this step instead.
    ///
    /// Resolution here must match the general path exactly: the forest's
    /// classified terminal (the head's stored terminal is *not* reused —
    /// `follow_into` re-resolves after every reduce, because a reduce can
    /// change the context), then the plug-in's reclassification.
    /// `reclassify` is called again by the general engine when this peek
    /// declines, so plug-ins must keep it free of observable effects
    /// (the trait's contract; the C context only reads its tables).
    fn fast_resolve(
        &mut self,
        ctx: &P::Ctx,
        node: NodeRef,
        cond: &Cond,
        state: u32,
    ) -> Option<FastStep> {
        let g = self.parser.grammar;
        let term = match node {
            None => g.eof(),
            Some(n) => {
                let (tok, term) = self.forest.token(n)?; // conditional head
                match self.parser.plugin.reclassify(ctx, tok, term, cond) {
                    Reclass::Keep => term,
                    Reclass::Replace(t) => t,
                    // A split forks; the general engine redoes the
                    // reclassification and counts the fork once.
                    Reclass::Split(_) => return None,
                }
            }
        };
        Some(FastStep {
            term,
            action: g.action(state, term),
        })
    }

    /// The deterministic fast path: with no other live subparser and no
    /// pending conditional at the head, steps `p` in a tight LALR loop —
    /// no priority queue, no merge probes — on a scratch stack that is
    /// persisted back into the shared `Rc` chain only when the stretch
    /// ends.
    ///
    /// Returns `Some(p)` when even the first step is not fast: the caller
    /// dispatches it to the general engine (that iteration was already
    /// counted by the main loop, so nothing is recorded here). Returns
    /// `None` when the fast path consumed the subparser — persisted and
    /// re-queued at a stretch end, accepted, errored, or budget-killed.
    ///
    /// Counter parity with the general engine: the main loop counted the
    /// first step before calling in, so each *subsequent* committed step
    /// replays `observe_live(1)` plus the global budget check, in the
    /// same order. A step whose peek declines is re-pulled (and then
    /// counted) by the main loop. With one subparser the kill switch and
    /// the live ceiling cannot fire, and during the stretch the merge
    /// index holds no live candidate, so skipping `insert` changes
    /// `merge_probes` only — every determinism-surface counter matches.
    fn step_fast(&mut self, p: Sub<P::Ctx>) -> Option<Sub<P::Ctx>> {
        let g = self.parser.grammar;
        let forest = self.forest;
        debug_assert!(self.live == 0 && p.heads.len() == 1);
        let mut state = state_of(&p.stack, g);
        let Some(first_step) = self.fast_resolve(&p.ctx, p.heads[0].node, &p.heads[0].cond, state)
        else {
            return Some(p);
        };
        self.stats.fastpath_entries += 1;
        let Sub {
            mut heads,
            stack: mut base,
            mut ctx,
        } = p;
        // The presence condition is invariant over a stretch: token
        // follow-sets pass it through and nothing forks.
        let cond = heads[0].cond.clone();
        let mut node = heads[0].node;
        let mut step = first_step;
        let mut scratch = std::mem::take(&mut self.fast_buf);
        debug_assert!(scratch.is_empty());
        let mut first = true;
        // Runs until a peek declines; breaks with the head terminal the
        // general engine would carry (EOF after a shift, the resolved
        // lookahead after a reduce) — it participates in the merge key.
        let exit_term = loop {
            if !first {
                // The main loop counted the first step; replay its
                // accounting for each further committed step.
                self.stats.observe_live(1);
                if self.armed {
                    if let Some((kind, limit)) = self.tripped_budget() {
                        // `kill_all` over an empty queue: the lone
                        // subparser dies and the parse winds down.
                        self.record_trip(kind, limit, cond.clone(), 1);
                        scratch.clear();
                        self.fast_buf = scratch;
                        return None;
                    }
                }
            }
            first = false;
            let cur_term = match step.action {
                Action::Shift(s) => {
                    self.stats.shifts += 1;
                    self.stats.fastpath_tokens += 1;
                    let n = node.expect("eof cannot shift");
                    let (tok, _) = forest.token(n).expect("shift target is a token");
                    let depth = scratch.last().map_or_else(|| depth_of(&base), |f| f.depth) + 1;
                    scratch.push(FastFrame {
                        state: s,
                        sym: step.term,
                        value: SemVal::Tok(tok.clone()),
                        depth,
                    });
                    state = s;
                    node = forest.successor(n);
                    g.eof()
                }
                Action::Reduce(pr) => {
                    self.stats.reduces += 1;
                    let n = g.rhs_len(pr) as usize;
                    let mut values: Vec<SemVal> = Vec::with_capacity(n);
                    let from_scratch = n.min(scratch.len());
                    for _ in 0..from_scratch {
                        values.push(scratch.pop().expect("counted").value);
                    }
                    for _ in from_scratch..n {
                        let sn = base.expect("stack underflow on reduce");
                        values.push(sn.value.clone());
                        base = sn.prev.clone();
                    }
                    values.reverse();
                    let value = self.build_reduce_value(pr, values);
                    self.parser.plugin.on_reduce(&mut ctx, pr, &value, &cond);
                    let below = scratch
                        .last()
                        .map_or_else(|| state_of(&base, g), |f| f.state);
                    let lhs = g.production(pr).lhs;
                    let Some(next) = g.goto(below, lhs) else {
                        // Same report as the general engine: pre-reduce
                        // state, resolved lookahead.
                        let h = Head {
                            cond: cond.clone(),
                            node,
                            term: step.term,
                        };
                        self.error(&h, state, "no goto after reduce");
                        scratch.clear();
                        self.fast_buf = scratch;
                        return None;
                    };
                    let depth = scratch.last().map_or_else(|| depth_of(&base), |f| f.depth) + 1;
                    scratch.push(FastFrame {
                        state: next,
                        sym: lhs,
                        value,
                        depth,
                    });
                    state = next;
                    step.term
                }
                Action::Accept => {
                    let value = match scratch.last() {
                        Some(f) => f.value.clone(),
                        None => match &base {
                            Some(sn) => sn.value.clone(),
                            None => SemVal::Empty,
                        },
                    };
                    self.accepted.push((cond.clone(), value));
                    scratch.clear();
                    self.fast_buf = scratch;
                    return None;
                }
                Action::Error => {
                    let h = Head {
                        cond: cond.clone(),
                        node,
                        term: step.term,
                    };
                    self.error(&h, state, "syntax error");
                    scratch.clear();
                    self.fast_buf = scratch;
                    return None;
                }
            };
            // Peek the next step *before* committing to it: a stretch-
            // ending step belongs to the general loop, which re-pulls
            // and re-counts it.
            match self.fast_resolve(&ctx, node, &cond, state) {
                Some(next) => step = next,
                None => break cur_term,
            }
        };
        // Persist the scratch frames into the persistent stack and hand
        // the subparser back to the queue.
        self.stats.fastpath_exits += 1;
        let mut stack = base;
        for f in scratch.drain(..) {
            stack = Some(Rc::new(StackNode {
                state: f.state,
                sym: f.sym,
                value: f.value,
                prev: stack,
                depth: f.depth,
            }));
        }
        self.fast_buf = scratch;
        heads[0] = Head {
            cond,
            node,
            term: exit_term,
        };
        self.insert(Sub { heads, stack, ctx });
        None
    }

    /// Performs one LR action for a resolved follow entry. Reuses `p`'s
    /// head vector (and, on shift, its stack handle) so the dominant
    /// shift/reduce steps allocate only the new stack node.
    fn do_action(&mut self, p: Sub<P::Ctx>, e: FollowEntry) {
        let g = self.parser.grammar;
        let state = state_of(&p.stack, g);
        match g.action(state, e.term) {
            Action::Shift(s) => {
                self.stats.shifts += 1;
                let node = e.node.expect("eof cannot shift");
                let (tok, _) = self.forest.token(node).expect("shift target is a token");
                let Sub {
                    mut heads,
                    stack: prev,
                    ctx,
                } = p;
                let depth = depth_of(&prev) + 1;
                let stack = Some(Rc::new(StackNode {
                    state: s,
                    sym: e.term,
                    value: SemVal::Tok(tok.clone()),
                    prev,
                    depth,
                }));
                heads.clear();
                heads.push(Head {
                    cond: e.cond,
                    node: self.forest.successor(node),
                    term: g.eof(),
                });
                self.insert(Sub { heads, stack, ctx });
            }
            Action::Reduce(pr) => {
                self.stats.reduces += 1;
                let Sub {
                    mut heads,
                    stack,
                    mut ctx,
                } = p;
                let (stack, ok) = self.do_reduce(stack, pr, &e.cond, &mut ctx);
                if !ok {
                    let h = Head {
                        cond: e.cond,
                        node: e.node,
                        term: e.term,
                    };
                    self.error(&h, state, "no goto after reduce");
                    return;
                }
                heads.clear();
                heads.push(Head {
                    cond: e.cond,
                    node: e.node,
                    term: e.term,
                });
                self.insert(Sub { heads, stack, ctx });
            }
            Action::Accept => {
                let value = match &p.stack {
                    Some(n) => n.value.clone(),
                    None => SemVal::Empty,
                };
                self.accepted.push((e.cond, value));
            }
            Action::Error => {
                let h = Head {
                    cond: e.cond,
                    node: e.node,
                    term: e.term,
                };
                self.error(&h, state, "syntax error");
            }
        }
    }

    fn error(&mut self, h: &Head, state: u32, message: &str) {
        let (pos, got) = match h.node {
            Some(n) => {
                let (tok, _) = self.forest.token(n).expect("token head");
                (Some(tok.tok.pos), tok.text().to_string())
            }
            None => (None, "<eof>".to_string()),
        };
        self.errors.push(ParseError {
            pos,
            got,
            cond: h.cond.clone(),
            state,
            message: message.to_string(),
        });
    }

    /// Pops the production's right-hand side, builds the semantic value
    /// per the grammar annotation, notifies the plug-in, and pushes the
    /// goto state. Returns the new stack and success.
    fn do_reduce(
        &mut self,
        stack: Stack,
        prod: u32,
        cond: &Cond,
        ctx: &mut P::Ctx,
    ) -> (Stack, bool) {
        let g = self.parser.grammar;
        let n = g.rhs_len(prod) as usize;
        let mut values: Vec<SemVal> = Vec::with_capacity(n);
        let mut stack = stack;
        for _ in 0..n {
            let node = stack.expect("stack underflow on reduce");
            values.push(node.value.clone());
            stack = node.prev.clone();
        }
        values.reverse();
        let value = self.build_reduce_value(prod, values);
        self.parser.plugin.on_reduce(ctx, prod, &value, cond);
        let state = state_of(&stack, g);
        let lhs = g.production(prod).lhs;
        let Some(next) = g.goto(state, lhs) else {
            return (stack, false);
        };
        let stack = Some(Rc::new(StackNode {
            state: next,
            sym: lhs,
            value,
            prev: stack.clone(),
            depth: depth_of(&stack) + 1,
        }));
        (stack, true)
    }

    /// Builds the semantic value of a reduce from the popped right-hand
    /// side, per the production's AST annotation. Shared by the general
    /// reduce ([`Run::do_reduce`]) and the fast path, which must produce
    /// bit-identical values.
    fn build_reduce_value(&self, prod: u32, values: Vec<SemVal>) -> SemVal {
        let p = self.parser.grammar.production(prod);
        match p.ast {
            AstBuild::Layout => SemVal::Empty,
            AstBuild::Passthrough => {
                let count = values
                    .iter()
                    .filter(|v| !matches!(v, SemVal::Empty))
                    .count();
                if count == 1 {
                    values
                        .into_iter()
                        .find(|v| !matches!(v, SemVal::Empty))
                        .expect("one non-empty value")
                } else {
                    self.mk_node(prod, values, false)
                }
            }
            AstBuild::List => {
                let first_is_same_list = values
                    .first()
                    .and_then(SemVal::as_node)
                    .map(|n| n.sym == p.lhs && n.list)
                    == Some(true);
                if first_is_same_list {
                    let mut it = values.into_iter();
                    let head = it.next().expect("nonempty");
                    let SemVal::Node(rc) = head else {
                        unreachable!("checked node")
                    };
                    let mut node = (*rc).clone();
                    node.children
                        .extend(it.filter(|v| !matches!(v, SemVal::Empty)));
                    SemVal::Node(Rc::new(node))
                } else {
                    self.mk_node(prod, values, true)
                }
            }
            AstBuild::Node | AstBuild::Action => self.mk_node(prod, values, false),
        }
    }

    fn mk_node(&self, prod: u32, values: Vec<SemVal>, list: bool) -> SemVal {
        let g = self.parser.grammar;
        let children = values
            .into_iter()
            .filter(|v| !matches!(v, SemVal::Empty))
            .collect();
        SemVal::Node(Rc::new(AstNode {
            prod,
            sym: g.production(prod).lhs,
            kind: self.parser.kind_names[prod as usize].clone(),
            children,
            list,
        }))
    }
}

enum Resolved {
    One(FollowEntry),
    Many(Vec<FollowEntry>),
}
use Resolved::{Many, One};

#[cfg(test)]
mod stack_metadata_tests {
    use super::*;
    use superc_grammar::GrammarBuilder;
    use superc_util::prop::{check, Gen};

    /// Recomputes what `depth_of` answers in O(1) by walking the chain —
    /// the regression oracle for the inline `depth` field.
    fn walked_depth(stack: &Stack) -> u32 {
        let mut d = 0u32;
        let mut cur = stack.as_deref();
        while let Some(n) = cur {
            d += 1;
            cur = n.prev.as_deref();
        }
        d
    }

    /// The inline `state`/`depth` metadata must agree with a full walk of
    /// the stack after any sequence of shift-like pushes and reduce-like
    /// pops, including across shared tails (`Rc`-aliased prefixes).
    #[test]
    fn stack_metadata_matches_walking_recomputation() {
        let g = {
            let mut b = GrammarBuilder::new("S");
            b.terminals(&["a"]);
            b.prod("S", &["a"]);
            b.build().expect("grammar")
        };
        check("stack_metadata_walk", 128, |gen: &mut Gen| {
            let mut stack: Stack = None;
            // Keep earlier snapshots alive so pops can revisit shared tails.
            let mut snapshots: Vec<Stack> = Vec::new();
            for _ in 0..gen.usize(1..64) {
                if stack.is_none() || gen.percent(60) {
                    // "Shift/goto": push a node exactly as the engine does.
                    stack = Some(Rc::new(StackNode {
                        state: gen.u32(0..1000),
                        sym: SymbolId(gen.u32(0..16)),
                        value: SemVal::Empty,
                        prev: stack.clone(),
                        depth: depth_of(&stack) + 1,
                    }));
                    if gen.percent(20) {
                        snapshots.push(stack.clone());
                    }
                } else if gen.percent(15) && !snapshots.is_empty() {
                    // Fork-like jump back to a live shared prefix.
                    stack = snapshots[gen.usize(0..snapshots.len())].clone();
                } else {
                    // "Reduce": pop an rhs of 1..=3 nodes.
                    for _ in 0..gen.usize(1..=3) {
                        stack = stack.and_then(|n| n.prev.clone());
                    }
                }
                assert_eq!(depth_of(&stack), walked_depth(&stack));
                let expected_state = match stack.as_deref() {
                    Some(n) => n.state,
                    None => g.start_state(),
                };
                assert_eq!(state_of(&stack, &g), expected_state);
            }
        });
    }
}
