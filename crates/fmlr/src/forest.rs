//! The token forest: the preprocessor's element tree laid out in an arena
//! with sibling/parent links and document-order positions, plus the token
//! follow-set computation (Algorithm 3).

use superc_cond::Cond;
use superc_cpp::{Element, PTok};
use superc_grammar::SymbolId;

/// Index of a node in a [`Forest`].
pub type NodeId = u32;

/// A resolved head: a node or end-of-input.
pub type NodeRef = Option<NodeId>;

pub(crate) enum NodeKind {
    Token {
        term: SymbolId,
        tok: PTok,
    },
    Cond {
        /// `(presence condition, first node)`; `None` = empty branch.
        branches: Vec<(Cond, NodeRef)>,
    },
}

pub(crate) struct Node {
    pub kind: NodeKind,
    /// Next sibling within the same branch or at top level.
    pub next: NodeRef,
    /// Enclosing conditional node.
    pub up: NodeRef,
    /// Document (pre-)order; orders subparser heads in the priority queue.
    pub pos: u32,
}

/// A compilation unit's tokens and conditionals, arena-allocated.
///
/// Built from preprocessor output with a *classifier* that assigns each
/// token its grammar terminal (keyword recognition happens here, after
/// macro expansion).
pub struct Forest {
    pub(crate) nodes: Vec<Node>,
    root: NodeRef,
    tokens: usize,
}

/// One element of a token follow-set: the first language token (or EOF)
/// on some path through conditionals, with its presence condition and
/// grammar terminal.
#[derive(Clone)]
pub struct FollowEntry {
    /// Configurations in which this token is next.
    pub cond: Cond,
    /// The token node, or `None` for end-of-input.
    pub node: NodeRef,
    /// The terminal (after any reclassification).
    pub term: SymbolId,
}

impl Forest {
    /// Builds a forest from preprocessor elements. `classify` maps each
    /// token to its grammar terminal.
    pub fn build(elements: &[Element], classify: &dyn Fn(&PTok) -> SymbolId) -> Forest {
        let mut f = Forest {
            nodes: Vec::new(),
            root: None,
            tokens: 0,
        };
        f.root = f.build_list(elements, None, classify);
        // Assign document order by a DFS that follows branches before
        // successors (pre-order).
        let mut pos = 0u32;
        fn number(f: &mut Forest, mut n: NodeRef, pos: &mut u32) {
            while let Some(id) = n {
                f.nodes[id as usize].pos = *pos;
                *pos += 1;
                if let NodeKind::Cond { branches } = &f.nodes[id as usize].kind {
                    let firsts: Vec<NodeRef> = branches.iter().map(|(_, f)| *f).collect();
                    for b in firsts {
                        number(f, b, pos);
                    }
                }
                n = f.nodes[id as usize].next;
            }
        }
        let root = f.root;
        number(&mut f, root, &mut pos);
        f
    }

    fn build_list(
        &mut self,
        elements: &[Element],
        up: NodeRef,
        classify: &dyn Fn(&PTok) -> SymbolId,
    ) -> NodeRef {
        let mut first: NodeRef = None;
        let mut prev: NodeRef = None;
        for el in elements {
            let id = self.nodes.len() as NodeId;
            // Reserve the slot so children can point up at it.
            self.nodes.push(Node {
                kind: NodeKind::Cond {
                    branches: Vec::new(),
                },
                next: None,
                up,
                pos: 0,
            });
            let kind = match el {
                Element::Token(t) => {
                    self.tokens += 1;
                    NodeKind::Token {
                        term: classify(t),
                        tok: t.clone(),
                    }
                }
                Element::Conditional(k) => {
                    let branches = k
                        .branches
                        .iter()
                        .map(|b| {
                            let f = self.build_list(&b.elements, Some(id), classify);
                            (b.cond.clone(), f)
                        })
                        .collect();
                    NodeKind::Cond { branches }
                }
            };
            self.nodes[id as usize].kind = kind;
            match prev {
                None => first = Some(id),
                Some(p) => self.nodes[p as usize].next = Some(id),
            }
            prev = Some(id);
        }
        first
    }

    /// The first node (or `None` for an empty unit).
    pub fn root(&self) -> NodeRef {
        self.root
    }

    /// Total ordinary tokens.
    pub fn token_count(&self) -> usize {
        self.tokens
    }

    /// Total nodes (tokens + conditionals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The token at `id`, if it is a token node.
    pub fn token(&self, id: NodeId) -> Option<(&PTok, SymbolId)> {
        match &self.nodes[id as usize].kind {
            NodeKind::Token { term, tok } => Some((tok, *term)),
            NodeKind::Cond { .. } => None,
        }
    }

    /// Document position used for queue ordering; EOF sorts last.
    pub fn position(&self, n: NodeRef) -> u32 {
        match n {
            Some(id) => self.nodes[id as usize].pos,
            None => u32::MAX,
        }
    }

    /// The next token-or-conditional after `id`, stepping *out* of
    /// conditionals when `id` ends its branch (§4.2's successor).
    pub fn successor(&self, id: NodeId) -> NodeRef {
        let mut cur = id;
        loop {
            let node = &self.nodes[cur as usize];
            if let Some(next) = node.next {
                return Some(next);
            }
            match node.up {
                Some(up) => cur = up,
                None => return None,
            }
        }
    }

    /// Algorithm 3: the token follow-set of `(c, a)` — pairs of presence
    /// conditions and first language tokens on each path through static
    /// conditionals, ending with an EOF entry for configurations that run
    /// off the end of the input.
    ///
    /// Terminals are the classifier's; callers apply reclassification.
    pub fn follow(&self, c: &Cond, a: NodeRef) -> Vec<FollowEntry> {
        let mut t = Vec::new();
        self.follow_into(c, a, &mut t);
        t
    }

    /// [`Forest::follow`] into a caller-provided buffer, so the engine's
    /// per-token-step call can reuse one allocation for the whole parse.
    pub fn follow_into(&self, c: &Cond, a: NodeRef, t: &mut Vec<FollowEntry>) {
        let mut c = c.clone();
        let mut a = a;
        loop {
            match a {
                None => {
                    if !c.is_false() {
                        t.push(FollowEntry {
                            cond: c,
                            node: None,
                            term: SymbolId(u32::MAX), // resolved to eof by the engine
                        });
                    }
                    return;
                }
                Some(n) => {
                    let (rest, stop) = self.first(c, n, t);
                    if rest.is_false() {
                        return;
                    }
                    c = rest;
                    a = self.successor(stop);
                }
            }
        }
    }

    /// The paper's `First`: scans from `a` at one nesting level, adding
    /// the first token per configuration to `t`; returns the remaining
    /// configuration and the node where scanning stopped.
    fn first(&self, c: Cond, a: NodeId, t: &mut Vec<FollowEntry>) -> (Cond, NodeId) {
        let mut c = c;
        let mut a = a;
        loop {
            let node = &self.nodes[a as usize];
            match &node.kind {
                NodeKind::Token { term, .. } => {
                    t.push(FollowEntry {
                        cond: c.clone(),
                        node: Some(a),
                        term: *term,
                    });
                    return (c.ctx().fls(), a);
                }
                NodeKind::Cond { branches } => {
                    let mut cr = c.ctx().fls();
                    for (ci, firstn) in branches {
                        let cc = c.and(ci);
                        if cc.is_false() {
                            continue;
                        }
                        match firstn {
                            None => cr = cr.or(&cc),
                            Some(f) => {
                                let (sub, _) = self.first(cc, *f, t);
                                cr = cr.or(&sub);
                            }
                        }
                    }
                    if cr.is_false() {
                        return (cr, a);
                    }
                    match node.next {
                        Some(n) => {
                            c = cr;
                            a = n;
                        }
                        None => return (cr, a),
                    }
                }
            }
        }
    }

    /// Naive MAPR-style branch listing for a conditional head: one
    /// `(condition, head)` per branch (empty branches step to the
    /// conditional's successor). For token heads returns the head itself.
    pub fn naive_fork(&self, c: &Cond, a: NodeId) -> Vec<(Cond, NodeRef)> {
        match &self.nodes[a as usize].kind {
            NodeKind::Token { .. } => vec![(c.clone(), Some(a))],
            NodeKind::Cond { branches } => {
                let succ = self.successor(a);
                branches
                    .iter()
                    .filter_map(|(ci, f)| {
                        let cc = c.and(ci);
                        if cc.is_false() {
                            None
                        } else {
                            Some((cc, f.or(succ)))
                        }
                    })
                    .collect()
            }
        }
    }
}
