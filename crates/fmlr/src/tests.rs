use super::*;
use superc_cond::{Cond, CondBackend, CondCtx};
use superc_cpp::{MemFs, PTok, PpOptions, Preprocessor, Profile};
use superc_grammar::{Grammar, GrammarBuilder, SymbolId};
use superc_lexer::TokenKind;

/// A small C-like statement grammar exercising everything the engine
/// needs: lists, nesting, dangling else, merge-complete marks.
fn stmt_grammar() -> Grammar {
    let mut b = GrammarBuilder::new("Unit");
    b.terminals(&[
        "ID", "NUM", ";", "=", "+", "(", ")", "{", "}", ",", "if", "else", "TYPE",
    ]);
    b.prod("Unit", &["StmtList"]).passthrough();
    b.prod("StmtList", &["Stmt"]).list();
    b.prod("StmtList", &["StmtList", "Stmt"]).list();
    b.prod("Stmt", &["ID", "=", "Expr", ";"]);
    b.prod("Stmt", &["Expr", ";"]);
    b.prod("Stmt", &["if", "(", "Expr", ")", "Stmt"]);
    b.prod("Stmt", &["if", "(", "Expr", ")", "Stmt", "else", "Stmt"]);
    b.prod("Stmt", &["{", "StmtList", "}"]);
    b.prod("Stmt", &["TYPE", "ID", ";"]); // a "declaration" for reclassify tests
    b.prod("Expr", &["Expr", "+", "Term"]);
    b.prod("Expr", &["Term"]).passthrough();
    b.prod("Term", &["ID"]).passthrough();
    b.prod("Term", &["NUM"]).passthrough();
    b.prod("Term", &["(", "Expr", ")"]);
    b.complete(&["Stmt", "Expr", "StmtList"]);
    let g = b.build().unwrap();
    // Only the dangling-else conflict is expected.
    assert_eq!(g.conflicts().len(), 1, "{:?}", g.conflicts());
    g
}

/// Figure 6's shape: an initializer list whose members sit in separate
/// conditionals.
fn init_grammar() -> Grammar {
    let mut b = GrammarBuilder::new("Arr");
    b.terminals(&["ID", "NUM", "{", "}", ",", ";"]);
    b.prod("Arr", &["{", "Items", "Last", "}", ";"]);
    b.prod("Items", &[]).list();
    b.prod("Items", &["Items", "Item"]).list();
    b.prod("Item", &["ID", ","]);
    b.prod("Last", &["ID"]).passthrough();
    b.prod("Last", &["NUM"]).passthrough();
    b.complete(&["Item", "Items"]);
    let g = b.build().unwrap();
    assert!(g.conflicts().is_empty(), "{:?}", g.conflicts());
    g
}

fn classify(g: &Grammar, t: &PTok) -> SymbolId {
    match t.tok.kind {
        TokenKind::Ident => match t.text() {
            "if" | "else" => g.terminal(t.text()).unwrap(),
            _ => g.terminal("ID").unwrap(),
        },
        TokenKind::Number => g.terminal("NUM").unwrap(),
        _ => g
            .terminal(t.text())
            .unwrap_or_else(|| panic!("unknown token {}", t.text())),
    }
}

fn forest_for(g: &Grammar, src: &str) -> (Forest, CondCtx) {
    let fs = MemFs::new().file("t.c", src);
    let ctx = CondCtx::new(CondBackend::Bdd);
    let opts = PpOptions {
        profile: Profile::bare(),
        ..PpOptions::default()
    };
    let mut pp = Preprocessor::new(ctx.clone(), opts, fs);
    let unit = pp.preprocess("t.c").expect("preprocess");
    let f = Forest::build(&unit.elements, &|t| classify(g, t));
    (f, ctx)
}

fn parse_with(g: &Grammar, src: &str, cfg: ParserConfig) -> ParseResult {
    let (f, ctx) = forest_for(g, src);
    let mut parser = Parser::new(g, cfg, NullContext);
    parser.parse(&f, &ctx)
}

fn parse(g: &Grammar, src: &str) -> ParseResult {
    parse_with(g, src, ParserConfig::full())
}

// ---------------------------------------------------------------------
// Plain LR behavior on conditional-free input
// ---------------------------------------------------------------------

#[test]
fn flat_input_parses_like_lr() {
    let g = stmt_grammar();
    let r = parse(&g, "x = 1 + y;\nz;\n");
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    let ast = r.ast.expect("ast");
    assert!(r.accepted.expect("accepted").is_true());
    // StmtList is linearized: two Stmt children.
    let root = ast.as_node().expect("node");
    assert_eq!(&*root.kind, "StmtList");
    assert_eq!(root.children.len(), 2);
    assert_eq!(ast.choice_count(), 0);
    // One subparser throughout.
    assert_eq!(r.stats.max_subparsers, 1);
    assert_eq!(r.stats.merges, 0);
}

#[test]
fn syntax_errors_report_position_and_condition() {
    let g = stmt_grammar();
    let r = parse(&g, "x = = 1;\n");
    assert!(r.ast.is_none());
    assert_eq!(r.errors.len(), 1);
    let e = &r.errors[0];
    assert_eq!(e.got, "=");
    assert!(e.cond.is_true());
    assert!(format!("{e}").contains("syntax error"));
}

#[test]
fn empty_input_fails_for_nonnullable_grammar() {
    let g = stmt_grammar();
    let r = parse(&g, "\n");
    assert!(r.ast.is_none());
    assert_eq!(r.errors.len(), 1);
    assert_eq!(r.errors[0].got, "<eof>");
}

// ---------------------------------------------------------------------
// Fork and merge across conditionals
// ---------------------------------------------------------------------

/// The paper's Figure 1: a conditional splits an if-else across
/// configurations; both parses merge after the construct.
const FIG1: &str = "\
x = 0;
#ifdef CONFIG_INPUT_MOUSEDEV_PSAUX
if (major + 1)
  i = 31;
else
#endif
i = maj + 32;
y = 0;
";

#[test]
fn fig1_conditional_produces_choice_node() {
    let g = stmt_grammar();
    let r = parse(&g, FIG1);
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert!(r.accepted.expect("accepted").is_true());
    let ast = r.ast.expect("ast");
    // Exactly one static choice node for the conditional.
    assert_eq!(ast.choice_count(), 1);
    // Both configurations contain the shared trailing statement: tokens
    // after the conditional merged back into one subparser.
    assert!(r.stats.merges >= 1);
    // The construct needs one extra subparser, no more.
    assert!(r.stats.max_subparsers <= 3, "{}", r.stats.max_subparsers);
}

#[test]
fn fig1_both_configurations_have_correct_trees() {
    let g = stmt_grammar();
    let r = parse(&g, FIG1);
    let ast = r.ast.expect("ast");
    let SemVal::Node(root) = &ast else {
        panic!("root should be a list node")
    };
    // Find the choice node and check each alternative's shape.
    let mut found = 0;
    ast.visit(&mut |_, _| {});
    fn find_choice(v: &SemVal, out: &mut Vec<(Cond, SemVal)>) {
        match v {
            SemVal::Choice(alts) => out.extend(alts.iter().cloned()),
            SemVal::Node(n) => {
                for c in &n.children {
                    find_choice(c, out);
                }
            }
            _ => {}
        }
    }
    let mut alts = Vec::new();
    for c in &root.children {
        find_choice(c, &mut alts);
    }
    for (cond, v) in &alts {
        let kind = v.as_node().map(|n| n.kind.to_string()).unwrap_or_default();
        let on = cond.eval(|n| Some(n == "defined(CONFIG_INPUT_MOUSEDEV_PSAUX)"));
        if on {
            // With PSAUX: the if-else statement (7 children incl. else).
            assert_eq!(kind, "Stmt");
            assert_eq!(v.as_node().unwrap().children.len(), 7);
        } else {
            // Without: a plain assignment statement.
            assert_eq!(kind, "Stmt");
            assert_eq!(v.as_node().unwrap().children.len(), 4);
        }
        found += 1;
    }
    assert_eq!(found, 2);
}

#[test]
fn shared_suffix_is_reparsed_per_configuration_but_merges() {
    // Tokens after the conditional (line `i = maj + 32;`) are parsed
    // twice — once as part of the if-else, once standalone (§2) — yet the
    // trailing `y = 0;` is shared again.
    let g = stmt_grammar();
    let r = parse(&g, FIG1);
    let ast = r.ast.expect("ast");
    let root = ast.as_node().expect("list");
    // Children: x=0; choice; y=0; — the merge restored a single list.
    assert_eq!(root.children.len(), 3);
}

#[test]
fn nested_conditionals_compose() {
    let g = stmt_grammar();
    let src = "\
#ifdef A
x = 1;
#ifdef B
y = 2;
#endif
#endif
z = 3;
";
    let r = parse(&g, src);
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert!(r.accepted.expect("accepted").is_true());
    let ast = r.ast.expect("ast");
    assert!(ast.choice_count() >= 1);
}

#[test]
fn error_under_one_configuration_only() {
    let g = stmt_grammar();
    let src = "\
#ifdef BAD
x = ;
#else
x = 1;
#endif
";
    let r = parse(&g, src);
    assert!(r.ast.is_some());
    assert_eq!(r.errors.len(), 1);
    let acc = r.accepted.expect("some config accepted");
    // Accepted exactly where BAD is undefined.
    assert!(acc.eval(|_| Some(false)));
    assert!(!acc.eval(|n| Some(n == "defined(BAD)")));
    assert!(r.errors[0].cond.eval(|n| Some(n == "defined(BAD)")));
}

#[test]
fn conditional_at_start_and_end_of_input() {
    let g = stmt_grammar();
    let r = parse(&g, "#ifdef A\nx = 1;\n#endif\ny = 2;\n");
    assert!(r.errors.is_empty());
    assert!(r.accepted.expect("accepted").is_true());
    let r = parse(&g, "x = 1;\n#ifdef A\ny = 2;\n#endif\n");
    assert!(r.errors.is_empty());
    assert!(r.accepted.expect("accepted").is_true());
}

#[test]
fn fully_conditional_input_errors_only_where_empty() {
    let g = stmt_grammar();
    // Under !A the unit is empty, which this grammar rejects.
    let r = parse(&g, "#ifdef A\nx = 1;\n#endif\n");
    assert!(r.ast.is_some());
    assert_eq!(r.errors.len(), 1);
    let acc = r.accepted.expect("accepted");
    assert!(acc.eval(|n| Some(n == "defined(A)")));
}

// ---------------------------------------------------------------------
// Figure 6: exponential configurations, constant subparsers
// ---------------------------------------------------------------------

fn fig6_source(n: usize) -> String {
    let mut s = String::from("{\n");
    for i in 0..n {
        s.push_str(&format!("#ifdef CONFIG_P{i}\nmember{i},\n#endif\n"));
    }
    s.push_str("NULL };\n");
    s
}

#[test]
fn fig6_fmlr_uses_constant_subparsers() {
    let g = init_grammar();
    let r = parse(&g, &fig6_source(18));
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert!(r.accepted.expect("accepted").is_true());
    // The paper: 2^18 configurations with only 2 subparsers. Allow a
    // little slack for queue accounting.
    assert!(
        r.stats.max_subparsers <= 3,
        "max subparsers = {}",
        r.stats.max_subparsers
    );
    // All 18 choice points are in the AST.
    assert_eq!(r.ast.expect("ast").choice_count(), 18);
}

#[test]
fn fig6_mapr_hits_the_kill_switch() {
    let g = init_grammar();
    let r = parse_with(&g, &fig6_source(18), ParserConfig::mapr());
    assert!(r.errors.iter().any(|e| e.message.contains("kill switch")));
}

#[test]
fn fig6_mapr_explodes_even_when_it_finishes() {
    let g = init_grammar();
    let r = parse_with(&g, &fig6_source(8), ParserConfig::mapr());
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    let naive = r.stats.max_subparsers;
    let r = parse(&g, &fig6_source(8));
    let fmlr = r.stats.max_subparsers;
    assert!(naive >= 32 && fmlr <= 3, "naive = {naive}, fmlr = {fmlr}");
}

#[test]
fn optimization_levels_all_produce_the_same_result() {
    let g = init_grammar();
    let src = fig6_source(6);
    let mut max_by_level = Vec::new();
    for (name, cfg) in ParserConfig::levels() {
        let r = parse_with(&g, &src, cfg);
        assert!(r.errors.is_empty(), "{name}: {:?}", r.errors);
        assert!(r.accepted.expect("accepted").is_true(), "{name}");
        // Choice-node counts differ per level (§6.2: fewer forks mean
        // fewer choice nodes); MAPR's value-identical merging instead
        // collects one big choice of whole-unit alternatives at accept.
        if cfg.choice_merge {
            assert!(r.ast.expect("ast").choice_count() >= 6, "{name}");
        } else {
            assert!(r.ast.is_some(), "{name}");
        }
        max_by_level.push((name, r.stats.max_subparsers));
    }
    // Full optimizations never use more subparsers than follow-set only,
    // which never uses more than MAPR.
    let get = |n: &str| {
        max_by_level
            .iter()
            .find(|(name, _)| *name == n)
            .expect("level present")
            .1
    };
    assert!(get("Shared, Lazy, & Early") <= get("Follow-Set Only"));
    assert!(get("Follow-Set Only") <= get("MAPR"));
    assert!(get("MAPR") >= 32);
}

#[test]
fn multi_headed_optimizations_fire() {
    let g = init_grammar();
    let r = parse(&g, &fig6_source(10));
    assert!(r.stats.lazy_shifts > 0, "lazy shifts never fired");
    assert!(r.stats.shared_reduces > 0, "shared reduces never fired");
    assert!(r.stats.merges > 0);
}

// ---------------------------------------------------------------------
// Follow-set computation (Algorithm 3)
// ---------------------------------------------------------------------

#[test]
fn follow_set_captures_actual_variability() {
    let g = init_grammar();
    // Three conditionals, each with an implicit else: the follow-set of
    // the first conditional has 4 entries (3 members + NULL).
    let (f, ctx) = forest_for(&g, &fig6_source(3));
    // Walk: root = `{`, next is the first conditional.
    let root = f.root().expect("nonempty");
    let cond_node = f.successor(root).expect("conditional after brace");
    let t = f.follow(&ctx.tru(), Some(cond_node));
    assert_eq!(t.len(), 4);
    // Conditions partition `true`.
    let mut or = ctx.fls();
    for e in &t {
        or = or.or(&e.cond);
    }
    assert!(or.is_true());
    // Entries are ordered by position, every one a token or EOF.
    for w in t.windows(2) {
        assert!(f.position(w[0].node) < f.position(w[1].node));
    }
}

#[test]
fn follow_set_of_token_is_singleton() {
    let g = init_grammar();
    let (f, ctx) = forest_for(&g, "{ NULL };\n");
    let t = f.follow(&ctx.tru(), f.root());
    assert_eq!(t.len(), 1);
    assert!(t[0].cond.is_true());
}

#[test]
fn follow_set_reaches_eof_through_trailing_conditionals() {
    let g = init_grammar();
    let (f, ctx) = forest_for(&g, "#ifdef A\nx ,\n#endif\n");
    let t = f.follow(&ctx.tru(), f.root());
    assert_eq!(t.len(), 2);
    assert!(t.iter().any(|e| e.node.is_none()), "EOF entry expected");
}

// ---------------------------------------------------------------------
// Context plug-in
// ---------------------------------------------------------------------

/// A toy plug-in: treats `T` as a type name (reclassifies to TYPE) and
/// refuses merges between differently-flagged contexts.
struct ToyPlugin;

#[derive(Clone, PartialEq)]
struct ToyCtx {
    saw_decl: bool,
}

impl ContextPlugin for ToyPlugin {
    type Ctx = ToyCtx;

    fn initial(&mut self) -> ToyCtx {
        ToyCtx { saw_decl: false }
    }

    fn reclassify(&mut self, _ctx: &ToyCtx, tok: &PTok, term: SymbolId, _cond: &Cond) -> Reclass {
        if tok.text() == "T" {
            Reclass::Replace(SymbolId(12)) // TYPE in stmt_grammar
        } else {
            let _ = term;
            Reclass::Keep
        }
    }

    fn on_reduce(&mut self, ctx: &mut ToyCtx, _prod: u32, value: &SemVal, _cond: &Cond) {
        if let Some(n) = value.as_node() {
            if n.children.len() == 3 && n.children[0].as_token().map(|t| t.text()) == Some("T") {
                ctx.saw_decl = true;
            }
        }
    }

    fn may_merge(&self, a: &ToyCtx, b: &ToyCtx) -> bool {
        a == b
    }
}

#[test]
fn plugin_reclassifies_tokens() {
    let g = stmt_grammar();
    assert_eq!(g.terminal("TYPE"), Some(SymbolId(12)));
    let (f, ctx) = forest_for(&g, "T v;\nx = 1;\n");
    let mut parser = Parser::new(&g, ParserConfig::full(), ToyPlugin);
    let r = parser.parse(&f, &ctx);
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    // `T v;` parsed as the TYPE ID ; production.
    let ast = r.ast.expect("ast");
    let mut saw = false;
    ast.visit(&mut |n, _| {
        if n.kind.as_ref() == "Stmt" && n.children.len() == 3 {
            saw = true;
        }
    });
    assert!(saw, "declaration production not used");
}

/// A plug-in that splits an ambiguous name by condition, like typedef
/// names defined only in some configurations (§5.2).
struct SplitPlugin;

impl ContextPlugin for SplitPlugin {
    type Ctx = ();

    fn initial(&mut self) {}

    fn reclassify(&mut self, _: &(), tok: &PTok, term: SymbolId, cond: &Cond) -> Reclass {
        if tok.text() == "amb" {
            let t = cond.ctx().var("defined(HAS_TYPE)").and(cond);
            let e = cond.and_not(&t);
            Reclass::Split(vec![(t, SymbolId(12)), (e, term)])
        } else {
            Reclass::Keep
        }
    }
}

#[test]
fn ambiguous_names_fork_extra_subparsers() {
    let g = stmt_grammar();
    let (f, ctx) = forest_for(&g, "amb v;\n");
    let mut parser = Parser::new(&g, ParserConfig::full(), SplitPlugin);
    let r = parser.parse(&f, &ctx);
    // Under HAS_TYPE this is `TYPE ID ;` (a declaration); otherwise
    // `amb v ;` is two identifiers — a syntax error.
    assert!(r.stats.reclassify_forks >= 1);
    assert!(r.ast.is_some());
    let acc = r.accepted.expect("accepted");
    assert!(acc.eval(|n| Some(n == "defined(HAS_TYPE)")));
    assert!(!acc.eval(|_| Some(false)));
    assert_eq!(r.errors.len(), 1);
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

#[test]
fn stats_histogram_and_quantiles() {
    let g = init_grammar();
    let r = parse(&g, &fig6_source(8));
    let s = &r.stats;
    assert!(s.iterations > 0);
    let total: u64 = s.subparser_hist.iter().sum();
    assert_eq!(total, s.iterations);
    assert_eq!(s.subparser_quantile(1.0), s.max_subparsers);
    assert!(s.subparser_quantile(0.5) <= s.max_subparsers);
    let mut merged = ParseStats::default();
    merged.merge(s);
    merged.merge(s);
    assert_eq!(merged.iterations, 2 * s.iterations);
    assert_eq!(merged.max_subparsers, s.max_subparsers);
}

#[test]
fn display_renders_choice_nodes() {
    let g = stmt_grammar();
    let r = parse(&g, FIG1);
    let text = format!("{}", r.ast.expect("ast"));
    assert!(text.contains("Choice"));
    assert!(text.contains("Stmt"));
    assert!(text.contains("CONFIG_INPUT_MOUSEDEV_PSAUX"));
}

// ---------------------------------------------------------------------
// Resource governance: degrading budgets (vs. the aborting kill switch)
// ---------------------------------------------------------------------

/// MAPR's naive forking without its kill switch — the blow-up regime the
/// degrading budgets are for.
fn mapr_unswitched() -> ParserConfig {
    ParserConfig {
        kill_switch: 0,
        ..ParserConfig::mapr()
    }
}

fn parse_governed(g: &Grammar, src: &str, cfg: ParserConfig) -> (ParseResult, CondCtx) {
    let (f, ctx) = forest_for(g, src);
    let mut parser = Parser::new(g, cfg, NullContext);
    (parser.parse(&f, &ctx), ctx)
}

/// The governance coverage invariant: every configuration must terminate
/// in exactly one of accept, parse error, or budget kill, so the
/// disjunction of all three surfaces is the whole configuration space.
fn full_coverage(r: &ParseResult, ctx: &CondCtx) -> Cond {
    let mut c = r.accepted.clone().unwrap_or_else(|| ctx.constant(false));
    for e in &r.errors {
        c = c.or(&e.cond);
    }
    for t in &r.trips {
        c = c.or(&t.cond);
    }
    c
}

#[test]
fn live_budget_sheds_lowest_priority_and_keeps_parsing() {
    let g = init_grammar();
    let cfg = ParserConfig {
        budgets: ParseBudgets {
            max_live: 8,
            ..ParseBudgets::default()
        },
        ..mapr_unswitched()
    };
    let (r, ctx) = parse_governed(&g, &fig6_source(12), cfg);
    assert_eq!(r.outcome, ParseOutcome::Partial);
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    assert!(r.ast.is_some(), "survivors still yield an AST");
    let trip = r
        .trips
        .iter()
        .find(|t| t.kind == BudgetKind::Subparsers)
        .expect("live-subparser trip");
    assert!(trip.killed > 0);
    assert!(!trip.cond.is_false());
    assert!(r.stats.budget_killed >= trip.killed);
    // Shedding happens at pull time; one step's fan-out may briefly
    // overshoot the cap but never the MAPR explosion.
    assert!(
        r.stats.max_subparsers <= 16,
        "max subparsers = {}",
        r.stats.max_subparsers
    );
    assert!(
        full_coverage(&r, &ctx).is_true(),
        "accept/error/kill must cover the configuration space"
    );
    // Degraded configurations appear as error nodes in the root choice.
    let dump = format!("{}", r.ast.expect("ast"));
    assert!(dump.contains("budget_error"), "{dump}");
}

#[test]
fn step_budget_kills_everything_but_accounts_for_it() {
    let g = init_grammar();
    let cfg = ParserConfig {
        budgets: ParseBudgets {
            max_steps: 40,
            ..ParseBudgets::default()
        },
        ..ParserConfig::full()
    };
    let (r, ctx) = parse_governed(&g, &fig6_source(18), cfg);
    assert_eq!(r.outcome, ParseOutcome::Partial);
    assert!(r.stats.iterations <= 42, "stopped promptly");
    let trip = r
        .trips
        .iter()
        .find(|t| t.kind == BudgetKind::Steps)
        .expect("step trip");
    assert!(trip.killed >= 1);
    assert!(full_coverage(&r, &ctx).is_true());
}

#[test]
fn fork_budget_degrades_to_single_group_forks() {
    // follow_only forks one subparser per follow-set entry (no lazy
    // shifts to bundle them), so the fork budget genuinely bites.
    let g = init_grammar();
    let cfg = ParserConfig {
        budgets: ParseBudgets {
            max_forks: 4,
            ..ParseBudgets::default()
        },
        ..ParserConfig::follow_only()
    };
    let (r, ctx) = parse_governed(&g, &fig6_source(18), cfg);
    assert_eq!(r.outcome, ParseOutcome::Partial);
    assert!(r.stats.forks <= 4, "forks = {}", r.stats.forks);
    let trip = r
        .trips
        .iter()
        .find(|t| t.kind == BudgetKind::Forks)
        .expect("fork trip");
    assert!(!trip.cond.is_false());
    assert!(full_coverage(&r, &ctx).is_true());
}

#[test]
fn generous_budgets_change_nothing() {
    let g = init_grammar();
    let src = fig6_source(10);
    let baseline = parse(&g, &src);
    let cfg = ParserConfig {
        budgets: ParseBudgets {
            max_live: 1 << 20,
            max_forks: u64::MAX >> 1,
            max_steps: u64::MAX >> 1,
            ..ParseBudgets::default()
        },
        ..ParserConfig::full()
    };
    let (governed, _) = parse_governed(&g, &src, cfg);
    assert_eq!(governed.outcome, ParseOutcome::Complete);
    assert!(governed.trips.is_empty());
    assert_eq!(baseline.stats, governed.stats);
    assert_eq!(
        format!("{}", baseline.ast.expect("ast")),
        format!("{}", governed.ast.expect("ast")),
    );
}

#[test]
fn kill_switch_still_aborts_with_budgets_present() {
    // The MAPR kill switch must keep its paper-faithful abort semantics
    // even when budgets are configured alongside it.
    let g = init_grammar();
    let cfg = ParserConfig {
        budgets: ParseBudgets {
            max_steps: u64::MAX >> 1,
            ..ParseBudgets::default()
        },
        ..ParserConfig::mapr()
    };
    let (r, _) = parse_governed(&g, &fig6_source(18), cfg);
    assert!(r.errors.iter().any(|e| e.message.contains("kill switch")));
}
