//! Semantic values: tokens, AST nodes, and static choice nodes.
//!
//! SuperC's AST is well-formed — every node is a complete C construct —
//! with *static choice nodes* at merge points carrying one child per
//! configuration (§2, Figure 1c). Values are reference-counted so forked
//! subparsers share everything up to their divergence.

use std::fmt;
use std::rc::Rc;

use superc_cond::Cond;
use superc_cpp::PTok;
use superc_grammar::SymbolId;

/// An AST node: a reduced production with its children.
#[derive(Clone, Debug)]
pub struct AstNode {
    /// The production reduced to build this node.
    pub prod: u32,
    /// The left-hand-side nonterminal.
    pub sym: SymbolId,
    /// Node kind name (the production's nonterminal name).
    pub kind: Rc<str>,
    /// Child values (layout children omitted).
    pub children: Vec<SemVal>,
    /// True when this node linearizes a left-recursive repetition.
    pub list: bool,
}

/// A semantic value on the parser stack or in the finished AST.
#[derive(Clone, Debug)]
pub enum SemVal {
    /// A shifted token.
    Tok(PTok),
    /// A reduced node.
    Node(Rc<AstNode>),
    /// A static choice: one alternative per configuration class.
    Choice(Rc<Vec<(Cond, SemVal)>>),
    /// No value (layout productions).
    Empty,
}

impl SemVal {
    /// Cheap equality for merge checks: pointer equality for nodes and
    /// choices, positional identity for tokens.
    pub fn quick_eq(&self, other: &SemVal) -> bool {
        match (self, other) {
            (SemVal::Empty, SemVal::Empty) => true,
            (SemVal::Tok(a), SemVal::Tok(b)) => {
                Rc::ptr_eq(&a.tok.text, &b.tok.text) && a.tok.pos == b.tok.pos
            }
            (SemVal::Node(a), SemVal::Node(b)) => Rc::ptr_eq(a, b),
            (SemVal::Choice(a), SemVal::Choice(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Builds a static choice over alternatives, flattening nested
    /// choices and dropping infeasible ones.
    pub fn choice(alts: Vec<(Cond, SemVal)>) -> SemVal {
        let mut flat: Vec<(Cond, SemVal)> = Vec::with_capacity(alts.len());
        for (c, v) in alts {
            if c.is_false() {
                continue;
            }
            match v {
                SemVal::Choice(inner) => {
                    for (ic, iv) in inner.iter() {
                        let cc = c.and(ic);
                        if !cc.is_false() {
                            flat.push((cc, iv.clone()));
                        }
                    }
                }
                other => flat.push((c, other)),
            }
        }
        match flat.len() {
            0 => SemVal::Empty,
            1 => flat.pop().expect("one").1,
            _ => SemVal::Choice(Rc::new(flat)),
        }
    }

    /// The node if this is one.
    pub fn as_node(&self) -> Option<&Rc<AstNode>> {
        match self {
            SemVal::Node(n) => Some(n),
            _ => None,
        }
    }

    /// The token if this is one.
    pub fn as_token(&self) -> Option<&PTok> {
        match self {
            SemVal::Tok(t) => Some(t),
            _ => None,
        }
    }

    /// Counts AST nodes (choice alternatives all counted).
    pub fn node_count(&self) -> usize {
        match self {
            SemVal::Node(n) => 1 + n.children.iter().map(SemVal::node_count).sum::<usize>(),
            SemVal::Choice(alts) => alts.iter().map(|(_, v)| v.node_count()).sum(),
            _ => 0,
        }
    }

    /// Counts static choice nodes.
    pub fn choice_count(&self) -> usize {
        match self {
            SemVal::Node(n) => n.children.iter().map(SemVal::choice_count).sum(),
            SemVal::Choice(alts) => 1 + alts.iter().map(|(_, v)| v.choice_count()).sum::<usize>(),
            _ => 0,
        }
    }

    /// Visits every node in the tree, including inside choices, calling
    /// `f` with the node and the presence condition in effect (None at
    /// the unconditioned root).
    pub fn visit(&self, f: &mut dyn FnMut(&AstNode, Option<&Cond>)) {
        fn go(v: &SemVal, cond: Option<&Cond>, f: &mut dyn FnMut(&AstNode, Option<&Cond>)) {
            match v {
                SemVal::Node(n) => {
                    f(n, cond);
                    for ch in &n.children {
                        go(ch, cond, f);
                    }
                }
                SemVal::Choice(alts) => {
                    for (c, v) in alts.iter() {
                        go(v, Some(c), f);
                    }
                }
                _ => {}
            }
        }
        go(self, None, f);
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            SemVal::Tok(t) => writeln!(f, "{pad}{}", t.text()),
            SemVal::Empty => writeln!(f, "{pad}ε"),
            SemVal::Node(n) => {
                writeln!(f, "{pad}{}", n.kind)?;
                for ch in &n.children {
                    ch.fmt_indent(f, indent + 1)?;
                }
                Ok(())
            }
            SemVal::Choice(alts) => {
                writeln!(f, "{pad}Choice")?;
                for (c, v) in alts.iter() {
                    writeln!(f, "{pad}  [{c}]")?;
                    v.fmt_indent(f, indent + 2)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for SemVal {
    /// An indented tree dump, with choice alternatives labeled by their
    /// presence conditions (like the paper's Figure 1c sketch).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}
