//! The grammar definition API: symbols, productions, annotations,
//! precedence.

use std::collections::HashMap;
use std::fmt;

use crate::table::{Grammar, SymbolId};

/// Operator associativity for precedence-based conflict resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assoc {
    /// Shift/reduce ties at equal precedence reduce (left-associative).
    Left,
    /// Ties shift (right-associative).
    Right,
    /// Ties are errors (e.g. chained comparisons).
    NonAssoc,
}

/// How the parser engine builds a semantic value when reducing a
/// production — SuperC's annotation facility (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AstBuild {
    /// Create a node named after the production's nonterminal with all
    /// right-hand-side values as children (the default).
    #[default]
    Node,
    /// Omit this production's value (punctuation-only helpers).
    Layout,
    /// Reuse the single child's value; productions exist only for
    /// precedence layering.
    Passthrough,
    /// Linearize a left-recursive repetition into one list node.
    List,
    /// Like `Node`, but flags the production as a semantic *action* hook
    /// for the context plug-in (e.g. scope enter/exit helpers).
    Action,
}

/// One production after building: `lhs -> rhs`, with its annotations.
#[derive(Clone, Debug)]
pub struct Production {
    /// Left-hand-side nonterminal.
    pub lhs: SymbolId,
    /// Right-hand-side symbols.
    pub rhs: Vec<SymbolId>,
    /// AST-building annotation.
    pub ast: AstBuild,
    /// Explicit precedence terminal (like Bison's `%prec`).
    pub prec: Option<SymbolId>,
}

/// A grammar construction error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrammarError {
    /// Lowercase description.
    pub message: String,
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for GrammarError {}

pub(crate) struct RawProd {
    pub lhs: String,
    pub rhs: Vec<String>,
    pub ast: AstBuild,
    pub prec: Option<String>,
}

/// The builder's raw pieces, borrowed together for table construction:
/// start symbol, terminals, terminal index, productions, precedence map,
/// and `complete`-marked nonterminal names.
pub(crate) type BuilderParts<'a> = (
    &'a str,
    &'a [String],
    &'a HashMap<String, usize>,
    &'a [RawProd],
    &'a HashMap<String, (u32, Assoc)>,
    &'a [String],
);

/// Builds a [`Grammar`]: declare terminals, add productions (names not
/// declared as terminals become nonterminals), annotate, and `build()`.
///
/// See the crate docs for an example.
pub struct GrammarBuilder {
    start: String,
    terminals: Vec<String>,
    term_set: HashMap<String, usize>,
    prods: Vec<RawProd>,
    prec: HashMap<String, (u32, Assoc)>,
    complete: Vec<String>,
}

/// Mutable handle to the production just added, for chaining annotations.
pub struct ProdBuilder<'g> {
    prod: &'g mut RawProd,
}

impl<'g> ProdBuilder<'g> {
    /// Marks the production `layout`: its value is omitted from the AST.
    pub fn layout(self) -> Self {
        self.prod.ast = AstBuild::Layout;
        self
    }

    /// Marks the production `passthrough`: reuse the single child's value.
    pub fn passthrough(self) -> Self {
        self.prod.ast = AstBuild::Passthrough;
        self
    }

    /// Marks the production `list`: left-recursive repetitions linearize.
    pub fn list(self) -> Self {
        self.prod.ast = AstBuild::List;
        self
    }

    /// Marks the production as a context-plug-in action hook.
    pub fn action(self) -> Self {
        self.prod.ast = AstBuild::Action;
        self
    }

    /// Sets an explicit precedence terminal (Bison `%prec`).
    pub fn prec(self, terminal: &str) -> Self {
        self.prod.prec = Some(terminal.to_string());
        self
    }
}

impl GrammarBuilder {
    /// Starts a grammar whose start symbol is `start`.
    pub fn new(start: &str) -> Self {
        GrammarBuilder {
            start: start.to_string(),
            terminals: Vec::new(),
            term_set: HashMap::new(),
            prods: Vec::new(),
            prec: HashMap::new(),
            complete: Vec::new(),
        }
    }

    /// Declares terminals (idempotent).
    pub fn terminals(&mut self, names: &[&str]) -> &mut Self {
        for &n in names {
            if !self.term_set.contains_key(n) {
                self.term_set.insert(n.to_string(), self.terminals.len());
                self.terminals.push(n.to_string());
            }
        }
        self
    }

    /// Assigns precedence `level` (higher binds tighter) and
    /// associativity to terminals.
    pub fn prec(&mut self, assoc: Assoc, level: u32, terminals: &[&str]) -> &mut Self {
        for &t in terminals {
            self.prec.insert(t.to_string(), (level, assoc));
        }
        self
    }

    /// Marks nonterminals as *complete syntactic units* (§5.1): the FMLR
    /// parser may merge subparsers whose differing stack tops are complete,
    /// wrapping their values in a static choice node.
    pub fn complete(&mut self, nonterminals: &[&str]) -> &mut Self {
        for &n in nonterminals {
            self.complete.push(n.to_string());
        }
        self
    }

    /// Adds a production `lhs -> rhs`. Undeclared names in `rhs` are
    /// nonterminals. Returns a handle for annotations.
    pub fn prod(&mut self, lhs: &str, rhs: &[&str]) -> ProdBuilder<'_> {
        self.prods.push(RawProd {
            lhs: lhs.to_string(),
            rhs: rhs.iter().map(|s| s.to_string()).collect(),
            ast: AstBuild::Node,
            prec: None,
        });
        ProdBuilder {
            prod: self.prods.last_mut().expect("just pushed"),
        }
    }

    /// Builds the LALR(1) tables.
    ///
    /// # Errors
    ///
    /// Fails when the start symbol has no productions, a nonterminal is
    /// used but never defined, or a precedence/`%prec` name is not a
    /// declared terminal. Shift/reduce and reduce/reduce conflicts are
    /// *not* errors: unresolved ones are resolved Bison-style (prefer
    /// shift; prefer the earlier production) and reported via
    /// [`Grammar::conflicts`].
    pub fn build(&mut self) -> Result<Grammar, GrammarError> {
        crate::table::build_grammar(self)
    }

    pub(crate) fn parts(&self) -> BuilderParts<'_> {
        (
            &self.start,
            &self.terminals,
            &self.term_set,
            &self.prods,
            &self.prec,
            &self.complete,
        )
    }
}
