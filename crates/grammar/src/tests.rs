use super::*;

/// A tiny LR driver sufficient to test tables: parses a terminal-name
/// sequence, returning `Ok(reduction trace)` or `Err(position)`.
fn drive(g: &Grammar, input: &[&str]) -> Result<Vec<String>, usize> {
    let mut stack: Vec<u32> = vec![g.start_state()];
    let mut trace = Vec::new();
    let mut toks: Vec<SymbolId> = input
        .iter()
        .map(|t| {
            g.terminal(t)
                .unwrap_or_else(|| panic!("unknown terminal {t}"))
        })
        .collect();
    toks.push(g.eof());
    let mut i = 0;
    loop {
        let state = *stack.last().expect("nonempty");
        match g.action(state, toks[i]) {
            Action::Shift(s) => {
                stack.push(s);
                i += 1;
            }
            Action::Reduce(p) => {
                for _ in 0..g.rhs_len(p) {
                    stack.pop();
                }
                let lhs = g.production(p).lhs;
                trace.push(g.lhs_name(p).to_string());
                let state = *stack.last().expect("nonempty");
                let next = g.goto(state, lhs).expect("goto");
                stack.push(next);
            }
            Action::Accept => return Ok(trace),
            Action::Error => return Err(i),
        }
    }
}

fn expr_grammar() -> Grammar {
    let mut b = GrammarBuilder::new("E");
    b.terminals(&["n", "+", "*", "(", ")"]);
    b.prod("E", &["E", "+", "T"]);
    b.prod("E", &["T"]).passthrough();
    b.prod("T", &["T", "*", "F"]);
    b.prod("T", &["F"]).passthrough();
    b.prod("F", &["(", "E", ")"]);
    b.prod("F", &["n"]).passthrough();
    b.build().unwrap()
}

#[test]
fn classic_expression_grammar_is_conflict_free() {
    let g = expr_grammar();
    assert!(g.conflicts().is_empty(), "{:?}", g.conflicts());
    // The canonical LALR automaton for this grammar has 12 states.
    assert_eq!(g.num_states(), 12);
}

#[test]
fn expression_grammar_parses() {
    let g = expr_grammar();
    assert!(drive(&g, &["n", "+", "n", "*", "n"]).is_ok());
    assert!(drive(&g, &["(", "n", "+", "n", ")", "*", "n"]).is_ok());
    assert_eq!(drive(&g, &["n", "+"]), Err(2));
    assert_eq!(drive(&g, &["+", "n"]), Err(0));
    assert_eq!(drive(&g, &[")"]), Err(0));
}

#[test]
fn precedence_resolves_ambiguous_expression_grammar() {
    let mut b = GrammarBuilder::new("E");
    b.terminals(&["n", "+", "*"]);
    b.prec(Assoc::Left, 1, &["+"]);
    b.prec(Assoc::Left, 2, &["*"]);
    b.prod("E", &["E", "+", "E"]);
    b.prod("E", &["E", "*", "E"]);
    b.prod("E", &["n"]).passthrough();
    let g = b.build().unwrap();
    assert!(g.conflicts().is_empty(), "{:?}", g.conflicts());
    // n + n * n: the * must bind tighter — reduce for + happens after
    // the whole * expression. Check it simply parses.
    let trace = drive(&g, &["n", "+", "n", "*", "n"]).unwrap();
    assert_eq!(trace.iter().filter(|s| *s == "E").count(), 5);
}

#[test]
fn right_associativity_shifts() {
    let mut b = GrammarBuilder::new("E");
    b.terminals(&["n", "="]);
    b.prec(Assoc::Right, 1, &["="]);
    b.prod("E", &["E", "=", "E"]);
    b.prod("E", &["n"]).passthrough();
    let g = b.build().unwrap();
    assert!(g.conflicts().is_empty());
    assert!(drive(&g, &["n", "=", "n", "=", "n"]).is_ok());
}

#[test]
fn nonassoc_rejects_chains() {
    let mut b = GrammarBuilder::new("E");
    b.terminals(&["n", "<"]);
    b.prec(Assoc::NonAssoc, 1, &["<"]);
    b.prod("E", &["E", "<", "E"]);
    b.prod("E", &["n"]).passthrough();
    let g = b.build().unwrap();
    assert!(drive(&g, &["n", "<", "n"]).is_ok());
    assert!(drive(&g, &["n", "<", "n", "<", "n"]).is_err());
}

#[test]
fn dangling_else_prefers_shift_and_reports_conflict() {
    let mut b = GrammarBuilder::new("S");
    b.terminals(&["if", "else", "expr", "stmt"]);
    b.prod("S", &["if", "expr", "S"]);
    b.prod("S", &["if", "expr", "S", "else", "S"]);
    b.prod("S", &["stmt"]).passthrough();
    let g = b.build().unwrap();
    // Classic shift/reduce: resolved as shift (else binds to inner if).
    assert_eq!(g.conflicts().len(), 1);
    assert!(g.conflicts()[0].resolution.contains("shift"));
    assert!(drive(&g, &["if", "expr", "if", "expr", "stmt", "else", "stmt"]).is_ok());
}

#[test]
fn lalr_but_not_slr_grammar_builds_cleanly() {
    // The standard example: S -> L = R | R ; L -> * R | id ; R -> L.
    // SLR has a shift/reduce conflict on '='; LALR does not.
    let mut b = GrammarBuilder::new("S");
    b.terminals(&["=", "*", "id"]);
    b.prod("S", &["L", "=", "R"]);
    b.prod("S", &["R"]).passthrough();
    b.prod("L", &["*", "R"]);
    b.prod("L", &["id"]).passthrough();
    b.prod("R", &["L"]).passthrough();
    let g = b.build().unwrap();
    assert!(g.conflicts().is_empty(), "{:?}", g.conflicts());
    assert!(drive(&g, &["*", "id", "=", "id"]).is_ok());
    assert!(drive(&g, &["id", "=", "*", "id"]).is_ok());
}

#[test]
fn empty_productions_reduce_correctly() {
    // Nullable nonterminals exercise lookahead propagation through
    // epsilon (a classic source of LALR bugs).
    let mut b = GrammarBuilder::new("S");
    b.terminals(&["a", "b"]);
    b.prod("S", &["A", "B", "a"]);
    b.prod("A", &[]);
    b.prod("A", &["b"]);
    b.prod("B", &[]);
    let g = b.build().unwrap();
    assert!(g.conflicts().is_empty());
    assert!(drive(&g, &["a"]).is_ok());
    assert!(drive(&g, &["b", "a"]).is_ok());
    assert!(drive(&g, &["b", "b", "a"]).is_err());
}

#[test]
fn reduce_reduce_conflicts_are_reported_and_resolved() {
    let mut b = GrammarBuilder::new("S");
    b.terminals(&["x"]);
    b.prod("S", &["A"]);
    b.prod("S", &["B"]);
    b.prod("A", &["x"]);
    b.prod("B", &["x"]);
    let g = b.build().unwrap();
    assert!(!g.conflicts().is_empty());
    assert!(g.conflicts()[0].resolution.contains("reduce/reduce"));
    // Still parses, using the earlier production.
    assert_eq!(drive(&g, &["x"]).unwrap()[0], "A");
}

#[test]
fn complete_marking_is_queryable() {
    let mut b = GrammarBuilder::new("S");
    b.terminals(&["x"]);
    b.prod("S", &["A"]);
    b.prod("A", &["x"]);
    b.complete(&["A"]);
    let g = b.build().unwrap();
    let a = g.symbol("A").unwrap();
    let s = g.symbol("S").unwrap();
    assert!(g.is_complete(a));
    assert!(!g.is_complete(s));
    assert!(!g.is_complete(g.terminal("x").unwrap()));
}

#[test]
fn errors_are_reported() {
    // Undefined nonterminal.
    let mut b = GrammarBuilder::new("S");
    b.terminals(&["x"]);
    b.prod("S", &["Nope"]);
    assert!(b.build().is_err());
    // Missing start.
    let mut b = GrammarBuilder::new("S");
    b.terminals(&["x"]);
    b.prod("T", &["x"]);
    assert!(b.build().is_err());
    // Terminal as lhs.
    let mut b = GrammarBuilder::new("x");
    b.terminals(&["x"]);
    b.prod("x", &["x"]);
    assert!(b.build().is_err());
    // complete() on unknown nonterminal.
    let mut b = GrammarBuilder::new("S");
    b.terminals(&["x"]);
    b.prod("S", &["x"]);
    b.complete(&["Ghost"]);
    assert!(b.build().is_err());
}

#[test]
fn symbol_metadata_round_trips() {
    let g = expr_grammar();
    let e = g.symbol("E").unwrap();
    assert_eq!(g.symbol_name(e), "E");
    assert!(!g.is_terminal(e));
    let plus = g.terminal("+").unwrap();
    assert!(g.is_terminal(plus));
    assert_eq!(g.symbol_name(g.eof()), "$eof");
    assert_eq!(g.terminal("E"), None);
    assert!(format!("{g:?}").contains("states"));
    // Production 0 is the augmented start.
    assert_eq!(g.lhs_name(0), "$start");
    assert_eq!(g.rhs_len(0), 1);
}

#[test]
fn annotations_are_stored() {
    let mut b = GrammarBuilder::new("S");
    b.terminals(&["x", ","]);
    b.prod("S", &["S", ",", "x"]).list();
    b.prod("S", &["x"]).passthrough();
    b.prod("Sep", &[","]).layout();
    b.prod("S", &["Sep", "x", "Sep"]).action();
    let g = b.build().unwrap();
    assert_eq!(g.production(1).ast, AstBuild::List);
    assert_eq!(g.production(2).ast, AstBuild::Passthrough);
    assert_eq!(g.production(3).ast, AstBuild::Layout);
    assert_eq!(g.production(4).ast, AstBuild::Action);
}

#[test]
fn explicit_prec_overrides_last_terminal() {
    // Unary minus: %prec gives the production a higher precedence than
    // the binary minus terminal would.
    let mut b = GrammarBuilder::new("E");
    b.terminals(&["n", "-", "UMINUS"]);
    b.prec(Assoc::Left, 1, &["-"]);
    b.prec(Assoc::Right, 2, &["UMINUS"]);
    b.prod("E", &["E", "-", "E"]);
    b.prod("E", &["-", "E"]).prec("UMINUS");
    b.prod("E", &["n"]).passthrough();
    let g = b.build().unwrap();
    assert!(g.conflicts().is_empty(), "{:?}", g.conflicts());
    assert!(drive(&g, &["-", "n", "-", "n"]).is_ok());
}
