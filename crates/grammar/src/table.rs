//! The public [`Grammar`]: dense action/goto tables with precedence-based
//! conflict resolution and the symbol/production metadata the parser
//! engine needs.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::builder::{Assoc, AstBuild, GrammarBuilder, GrammarError, Production};
use crate::lalr::{self, LalrInput};

/// Process-wide count of LALR table constructions ([`build_grammar`]
/// runs). Table construction is the expensive one-time artifact every
/// parse shares; corpus drivers are expected to build it **once per
/// process** and `Arc`-share it across workers, and
/// `tests/shared_artifacts.rs` asserts exactly that via this counter.
static TABLES_BUILT: AtomicUsize = AtomicUsize::new(0);

/// How many times LALR tables have been constructed in this process
/// (across all grammars). A corpus run over the C grammar should leave
/// this at 1 no matter how many workers it used.
pub fn tables_built() -> usize {
    TABLES_BUILT.load(Ordering::SeqCst)
}

/// A symbol (terminal or nonterminal) in a [`Grammar`]'s numbering:
/// terminals first, then nonterminals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

/// A parse action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Push the token, go to the state.
    Shift(u32),
    /// Reduce by the production index.
    Reduce(u32),
    /// Input accepted.
    Accept,
    /// Syntax error.
    Error,
}

/// A resolved conflict, reported for grammar debugging (like Bison's
/// `-Wconflicts` output).
#[derive(Clone, Debug)]
pub struct Conflict {
    /// State where the conflict arose.
    pub state: u32,
    /// Lookahead terminal name.
    pub terminal: String,
    /// Human-readable description of the resolution.
    pub resolution: String,
}

/// The immutable artifact of grammar construction: dense LALR(1)
/// action/goto tables plus symbol and production metadata.
///
/// This is the expensive, **shareable** layer: building the C grammar's
/// tables costs orders of magnitude more than any single parse, so the
/// tables are built once per process and handed out behind an `Arc`
/// ([`Grammar`] is a cheap clonable handle). Everything here is plain
/// data — no interior mutability — so `&ParseTables` is freely `Sync`
/// across parser workers.
pub struct ParseTables {
    terminals: Vec<String>,
    nonterminals: Vec<String>,
    prods: Vec<Production>,
    prod_rhs_len: Vec<u32>,
    action: Vec<Action>,
    goto_: Vec<u32>, // u32::MAX = none
    num_states: u32,
    eof: SymbolId,
    complete: Vec<bool>,
    conflicts: Vec<Conflict>,
    by_name: HashMap<String, SymbolId>,
}

/// LALR(1) parse tables plus grammar metadata.
///
/// Built with [`GrammarBuilder`]; consumed by the FMLR parser engine.
/// A `Grammar` is a handle to an [`Arc`]-shared [`ParseTables`]:
/// cloning it is a reference-count bump, so corpus drivers hand every
/// worker the same tables instead of rebuilding them per worker. All
/// table accessors live on [`ParseTables`] and are reachable through
/// `Deref`.
#[derive(Clone)]
pub struct Grammar {
    tables: Arc<ParseTables>,
}

impl std::ops::Deref for Grammar {
    type Target = ParseTables;

    fn deref(&self) -> &ParseTables {
        &self.tables
    }
}

impl fmt::Debug for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Grammar {{ terminals: {}, nonterminals: {}, productions: {}, states: {} }}",
            self.terminals.len(),
            self.nonterminals.len(),
            self.prods.len(),
            self.num_states
        )
    }
}

impl Grammar {
    /// The shared tables behind this handle. Use this to hold the
    /// immutable layer directly (e.g. across threads without a
    /// `'static` grammar).
    pub fn tables(&self) -> &Arc<ParseTables> {
        &self.tables
    }

    /// A second handle to the same tables (reference-count bump; never
    /// rebuilds). Equivalent to `clone`, spelled to make call sites
    /// explicit that no construction happens.
    pub fn share(&self) -> Grammar {
        self.clone()
    }
}

impl ParseTables {
    /// Number of terminals (including the implicit eof).
    pub fn num_terminals(&self) -> u32 {
        self.terminals.len() as u32
    }

    /// Number of LALR states.
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// Number of productions (production 0 is the augmented start).
    pub fn num_productions(&self) -> u32 {
        self.prods.len() as u32
    }

    /// The end-of-input terminal.
    pub fn eof(&self) -> SymbolId {
        self.eof
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<SymbolId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a *terminal* by name.
    pub fn terminal(&self, name: &str) -> Option<SymbolId> {
        self.symbol(name).filter(|s| self.is_terminal(*s))
    }

    /// True for terminal symbols.
    pub fn is_terminal(&self, s: SymbolId) -> bool {
        (s.0 as usize) < self.terminals.len()
    }

    /// The symbol's name.
    pub fn symbol_name(&self, s: SymbolId) -> &str {
        let t = s.0 as usize;
        if t < self.terminals.len() {
            &self.terminals[t]
        } else {
            &self.nonterminals[t - self.terminals.len()]
        }
    }

    /// The production at `idx`.
    pub fn production(&self, idx: u32) -> &Production {
        &self.prods[idx as usize]
    }

    /// Name of a production's left-hand side (AST node kind).
    pub fn lhs_name(&self, idx: u32) -> &str {
        self.symbol_name(self.prods[idx as usize].lhs)
    }

    /// The action for `(state, terminal)`.
    pub fn action(&self, state: u32, term: SymbolId) -> Action {
        debug_assert!(self.is_terminal(term));
        self.action[state as usize * self.terminals.len() + term.0 as usize]
    }

    /// The goto state for `(state, nonterminal)`, if any.
    pub fn goto(&self, state: u32, nt: SymbolId) -> Option<u32> {
        let idx = state as usize * self.nonterminals.len() + (nt.0 as usize - self.terminals.len());
        let g = self.goto_[idx];
        (g != u32::MAX).then_some(g)
    }

    /// Is the nonterminal a *complete syntactic unit* (merge point)?
    pub fn is_complete(&self, s: SymbolId) -> bool {
        if self.is_terminal(s) {
            return false;
        }
        self.complete[s.0 as usize - self.terminals.len()]
    }

    /// Conflicts resolved during construction (empty for a clean grammar).
    pub fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }

    /// The start state.
    pub fn start_state(&self) -> u32 {
        0
    }
}

pub(crate) fn build_grammar(b: &GrammarBuilder) -> Result<Grammar, GrammarError> {
    let (start, terminals, term_set, raw_prods, prec, complete_names) = b.parts();
    let err = |m: String| GrammarError { message: m };

    if term_set.contains_key("$eof") {
        return Err(err("$eof is reserved".to_string()));
    }
    let mut terminals: Vec<String> = terminals.to_vec();
    terminals.push("$eof".to_string());
    let num_terms = terminals.len() as u32;
    let eof = num_terms - 1;

    // Collect nonterminals: lhs names plus the augmented start.
    let mut nonterminals: Vec<String> = Vec::new();
    let mut nt_ids: HashMap<&str, u32> = HashMap::new();
    for p in raw_prods {
        if term_set.contains_key(p.lhs.as_str()) {
            return Err(err(format!("terminal {} used as production lhs", p.lhs)));
        }
        if !nt_ids.contains_key(p.lhs.as_str()) {
            nt_ids.insert(p.lhs.as_str(), nonterminals.len() as u32);
            nonterminals.push(p.lhs.clone());
        }
    }
    if !nt_ids.contains_key(start) {
        return Err(err(format!("start symbol {start} has no productions")));
    }
    let aug = nonterminals.len() as u32;
    nonterminals.push("$start".to_string());

    // Encode productions; production 0 is `$start -> start`.
    let mut prods: Vec<(u32, Vec<u32>)> = vec![(aug, vec![num_terms + nt_ids[start]])];
    for p in raw_prods {
        let mut rhs = Vec::with_capacity(p.rhs.len());
        for s in &p.rhs {
            if let Some(&t) = term_set.get(s.as_str()) {
                rhs.push(t as u32);
            } else if let Some(&n) = nt_ids.get(s.as_str()) {
                rhs.push(num_terms + n);
            } else {
                return Err(err(format!(
                    "symbol {s} in production for {} is neither a declared terminal nor defined as a nonterminal",
                    p.lhs
                )));
            }
        }
        prods.push((nt_ids[p.lhs.as_str()], rhs));
    }

    let input = LalrInput {
        num_terms,
        num_nonterms: nonterminals.len() as u32,
        prods: prods.clone(),
        eof,
    };
    let auto = lalr::build(&input);
    let num_states = auto.kernels.len() as u32;

    // Precedence helpers.
    let term_prec =
        |t: u32| -> Option<(u32, Assoc)> { prec.get(terminals[t as usize].as_str()).copied() };
    let prod_prec = |pi: u32| -> Option<(u32, Assoc)> {
        if pi == 0 {
            return None;
        }
        let raw = &raw_prods[pi as usize - 1];
        if let Some(pt) = &raw.prec {
            return prec.get(pt.as_str()).copied();
        }
        // Default: the last terminal in the rhs.
        prods[pi as usize]
            .1
            .iter()
            .rev()
            .find(|&&s| s < num_terms)
            .and_then(|&t| term_prec(t))
    };

    // Fill tables.
    let mut action = vec![Action::Error; num_states as usize * terminals.len()];
    let mut goto_ = vec![u32::MAX; num_states as usize * nonterminals.len()];
    let mut conflicts: Vec<Conflict> = Vec::new();

    for st in 0..num_states as usize {
        for (&sym, &target) in &auto.trans[st] {
            if sym < num_terms {
                action[st * terminals.len() + sym as usize] = Action::Shift(target);
            } else {
                goto_[st * nonterminals.len() + (sym - num_terms) as usize] = target;
            }
        }
        for (pi, las) in &auto.reduces[st] {
            for la in las.iter() {
                if la >= num_terms {
                    continue; // dummy bit never set here, but be safe
                }
                let cell = &mut action[st * terminals.len() + la as usize];
                let reduce_action = if *pi == 0 {
                    Action::Accept
                } else {
                    Action::Reduce(*pi)
                };
                match *cell {
                    Action::Error => *cell = reduce_action,
                    Action::Shift(_) => {
                        // Shift/reduce: try precedence.
                        match (prod_prec(*pi), term_prec(la)) {
                            (Some((pp, _)), Some((tp, _))) if pp > tp => {
                                *cell = reduce_action;
                            }
                            (Some((pp, _)), Some((tp, _))) if pp < tp => { /* keep shift */ }
                            (Some((_, Assoc::Left)), Some(_)) => {
                                *cell = reduce_action;
                            }
                            (Some((_, Assoc::Right)), Some(_)) => { /* keep shift */ }
                            (Some((_, Assoc::NonAssoc)), Some(_)) => {
                                *cell = Action::Error;
                            }
                            _ => {
                                conflicts.push(Conflict {
                                    state: st as u32,
                                    terminal: terminals[la as usize].clone(),
                                    resolution: format!(
                                        "shift/reduce with production {pi}: resolved as shift"
                                    ),
                                });
                            }
                        }
                    }
                    Action::Reduce(prev) => {
                        let keep = prev.min(*pi);
                        conflicts.push(Conflict {
                            state: st as u32,
                            terminal: terminals[la as usize].clone(),
                            resolution: format!(
                                "reduce/reduce between productions {prev} and {pi}: kept {keep}"
                            ),
                        });
                        *cell = Action::Reduce(keep);
                    }
                    Action::Accept => {}
                }
            }
        }
    }

    // Public production metadata.
    let mk_sym = |s: u32| SymbolId(s);
    let mut out_prods: Vec<Production> = Vec::with_capacity(prods.len());
    out_prods.push(Production {
        lhs: mk_sym(num_terms + aug),
        rhs: prods[0].1.iter().map(|&s| mk_sym(s)).collect(),
        ast: AstBuild::Passthrough,
        prec: None,
    });
    for (i, raw) in raw_prods.iter().enumerate() {
        let (lhs, rhs) = &prods[i + 1];
        out_prods.push(Production {
            lhs: mk_sym(num_terms + lhs),
            rhs: rhs.iter().map(|&s| mk_sym(s)).collect(),
            ast: raw.ast,
            prec: raw
                .prec
                .as_ref()
                .and_then(|p| term_set.get(p.as_str()))
                .map(|&t| mk_sym(t as u32)),
        });
        if let Some(p) = &raw.prec {
            if out_prods.last().expect("pushed").prec.is_none() {
                return Err(err(format!("%prec symbol {p} is not a declared terminal")));
            }
        }
    }

    let mut complete = vec![false; nonterminals.len()];
    for name in complete_names {
        match nt_ids.get(name.as_str()) {
            Some(&n) => complete[n as usize] = true,
            None => {
                return Err(err(format!(
                    "complete symbol {name} is not a defined nonterminal"
                )))
            }
        }
    }

    let mut by_name: HashMap<String, SymbolId> = HashMap::new();
    for (i, t) in terminals.iter().enumerate() {
        by_name.insert(t.clone(), SymbolId(i as u32));
    }
    for (i, n) in nonterminals.iter().enumerate() {
        by_name.insert(n.clone(), SymbolId(num_terms + i as u32));
    }

    let prod_rhs_len = out_prods.iter().map(|p| p.rhs.len() as u32).collect();
    TABLES_BUILT.fetch_add(1, Ordering::SeqCst);
    Ok(Grammar {
        tables: Arc::new(ParseTables {
            terminals,
            nonterminals,
            prods: out_prods,
            prod_rhs_len,
            action,
            goto_,
            num_states,
            eof: SymbolId(eof),
            complete,
            conflicts,
            by_name,
        }),
    })
}

impl ParseTables {
    /// Right-hand-side length of a production (pop count on reduce).
    pub fn rhs_len(&self, prod: u32) -> u32 {
        self.prod_rhs_len[prod as usize]
    }
}
