//! An LALR(1) parser-table generator with AST-building annotations.
//!
//! SuperC drives its Fork-Merge LR parser with ordinary LALR parser tables
//! produced by Bison (§5): reusing existing LR technology is one of the
//! paper's selling points over parser-combinator approaches. This crate is
//! the Bison substitute: a grammar builder, LR(0) automaton construction,
//! LALR(1) lookahead computation by spontaneous-generation/propagation
//! (Dragon book §4.7.5, equivalent to DeRemer–Pennello), and dense
//! action/goto tables with precedence-based conflict resolution.
//!
//! It also carries SuperC's grammar *annotations* (§5.1) that drive AST
//! construction in the parser engine without hand-written semantic
//! actions: `layout`, `passthrough`, `list`, plus the `complete` marking
//! that controls where subparsers may merge.
//!
//! # Examples
//!
//! ```
//! use superc_grammar::{Assoc, GrammarBuilder};
//!
//! let mut g = GrammarBuilder::new("Expr");
//! g.terminals(&["NUM", "+", "*", "(", ")"]);
//! g.prec(Assoc::Left, 1, &["+"]);
//! g.prec(Assoc::Left, 2, &["*"]);
//! g.prod("Expr", &["Expr", "+", "Expr"]);
//! g.prod("Expr", &["Expr", "*", "Expr"]);
//! g.prod("Expr", &["(", "Expr", ")"]).passthrough();
//! g.prod("Expr", &["NUM"]).passthrough();
//! let grammar = g.build().unwrap();
//! assert!(grammar.conflicts().is_empty());
//! ```

mod builder;
mod lalr;
mod table;

pub use builder::{Assoc, AstBuild, GrammarBuilder, GrammarError, ProdBuilder, Production};
pub use table::{tables_built, Action, Conflict, Grammar, ParseTables, SymbolId};

#[cfg(test)]
mod tests;
