//! LR(0) automaton construction and LALR(1) lookahead computation.
//!
//! Lookaheads are computed by the spontaneous-generation/propagation
//! method (Dragon book §4.7.5): for each kernel item, an LR(1) closure
//! seeded with a dummy lookahead discovers which target kernel items
//! receive lookaheads *spontaneously* and which *propagate* from the
//! source; a fixpoint over the propagation graph then yields full LALR(1)
//! lookahead sets, from which reduce actions are derived.

use std::collections::HashMap;

/// Encoded symbol: `< num_terminals` is a terminal, otherwise a
/// nonterminal offset by the terminal count.
pub type Sym = u32;

/// A fixed-capacity bitset over terminal indices (plus the dummy).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub fn new(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    pub fn insert(&mut self, i: u32) -> bool {
        let (w, b) = ((i / 64) as usize, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    /// Membership test (used by tests and debugging).
    #[allow(dead_code)]
    pub fn contains(&self, i: u32) -> bool {
        let (w, b) = ((i / 64) as usize, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Unions `other` into `self`; true if anything changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64u32)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi as u32 * 64 + b)
        })
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// An LR(0) item: production index and dot position.
pub type Item = (u32, u32);

pub struct LalrInput {
    /// Number of terminals (including eof).
    pub num_terms: u32,
    /// Number of nonterminals (including the augmented start, which must
    /// be the lhs of production 0).
    pub num_nonterms: u32,
    /// Productions: `(lhs nonterminal index, encoded rhs)`.
    pub prods: Vec<(u32, Vec<Sym>)>,
    /// Terminal index of eof.
    pub eof: u32,
}

pub struct Automaton {
    /// Kernel items per state, sorted.
    pub kernels: Vec<Vec<Item>>,
    /// Transitions: per state, symbol -> target state.
    pub trans: Vec<HashMap<Sym, u32>>,
    /// Reduce actions: per state, list of `(production, lookahead set)`.
    pub reduces: Vec<Vec<(u32, BitSet)>>,
}

struct Ctx<'g> {
    g: &'g LalrInput,
    nullable: Vec<bool>,
    first: Vec<BitSet>,
    /// Productions grouped by lhs.
    by_lhs: Vec<Vec<u32>>,
}

impl<'g> Ctx<'g> {
    fn is_term(&self, s: Sym) -> bool {
        s < self.g.num_terms
    }

    fn nt(&self, s: Sym) -> usize {
        (s - self.g.num_terms) as usize
    }

    /// FIRST of a symbol sequence followed by the lookahead set `la`.
    fn first_seq(&self, seq: &[Sym], la: &BitSet, out: &mut BitSet) {
        for &s in seq {
            if self.is_term(s) {
                out.insert(s);
                return;
            }
            out.union_with(&self.first[self.nt(s)]);
            if !self.nullable[self.nt(s)] {
                return;
            }
        }
        out.union_with(la);
    }
}

fn compute_first(g: &LalrInput) -> (Vec<bool>, Vec<BitSet>) {
    let n = g.num_nonterms as usize;
    let mut nullable = vec![false; n];
    let mut first = vec![BitSet::new(g.num_terms as usize + 1); n];
    loop {
        let mut changed = false;
        for (lhs, rhs) in &g.prods {
            let lhs = *lhs as usize;
            let mut all_nullable = true;
            for &s in rhs {
                if s < g.num_terms {
                    changed |= first[lhs].insert(s);
                    all_nullable = false;
                    break;
                }
                let nt = (s - g.num_terms) as usize;
                let other = first[nt].clone();
                changed |= first[lhs].union_with(&other);
                if !nullable[nt] {
                    all_nullable = false;
                    break;
                }
            }
            if all_nullable && !nullable[lhs] {
                nullable[lhs] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (nullable, first)
}

/// LR(0) closure: the set of items reachable from `kernel`.
fn closure0(ctx: &Ctx, kernel: &[Item]) -> Vec<Item> {
    let mut items: Vec<Item> = kernel.to_vec();
    let mut seen: HashMap<Item, ()> = items.iter().map(|&i| (i, ())).collect();
    let mut added_nt = vec![false; ctx.g.num_nonterms as usize];
    let mut i = 0;
    while i < items.len() {
        let (p, dot) = items[i];
        i += 1;
        let rhs = &ctx.g.prods[p as usize].1;
        if let Some(&s) = rhs.get(dot as usize) {
            if !ctx.is_term(s) {
                let nt = ctx.nt(s);
                if !added_nt[nt] {
                    added_nt[nt] = true;
                    for &q in &ctx.by_lhs[nt] {
                        let item = (q, 0);
                        if seen.insert(item, ()).is_none() {
                            items.push(item);
                        }
                    }
                }
            }
        }
    }
    items
}

/// LR(1)-style closure over `(item -> lookahead set)` seeds, to a fixpoint.
fn closure1(ctx: &Ctx, seeds: &[(Item, BitSet)]) -> HashMap<Item, BitSet> {
    let mut map: HashMap<Item, BitSet> = HashMap::new();
    let mut work: Vec<Item> = Vec::new();
    for (item, las) in seeds {
        map.entry(*item)
            .or_insert_with(|| BitSet::new(ctx.g.num_terms as usize + 1))
            .union_with(las);
        work.push(*item);
    }
    while let Some(item) = work.pop() {
        let (p, dot) = item;
        let rhs = ctx.g.prods[p as usize].1.clone();
        let Some(&s) = rhs.get(dot as usize) else {
            continue;
        };
        if ctx.is_term(s) {
            continue;
        }
        let la = map.get(&item).expect("seeded").clone();
        let mut firsts = BitSet::new(ctx.g.num_terms as usize + 1);
        ctx.first_seq(&rhs[dot as usize + 1..], &la, &mut firsts);
        for &q in &ctx.by_lhs[ctx.nt(s)] {
            let target = (q, 0);
            let entry = map
                .entry(target)
                .or_insert_with(|| BitSet::new(ctx.g.num_terms as usize + 1));
            if entry.union_with(&firsts) {
                work.push(target);
            }
        }
    }
    map
}

/// Builds the LR(0) automaton and LALR(1) reduce sets.
pub fn build(g: &LalrInput) -> Automaton {
    let (nullable, first) = compute_first(g);
    let mut by_lhs = vec![Vec::new(); g.num_nonterms as usize];
    for (i, (lhs, _)) in g.prods.iter().enumerate() {
        by_lhs[*lhs as usize].push(i as u32);
    }
    let ctx = Ctx {
        g,
        nullable,
        first,
        by_lhs,
    };

    // LR(0) states by kernel.
    let mut kernels: Vec<Vec<Item>> = vec![vec![(0, 0)]];
    let mut index: HashMap<Vec<Item>, u32> = HashMap::new();
    index.insert(kernels[0].clone(), 0);
    let mut trans: Vec<HashMap<Sym, u32>> = Vec::new();
    let mut i = 0;
    while i < kernels.len() {
        let items = closure0(&ctx, &kernels[i]);
        let mut by_sym: HashMap<Sym, Vec<Item>> = HashMap::new();
        for (p, dot) in items {
            if let Some(&s) = ctx.g.prods[p as usize].1.get(dot as usize) {
                by_sym.entry(s).or_default().push((p, dot + 1));
            }
        }
        let mut t = HashMap::new();
        for (s, mut kernel) in by_sym {
            kernel.sort_unstable();
            kernel.dedup();
            let next = *index.entry(kernel.clone()).or_insert_with(|| {
                kernels.push(kernel);
                (kernels.len() - 1) as u32
            });
            t.insert(s, next);
        }
        trans.push(t);
        i += 1;
    }

    // LALR lookaheads for kernel items: spontaneous + propagation.
    let dummy: u32 = g.num_terms; // bit index just past real terminals
    let item_pos: Vec<HashMap<Item, usize>> = kernels
        .iter()
        .map(|k| k.iter().enumerate().map(|(i, &it)| (it, i)).collect())
        .collect();
    let mut la: Vec<Vec<BitSet>> = kernels
        .iter()
        .map(|k| vec![BitSet::new(g.num_terms as usize + 1); k.len()])
        .collect();
    la[0][0].insert(g.eof);
    // edges: (state, kernel idx) -> list of (state, kernel idx)
    let mut edges: HashMap<(u32, usize), Vec<(u32, usize)>> = HashMap::new();
    for (st, kernel) in kernels.iter().enumerate() {
        for (ki, &item) in kernel.iter().enumerate() {
            let mut seed = BitSet::new(g.num_terms as usize + 1);
            seed.insert(dummy);
            let closed = closure1(&ctx, &[(item, seed)]);
            for ((p, dot), las) in closed {
                let rhs = &ctx.g.prods[p as usize].1;
                let Some(&s) = rhs.get(dot as usize) else {
                    continue;
                };
                let target_state = trans[st][&s];
                let target_item = (p, dot + 1);
                let ti = item_pos[target_state as usize][&target_item];
                for l in las.iter() {
                    if l == dummy {
                        edges
                            .entry((st as u32, ki))
                            .or_default()
                            .push((target_state, ti));
                    } else {
                        la[target_state as usize][ti].insert(l);
                    }
                }
            }
        }
    }
    // Propagate to fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for ((src_st, src_ki), targets) in &edges {
            let src = la[*src_st as usize][*src_ki].clone();
            for (tst, tki) in targets {
                changed |= la[*tst as usize][*tki].union_with(&src);
            }
        }
    }

    // Reduce actions via in-state closure with real lookahead sets.
    let mut reduces: Vec<Vec<(u32, BitSet)>> = Vec::with_capacity(kernels.len());
    for (st, kernel) in kernels.iter().enumerate() {
        let seeds: Vec<(Item, BitSet)> = kernel
            .iter()
            .enumerate()
            .map(|(ki, &item)| (item, la[st][ki].clone()))
            .collect();
        let closed = closure1(&ctx, &seeds);
        let mut rs: Vec<(u32, BitSet)> = Vec::new();
        for ((p, dot), las) in closed {
            if dot as usize == ctx.g.prods[p as usize].1.len() && !las.is_empty() {
                rs.push((p, las));
            }
        }
        rs.sort_by_key(|&(p, _)| p);
        reduces.push(rs);
    }

    Automaton {
        kernels,
        trans,
        reduces,
    }
}

#[cfg(test)]
mod bitset_tests {
    use super::BitSet;

    #[test]
    fn insert_contains_union() {
        let mut a = BitSet::new(130);
        assert!(a.is_empty());
        assert!(a.insert(0));
        assert!(a.insert(129));
        assert!(!a.insert(129), "re-insert reports no change");
        assert!(a.contains(0) && a.contains(129) && !a.contains(64));
        let mut b = BitSet::new(130);
        b.insert(64);
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a), "second union is a no-op");
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    }
}
