//! Criterion bench for Figure 10's axis: the pipeline phases in
//! isolation — preprocessing only vs. preprocessing + parsing — at two
//! unit sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use superc::{parse_unit, CondCtx, Options, ParserConfig, Preprocessor, SuperC};
use superc_bench::pp_options;
use superc_kernelgen::{generate, CorpusSpec};

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_phases");
    group.sample_size(10);
    for (label, funcs) in [("small_unit", 3usize), ("large_unit", 30)] {
        let corpus = generate(&CorpusSpec {
            units: 1,
            functions_per_unit: (funcs, funcs),
            ..CorpusSpec::default()
        });
        let unit = corpus.units[0].clone();

        group.bench_with_input(
            BenchmarkId::new("preprocess", label),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let ctx = CondCtx::new(superc::CondBackend::Bdd);
                    let mut pp = Preprocessor::new(ctx, pp_options(), corpus.fs.clone());
                    pp.preprocess(&unit).expect("preprocesses")
                });
            },
        );

        // Parse only (preprocessed once outside the loop).
        let ctx = CondCtx::new(superc::CondBackend::Bdd);
        let mut pp = Preprocessor::new(ctx.clone(), pp_options(), corpus.fs.clone());
        let preprocessed = pp.preprocess(&unit).expect("preprocesses");
        group.bench_with_input(
            BenchmarkId::new("parse", label),
            &preprocessed,
            |b, preprocessed| {
                b.iter(|| parse_unit(preprocessed, &ctx, ParserConfig::full()));
            },
        );

        group.bench_with_input(
            BenchmarkId::new("end_to_end", label),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let mut sc = SuperC::new(
                        Options {
                            pp: pp_options(),
                            ..Options::default()
                        },
                        corpus.fs.clone(),
                    );
                    sc.process(&unit).expect("processes")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
