//! Criterion bench for Figure 9's axis: end-to-end latency with BDD vs
//! SAT presence conditions on one constrained-corpus unit.

use criterion::{criterion_group, criterion_main, Criterion};
use superc::{CondBackend, Options, SuperC};
use superc_bench::pp_options;
use superc_kernelgen::{generate, CorpusSpec};

fn bench_backends(c: &mut Criterion) {
    let corpus = generate(&CorpusSpec {
        units: 1,
        ..CorpusSpec::constrained()
    });
    let unit = corpus.units[0].clone();
    let mut group = c.benchmark_group("fig9_condition_backends");
    group.sample_size(10);
    for backend in [CondBackend::Bdd, CondBackend::Sat] {
        group.bench_function(format!("{backend}"), |b| {
            b.iter(|| {
                let mut sc = SuperC::new(
                    Options {
                        backend,
                        pp: pp_options(),
                        ..Options::default()
                    },
                    corpus.fs.clone(),
                );
                sc.process(&unit).expect("processes")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
