//! Criterion bench for Figure 8's axis: parsing cost per optimization
//! level on a fixed high-variability unit (MAPR runs to its kill switch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use superc::{Options, ParserConfig, SuperC};
use superc_bench::pp_options;
use superc_kernelgen::{generate, CorpusSpec};

fn bench_levels(c: &mut Criterion) {
    let corpus = generate(&CorpusSpec {
        units: 1,
        init_members: (12, 12),
        functions_per_unit: (4, 4),
        ..CorpusSpec::default()
    });
    let unit = corpus.units[0].clone();
    let mut group = c.benchmark_group("fig8_optimization_levels");
    group.sample_size(10);
    for (name, cfg) in ParserConfig::levels() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sc = SuperC::new(
                    Options {
                        pp: pp_options(),
                        parser: *cfg,
                        ..Options::default()
                    },
                    corpus.fs.clone(),
                );
                sc.process(&unit).expect("processes")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
