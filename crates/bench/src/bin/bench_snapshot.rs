//! Reproducible performance snapshot for regression tracking.
//!
//! Runs the standard corpora through the full pipeline and reports
//! tokens/sec, peak live subparsers, and BDD node/cache counters.
//! With `--json`, writes the snapshot to `BENCH_fmlr.json` at the repo
//! root so successive PRs can diff the perf trajectory
//! (`scripts/bench.sh` wraps this).
//!
//! ```text
//! cargo run --release -p superc-bench --bin bench_snapshot -- --json
//! ```
//!
//! Flags: `--json` (write the snapshot file), `--out <path>` (override
//! the output path), `--reps <n>` (timing repetitions, default 3; the
//! fastest rep is reported to damp scheduler noise), `--warmup <n>`
//! (untimed passes per measured configuration before its timed reps,
//! default 1 — warms the shared caches and worker pools the way a
//! long-running corpus process would be warm).
//!
//! Paired workloads (`full`/`full_par`, `fig9`/`fig9_governed`/
//! `fig9_par`, the `kernel` jobs ladder) **interleave** their reps:
//! machine-load drift over the run hits every side of a comparison
//! equally, so the ratios `scripts/bench.sh` gates on measure the code,
//! not the weather.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use superc::analyze::LintOptions;
use superc::bdd::BddStats;
use superc::report::TextTable;
use superc::{
    Budgets, CondBackend, CorpusOptions, CorpusReport, CorpusRunner, MemFs, Options, ParseStats,
    ParserConfig, PpStats, Profile, ProfilesReport, SuperC,
};
use superc_bench::{
    condfree_corpus, fig9_corpus, full_corpus, full_headers_corpus, kernel_corpus, pp_options,
    process_corpus_parallel_opts, process_corpus_with_tool, profiles_corpus, warm_up,
};
use superc_kernelgen::Corpus;

/// One measured workload.
struct Snapshot {
    name: &'static str,
    /// Worker threads used (1 = the sequential driver).
    jobs: usize,
    units: usize,
    bytes: u64,
    tokens: u64,
    seconds: f64,
    peak_live: usize,
    parse: ParseStats,
    bdd: BddStats,
    /// Merged preprocessor counters (shared-cache and memo hits live
    /// here; see `PpStats` for which of these are schedule-dependent).
    pp: PpStats,
    /// Units replayed from the pooled runner's result memo (nonzero only
    /// for the warm `fig_incremental` leg).
    unit_memo_hits: u64,
    /// Units that consulted the memo and recomputed.
    unit_memo_misses: u64,
    /// Files content-hashed during the run (hash-memo misses).
    files_rehashed: u64,
}

impl Snapshot {
    fn tokens_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.tokens as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Shared-cache hit rate over L2 probes (0 when the cache was off or
    /// never probed).
    fn shared_cache_hit_rate(&self) -> f64 {
        let probes = self.pp.shared_cache_hits + self.pp.shared_cache_misses;
        if probes > 0 {
            self.pp.shared_cache_hits as f64 / probes as f64
        } else {
            0.0
        }
    }
}

fn options() -> Options {
    Options {
        backend: CondBackend::Bdd,
        parser: ParserConfig::full(),
        pp: pp_options(),
        budgets: Budgets::unlimited(),
    }
}

/// [`options`] with the deterministic fast path and fused lexing off —
/// the `--no-fastpath` configuration. The `fig9_condfree` /
/// `fig9_condfree_nofp` pair measures the fast path's speedup on a
/// conditional-free workload (`scripts/bench.sh` gates it at
/// FASTPATH_MIN).
fn nofastpath_options() -> Options {
    let mut o = options();
    o.parser.fastpath = false;
    o.pp.fuse_lexing = false;
    o
}

/// [`options`] with every resource budget armed but set far above
/// anything the corpus reaches, so no budget trips and the measured
/// delta against the ungoverned workload is the pure bookkeeping cost
/// of the governed path (`scripts/bench.sh` gates it at a few percent).
fn governed_options() -> Options {
    Options {
        budgets: Budgets {
            max_subparsers: 1 << 20,
            max_forks: 1 << 40,
            max_steps: 1 << 40,
            max_cond_nodes: 1 << 40,
            max_millis: 600_000,
            max_include_depth: 200,
            hoist_cap: 4096,
        },
        ..options()
    }
}

/// Times `reps` fresh runs over `corpus`, keeping the fastest.
fn measure(name: &'static str, corpus: &Corpus, reps: usize, opts: &Options) -> Snapshot {
    let mut best: Option<Snapshot> = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (units, sc) = process_corpus_with_tool(corpus, opts.clone());
        let seconds = start.elapsed().as_secs_f64();

        let mut parse = ParseStats::default();
        let mut pp = PpStats::default();
        let mut tokens = 0u64;
        let mut bytes = 0u64;
        let mut peak_live = 0usize;
        for u in &units {
            parse.merge(&u.result.stats);
            pp.merge(&u.unit.stats);
            tokens += u.unit.stats.output_tokens;
            bytes += u.bytes;
            peak_live = peak_live.max(u.result.stats.max_subparsers);
        }
        let bdd = sc.ctx().bdd_stats().unwrap_or_default();
        let snap = Snapshot {
            name,
            jobs: 1,
            units: units.len(),
            bytes,
            tokens,
            seconds,
            peak_live,
            parse,
            bdd,
            pp,
            unit_memo_hits: 0,
            unit_memo_misses: 0,
            files_rehashed: 0,
        };
        match &best {
            Some(b) if b.seconds <= snap.seconds => {}
            _ => best = Some(snap),
        }
    }
    best.expect("at least one rep")
}

/// Times the lint pass alone: each unit is preprocessed and parsed
/// *untimed*, then `SuperC::lint` is timed, so `tokens_per_sec` is
/// preprocessed tokens linted per second. This keeps the analysis
/// layer's cost on the perf trajectory separately from the parser's.
fn measure_lint(name: &'static str, corpus: &Corpus, reps: usize) -> Snapshot {
    let lopts = LintOptions::default();
    let mut best: Option<Snapshot> = None;
    for _ in 0..reps.max(1) {
        let mut sc = SuperC::new(options(), corpus.fs.clone());
        let mut seconds = 0.0;
        let mut parse = ParseStats::default();
        let mut pp = PpStats::default();
        let mut tokens = 0u64;
        let mut bytes = 0u64;
        let mut peak_live = 0usize;
        for u in &corpus.units {
            let p = match sc.process(u) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{u}: skipped (fatal: {e})");
                    continue;
                }
            };
            let start = Instant::now();
            let diags = sc.lint(&p, &lopts);
            seconds += start.elapsed().as_secs_f64();
            std::hint::black_box(diags);
            parse.merge(&p.result.stats);
            pp.merge(&p.unit.stats);
            tokens += p.unit.stats.output_tokens;
            bytes += p.bytes;
            peak_live = peak_live.max(p.result.stats.max_subparsers);
        }
        let bdd = sc.ctx().bdd_stats().unwrap_or_default();
        let snap = Snapshot {
            name,
            jobs: 1,
            units: corpus.units.len(),
            bytes,
            tokens,
            seconds,
            peak_live,
            parse,
            bdd,
            pp,
            unit_memo_hits: 0,
            unit_memo_misses: 0,
            files_rehashed: 0,
        };
        match &best {
            Some(b) if b.seconds <= snap.seconds => {}
            _ => best = Some(snap),
        }
    }
    best.expect("at least one rep")
}

/// Reduces a corpus-driver report to a [`Snapshot`] row.
fn report_snapshot(name: &'static str, report: CorpusReport) -> Snapshot {
    let peak_live = report
        .units
        .iter()
        .map(|u| u.parse.max_subparsers)
        .max()
        .unwrap_or(0);
    let bytes = report.units.iter().map(|u| u.bytes).sum();
    Snapshot {
        name,
        jobs: report.workers,
        units: report.units.len(),
        bytes,
        tokens: report.pp.output_tokens,
        seconds: report.wall.as_secs_f64(),
        peak_live,
        parse: report.parse.clone(),
        bdd: report.bdd.unwrap_or_default(),
        unit_memo_hits: report.unit_memo_hits,
        unit_memo_misses: report.unit_memo_misses,
        files_rehashed: report.files_rehashed,
        pp: report.pp,
    }
}

/// Times `reps` runs of the parallel corpus driver, keeping the fastest.
fn measure_parallel(
    name: &'static str,
    corpus: &Corpus,
    reps: usize,
    jobs: usize,
    no_shared_cache: bool,
) -> Snapshot {
    let mut best: Option<Snapshot> = None;
    for _ in 0..reps.max(1) {
        let report = process_corpus_parallel_opts(corpus, options(), jobs, no_shared_cache);
        let snap = report_snapshot(name, report);
        match &best {
            Some(b) if b.seconds <= snap.seconds => {}
            _ => best = Some(snap),
        }
    }
    best.expect("at least one rep")
}

/// Runs the cross-profile corpus driver once: every unit analyzed under
/// every profile, portability slices extracted and diffed, lints on.
fn run_profiles(corpus: &Corpus, profiles: &[Profile], jobs: usize) -> ProfilesReport {
    let copts = CorpusOptions {
        jobs,
        lint: Some(LintOptions::default()),
        ..CorpusOptions::default()
    };
    superc::process_corpus_profiles(&corpus.fs, &corpus.units, &options(), profiles, &copts)
}

/// Reduces a cross-profile report to one [`Snapshot`] row: counters are
/// summed over the per-profile runs (a P-profile row does P× the units
/// and tokens of its single-profile partner), `seconds` is the matrix
/// wall clock — the quantity `scripts/bench.sh` gates at PROFILES_MAX.
fn profiles_snapshot(name: &'static str, report: ProfilesReport) -> Snapshot {
    let mut parse = ParseStats::default();
    let mut pp = PpStats::default();
    let mut tokens = 0u64;
    let mut bytes = 0u64;
    let mut units = 0usize;
    let mut peak_live = 0usize;
    for run in &report.runs {
        parse.merge(&run.parse);
        pp.merge(&run.pp);
        tokens += run.pp.output_tokens;
        units += run.units.len();
        for u in &run.units {
            bytes += u.bytes;
            peak_live = peak_live.max(u.parse.max_subparsers);
        }
    }
    // Cross-profile runs report the condition-system gauges on the first
    // profile's run (see `superc::corpus`).
    let bdd = report.runs[0].bdd.unwrap_or_default();
    Snapshot {
        name,
        jobs: report.workers,
        units,
        bytes,
        tokens,
        seconds: report.wall.as_secs_f64(),
        peak_live,
        parse,
        bdd,
        pp,
        unit_memo_hits: report.runs[0].unit_memo_hits,
        unit_memo_misses: report.runs[0].unit_memo_misses,
        files_rehashed: report.runs[0].files_rehashed,
    }
}

/// The `kernel` workload's jobs ladder: one row per rung.
const KERNEL_LADDER: &[(usize, &str)] = &[
    (1, "kernel_j1"),
    (2, "kernel_j2"),
    (4, "kernel_j4"),
    (8, "kernel_j8"),
];

/// The kernel-scale scaling benchmark: one **pooled** [`CorpusRunner`]
/// per ladder rung, spawned (and optionally warmed) before timing, then
/// `reps` interleaved passes — rung 1, 2, 4, 8, rung 1, 2, 4, 8, … — so
/// load drift cancels out of the speedup ratios `scripts/bench.sh`
/// computes from these rows. The jobs=1 rung goes through the same
/// pooled driver, so the ladder baseline carries the same scheduling
/// cost as the parallel rungs.
fn measure_kernel_ladder(corpus: &Corpus, reps: usize, warmup: usize) -> Vec<Snapshot> {
    let fs = Arc::new(corpus.fs.clone());
    let copts = CorpusOptions::default();
    let mut pools: Vec<(CorpusRunner<MemFs>, &'static str)> = KERNEL_LADDER
        .iter()
        .map(|&(jobs, name)| (CorpusRunner::new(&options(), fs.clone(), jobs, false), name))
        .collect();
    for (pool, _) in &mut pools {
        for _ in 0..warmup {
            std::hint::black_box(pool.run(&corpus.units, &copts));
        }
    }
    let mut best: Vec<Option<Snapshot>> = (0..pools.len()).map(|_| None).collect();
    for _ in 0..reps.max(1) {
        for (i, (pool, name)) in pools.iter_mut().enumerate() {
            let snap = report_snapshot(name, pool.run(&corpus.units, &copts));
            if best[i].as_ref().is_none_or(|b| snap.seconds < b.seconds) {
                best[i] = Some(snap);
            }
        }
    }
    best.into_iter()
        .map(|b| b.expect("at least one rep"))
        .collect()
}

/// The incremental warm re-run pair (`fig_incremental_cold` /
/// `fig_incremental`): one pooled runner over a **mutable** copy of the
/// kernel-scale tree. Each rep edits ~1% of the units (spread across
/// the corpus, contents varying per rep), then runs a cold batch (full
/// recompute; the unit result memo off) and a warm batch (memo on) over
/// the *identical* tree, interleaved like every other gated pair.
///
/// Two invariants are asserted per rep: warm output is byte-identical
/// to cold over the same tree (the memo may only change who computes a
/// report, never the report), and every untouched unit replays from the
/// memo (the include-closure fingerprints actually discriminate).
/// `scripts/bench.sh` gates the pair's throughput ratio at WARM_MIN.
fn measure_incremental(corpus: &Corpus, reps: usize, jobs: usize) -> (Snapshot, Snapshot) {
    use superc::{FileSystem, SharedMemFs};
    let fs = Arc::new(SharedMemFs::from_mem(&corpus.fs));
    let mut pool: CorpusRunner<SharedMemFs> =
        CorpusRunner::new(&options(), fs.clone(), jobs, false);
    let cold_opts = CorpusOptions::default();
    let warm_opts = CorpusOptions {
        warm: true,
        ..CorpusOptions::default()
    };
    let n = corpus.units.len();
    let edited = n.div_ceil(100);
    // Fill the memo before timing, like the other pools' warmup passes.
    std::hint::black_box(pool.run(&corpus.units, &warm_opts));
    let mut best_cold: Option<Snapshot> = None;
    let mut best_warm: Option<Snapshot> = None;
    for r in 0..reps.max(1) {
        for i in 0..edited {
            let path = &corpus.units[i * n / edited];
            let orig = corpus.fs.read(path).expect("unit exists");
            fs.set(path, &format!("{orig}\nint warm_probe_{r}_{i};\n"));
        }
        let cold = pool.run(&corpus.units, &cold_opts);
        let warm = pool.run(&corpus.units, &warm_opts);
        assert_eq!(
            cold.behavior_counters(),
            warm.behavior_counters(),
            "fig_incremental: warm output drifted from cold over the same tree"
        );
        assert_eq!(
            warm.unit_memo_hits,
            (n - edited) as u64,
            "fig_incremental: every untouched unit must replay from the memo"
        );
        assert_eq!(
            warm.unit_memo_misses, edited as u64,
            "fig_incremental: exactly the edited units recompute"
        );
        let c = report_snapshot("fig_incremental_cold", cold);
        if best_cold.as_ref().is_none_or(|b| c.seconds < b.seconds) {
            best_cold = Some(c);
        }
        let w = report_snapshot("fig_incremental", warm);
        if best_warm.as_ref().is_none_or(|b| w.seconds < b.seconds) {
            best_warm = Some(w);
        }
    }
    (
        best_cold.expect("at least one rep"),
        best_warm.expect("at least one rep"),
    )
}

/// The daemon pair (`fig_daemon_cold` / `fig_daemon`): a long-running
/// [`superc::service::Driver`] — the engine behind `superc daemon` and
/// the C API — populated once with the kernel-scale tree, then serving
/// parse requests across edit generations. Each rep stages ~1% of the
/// units through the driver's edit protocol (begin/set_file/end), then
/// interleaves a fresh one-shot run over the driver's own tree (what a
/// cold CLI invocation would do) with a driver-served request, like
/// every other gated pair.
///
/// The same two invariants as `fig_incremental` are asserted per rep —
/// the served report is behavior-identical to the fresh run, and
/// exactly the edited units recompute — plus the service layer's own
/// overhead (overlay reads, generation bookkeeping) is what separates
/// this pair from that one. `scripts/bench.sh` gates the throughput
/// ratio at DAEMON_MIN.
fn measure_daemon(corpus: &Corpus, reps: usize, jobs: usize) -> (Snapshot, Snapshot) {
    use superc::corpus::process_corpus;
    use superc::service::Driver;
    use superc::FileSystem;
    let mut driver = Driver::new(options(), jobs);
    for (path, contents) in corpus.fs.iter() {
        driver
            .set_file(path, contents)
            .expect("generation 1 is open for population");
    }
    driver.end_generation().expect("commit the populated tree");
    let cold_opts = CorpusOptions {
        jobs,
        ..CorpusOptions::default()
    };
    let n = corpus.units.len();
    let edited = n.div_ceil(100);
    // Fill the driver's memo before timing, like the other pools'
    // warmup passes.
    std::hint::black_box(driver.parse(&corpus.units).expect("fill request"));
    let mut best_cold: Option<Snapshot> = None;
    let mut best_warm: Option<Snapshot> = None;
    for r in 0..reps.max(1) {
        driver.begin_generation().expect("no request in flight");
        for i in 0..edited {
            let path = &corpus.units[i * n / edited];
            let orig = corpus.fs.read(path).expect("unit exists");
            driver
                .set_file(path, &format!("{orig}\nint daemon_probe_{r}_{i};\n"))
                .expect("generation is open");
        }
        driver.end_generation().expect("commit the edit batch");
        let fresh_fs = Arc::clone(driver.fs());
        let cold = process_corpus(fresh_fs.as_ref(), &corpus.units, &options(), &cold_opts);
        let warm = driver.parse(&corpus.units).expect("parse request");
        assert_eq!(
            cold.behavior_counters(),
            warm.behavior_counters(),
            "fig_daemon: the served report drifted from a fresh run over the same tree"
        );
        assert_eq!(
            warm.unit_memo_hits,
            (n - edited) as u64,
            "fig_daemon: every untouched unit must replay from the memo"
        );
        assert_eq!(
            warm.unit_memo_misses, edited as u64,
            "fig_daemon: exactly the edited units recompute"
        );
        let c = report_snapshot("fig_daemon_cold", cold);
        if best_cold.as_ref().is_none_or(|b| c.seconds < b.seconds) {
            best_cold = Some(c);
        }
        let w = report_snapshot("fig_daemon", warm);
        if best_warm.as_ref().is_none_or(|b| w.seconds < b.seconds) {
            best_warm = Some(w);
        }
    }
    (
        best_cold.expect("at least one rep"),
        best_warm.expect("at least one rep"),
    )
}

/// The determinism gate: a parallel run must do *exactly* the same
/// parsing work as the sequential run — identical tokens and behavior
/// counters for any worker count. Only gauges tied to worker-local
/// managers (BDD nodes, interner sizes) and wall clock may differ.
fn assert_behavior_identical(seq: &Snapshot, par: &Snapshot) {
    assert_eq!(seq.units, par.units, "{}: unit count drifted", par.name);
    assert_eq!(
        seq.tokens, par.tokens,
        "{}: output tokens drifted",
        par.name
    );
    assert_eq!(seq.bytes, par.bytes, "{}: bytes drifted", par.name);
    assert_eq!(
        seq.peak_live, par.peak_live,
        "{}: peak live subparsers drifted",
        par.name
    );
    assert_eq!(
        seq.parse, par.parse,
        "{}: parser behavior counters drifted between jobs=1 and jobs={}",
        par.name, par.jobs
    );
}

/// The fastpath-on/off determinism gate: identical output and behavior
/// counters, except the gauges that *define* the difference between the
/// two modes — `merge_probes` (the general loop probes the merge index
/// on every step; the fast path never does) and the `fastpath_*` gauges
/// (zero with the fast path off). Everything else must match exactly.
fn assert_behavior_identical_modulo_fastpath(on: &Snapshot, off: &Snapshot) {
    let normalize = |s: &Snapshot| {
        let mut p = s.parse.clone();
        p.merge_probes = 0;
        p.fastpath_tokens = 0;
        p.fastpath_entries = 0;
        p.fastpath_exits = 0;
        p
    };
    assert_eq!(on.units, off.units, "{}: unit count drifted", on.name);
    assert_eq!(on.tokens, off.tokens, "{}: output tokens drifted", on.name);
    assert_eq!(on.bytes, off.bytes, "{}: bytes drifted", on.name);
    assert_eq!(
        on.peak_live, off.peak_live,
        "{}: peak live subparsers drifted",
        on.name
    );
    assert_eq!(
        normalize(on),
        normalize(off),
        "{}: parser behavior counters drifted between fastpath on and off",
        on.name
    );
}

/// Minimal JSON encoding — flat structure, numeric leaves only, so no
/// escaping machinery is needed.
fn to_json(snaps: &[Snapshot], setup_millis: u64) -> String {
    let mut s = String::from("{\n  \"workloads\": [\n");
    for (i, w) in snaps.iter().enumerate() {
        let _ = write!(
            s,
            concat!(
                "    {{\"name\": \"{}\", \"jobs\": {}, \"units\": {}, \"bytes\": {}, ",
                "\"tokens\": {}, \"seconds\": {:.6}, \"tokens_per_sec\": {:.1}, ",
                "\"peak_live_subparsers\": {}, \"forks\": {}, \"merges\": {}, ",
                "\"merge_probes\": {}, \"choice_nodes\": {}, ",
                "\"bdd_nodes\": {}, \"bdd_variables\": {}, \"bdd_apply_calls\": {}, ",
                "\"bdd_cache_hits\": {}, \"bdd_cache_misses\": {}, ",
                "\"bdd_cache_hit_rate\": {:.4}, ",
                "\"shared_cache_hits\": {}, \"shared_cache_misses\": {}, ",
                "\"shared_cache_hit_rate\": {:.4}, \"lex_nanos_saved\": {}, ",
                "\"condexpr_memo_hits\": {}, \"expansion_memo_hits\": {}, ",
                "\"fastpath_tokens\": {}, \"fused_tokens\": {}, ",
                "\"unit_memo_hits\": {}, \"unit_memo_misses\": {}, ",
                "\"files_rehashed\": {}}}"
            ),
            w.name,
            w.jobs,
            w.units,
            w.bytes,
            w.tokens,
            w.seconds,
            w.tokens_per_sec(),
            w.peak_live,
            w.parse.forks,
            w.parse.merges,
            w.parse.merge_probes,
            w.parse.choice_nodes,
            w.bdd.nodes,
            w.bdd.variables,
            w.bdd.apply_calls,
            w.bdd.cache_hits,
            w.bdd.cache_misses,
            w.bdd.cache_hit_rate(),
            w.pp.shared_cache_hits,
            w.pp.shared_cache_misses,
            w.shared_cache_hit_rate(),
            w.pp.lex_nanos_saved,
            w.pp.condexpr_memo_hits,
            w.pp.expansion_memo_hits,
            w.parse.fastpath_tokens,
            w.pp.fused_tokens,
            w.unit_memo_hits,
            w.unit_memo_misses,
            w.files_rehashed,
        );
        s.push_str(if i + 1 < snaps.len() { ",\n" } else { "\n" });
    }
    // Per-class aggregates: blending the sequential and parallel
    // workloads into one number (the old `total_tokens_per_sec`) let a
    // sequential regression hide behind a parallel win and vice versa.
    let class_rate = |par: bool| -> f64 {
        let rows = snaps.iter().filter(|w| (w.jobs > 1) == par);
        let tokens: u64 = rows.clone().map(|w| w.tokens).sum();
        let seconds: f64 = rows.map(|w| w.seconds).sum();
        if seconds > 0.0 {
            tokens as f64 / seconds
        } else {
            0.0
        }
    };
    // The machine's core count goes into the snapshot so a reader (and
    // `scripts/bench.sh`'s scaling gates) can judge the parallel rows:
    // a jobs ladder measured on one core *should* show no speedup.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = write!(
        s,
        "  ],\n  \"machine_cores\": {cores},\n  \
         \"seq_tokens_per_sec\": {:.1},\n  \"par_tokens_per_sec\": {:.1},\n  \
         \"setup_millis\": {setup_millis}\n}}\n",
        class_rate(false),
        class_rate(true),
    );
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write_json = false;
    let mut out_path: Option<String> = None;
    let mut reps = 3usize;
    let mut warmup = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => write_json = true,
            "--out" => out_path = it.next().cloned(),
            "--reps" => {
                reps = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--reps takes a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--warmup" => {
                warmup = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--warmup takes a non-negative integer");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!(
                    "unknown flag {other}; known: --json --out <path> --reps <n> --warmup <n>"
                );
                std::process::exit(2);
            }
        }
    }

    // Everything up to the first timed rep is setup: shared-artifact
    // construction (grammar tables, classification seed, context
    // tables), corpus generation, and the untimed warmup passes. It is
    // reported as `setup_millis` so the snapshot separates one-time cost
    // from steady-state throughput.
    let setup_start = Instant::now();
    warm_up();
    let full = full_corpus();
    let fig9 = fig9_corpus();
    let headers = full_headers_corpus();
    let kernel = kernel_corpus();
    let condfree = condfree_corpus();
    let prof_corpus = profiles_corpus();
    let profile_matrix = [
        Profile::gcc_linux(),
        Profile::clang_macos(),
        Profile::msvc_windows(),
    ];
    let profile_single = [Profile::gcc_linux()];
    // Parallel entries must actually exercise multi-worker scheduling:
    // clamp to at least 2 workers (oversubscribed on a 1-core machine is
    // fine — the determinism gate is about schedules, not speedup) and at
    // most 8 (`jobs` is recorded in the snapshot so the bench gate can
    // judge scaling per machine).
    let par_jobs = superc::corpus::default_jobs().clamp(2, 8);
    let headers_jobs = 8;
    for _ in 0..warmup {
        std::hint::black_box(measure("full", &full, 1, &options()));
        std::hint::black_box(measure("fig9", &fig9, 1, &options()));
        std::hint::black_box(measure_parallel(
            "full_headers",
            &headers,
            1,
            headers_jobs,
            false,
        ));
        std::hint::black_box(run_profiles(&prof_corpus, &profile_matrix, par_jobs));
    }
    let setup_millis = setup_start.elapsed().as_millis() as u64;

    // Every gated pair interleaves its reps (see the module docs): the
    // full/full_par pair here, fig9/fig9_governed/fig9_par below, the
    // kernel ladder inside `measure_kernel_ladder`, and the shared-cache
    // on/off pair after that.
    let mut full_seq: Option<Snapshot> = None;
    let mut full_par: Option<Snapshot> = None;
    for _ in 0..reps.max(1) {
        let s = measure("full", &full, 1, &options());
        if full_seq.as_ref().is_none_or(|b| s.seconds < b.seconds) {
            full_seq = Some(s);
        }
        let p = measure_parallel("full_par", &full, 1, par_jobs, false);
        if full_par.as_ref().is_none_or(|b| p.seconds < b.seconds) {
            full_par = Some(p);
        }
    }
    let full_seq = full_seq.expect("at least one rep");
    let full_par = full_par.expect("at least one rep");
    // fig9 vs fig9_governed (same corpus, budgets armed-but-untripped)
    // isolates the cost of the governance checks; `scripts/bench.sh`
    // gates the pair at a few percent. A fig9 rep is tens of
    // milliseconds, so min-of-`reps` is noisy at the few-percent level
    // the gate cares about; the trio gets extra reps (still cheap in
    // absolute time).
    let pair_reps = (2 * reps).max(12);
    let mut fig9_seq: Option<Snapshot> = None;
    let mut fig9_governed: Option<Snapshot> = None;
    let mut fig9_par: Option<Snapshot> = None;
    for _ in 0..pair_reps {
        let s = measure("fig9", &fig9, 1, &options());
        if fig9_seq.as_ref().is_none_or(|b| s.seconds < b.seconds) {
            fig9_seq = Some(s);
        }
        let g = measure("fig9_governed", &fig9, 1, &governed_options());
        if fig9_governed.as_ref().is_none_or(|b| g.seconds < b.seconds) {
            fig9_governed = Some(g);
        }
        let p = measure_parallel("fig9_par", &fig9, 1, par_jobs, false);
        if fig9_par.as_ref().is_none_or(|b| p.seconds < b.seconds) {
            fig9_par = Some(p);
        }
    }
    let fig9_seq = fig9_seq.expect("at least one rep");
    let fig9_governed = fig9_governed.expect("at least one rep");
    let fig9_par = fig9_par.expect("at least one rep");
    let fig9_lint = measure_lint("fig9_lint", &fig9, reps);
    // Conditional-free pair: fastpath on vs off over the same corpus,
    // interleaved like the other gated pairs. The ratio is the fast
    // path's whole value proposition, so `scripts/bench.sh` gates it
    // (FASTPATH_MIN).
    let mut condfree_on: Option<Snapshot> = None;
    let mut condfree_off: Option<Snapshot> = None;
    for _ in 0..pair_reps {
        let on = measure("fig9_condfree", &condfree, 1, &options());
        if condfree_on.as_ref().is_none_or(|b| on.seconds < b.seconds) {
            condfree_on = Some(on);
        }
        let off = measure("fig9_condfree_nofp", &condfree, 1, &nofastpath_options());
        if condfree_off
            .as_ref()
            .is_none_or(|b| off.seconds < b.seconds)
        {
            condfree_off = Some(off);
        }
    }
    let condfree_on = condfree_on.expect("at least one rep");
    let condfree_off = condfree_off.expect("at least one rep");
    // Cross-profile matrix pair: the same corpus analyzed under three
    // profiles vs one, interleaved like every other gated pair. The
    // shared pre-expansion cache amortizes lexing across the matrix, so
    // `scripts/bench.sh` gates the wall-clock ratio at PROFILES_MAX —
    // well under the naive 3x. The gcc-linux run inside the matrix must
    // be behavior-identical to the single-profile run: cross-profile
    // scheduling may change who does the work, never what any profile
    // sees.
    let mut prof_matrix: Option<Snapshot> = None;
    let mut prof_single: Option<Snapshot> = None;
    for _ in 0..reps.max(1) {
        let r3 = run_profiles(&prof_corpus, &profile_matrix, par_jobs);
        let r1 = run_profiles(&prof_corpus, &profile_single, par_jobs);
        assert_eq!(
            r3.runs[0].behavior_counters(),
            r1.runs[0].behavior_counters(),
            "fig9_profiles: gcc-linux run drifted between the 3-profile \
             matrix and the single-profile run"
        );
        let s3 = profiles_snapshot("fig9_profiles", r3);
        if prof_matrix.as_ref().is_none_or(|b| s3.seconds < b.seconds) {
            prof_matrix = Some(s3);
        }
        let s1 = profiles_snapshot("fig9_profiles1", r1);
        if prof_single.as_ref().is_none_or(|b| s1.seconds < b.seconds) {
            prof_single = Some(s1);
        }
    }
    let prof_matrix = prof_matrix.expect("at least one rep");
    let prof_single = prof_single.expect("at least one rep");
    // The kernel-scale jobs ladder over pooled workers.
    let kernel_snaps = measure_kernel_ladder(&kernel, reps, warmup);
    // The incremental warm re-run pair over the same kernel-scale tree.
    let (incr_cold, incr_warm) = measure_incremental(&kernel, reps, par_jobs);
    // The daemon/service pair: the same tree served by a long-running
    // Driver across edit generations vs fresh one-shot runs.
    let (daemon_cold, daemon_warm) = measure_daemon(&kernel, reps, par_jobs);
    // The shared-cache workload pair: identical header-dominated corpus,
    // cache on vs off, so the snapshot records the cache's speedup and
    // hit rate (`scripts/bench.sh` gates on both). Always 8 workers, even
    // oversubscribed: without the shared cache every worker re-lexes
    // every header, so the worker count *is* the redundancy being
    // measured, independent of core count.
    let mut headers_on: Option<Snapshot> = None;
    let mut headers_off: Option<Snapshot> = None;
    for _ in 0..reps.max(1) {
        let on = measure_parallel("full_headers", &headers, 1, headers_jobs, false);
        if headers_on.as_ref().is_none_or(|b| on.seconds < b.seconds) {
            headers_on = Some(on);
        }
        let off = measure_parallel("full_headers_nocache", &headers, 1, headers_jobs, true);
        if headers_off.as_ref().is_none_or(|b| off.seconds < b.seconds) {
            headers_off = Some(off);
        }
    }
    let headers_on = headers_on.expect("at least one rep");
    let headers_off = headers_off.expect("at least one rep");
    assert_behavior_identical(&full_seq, &full_par);
    assert_behavior_identical(&fig9_seq, &fig9_par);
    assert_behavior_identical(&fig9_seq, &fig9_governed);
    // Every ladder rung must do identical work: speedup may never come
    // from doing less.
    for rung in &kernel_snaps[1..] {
        assert_behavior_identical(&kernel_snaps[0], rung);
    }
    // Cache on/off must also be behavior-identical: the cache changes who
    // lexes a header, never what any unit sees.
    assert_behavior_identical(&headers_off, &headers_on);
    // Fastpath on/off must be behavior-identical modulo the gauges that
    // define the difference (merge probes, fastpath counters).
    assert_behavior_identical_modulo_fastpath(&condfree_on, &condfree_off);
    let mut snaps = vec![
        full_seq,
        fig9_seq,
        full_par,
        fig9_par,
        fig9_lint,
        fig9_governed,
        headers_on,
        headers_off,
        condfree_on,
        condfree_off,
        prof_matrix,
        prof_single,
        incr_cold,
        incr_warm,
        daemon_cold,
        daemon_warm,
    ];
    snaps.extend(kernel_snaps);

    let mut t = TextTable::new(&[
        "workload",
        "jobs",
        "units",
        "tokens",
        "tok/s",
        "peak live",
        "merges",
        "probes",
        "bdd nodes",
        "apply",
        "hit rate",
        "l2 hits",
        "l2 rate",
        "memo hits",
    ]);
    for w in &snaps {
        t.row(&[
            w.name.to_string(),
            w.jobs.to_string(),
            w.units.to_string(),
            w.tokens.to_string(),
            format!("{:.0}", w.tokens_per_sec()),
            w.peak_live.to_string(),
            w.parse.merges.to_string(),
            w.parse.merge_probes.to_string(),
            w.bdd.nodes.to_string(),
            w.bdd.apply_calls.to_string(),
            format!("{:.3}", w.bdd.cache_hit_rate()),
            w.pp.shared_cache_hits.to_string(),
            format!("{:.3}", w.shared_cache_hit_rate()),
            (w.pp.condexpr_memo_hits + w.pp.expansion_memo_hits).to_string(),
        ]);
    }
    print!("{}", t.render());

    if write_json || out_path.is_some() {
        let path = out_path
            .unwrap_or_else(|| format!("{}/../../BENCH_fmlr.json", env!("CARGO_MANIFEST_DIR")));
        let json = to_json(&snaps, setup_millis);
        std::fs::write(&path, json).expect("write snapshot");
        // Canonicalize purely for display; the write used the raw path.
        let shown = std::fs::canonicalize(&path)
            .map(|p| p.display().to_string())
            .unwrap_or(path);
        println!("wrote {shown}");
    }
}
