//! Ablation: which design choice actually contains the subparser
//! explosion? The paper credits the token follow-set; our reimplementation
//! shows choice-node merging at complete syntactic units (§5.1) is the
//! other indispensable half — naive forking *with* choice merging stays
//! tractable, while naive forking with MAPR's value-identical merging
//! explodes (see DESIGN.md, "Why MAPR explodes").

use superc::report::TextTable;
use superc::{Options, ParseStats, ParserConfig};
use superc_bench::{pp_options, process_corpus};
use superc_kernelgen::{generate, CorpusSpec};

fn main() {
    superc_bench::warm_up();
    // A slice of the full corpus: the exploding variants take a while to
    // reach the kill switch on every unit.
    let corpus = generate(&CorpusSpec {
        units: 12,
        ..CorpusSpec::default()
    });
    let variants: Vec<(&str, ParserConfig)> = vec![
        ("follow-set + choice merge (SuperC)", ParserConfig::full()),
        (
            "follow-set, value-identical merge",
            ParserConfig {
                choice_merge: false,
                kill_switch: 16_000,
                ..ParserConfig::full()
            },
        ),
        (
            "naive forking + choice merge",
            ParserConfig {
                follow_set: false,
                kill_switch: 16_000,
                ..ParserConfig::full()
            },
        ),
        (
            "naive forking, value-identical merge (MAPR)",
            ParserConfig::mapr(),
        ),
    ];

    println!(
        "Ablation: follow-set vs choice-node merging ({} units).\n",
        corpus.units.len()
    );
    let mut t = TextTable::new(&["Variant", "99th %", "Max.", "Killed", "Merges"]);
    for (name, cfg) in variants {
        let units = process_corpus(
            &corpus,
            Options {
                pp: pp_options(),
                parser: cfg,
                ..Options::default()
            },
        );
        let mut merged = ParseStats::default();
        let mut killed = 0;
        for u in &units {
            merged.merge(&u.result.stats);
            if u.result
                .errors
                .iter()
                .any(|e| e.message.contains("kill switch"))
            {
                killed += 1;
            }
        }
        t.row(&[
            name.to_string(),
            merged.subparser_quantile(0.99).to_string(),
            merged.max_subparsers.to_string(),
            format!("{killed}/{}", units.len()),
            merged.merges.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Reading: choice merging keeps even naive forking tractable; removing");
    println!("it is what makes MAPR blow up. The follow-set then cuts the constant");
    println!("(fewer forks in the first place) and enables the multi-headed");
    println!("optimizations.");
}
