//! Figure 10: SuperC latency breakdown — lexing, preprocessing, parsing —
//! against compilation unit size, on a corpus with a wide size spread.
//!
//! The paper's claim: total latency and each phase scale roughly linearly
//! with unit size, with most time split between preprocessing and parsing.

use superc::report::TextTable;
use superc::Options;
use superc_bench::{pp_options, process_corpus, size_spread_corpus};

fn main() {
    superc_bench::warm_up();
    let corpus = size_spread_corpus();
    let units = process_corpus(
        &corpus,
        Options {
            pp: pp_options(),
            ..Options::default()
        },
    );

    let mut rows: Vec<(u64, f64, f64, f64)> = units
        .iter()
        .map(|u| {
            (
                u.bytes,
                u.timings.lexing.as_secs_f64() * 1000.0,
                u.timings.preprocessing.as_secs_f64() * 1000.0,
                u.timings.parsing.as_secs_f64() * 1000.0,
            )
        })
        .collect();
    rows.sort_by_key(|r| r.0);
    // Drop the first-processed warmup artifacts by re-sorting only; the
    // grammar build is a one-time cost inside the first unit's parse.

    println!(
        "Figure 10. SuperC latency breakdown vs. compilation unit size ({} units).\n",
        rows.len()
    );
    let mut t = TextTable::new(&["KB", "lex ms", "preprocess ms", "parse ms", "total ms"]);
    for &(bytes, lex, pp, parse) in &rows {
        t.row(&[
            format!("{:.1}", bytes as f64 / 1024.0),
            format!("{lex:.2}"),
            format!("{pp:.2}"),
            format!("{parse:.2}"),
            format!("{:.2}", lex + pp + parse),
        ]);
    }
    println!("{}", t.render());

    // Linearity check: least-squares slope and correlation of total
    // latency vs size.
    let n = rows.len() as f64;
    let xs: Vec<f64> = rows.iter().map(|r| r.0 as f64 / 1024.0).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.1 + r.2 + r.3).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
    let (mx, my) = (mean(&xs), mean(&ys));
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let slope = cov / vx.max(1e-9);
    let r = cov / (vx.sqrt() * vy.sqrt()).max(1e-9);
    println!("total latency ≈ {slope:.3} ms/KB (correlation r = {r:.3})");
    let lex_total: f64 = rows.iter().map(|r| r.1).sum();
    let pp_total: f64 = rows.iter().map(|r| r.2).sum();
    let parse_total: f64 = rows.iter().map(|r| r.3).sum();
    let total = lex_total + pp_total + parse_total;
    println!(
        "phase split: lexing {:.0}% · preprocessing {:.0}% · parsing {:.0}%",
        lex_total / total * 100.0,
        pp_total / total * 100.0,
        parse_total / total * 100.0
    );
}
