//! Table 3: a tool's view of preprocessor usage — per-compilation-unit
//! interaction counts as 50th · 90th · 100th percentiles, collected by
//! instrumenting the configuration-preserving preprocessor and parser.

use superc::report::{Percentiles, TextTable};
use superc::Options;
use superc_bench::{full_corpus, pp_options, process_corpus};

fn main() {
    superc_bench::warm_up();
    let corpus = full_corpus();
    let units = process_corpus(
        &corpus,
        Options {
            pp: pp_options(),
            ..Options::default()
        },
    );

    let pp = |f: &dyn Fn(&superc::PpStats) -> u64| {
        Percentiles::of_u64(&units.iter().map(|u| f(&u.unit.stats)).collect::<Vec<_>>())
            .paper_format()
    };
    let ps = |f: &dyn Fn(&superc::ParseStats) -> u64| {
        Percentiles::of_u64(&units.iter().map(|u| f(&u.result.stats)).collect::<Vec<_>>())
            .paper_format()
    };

    println!(
        "Table 3. A tool's view of preprocessor usage across {} compilation units.",
        units.len()
    );
    println!("Entries show percentiles: 50th · 90th · 100th.\n");
    let mut t = TextTable::new(&["Language Construct", "Total", "Interaction", "Count"]);
    t.row(&[
        "Macro Definitions".into(),
        pp(&|s| s.macro_definitions),
        "Redefinitions".into(),
        pp(&|s| s.redefinitions),
    ]);
    t.row(&[
        "Macro Invocations".into(),
        pp(&|s| s.macro_invocations),
        "Trimmed (infeasible defs)".into(),
        pp(&|s| s.invocations_trimmed),
    ]);
    t.row(&[
        "".into(),
        "".into(),
        "Hoisted around invocation".into(),
        pp(&|s| s.invocations_hoisted),
    ]);
    t.row(&[
        "".into(),
        "".into(),
        "Nested invocations".into(),
        pp(&|s| s.nested_invocations),
    ]);
    t.row(&[
        "".into(),
        "".into(),
        "Built-in macros".into(),
        pp(&|s| s.builtin_invocations),
    ]);
    t.row(&[
        "Token-Pasting".into(),
        pp(&|s| s.token_pastes),
        "Hoisted".into(),
        pp(&|s| s.token_pastes_hoisted),
    ]);
    t.row(&[
        "Stringification".into(),
        pp(&|s| s.stringifications),
        "Hoisted".into(),
        pp(&|s| s.stringifications_hoisted),
    ]);
    t.row(&[
        "File Includes".into(),
        pp(&|s| s.includes),
        "Hoisted (computed)".into(),
        pp(&|s| s.includes_hoisted),
    ]);
    t.row(&[
        "".into(),
        "".into(),
        "Computed includes".into(),
        pp(&|s| s.computed_includes),
    ]);
    t.row(&[
        "".into(),
        "".into(),
        "Reincluded headers".into(),
        pp(&|s| s.reincluded_headers),
    ]);
    t.row(&[
        "Static Conditionals".into(),
        pp(&|s| s.conditionals),
        "Hoisted (expressions)".into(),
        pp(&|s| s.conditionals_hoisted),
    ]);
    t.row(&[
        "".into(),
        "".into(),
        "Max. depth".into(),
        pp(&|s| s.max_depth),
    ]);
    t.row(&[
        "".into(),
        "".into(),
        "With non-boolean expressions".into(),
        pp(&|s| s.non_boolean_exprs),
    ]);
    t.row(&[
        "Error Directives".into(),
        pp(&|s| s.error_directives),
        "".into(),
        "".into(),
    ]);
    t.row(&[
        "Output tokens".into(),
        pp(&|s| s.output_tokens),
        "Output conditionals".into(),
        pp(&|s| s.output_conditionals),
    ]);
    t.row(&[
        "Typedef ambiguity forks".into(),
        ps(&|s| s.reclassify_forks),
        "Static choice nodes".into(),
        ps(&|s| s.choice_nodes),
    ]);
    println!("{}", t.render());
}
