//! §6.3's performance baseline: single-configuration ("gcc") processing
//! of the corpus — conditionals resolved against a fixed configuration,
//! no variability preserved — compared with full configuration-preserving
//! SuperC. The paper reports a 12–32x gap; the exact factor depends on
//! the corpus, but single-configuration processing should win by an
//! order of magnitude.

use std::time::Instant;

use superc::report::Distribution;
use superc::{Options, SuperC};
use superc_bench::{full_corpus, pp_options};

fn main() {
    superc_bench::warm_up();
    let corpus = full_corpus();

    let mut gcc_opts = Options::gcc_baseline(vec![
        ("CONFIG_SMP".into(), "1".into()),
        ("CONFIG_64BIT".into(), "1".into()),
        ("CONFIG_PM".into(), "1".into()),
        ("NR_CPUS".into(), "64".into()),
    ]);
    gcc_opts.pp = superc::PpOptions {
        single_config: true,
        defines: gcc_opts.pp.defines.clone(),
        ..pp_options()
    };

    let configs: [(&str, Options); 2] = [
        (
            "SuperC (all configurations)",
            Options {
                pp: pp_options(),
                ..Options::default()
            },
        ),
        ("gcc mode (one configuration)", gcc_opts),
    ];

    println!("gcc baseline (single-configuration) vs. configuration-preserving SuperC.\n");
    let mut medians = Vec::new();
    for (name, opts) in configs {
        let mut sc = SuperC::new(opts, corpus.fs.clone());
        let mut d = Distribution::new();
        let t0 = Instant::now();
        for unit in &corpus.units {
            let t1 = Instant::now();
            let p = match sc.process(unit) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{unit}: skipped (fatal: {e})");
                    continue;
                }
            };
            assert!(p.result.errors.is_empty(), "{unit}");
            d.push(t1.elapsed().as_secs_f64() * 1000.0);
        }
        let p = d.percentiles();
        println!(
            "{name}: p50 {:.3} ms · p90 {:.3} ms · max {:.3} ms · total {:.2} s",
            p.p50,
            p.p90,
            p.p100,
            t0.elapsed().as_secs_f64()
        );
        medians.push(p.p50);
    }
    println!(
        "\nconfiguration preservation costs a factor of {:.1}x at the median",
        medians[0] / medians[1].max(1e-9)
    );
}
