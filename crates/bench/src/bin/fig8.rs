//! Figure 8: subparser counts per FMLR main-loop iteration, across
//! optimization levels and the MAPR baseline.
//!
//! 8a reports the 99th percentile and maximum; 8b the cumulative
//! distribution. MAPR triggers the 16,000-subparser kill switch on
//! high-variability units, exactly as in the paper.

use superc::report::{Distribution, TextTable};
use superc::{Options, ParseStats, ParserConfig};
use superc_bench::{full_corpus, pp_options, process_corpus};

fn main() {
    superc_bench::warm_up();
    let corpus = full_corpus();
    println!(
        "Figure 8. Subparser counts per main FMLR loop iteration ({} units).\n",
        corpus.units.len()
    );

    let mut table = TextTable::new(&["Optimization Level", "99th %", "Max.", "Killed Units"]);
    let mut cdfs: Vec<(&'static str, Distribution)> = Vec::new();

    for (name, cfg) in ParserConfig::levels() {
        let units = process_corpus(
            &corpus,
            Options {
                pp: pp_options(),
                parser: cfg,
                ..Options::default()
            },
        );
        // Merge per-iteration histograms across all units.
        let mut merged = ParseStats::default();
        let mut killed = 0usize;
        for u in &units {
            merged.merge(&u.result.stats);
            if u.result
                .errors
                .iter()
                .any(|e| e.message.contains("kill switch"))
            {
                killed += 1;
            }
        }
        let p99 = merged.subparser_quantile(0.99);
        let max = merged.max_subparsers;
        if killed > 0 {
            table.row(&[
                name.to_string(),
                format!(">{p99}"),
                format!(">{max}"),
                format!("{killed}/{} ({}%)", units.len(), killed * 100 / units.len()),
            ]);
        } else {
            table.row(&[
                name.to_string(),
                p99.to_string(),
                max.to_string(),
                "0".to_string(),
            ]);
        }
        // CDF over iterations (8b).
        let mut d = Distribution::new();
        for (count, &iters) in merged.subparser_hist.iter().enumerate() {
            for _ in 0..iters.min(10_000) {
                d.push(count as f64);
            }
        }
        cdfs.push((name, d));
    }

    println!("(a) The maximum number across optimizations.\n");
    println!("{}", table.render());

    println!("(b) The cumulative distribution across optimizations.\n");
    for (name, d) in &cdfs {
        if d.is_empty() {
            continue;
        }
        let p = d.percentiles();
        println!(
            "{name}: p50 {} · p90 {} · max {} subparsers per iteration",
            p.p50, p.p90, p.p100
        );
    }
    println!();
    // One ASCII CDF for the full-optimization level.
    if let Some((name, d)) = cdfs.first() {
        println!("{}", d.ascii_cdf(60, 12, name));
    }
}
