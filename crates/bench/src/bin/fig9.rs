//! Figure 9: per-compilation-unit latency, SuperC (BDD presence
//! conditions) vs the TypeChef-style baseline (formula + CDCL SAT).
//!
//! Like the paper's TypeChef, the SAT baseline only completes on the
//! *constrained* corpus (reduced variability); SuperC runs on both. The
//! reproduction target is the shape: SuperC's curve stays near-linear
//! while the SAT baseline develops a knee and a long tail, caused by
//! re-encoding presence conditions to CNF at every feasibility query.

use std::time::Instant;

use superc::report::Distribution;
use superc::{Options, SuperC};
use superc_bench::{fig9_corpus, pp_options, warm_up};

fn run(name: &str, options: Options) -> Distribution {
    let corpus = fig9_corpus();
    let mut sc = SuperC::new(options, corpus.fs.clone());
    let mut d = Distribution::new();
    let t0 = Instant::now();
    let mut max = 0f64;
    for unit in &corpus.units {
        let t1 = Instant::now();
        let p = match sc.process(unit) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{unit}: skipped (fatal: {e})");
                continue;
            }
        };
        assert!(p.result.errors.is_empty(), "{unit} must parse");
        let ms = t1.elapsed().as_secs_f64() * 1000.0;
        max = max.max(ms);
        d.push(ms);
    }
    let total = t0.elapsed();
    let p = d.percentiles();
    println!(
        "{name}: p50 {:.2} ms · p80 {:.2} ms · max {:.2} ms · total {:.2} s",
        p.p50,
        Distribution::cdf_points(&d)
            .get(d.len() * 8 / 10)
            .map(|&(v, _)| v)
            .unwrap_or(p.p90),
        max,
        total.as_secs_f64()
    );
    d
}

fn main() {
    warm_up();
    println!("Figure 9. Latency per compilation unit (mid-variability corpus;\nthe SAT baseline cannot complete the full corpus, like TypeChef on the\nunconstrained kernel).\n");
    let superc = run(
        "SuperC (BDD)   ",
        Options {
            pp: pp_options(),
            ..Options::default()
        },
    );
    let typechef = run(
        "TypeChef (SAT) ",
        Options {
            pp: pp_options(),
            ..Options::typechef_baseline()
        },
    );
    println!();
    println!("{}", superc.ascii_cdf(60, 12, "SuperC latency CDF (ms)"));
    println!(
        "{}",
        typechef.ascii_cdf(60, 12, "TypeChef-style latency CDF (ms)")
    );
    let ratio = typechef.percentiles().p50 / superc.percentiles().p50.max(1e-9);
    println!("median slowdown of the SAT baseline: {ratio:.1}x");
    println!(
        "tail ratio (max/max): {:.1}x",
        typechef.percentiles().p100 / superc.percentiles().p100.max(1e-9)
    );
}
