//! Table 2: a developer's view of preprocessor usage.
//!
//! 2a counts lines of code and directives, split between C files and
//! headers (the paper ran `cloc`/`grep`/`wc` over the Linux tree); 2b
//! lists the most frequently included headers.

use superc::report::{group_thousands, TextTable};
use superc::Options;
use superc_bench::{full_corpus, pp_options, process_corpus_with_tool};

#[derive(Default)]
struct Counts {
    loc: u64,
    directives: u64,
    defines: u64,
    conditionals: u64,
    includes: u64,
}

fn count_file(text: &str) -> Counts {
    let mut c = Counts::default();
    let mut in_block_comment = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if in_block_comment {
            if trimmed.contains("*/") {
                in_block_comment = false;
            }
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        if trimmed.starts_with("/*") && !trimmed.contains("*/") {
            in_block_comment = true;
            continue;
        }
        c.loc += 1;
        if let Some(rest) = trimmed.strip_prefix('#') {
            c.directives += 1;
            let name = rest.trim_start();
            if name.starts_with("define") {
                c.defines += 1;
            } else if name.starts_with("if") {
                // #if, #ifdef, #ifndef (the paper's conditional row).
                c.conditionals += 1;
            } else if name.starts_with("include") {
                c.includes += 1;
            }
        }
    }
    c
}

fn main() {
    let corpus = full_corpus();

    // --- 2a: directives vs LoC, C files vs headers -----------------------
    let mut c_files = Counts::default();
    let mut headers = Counts::default();
    for (path, text) in corpus.fs.iter() {
        let counts = count_file(text);
        let bucket = if path.ends_with(".h") {
            &mut headers
        } else {
            &mut c_files
        };
        bucket.loc += counts.loc;
        bucket.directives += counts.directives;
        bucket.defines += counts.defines;
        bucket.conditionals += counts.conditionals;
        bucket.includes += counts.includes;
    }
    let pct = |part: u64, total: u64| match (part * 100 + total / 2).checked_div(total) {
        None => "0%".to_string(),
        Some(p) => format!("{p}%"),
    };
    println!("Table 2a. Number of directives compared to lines of code (LoC).\n");
    let mut t = TextTable::new(&["", "Total", "C Files", "Headers"]);
    let rows: &[(&str, u64, u64)] = &[
        ("LoC", c_files.loc, headers.loc),
        ("All Directives", c_files.directives, headers.directives),
        ("#define", c_files.defines, headers.defines),
        (
            "#if, #ifdef, #ifndef",
            c_files.conditionals,
            headers.conditionals,
        ),
        ("#include", c_files.includes, headers.includes),
    ];
    for &(name, c, h) in rows {
        let total = c + h;
        t.row(&[
            name.to_string(),
            group_thousands(total as f64),
            pct(c, total),
            pct(h, total),
        ]);
    }
    println!("{}", t.render());

    // --- 2b: most frequently included headers ----------------------------
    let (_, tool) = process_corpus_with_tool(
        &corpus,
        Options {
            pp: pp_options(),
            ..Options::default()
        },
    );
    let mut counts: Vec<(String, u64)> = tool
        .preprocessor()
        .include_counts()
        .iter()
        .map(|(k, &v)| (k.clone(), v))
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let n_units = corpus.units.len() as u64;
    println!("Table 2b. The top five most frequently included headers.\n");
    let mut t = TextTable::new(&["Header Name", "C Files That Include Header"]);
    for (name, count) in counts.iter().take(5) {
        let capped = (*count).min(n_units);
        t.row(&[
            name.clone(),
            format!("{} ({}%)", capped, capped * 100 / n_units),
        ]);
    }
    println!("{}", t.render());
}
