//! Shared harness for the experiment binaries and criterion benches that
//! regenerate the paper's tables and figures (§6).
//!
//! Each binary prints one artifact:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table2` | Table 2: developer's view of preprocessor usage |
//! | `table3` | Table 3: tool's view (50·90·100 percentiles) |
//! | `fig8` | Figure 8: subparser counts per optimization level |
//! | `fig9` | Figure 9: latency, SuperC vs the TypeChef-style baseline |
//! | `fig10` | Figure 10: latency breakdown by phase vs unit size |
//! | `gcc_baseline` | §6.3's gcc comparison (single-configuration mode) |
//!
//! Run them with `cargo run --release -p superc-bench --bin <name>`.
//! Absolute numbers differ from the paper (synthetic corpus, different
//! machine); the *shapes* are the reproduction target.

use superc::{Options, PpOptions, ProcessedUnit, Profile, SuperC};
use superc_kernelgen::{generate, Corpus, CorpusSpec};

/// Standard preprocessor options for corpus runs.
pub fn pp_options() -> PpOptions {
    PpOptions {
        profile: Profile::default(),
        ..PpOptions::default()
    }
}

/// The full ("unconstrained") corpus used by Tables 2–3, Figure 8, and
/// Figure 10.
pub fn full_corpus() -> Corpus {
    generate(&CorpusSpec::default())
}

/// The constrained corpus: the only one the SAT baseline completes in
/// reasonable time, mirroring the paper's constrained kernel (§6.3).
pub fn constrained_corpus() -> Corpus {
    generate(&CorpusSpec::constrained())
}

/// The kernel-shaped corpus behind `bench_snapshot`'s `kernel` jobs
/// ladder: kernelgen's kernel preset (deep shared header tree, wide
/// subsystem-header pool) at a unit count large enough to amortize
/// per-batch scheduling yet small enough for interleaved ladder reps.
pub fn kernel_corpus() -> Corpus {
    generate(&CorpusSpec::kernel().units(128))
}

/// The corpus for Figure 9: variability between the constrained and
/// full corpora, calibrated so the SAT baseline finishes while its
/// latency knee is clearly visible.
pub fn fig9_corpus() -> Corpus {
    generate(&CorpusSpec {
        init_members: (4, 12),
        units: 32,
        ..CorpusSpec::default()
    })
}

/// Builds the C grammar tables before timing starts, so the one-time
/// LALR construction does not pollute the first unit's latency.
pub fn warm_up() {
    let _ = superc::c_grammar();
}

/// A corpus with a wide unit-size spread, for Figure 10's size axis.
pub fn size_spread_corpus() -> Corpus {
    generate(&CorpusSpec {
        units: 32,
        functions_per_unit: (2, 60),
        ..CorpusSpec::default()
    })
}

/// A header-dominated corpus for the shared preprocessing cache: many
/// tiny units all including the same set of large, comment-heavy,
/// guard-protected headers. Lexing cost is proportional to *bytes*
/// scanned while everything downstream is proportional to *tokens*, so
/// headers that are mostly comments make the redundant per-worker
/// re-lexing the dominant cost — exactly what the shared L2 cache
/// eliminates. Hand-built (not `kernelgen`) so the header/unit byte
/// ratio is controlled.
pub fn full_headers_corpus() -> Corpus {
    const HEADERS: usize = 8;
    const UNITS: usize = 64;
    // ~256 KiB of comment per header: byte-heavy, token-light.
    let filler_line = "/* shared header filler: the point of this text is to cost the \
                       lexer bytes without producing any tokens at all. */\n";
    let filler = filler_line.repeat(256 * 1024 / filler_line.len());

    let mut fs = superc::MemFs::new();
    for h in 0..HEADERS {
        let mut text = String::with_capacity(filler.len() + 512);
        text.push_str(&format!(
            "#ifndef FH_HEADER_{h}_H\n#define FH_HEADER_{h}_H\n"
        ));
        text.push_str(&filler);
        text.push_str(&format!(
            "#define FH_VALUE_{h} {h}\n\
             int fh_decl_{h}(int x);\n\
             extern int fh_global_{h};\n\
             #endif\n"
        ));
        fs = fs.file(&format!("include/fh{h}.h"), &text);
    }
    let mut units = Vec::with_capacity(UNITS);
    for u in 0..UNITS {
        let mut text = String::new();
        // Rotate the include order per unit so workers that start at the
        // same instant lex *different* headers first and then hit each
        // other's freshly inserted artifacts, instead of racing to lex
        // the same header twice.
        for i in 0..HEADERS {
            let h = (u + i) % HEADERS;
            text.push_str(&format!("#include \"fh{h}.h\"\n"));
        }
        let h = u % HEADERS;
        text.push_str(&format!(
            "int fh_unit_{u}(void) {{ return FH_VALUE_{h}; }}\n"
        ));
        let path = format!("src/fh_unit{u}.c");
        fs = fs.file(&path, &text);
        units.push(path);
    }
    Corpus {
        fs,
        units,
        spec: CorpusSpec {
            units: UNITS,
            ..CorpusSpec::default()
        },
    }
}

/// A header-dominated corpus with profile-sensitive conditionals, for
/// the cross-profile matrix workload (`bench_snapshot`'s `fig9_profiles`
/// / `fig9_profiles1` pair and its PROFILES_MAX cost gate). Most bytes
/// live in comment-heavy shared headers whose pre-expansion artifacts
/// are profile-independent, so the shared L2 cache amortizes lexing
/// across the profile matrix: analyzing N profiles should cost far less
/// than N single-profile runs. The `#ifdef _WIN32` / `__APPLE__` /
/// `__GNUC__` guards make the portability lints fire for real, so the
/// timed work includes slice extraction and cross-profile diffing.
pub fn profiles_corpus() -> Corpus {
    const HEADERS: usize = 6;
    const UNITS: usize = 32;
    // ~512 KiB of comment per header: byte-heavy, token-light, so lexing
    // (shared across profiles) dominates expansion + parsing (per
    // profile).
    let filler_line = "/* profile header filler: bytes for the lexer, no tokens out. */\n";
    let filler = filler_line.repeat(512 * 1024 / filler_line.len());

    let mut fs = superc::MemFs::new();
    for h in 0..HEADERS {
        let mut text = String::with_capacity(filler.len() + 1024);
        text.push_str(&format!(
            "#ifndef PF_HEADER_{h}_H\n#define PF_HEADER_{h}_H\n"
        ));
        text.push_str(&filler);
        text.push_str(&format!(
            "#ifdef _WIN32\n\
             typedef unsigned long pf_handle_{h}_t;\n\
             #else\n\
             typedef int pf_handle_{h}_t;\n\
             #endif\n\
             #if defined(__GNUC__) && __GNUC__ >= 4\n\
             int pf_gnu_{h}(int x);\n\
             #endif\n\
             #define PF_VALUE_{h} {h}\n\
             extern pf_handle_{h}_t pf_global_{h};\n\
             #endif\n"
        ));
        fs = fs.file(&format!("include/pf{h}.h"), &text);
    }
    let mut units = Vec::with_capacity(UNITS);
    for u in 0..UNITS {
        let mut text = String::new();
        for i in 0..HEADERS {
            let h = (u + i) % HEADERS;
            text.push_str(&format!("#include \"pf{h}.h\"\n"));
        }
        let h = u % HEADERS;
        text.push_str(&format!(
            "#ifdef __APPLE__\n\
             int pf_darwin_{u};\n\
             #endif\n\
             int pf_unit_{u}(void) {{ return PF_VALUE_{h}; }}\n"
        ));
        let path = format!("src/pf_unit{u}.c");
        fs = fs.file(&path, &text);
        units.push(path);
    }
    Corpus {
        fs,
        units,
        spec: CorpusSpec {
            units: UNITS,
            ..CorpusSpec::default()
        },
    }
}

/// A token-dense, conditional-free corpus for the deterministic fast
/// path: long macro-free function bodies where exactly one subparser is
/// live the whole time, separated by occasional `#if` islands so the
/// fast path must persist its scratch stack, re-enter the general FMLR
/// queue, and drop back in. Hand-built (not `kernelgen`) so the
/// conditional density is controlled: this is the workload behind
/// `bench_snapshot`'s `fig9_condfree` / `fig9_condfree_nofp` pair and
/// its FASTPATH_MIN speedup gate.
pub fn condfree_corpus() -> Corpus {
    const UNITS: usize = 16;
    const FUNCS: usize = 10;
    const STMTS: usize = 48;
    let mut fs = superc::MemFs::new();
    let mut units = Vec::with_capacity(UNITS);
    for u in 0..UNITS {
        let mut text = String::new();
        for f in 0..FUNCS {
            // One island every few functions: the stretch ends, the
            // general engine forks over the conditional, and the fast
            // path restarts on the far side.
            if f % 4 == 3 {
                text.push_str(&format!(
                    "#if defined(CF_ISLAND_{u})\nextern int cf_island_{u}_{f};\n#endif\n"
                ));
            }
            text.push_str(&format!(
                "long cf_{u}_{f}(long a0, long a1, long a2, long a3) {{\n\
                 \x20   long acc = a0 * 3 + a1;\n\
                 \x20   long idx = a2 - a3;\n"
            ));
            for s in 0..STMTS {
                text.push_str(&format!(
                    "    acc = acc * {m} + (a0 + idx) * (a1 - a2) + {s};\n\
                     \x20   idx = idx + acc / {d} - a3 * (acc % {r});\n",
                    m = (s % 7) + 2,
                    d = (s % 5) + 3,
                    r = (s % 9) + 2,
                ));
            }
            text.push_str("    return acc + idx;\n}\n");
        }
        let path = format!("src/cf_unit{u}.c");
        fs = fs.file(&path, &text);
        units.push(path);
    }
    Corpus {
        fs,
        units,
        spec: CorpusSpec {
            units: UNITS,
            ..CorpusSpec::default()
        },
    }
}

/// Runs every unit of a corpus through the pipeline, returning the
/// processed units in corpus order. A unit that fails fatally is
/// reported on stderr and skipped, so one bad unit skews a measurement
/// instead of killing the whole experiment run.
pub fn process_corpus(corpus: &Corpus, options: Options) -> Vec<ProcessedUnit> {
    process_corpus_with_tool(corpus, options).0
}

/// Runs a corpus through the **parallel** pipeline (`superc::corpus`)
/// with the given worker count (`0` = available parallelism), returning
/// the corpus-level report with per-unit results in corpus order. Units
/// that failed fatally stay in the report with zeroed counters; they are
/// surfaced on stderr rather than aborting the run.
pub fn process_corpus_parallel(
    corpus: &Corpus,
    options: Options,
    jobs: usize,
) -> superc::CorpusReport {
    process_corpus_parallel_opts(corpus, options, jobs, false)
}

/// [`process_corpus_parallel`] with the shared preprocessing cache
/// switchable, so benchmarks can measure cache-on vs cache-off.
pub fn process_corpus_parallel_opts(
    corpus: &Corpus,
    options: Options,
    jobs: usize,
    no_shared_cache: bool,
) -> superc::CorpusReport {
    let copts = superc::CorpusOptions {
        jobs,
        no_shared_cache,
        ..superc::CorpusOptions::default()
    };
    let report = superc::process_corpus(&corpus.fs, &corpus.units, &options, &copts);
    for u in report.units.iter().filter(|u| u.fatal.is_some()) {
        eprintln!(
            "{}: skipped (fatal: {})",
            u.path,
            u.fatal.as_deref().unwrap_or("unknown failure")
        );
    }
    report
}

/// Like [`process_corpus`], but also returns the tool for post-run
/// queries (include counts).
pub fn process_corpus_with_tool(
    corpus: &Corpus,
    options: Options,
) -> (Vec<ProcessedUnit>, SuperC<superc::MemFs>) {
    let mut sc = SuperC::new(options, corpus.fs.clone());
    let units = corpus
        .units
        .iter()
        .filter_map(|u| match sc.process(u) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("{u}: skipped (fatal: {e})");
                None
            }
        })
        .collect();
    (units, sc)
}
