//! Shared harness for the experiment binaries and criterion benches that
//! regenerate the paper's tables and figures (§6).
//!
//! Each binary prints one artifact:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table2` | Table 2: developer's view of preprocessor usage |
//! | `table3` | Table 3: tool's view (50·90·100 percentiles) |
//! | `fig8` | Figure 8: subparser counts per optimization level |
//! | `fig9` | Figure 9: latency, SuperC vs the TypeChef-style baseline |
//! | `fig10` | Figure 10: latency breakdown by phase vs unit size |
//! | `gcc_baseline` | §6.3's gcc comparison (single-configuration mode) |
//!
//! Run them with `cargo run --release -p superc-bench --bin <name>`.
//! Absolute numbers differ from the paper (synthetic corpus, different
//! machine); the *shapes* are the reproduction target.

use superc::{Builtins, Options, PpOptions, ProcessedUnit, SuperC};
use superc_kernelgen::{generate, Corpus, CorpusSpec};

/// Standard preprocessor options for corpus runs.
pub fn pp_options() -> PpOptions {
    PpOptions {
        builtins: Builtins::gcc_like(),
        ..PpOptions::default()
    }
}

/// The full ("unconstrained") corpus used by Tables 2–3, Figure 8, and
/// Figure 10.
pub fn full_corpus() -> Corpus {
    generate(&CorpusSpec::default())
}

/// The constrained corpus: the only one the SAT baseline completes in
/// reasonable time, mirroring the paper's constrained kernel (§6.3).
pub fn constrained_corpus() -> Corpus {
    generate(&CorpusSpec::constrained())
}

/// The corpus for Figure 9: variability between the constrained and
/// full corpora, calibrated so the SAT baseline finishes while its
/// latency knee is clearly visible.
pub fn fig9_corpus() -> Corpus {
    generate(&CorpusSpec {
        init_members: (4, 12),
        units: 32,
        ..CorpusSpec::default()
    })
}

/// Builds the C grammar tables before timing starts, so the one-time
/// LALR construction does not pollute the first unit's latency.
pub fn warm_up() {
    let _ = superc::c_grammar();
}

/// A corpus with a wide unit-size spread, for Figure 10's size axis.
pub fn size_spread_corpus() -> Corpus {
    generate(&CorpusSpec {
        units: 32,
        functions_per_unit: (2, 60),
        ..CorpusSpec::default()
    })
}

/// Runs every unit of a corpus through the pipeline, returning the
/// processed units in corpus order.
///
/// # Panics
///
/// Panics if a unit fails fatally — corpus generation guarantees units
/// preprocess.
pub fn process_corpus(corpus: &Corpus, options: Options) -> Vec<ProcessedUnit> {
    let mut sc = SuperC::new(options, corpus.fs.clone());
    corpus
        .units
        .iter()
        .map(|u| sc.process(u).unwrap_or_else(|e| panic!("{u}: {e}")))
        .collect()
}

/// Runs a corpus through the **parallel** pipeline (`superc::corpus`)
/// with the given worker count (`0` = available parallelism), returning
/// the corpus-level report with per-unit results in corpus order.
///
/// # Panics
///
/// Panics if a unit fails fatally — corpus generation guarantees units
/// preprocess.
pub fn process_corpus_parallel(
    corpus: &Corpus,
    options: Options,
    jobs: usize,
) -> superc::CorpusReport {
    let copts = superc::CorpusOptions {
        jobs,
        ..superc::CorpusOptions::default()
    };
    let report = superc::process_corpus(&corpus.fs, &corpus.units, &options, &copts);
    if let Some(u) = report.units.iter().find(|u| u.fatal.is_some()) {
        panic!("{}: {}", u.path, u.fatal.as_deref().unwrap_or(""));
    }
    report
}

/// Like [`process_corpus`], but also returns the tool for post-run
/// queries (include counts).
pub fn process_corpus_with_tool(
    corpus: &Corpus,
    options: Options,
) -> (Vec<ProcessedUnit>, SuperC<superc::MemFs>) {
    let mut sc = SuperC::new(options, corpus.fs.clone());
    let units = corpus
        .units
        .iter()
        .map(|u| sc.process(u).unwrap_or_else(|e| panic!("{u}: {e}")))
        .collect();
    (units, sc)
}
