/* superc.h — C bindings for the SuperC reproduction's embeddable parse
 * driver (configuration-preserving preprocessing + Fork-Merge LR
 * parsing of all of C; Gazzillo & Grimm, PLDI 2012).
 *
 * Link against the superc_capi cdylib (-lsuperc_capi).
 *
 * Model: a driver is a long-running session. Create one, stage files
 * into its virtual tree (or install a resolver callback), and alternate
 * EDIT GENERATIONS with parse/lint requests:
 *
 *   superc_driver *d = superc_driver_new(0);     // generation 1 is open
 *   superc_driver_set_file(d, "a.c", "int a;\n");
 *   superc_driver_end_generation(d);             // commit before requests
 *   char *json = superc_lint(d, units, 1, "json", NULL, NULL);
 *   ...
 *   superc_string_free(json);
 *   superc_driver_free(d);
 *
 * Between requests, batch edits with begin/end_generation; the driver's
 * unit memo then replays every unit whose include closure (the files it
 * read AND the include-probe paths that failed) is untouched, and
 * recomputes the rest. Requests while a generation is open fail.
 *
 * Output contract: superc_parse/superc_lint return the EXACT bytes a
 * fresh one-shot `superc` / `superc lint --format <f>` run would print
 * over the same tree (stdout as the return value, stderr via out-param).
 *
 * Error contract: failing calls return -1 or NULL; superc_last_error()
 * returns the newest message. No call unwinds or aborts on internal
 * panics — they are caught at this boundary and reported the same way.
 *
 * Memory contract: strings passed in are copied before the call
 * returns. Strings returned (results and *stderr_out) are owned by the
 * caller and must be released with superc_string_free(). The pointer
 * from superc_last_error() is borrowed — valid until the next call on
 * the same driver; do not free it.
 *
 * Threading contract: a driver handle may be used from one thread at a
 * time. A resolver callback, however, is invoked from the driver's
 * worker threads (possibly several at once) and must be thread-safe
 * together with its userdata.
 */
#ifndef SUPERC_H
#define SUPERC_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Opaque driver handle. */
typedef struct superc_driver superc_driver;

/* Resolver callback: return malloc'd (or otherwise owned) contents of
 * `path`, or NULL when absent. The library copies the string and then
 * passes it to the paired superc_free_fn (when non-NULL). Must be
 * thread-safe. */
typedef char *(*superc_resolve_fn)(void *userdata, const char *path);
typedef void (*superc_free_fn)(void *userdata, char *contents);

/* Creates a driver with `jobs` pooled worker threads (0 = available
 * parallelism) and the default include search path ("include"). The
 * first edit generation is already open so the tree can be populated;
 * call superc_driver_end_generation before the first request.
 * Returns NULL on failure. */
superc_driver *superc_driver_new(unsigned jobs);

/* As superc_driver_new, with explicit include search directories. */
superc_driver *superc_driver_new_with_includes(unsigned jobs,
                                               const char *const *dirs,
                                               size_t n_dirs);

/* Destroys a driver and joins its worker pool. NULL is a no-op. */
void superc_driver_free(superc_driver *d);

/* Installs the resolver serving reads the staged overlay misses.
 * Returns 0, or -1 (see superc_last_error). */
int superc_driver_set_resolver(superc_driver *d, superc_resolve_fn resolve,
                               superc_free_fn free_fn, void *userdata);

/* Opens / commits an edit generation. Return the generation number,
 * or -1 on protocol misuse (double open, close without open). */
int64_t superc_driver_begin_generation(superc_driver *d);
int64_t superc_driver_end_generation(superc_driver *d);

/* Stages a file / removes a path inside the open generation. A removed
 * path reads as absent even if the resolver would produce it.
 * Return 0, or -1. */
int superc_driver_set_file(superc_driver *d, const char *path,
                           const char *contents);
int superc_driver_remove_file(superc_driver *d, const char *path);

/* Parses `n_units` compilation units. Returns the stdout bytes of the
 * equivalent one-shot CLI run (caller frees with superc_string_free),
 * or NULL on error. When non-NULL, *stderr_out receives the stderr
 * bytes (caller frees) and *failed_out whether the CLI would exit
 * nonzero. */
char *superc_parse(superc_driver *d, const char *const *units,
                   size_t n_units, char **stderr_out, int *failed_out);

/* Lints `n_units` units; `format` is "text", "json", or "sarif". The
 * returned stdout bytes are byte-identical to
 * `superc lint --format <format> <units...>` over the same tree. */
char *superc_lint(superc_driver *d, const char *const *units, size_t n_units,
                  const char *format, char **stderr_out, int *failed_out);

/* Newest error message, or NULL. Borrowed pointer — do not free. */
const char *superc_last_error(superc_driver *d);

/* Releases a string this library returned. NULL is a no-op. */
void superc_string_free(char *s);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* SUPERC_H */
