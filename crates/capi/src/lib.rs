//! C bindings for the SuperC reproduction's embeddable parse driver.
//!
//! The API (declared in `include/superc.h`) wraps `superc_facade::Driver`
//! behind an opaque handle: create a driver, populate its virtual file
//! tree (or plug in a resolver callback), alternate edit generations
//! with parse/lint requests, and read results as the exact bytes the
//! `superc` CLI would print — the byte-identity contract the C smoke
//! test in `scripts/verify.sh` checks with `diff`.
//!
//! Boundary rules, enforced here:
//!
//! * **No unwinding across the FFI.** Every entry point runs under
//!   `catch_unwind`; a panic becomes an error return plus a message on
//!   the last-error channel.
//! * **No shared allocator assumptions.** Strings returned to C are
//!   allocated by this library and must be released with
//!   [`superc_string_free`]; strings passed in are copied immediately.
//! * **Errors are pulled, not pushed**: failing calls return `-1` /
//!   `NULL`, and [`superc_last_error`] returns the newest message (a
//!   borrowed pointer, valid until the next call on the same driver).

// The public surface deliberately uses C-style snake_case type names so
// the Rust signatures read exactly like the header declarations.
#![allow(non_camel_case_types)]

use std::ffi::{c_char, c_int, c_uint, c_void, CStr, CString};
use std::panic::{catch_unwind, AssertUnwindSafe};

use superc_facade::{Driver, LintFormat, LintOptions, Options, Rendered};

/// The opaque driver handle behind `superc_driver*`.
pub struct superc_driver {
    driver: Driver,
    /// Backing storage for the pointer `superc_last_error` returns.
    last_error: Option<CString>,
}
/// Resolver callback: given `userdata` and a path, return the file
/// contents as a NUL-terminated string this library will copy and then
/// hand to the paired free callback, or `NULL` when the path is absent.
/// Called from worker threads — must be thread-safe.
pub type superc_resolve_fn =
    unsafe extern "C" fn(userdata: *mut c_void, path: *const c_char) -> *mut c_char;

/// Frees a string a [`superc_resolve_fn`] returned (may be `NULL` if
/// the resolver's strings are static or never freed).
pub type superc_free_fn = unsafe extern "C" fn(userdata: *mut c_void, contents: *mut c_char);

/// A C resolver made `Send + Sync`: the header contract requires the
/// callback (and its `userdata`) to be callable from any thread.
struct CResolver {
    resolve: superc_resolve_fn,
    free: Option<superc_free_fn>,
    userdata: *mut c_void,
}
unsafe impl Send for CResolver {}
unsafe impl Sync for CResolver {}

impl CResolver {
    /// One resolver invocation: NULL → absent; otherwise copy the
    /// returned string and hand it back to the paired free callback.
    fn resolve_path(&self, path: &str) -> Result<Option<String>, String> {
        let cpath = CString::new(path).map_err(|_| "path contains NUL".to_string())?;
        // Safety: the header contract — `resolve` is thread-safe and
        // returns either NULL or a NUL-terminated string that stays
        // valid until the paired free callback runs.
        unsafe {
            let raw = (self.resolve)(self.userdata, cpath.as_ptr());
            if raw.is_null() {
                return Ok(None);
            }
            let contents = CStr::from_ptr(raw)
                .to_str()
                .map(str::to_string)
                .map_err(|_| "resolver returned non-UTF-8 contents".to_string());
            if let Some(free) = self.free {
                free(self.userdata, raw);
            }
            contents.map(Some)
        }
    }
}

/// Runs `body` with unwinding caught; `err` is the poisoned-state
/// return. Safe because the driver's internals are lock-guarded and a
/// panicking request leaves no half-written service state behind (the
/// pooled runner re-raises worker panics only inside the request).
fn guarded<T>(
    handle: &mut superc_driver,
    err: T,
    body: impl FnOnce(&mut Driver) -> Result<T, String>,
) -> T {
    let out = catch_unwind(AssertUnwindSafe(|| body(&mut handle.driver)));
    match out {
        Ok(Ok(v)) => v,
        Ok(Err(msg)) => {
            set_error(handle, msg);
            err
        }
        Err(panic) => {
            let msg = panic_message(&panic);
            handle.driver.fs().record_error(msg.clone());
            set_error(handle, msg);
            err
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    let detail = panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".to_string());
    format!("panic at FFI boundary: {detail}")
}

fn set_error(handle: &mut superc_driver, msg: String) {
    handle.last_error = Some(CString::new(msg.replace('\0', "?")).expect("NUL-free"));
}

/// Copies a borrowed C string; `Err` on NULL or non-UTF-8.
unsafe fn in_str(ptr: *const c_char, what: &str) -> Result<String, String> {
    if ptr.is_null() {
        return Err(format!("{what} must not be NULL"));
    }
    CStr::from_ptr(ptr)
        .to_str()
        .map(str::to_string)
        .map_err(|_| format!("{what} must be UTF-8"))
}

/// Copies a `const char* const*` array of unit paths.
unsafe fn in_units(units: *const *const c_char, n_units: usize) -> Result<Vec<String>, String> {
    if n_units == 0 {
        return Ok(Vec::new());
    }
    if units.is_null() {
        return Err("units must not be NULL".to_string());
    }
    (0..n_units)
        .map(|i| in_str(*units.add(i), "unit path"))
        .collect()
}

/// Moves rendered output across the boundary: stdout becomes the return
/// value, stderr/failed land in the optional out-params.
unsafe fn out_rendered(
    r: Rendered,
    stderr_out: *mut *mut c_char,
    failed_out: *mut c_int,
) -> Result<*mut c_char, String> {
    if !stderr_out.is_null() {
        *stderr_out = CString::new(r.stderr.replace('\0', "?"))
            .expect("NUL-free")
            .into_raw();
    }
    if !failed_out.is_null() {
        *failed_out = r.failed as c_int;
    }
    Ok(CString::new(r.stdout.replace('\0', "?"))
        .expect("NUL-free")
        .into_raw())
}

/// Creates a driver with `jobs` pooled workers (`0` = available
/// parallelism) and the default include path (`include`). The first
/// edit generation is open: stage files, then call
/// `superc_driver_end_generation` before the first request.
#[no_mangle]
pub extern "C" fn superc_driver_new(jobs: c_uint) -> *mut superc_driver {
    catch_unwind(|| {
        Box::into_raw(Box::new(superc_driver {
            driver: Driver::new(Options::default(), jobs as usize),
            last_error: None,
        }))
    })
    .unwrap_or(std::ptr::null_mut())
}

/// [`superc_driver_new`] with explicit include search directories.
///
/// # Safety
///
/// `dirs` must point to `n_dirs` valid NUL-terminated UTF-8 strings.
#[no_mangle]
pub unsafe extern "C" fn superc_driver_new_with_includes(
    jobs: c_uint,
    dirs: *const *const c_char,
    n_dirs: usize,
) -> *mut superc_driver {
    let Ok(dirs) = in_units(dirs, n_dirs) else {
        return std::ptr::null_mut();
    };
    catch_unwind(|| {
        let mut options = Options::default();
        options.pp.include_paths = dirs;
        Box::into_raw(Box::new(superc_driver {
            driver: Driver::new(options, jobs as usize),
            last_error: None,
        }))
    })
    .unwrap_or(std::ptr::null_mut())
}

/// Destroys a driver (joins its worker pool). NULL is a no-op.
///
/// # Safety
///
/// `d` must be a pointer from `superc_driver_new*`, not yet freed.
#[no_mangle]
pub unsafe extern "C" fn superc_driver_free(d: *mut superc_driver) {
    if !d.is_null() {
        let _ = catch_unwind(AssertUnwindSafe(|| drop(Box::from_raw(d))));
    }
}

/// Installs a resolver callback serving file contents the staged
/// overlay does not have. Returns 0, or -1 on error.
///
/// # Safety
///
/// `d` must be a live driver. `resolve` (with `userdata`) must be
/// callable from any thread for the driver's lifetime; `free` may be
/// NULL if the returned strings need no release.
#[no_mangle]
pub unsafe extern "C" fn superc_driver_set_resolver(
    d: *mut superc_driver,
    resolve: superc_resolve_fn,
    free: Option<superc_free_fn>,
    userdata: *mut c_void,
) -> c_int {
    let Some(handle) = d.as_mut() else { return -1 };
    let resolver = CResolver {
        resolve,
        free,
        userdata,
    };
    guarded(handle, -1, move |driver| {
        driver.set_resolver(Box::new(move |path: &str| resolver.resolve_path(path)));
        Ok(0)
    })
}

/// Opens an edit generation. Returns the generation number, or -1.
///
/// # Safety
///
/// `d` must be a live driver.
#[no_mangle]
pub unsafe extern "C" fn superc_driver_begin_generation(d: *mut superc_driver) -> i64 {
    let Some(handle) = d.as_mut() else { return -1 };
    guarded(handle, -1, |driver| {
        driver.begin_generation().map(|g| g as i64)
    })
}

/// Commits the open edit generation. Returns its number, or -1.
///
/// # Safety
///
/// `d` must be a live driver.
#[no_mangle]
pub unsafe extern "C" fn superc_driver_end_generation(d: *mut superc_driver) -> i64 {
    let Some(handle) = d.as_mut() else { return -1 };
    guarded(handle, -1, |driver| {
        driver.end_generation().map(|g| g as i64)
    })
}

/// Stages a file into the open generation. Returns 0, or -1.
///
/// # Safety
///
/// `d` must be a live driver; `path`/`contents` NUL-terminated UTF-8.
#[no_mangle]
pub unsafe extern "C" fn superc_driver_set_file(
    d: *mut superc_driver,
    path: *const c_char,
    contents: *const c_char,
) -> c_int {
    let Some(handle) = d.as_mut() else { return -1 };
    let args = (|| Ok((in_str(path, "path")?, in_str(contents, "contents")?)))();
    match args {
        Err(msg) => {
            set_error(handle, msg);
            -1
        }
        Ok((path, contents)) => guarded(handle, -1, |driver| {
            driver.set_file(&path, &contents).map(|()| 0)
        }),
    }
}

/// Removes a file in the open generation (absent from now on, even if
/// the resolver would produce it). Returns 0, or -1.
///
/// # Safety
///
/// `d` must be a live driver; `path` NUL-terminated UTF-8.
#[no_mangle]
pub unsafe extern "C" fn superc_driver_remove_file(
    d: *mut superc_driver,
    path: *const c_char,
) -> c_int {
    let Some(handle) = d.as_mut() else { return -1 };
    match in_str(path, "path") {
        Err(msg) => {
            set_error(handle, msg);
            -1
        }
        Ok(path) => guarded(handle, -1, |driver| driver.remove_file(&path).map(|()| 0)),
    }
}

/// Parses `units`. Returns the bytes `superc <units...>` would print to
/// stdout (free with [`superc_string_free`]), or NULL on error. When
/// non-NULL, `*stderr_out` receives the stderr bytes and `*failed_out`
/// whether the run would exit nonzero.
///
/// # Safety
///
/// `d` must be a live driver; `units` must point to `n_units` valid
/// strings; `stderr_out`/`failed_out` may be NULL.
#[no_mangle]
pub unsafe extern "C" fn superc_parse(
    d: *mut superc_driver,
    units: *const *const c_char,
    n_units: usize,
    stderr_out: *mut *mut c_char,
    failed_out: *mut c_int,
) -> *mut c_char {
    let Some(handle) = d.as_mut() else {
        return std::ptr::null_mut();
    };
    match in_units(units, n_units) {
        Err(msg) => {
            set_error(handle, msg);
            std::ptr::null_mut()
        }
        Ok(units) => guarded(handle, std::ptr::null_mut(), |driver| {
            let rendered = driver.parse_rendered(&units, false, false)?;
            out_rendered(rendered, stderr_out, failed_out)
        }),
    }
}

/// Lints `units` in `format` (`"text"`, `"json"`, or `"sarif"`).
/// Returns the bytes `superc lint --format <format> <units...>` would
/// print to stdout — byte-identical to that one-shot CLI run over the
/// same tree. Free with [`superc_string_free`]; NULL on error.
///
/// # Safety
///
/// Same contract as [`superc_parse`]; `format` NUL-terminated UTF-8.
#[no_mangle]
pub unsafe extern "C" fn superc_lint(
    d: *mut superc_driver,
    units: *const *const c_char,
    n_units: usize,
    format: *const c_char,
    stderr_out: *mut *mut c_char,
    failed_out: *mut c_int,
) -> *mut c_char {
    let Some(handle) = d.as_mut() else {
        return std::ptr::null_mut();
    };
    let args = (|| {
        let units = in_units(units, n_units)?;
        let format = in_str(format, "format")?;
        let format =
            LintFormat::parse(&format).ok_or_else(|| format!("unknown format {format}"))?;
        Ok((units, format))
    })();
    match args {
        Err(msg) => {
            set_error(handle, msg);
            std::ptr::null_mut()
        }
        Ok((units, format)) => guarded(handle, std::ptr::null_mut(), |driver| {
            let rendered =
                driver.lint_rendered(&units, format, &[], &LintOptions::default(), false)?;
            out_rendered(rendered, stderr_out, failed_out)
        }),
    }
}

/// The newest error message, or NULL if none. Borrowed: valid until the
/// next call on the same driver; do not free.
///
/// # Safety
///
/// `d` must be a live driver.
#[no_mangle]
pub unsafe extern "C" fn superc_last_error(d: *mut superc_driver) -> *const c_char {
    let Some(handle) = d.as_mut() else {
        return std::ptr::null();
    };
    // Service-layer errors (resolver failures recorded on worker
    // threads) take precedence over the handle's cached message only
    // when newer; the channel keeps the newest, so just re-read it.
    if let Some(msg) = handle.driver.last_error() {
        set_error(handle, msg);
    }
    match &handle.last_error {
        Some(c) => c.as_ptr(),
        None => std::ptr::null(),
    }
}

/// Frees a string returned by [`superc_parse`]/[`superc_lint`] (or a
/// `stderr_out`). NULL is a no-op.
///
/// # Safety
///
/// `s` must come from this library and not be freed twice.
#[no_mangle]
pub unsafe extern "C" fn superc_string_free(s: *mut c_char) {
    if !s.is_null() {
        drop(CString::from_raw(s));
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;

    fn cstr(s: &str) -> CString {
        CString::new(s).unwrap()
    }

    /// Drives the whole FFI surface from Rust the way the verify.sh C
    /// client does: create, stage, commit, lint, byte-compare.
    #[test]
    fn ffi_roundtrip_matches_the_facade() {
        unsafe {
            let d = superc_driver_new(2);
            assert!(!d.is_null());
            let path = cstr("a.c");
            let contents = cstr("#ifdef CONFIG_A\nint a;\n#endif\nint b = FOO;\n");
            assert_eq!(
                superc_driver_set_file(d, path.as_ptr(), contents.as_ptr()),
                0
            );
            assert_eq!(superc_driver_end_generation(d), 1);

            let unit = cstr("a.c");
            let units = [unit.as_ptr()];
            let format = cstr("json");
            let mut failed: c_int = -9;
            let out = superc_lint(
                d,
                units.as_ptr(),
                1,
                format.as_ptr(),
                std::ptr::null_mut(),
                &mut failed,
            );
            assert!(
                !out.is_null(),
                "lint failed: {:?}",
                CStr::from_ptr(superc_last_error(d))
            );
            let json = CStr::from_ptr(out).to_str().unwrap().to_string();
            assert!(json.starts_with("{\"diagnostics\":"), "got: {json}");
            assert_eq!(failed, 0);
            superc_string_free(out);

            // The facade, given the same tree, renders the same bytes.
            let mut driver = Driver::new(Options::default(), 2);
            driver
                .set_file("a.c", "#ifdef CONFIG_A\nint a;\n#endif\nint b = FOO;\n")
                .unwrap();
            driver.end_generation().unwrap();
            let want = driver
                .lint_rendered(
                    &["a.c".to_string()],
                    LintFormat::Json,
                    &[],
                    &LintOptions::default(),
                    false,
                )
                .unwrap();
            assert_eq!(json, want.stdout);

            superc_driver_free(d);
        }
    }

    #[test]
    fn errors_return_codes_and_messages_not_panics() {
        unsafe {
            let d = superc_driver_new(1);
            // Double end: protocol error.
            assert_eq!(superc_driver_end_generation(d), 1);
            assert_eq!(superc_driver_end_generation(d), -1);
            let err = CStr::from_ptr(superc_last_error(d)).to_str().unwrap();
            assert!(err.contains("no generation is open"), "got: {err}");
            // NULL path: argument error, not a crash.
            assert_eq!(
                superc_driver_set_file(d, std::ptr::null(), std::ptr::null()),
                -1
            );
            // Unknown lint format.
            let unit = cstr("a.c");
            let units = [unit.as_ptr()];
            let bad = cstr("yaml");
            let out = superc_lint(
                d,
                units.as_ptr(),
                1,
                bad.as_ptr(),
                std::ptr::null_mut(),
                std::ptr::null_mut(),
            );
            assert!(out.is_null());
            superc_driver_free(d);
            superc_driver_free(std::ptr::null_mut()); // NULL no-op
            superc_string_free(std::ptr::null_mut());
        }
    }

    unsafe extern "C" fn test_resolver(userdata: *mut c_void, path: *const c_char) -> *mut c_char {
        let _ = userdata;
        let path = CStr::from_ptr(path).to_str().unwrap();
        if path == "include/gen.h" {
            CString::new("#define GEN 5\n").unwrap().into_raw()
        } else {
            std::ptr::null_mut()
        }
    }

    unsafe extern "C" fn test_free(_userdata: *mut c_void, contents: *mut c_char) {
        drop(CString::from_raw(contents));
    }

    #[test]
    fn resolver_callback_serves_headers_across_threads() {
        unsafe {
            let d = superc_driver_new(2);
            assert_eq!(
                superc_driver_set_resolver(d, test_resolver, Some(test_free), std::ptr::null_mut()),
                0
            );
            let path = cstr("a.c");
            let contents = cstr("#include <gen.h>\nint a = GEN;\n");
            assert_eq!(
                superc_driver_set_file(d, path.as_ptr(), contents.as_ptr()),
                0
            );
            assert_eq!(superc_driver_end_generation(d), 1);
            let unit = cstr("a.c");
            let units = [unit.as_ptr()];
            let mut failed: c_int = -9;
            let mut errbytes: *mut c_char = std::ptr::null_mut();
            let out = superc_parse(d, units.as_ptr(), 1, &mut errbytes, &mut failed);
            assert!(!out.is_null());
            assert_eq!(failed, 0, "stderr: {:?}", CStr::from_ptr(errbytes));
            assert_eq!(CStr::from_ptr(errbytes).to_bytes(), b"");
            superc_string_free(out);
            superc_string_free(errbytes);
            superc_driver_free(d);
        }
    }
}
