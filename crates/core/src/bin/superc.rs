//! The `superc` command-line tool: configuration-preserving preprocessing
//! and parsing of C compilation units.
//!
//! ```text
//! superc [OPTIONS] <file.c>...
//!   -I <dir>          add an include search directory (repeatable)
//!   -D <name[=val]>   define a macro
//!   --sat             use the SAT condition backend (TypeChef-style)
//!   --mapr            use MAPR's naive forking (with kill switch)
//!   --level <name>    optimization level: full | shared-lazy | shared |
//!                     lazy | follow | mapr | mapr-largest
//!   --single <names>  single-configuration (gcc) mode; comma-separated
//!                     macros to define as 1
//!   --preprocess      print the configuration-preserving preprocessed text
//!   --ast             print the AST with static choice nodes
//!   --stats           print preprocessor/parser statistics
//!   --jobs <N>        parse N compilation units in parallel
//!                     (default: available parallelism; 1 = sequential)
//!   --no-shared-cache disable the process-wide shared preprocessing
//!                     cache in parallel runs (output is identical either
//!                     way; this only changes who pays the lexing cost)
//!   --no-fastpath     disable the deterministic parser fast path and
//!                     fused lexing (output is byte-identical either way;
//!                     this is an escape hatch and differential-testing
//!                     lever, not a semantic switch)
//!   --profile <name>  compiler/OS profile supplying the built-in macro
//!                     table and dialect quirks: gcc-linux (default),
//!                     clang-linux, clang-macos, msvc-windows, bare
//!   --warm <N>        run the corpus N times over one pooled worker
//!                     runner with the unit result memo enabled, printing
//!                     only the final run — the incremental "edit a file,
//!                     re-run" loop in one process. Unchanged units replay
//!                     their memoized result; units whose include closure
//!                     was edited recompute. Output is byte-identical to a
//!                     cold run over the final tree. The memo is bypassed
//!                     for units that tripped a budget or failed, and
//!                     disabled entirely under --no-shared-cache.
//!   --edit <R:dst=src> before (1-based) run R of --warm, copy file src
//!                     over dst — scripted edits for warm re-run testing
//!                     (repeatable)
//!
//! Resource budgets (0 = unlimited; exhaustion *degrades* the unit to a
//! partial parse with condition-scoped diagnostics instead of aborting):
//!   --max-subparsers <N>  live-subparser ceiling per unit
//!   --parse-budget <N>    parser main-loop step budget per unit
//!   --max-forks <N>       subparser fork budget per unit
//!   --max-cond-nodes <N>  BDD-node growth ceiling per unit
//!                         (schedule-dependent safety net)
//!   --parse-time-ms <N>   wall-clock parse budget per unit
//!                         (schedule-dependent safety net)
//!   --include-depth <N>   include-nesting ceiling (overflowing includes
//!                         are skipped with an error diagnostic)
//!   --hoist-cap <N>       hoisted-branch ceiling per preprocessor
//!                         operation
//!
//! superc lint [OPTIONS] <file.c>...
//!   Variability lints with presence-condition diagnostics. Accepts every
//!   option above, plus:
//!   --format <text|json|sarif> output format (default: text)
//!   --profiles <a,b,c>        cross-profile mode: parse every unit under
//!                             each named profile and diff the results
//!                             into the portability-* lints
//!   --allow <code|all>        suppress a lint
//!   --warn <code|all>         report a lint, exit 0 (the default)
//!   --deny <code|all>        report a lint and exit nonzero
//!   --config-prefix <prefix>  replace the name prefixes exempt from
//!                             undef-macro-test (default: CONFIG_, __)
//!
//! superc daemon [OPTIONS]
//!   Long-running parse service over stdin/stdout: one NDJSON request
//!   per line, one NDJSON response per line, over a pooled runner whose
//!   shared cache and unit memo persist across requests. Accepts the
//!   shared options above (no files). Requests:
//!     {"cmd":"parse","units":[...]}
//!     {"cmd":"lint","units":[...],"format":"text|json|sarif",
//!      "profiles":["gcc-linux",...]}
//!     {"cmd":"edit","path":"f.h","contents":"..."}   stage an overlay
//!       edit ("remove":true deletes; omit contents to just notify that
//!       the file changed on disk)
//!     {"cmd":"stats"}
//!     {"cmd":"shutdown"}
//!   Parse/lint responses carry {"ok":true,"stdout":...,"stderr":...,
//!   "failed":...} where stdout/stderr are byte-identical to a fresh
//!   one-shot `superc` run over the same tree.
//! ```

use std::process::ExitCode;

use superc::analyze::{LintCode, LintLevel, LintOptions};
use superc::cli::{self, LintFormat, Rendered};
use superc::corpus::{
    process_corpus, process_corpus_profiles, Capture, CorpusOptions, CorpusReport, CorpusRunner,
    ProfilesReport,
};
use superc::service::Driver;
use superc::{CondBackend, DiskFs, Options, ParserConfig, PpOptions, Profile, SuperC};

struct LintArgs {
    format: LintFormat,
    /// Cross-profile mode: parse every unit under each profile and diff.
    profiles: Vec<Profile>,
    opts: LintOptions,
}

struct Args {
    files: Vec<String>,
    options: Options,
    show_preprocessed: bool,
    show_ast: bool,
    show_stats: bool,
    /// Worker threads; 0 = available parallelism.
    jobs: usize,
    /// Disable the shared preprocessing cache in parallel runs.
    no_shared_cache: bool,
    /// Warm re-run count: run the corpus this many times over one pooled
    /// runner with the unit result memo on; `0` = normal one-shot run.
    warm: usize,
    /// Scripted edits for warm re-runs: before (1-based) run `.0`, copy
    /// file `.2` over `.1`.
    edits: Vec<(usize, String, String)>,
    /// `superc lint` mode.
    lint: Option<LintArgs>,
    /// `superc daemon` mode: serve NDJSON requests over stdin/stdout.
    daemon: bool,
}

fn parse_args(mut raw: Vec<String>) -> Result<Args, String> {
    let mut args = Args {
        files: Vec::new(),
        options: Options::default(),
        show_preprocessed: false,
        show_ast: false,
        show_stats: false,
        jobs: 0,
        no_shared_cache: false,
        warm: 0,
        edits: Vec::new(),
        lint: None,
        daemon: false,
    };
    let mut pp = PpOptions::default();
    pp.include_paths.clear();
    match raw.first().map(String::as_str) {
        Some("lint") => {
            raw.remove(0);
            args.lint = Some(LintArgs {
                format: LintFormat::Text,
                profiles: Vec::new(),
                opts: LintOptions::default(),
            });
        }
        Some("daemon") => {
            raw.remove(0);
            args.daemon = true;
        }
        _ => {}
    }
    let mut prefixes_replaced = false;
    // Applied after the loop so it survives a later `--level`/`--mapr`
    // (which replace the whole ParserConfig).
    let mut no_fastpath = false;
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if let Some(lint) = args.lint.as_mut() {
            match a.as_str() {
                "--format" => {
                    let f = it.next().ok_or("--format needs text, json, or sarif")?;
                    lint.format =
                        LintFormat::parse(&f).ok_or_else(|| format!("unknown format {f}"))?;
                    continue;
                }
                "--profiles" => {
                    let names = it.next().ok_or("--profiles needs a comma-separated list")?;
                    for n in names.split(',').filter(|n| !n.is_empty()) {
                        lint.profiles.push(named_profile(n)?);
                    }
                    continue;
                }
                "--allow" | "--warn" | "--deny" => {
                    let level = match a.as_str() {
                        "--allow" => LintLevel::Allow,
                        "--warn" => LintLevel::Warn,
                        _ => LintLevel::Deny,
                    };
                    let which = it.next().ok_or_else(|| format!("{a} needs a lint code"))?;
                    if which == "all" {
                        lint.opts.set_all(level);
                    } else {
                        let code = LintCode::parse(&which)
                            .ok_or_else(|| format!("unknown lint code {which}"))?;
                        lint.opts.set_level(code, level);
                    }
                    continue;
                }
                "--config-prefix" => {
                    let p = it.next().ok_or("--config-prefix needs a prefix")?;
                    if !prefixes_replaced {
                        lint.opts.config_prefixes.clear();
                        prefixes_replaced = true;
                    }
                    lint.opts.config_prefixes.push(p);
                    continue;
                }
                _ => {}
            }
        }
        match a.as_str() {
            "-I" => pp
                .include_paths
                .push(it.next().ok_or("-I needs a directory")?),
            "-D" => {
                let d = it.next().ok_or("-D needs a name")?;
                let (name, val) = d.split_once('=').unwrap_or((d.as_str(), "1"));
                pp.defines.push((name.to_string(), val.to_string()));
            }
            "--sat" => args.options.backend = CondBackend::Sat,
            "--mapr" => args.options.parser = ParserConfig::mapr(),
            "--level" => {
                let l = it.next().ok_or("--level needs a name")?;
                args.options.parser = match l.as_str() {
                    "full" => ParserConfig::full(),
                    "shared-lazy" => ParserConfig::shared_lazy(),
                    "shared" => ParserConfig::shared(),
                    "lazy" => ParserConfig::lazy(),
                    "follow" => ParserConfig::follow_only(),
                    "mapr" => ParserConfig::mapr(),
                    "mapr-largest" => ParserConfig::mapr_largest_first(),
                    other => return Err(format!("unknown level {other}")),
                };
            }
            "--single" => {
                pp.single_config = true;
                if let Some(names) = it.next() {
                    for n in names.split(',').filter(|n| !n.is_empty()) {
                        pp.defines.push((n.to_string(), "1".to_string()));
                    }
                }
            }
            "--preprocess" => args.show_preprocessed = true,
            "--ast" => args.show_ast = true,
            "--stats" => args.show_stats = true,
            "--jobs" | "-j" => {
                let n = it.next().ok_or("--jobs needs a count")?;
                args.jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs: not a count: {n}"))?;
            }
            "--max-subparsers" | "--parse-budget" | "--max-forks" | "--max-cond-nodes"
            | "--parse-time-ms" | "--include-depth" | "--hoist-cap" => {
                let n = it.next().ok_or_else(|| format!("{a} needs a count"))?;
                let n: u64 = n.parse().map_err(|_| format!("{a}: not a count: {n}"))?;
                let b = &mut args.options.budgets;
                match a.as_str() {
                    "--max-subparsers" => b.max_subparsers = n as usize,
                    "--parse-budget" => b.max_steps = n,
                    "--max-forks" => b.max_forks = n,
                    "--max-cond-nodes" => b.max_cond_nodes = n as usize,
                    "--parse-time-ms" => b.max_millis = n,
                    "--include-depth" => b.max_include_depth = n as usize,
                    _ => b.hoist_cap = n as usize,
                }
            }
            "--no-shared-cache" => args.no_shared_cache = true,
            "--no-fastpath" => no_fastpath = true,
            "--warm" => {
                let n = it.next().ok_or("--warm needs a run count")?;
                args.warm = n
                    .parse::<usize>()
                    .map_err(|_| format!("--warm: not a count: {n}"))?;
                if args.warm == 0 {
                    return Err("--warm needs at least 1 run".to_string());
                }
            }
            "--edit" => {
                let spec = it.next().ok_or("--edit needs run:dest=src")?;
                let parsed = spec.split_once(':').and_then(|(run, rest)| {
                    let run = run.parse::<usize>().ok().filter(|&r| r > 0)?;
                    let (dest, src) = rest.split_once('=')?;
                    Some((run, dest.to_string(), src.to_string()))
                });
                match parsed {
                    Some(e) => args.edits.push(e),
                    None => return Err(format!("--edit: expected run:dest=src, got {spec}")),
                }
            }
            "--profile" => {
                let n = it.next().ok_or("--profile needs a name")?;
                pp.profile = named_profile(&n)?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: superc [lint|daemon] [-I dir] [-D name[=v]] [--sat] [--mapr] \
                            [--level L] [--single names] [--preprocess] [--ast] [--stats] \
                            [--jobs N] [--no-shared-cache] [--no-fastpath] [--profile name] \
                            [--warm N] [--edit R:dst=src] \
                            [--max-subparsers N] [--parse-budget N] [--max-forks N] \
                            [--max-cond-nodes N] [--parse-time-ms N] [--include-depth N] \
                            [--hoist-cap N] files...\n\
                            lint mode adds: [--format text|json|sarif] [--profiles a,b,c] \
                            [--allow|--warn|--deny code|all] [--config-prefix P]\n\
                            daemon mode takes no files; it serves NDJSON requests on stdin"
                        .to_string(),
                )
            }
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if args.daemon {
        if !args.files.is_empty() {
            return Err("daemon mode takes no input files".to_string());
        }
        if args.warm > 0 || !args.edits.is_empty() {
            return Err("daemon mode does not take --warm/--edit".to_string());
        }
    } else if args.files.is_empty() {
        return Err("no input files (try --help)".to_string());
    }
    if args.warm == 0 && !args.edits.is_empty() {
        return Err("--edit requires --warm".to_string());
    }
    if let Some((r, _, _)) = args.edits.iter().find(|(r, _, _)| *r > args.warm) {
        return Err(format!("--edit run {r} is beyond --warm {}", args.warm));
    }
    if pp.include_paths.is_empty() {
        pp.include_paths.push("include".to_string());
    }
    if no_fastpath {
        args.options.parser.fastpath = false;
        pp.fuse_lexing = false;
    }
    args.options.pp = pp;
    Ok(args)
}

/// Resolves a profile name, listing the shipped names on failure.
fn named_profile(name: &str) -> Result<Profile, String> {
    Profile::named(name).ok_or_else(|| {
        format!(
            "unknown profile {name} (expected one of: {})",
            Profile::all_names().join(", ")
        )
    })
}

/// Writes rendered output the way every corpus-driver path exits: all
/// stderr bytes, then all stdout bytes, then the exit code.
fn emit(r: &Rendered) -> ExitCode {
    eprint!("{}", r.stderr);
    print!("{}", r.stdout);
    if r.failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1).collect()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.daemon {
        return run_daemon(&args);
    }
    if let Some(lint) = &args.lint {
        return run_lint(&args, lint);
    }
    // Multi-file runs always go through the corpus driver, even with
    // `--jobs 1`: the driver renders conditions canonically and prints in
    // input order, so output is byte-identical for any job count. Warm
    // re-runs need the pooled driver regardless of file count.
    if args.files.len() > 1 || args.warm > 0 {
        return run_parallel(&args);
    }
    let mut sc = SuperC::new(args.options, DiskFs::new("."));
    let mut failed = false;
    for file in &args.files {
        match sc.process(file) {
            Err(e) => {
                eprintln!("{file}: fatal: {e}");
                failed = true;
            }
            Ok(p) => {
                for d in &p.unit.diagnostics {
                    if !matches!(d.severity, superc::cpp::Severity::Note) {
                        eprintln!("{file}: [{:?}] under {}: {}", d.severity, d.cond, d.message);
                    }
                }
                for e in &p.result.errors {
                    // Positions render with the file *name* (matching the
                    // corpus driver), not the raw numeric `FileId`.
                    match e.pos {
                        Some(pos) => {
                            let name = sc.preprocessor().file_name(pos.file).unwrap_or("<unknown>");
                            eprintln!(
                                "{file}: {name}:{}:{}: {} (at '{}', config {})",
                                pos.line, pos.col, e.message, e.got, e.cond
                            );
                        }
                        None => eprintln!("{file}: {e}"),
                    }
                    failed = true;
                }
                for t in &p.result.trips {
                    eprintln!("{file}: warning: {}", superc::corpus::render_trip(t));
                }
                if args.show_preprocessed {
                    println!("{}", p.unit.display_text());
                }
                if args.show_ast {
                    match &p.result.ast {
                        Some(ast) => println!("{ast}"),
                        None => eprintln!("{file}: no configuration parsed"),
                    }
                }
                if args.show_stats {
                    let s = &p.unit.stats;
                    let ps = &p.result.stats;
                    println!(
                        "{file}: {} tokens, {} conditionals, {} macro invocations \
                         ({} hoisted), {ps}, {:?} total",
                        s.output_tokens,
                        s.output_conditionals,
                        s.macro_invocations,
                        s.invocations_hoisted,
                        p.timings.total()
                    );
                    print!(
                        "{}",
                        superc::report::activity_table(ps, sc.ctx().bdd_stats().as_ref()).render()
                    );
                }
                if let Some(acc) = &p.result.accepted {
                    if !acc.is_true() {
                        eprintln!("{file}: parses only under {acc}");
                    }
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Applies the `--edit` patches scheduled before 1-based warm run `run`
/// (copy `src` over `dest`, in flag order).
fn apply_edits(args: &Args, run: usize) -> Result<(), String> {
    for (r, dest, src) in &args.edits {
        if *r == run {
            std::fs::copy(src, dest)
                .map_err(|e| format!("--edit: cannot copy {src} over {dest}: {e}"))?;
        }
    }
    Ok(())
}

/// `--warm N` driver: one pooled [`CorpusRunner`], N warm batches with
/// the scheduled `--edit`s applied at each batch boundary, returning
/// only the final batch's report — the one the caller prints, and the
/// one bench/verify scripts compare byte-for-byte against a cold run
/// over the final tree.
fn run_warm_corpus(args: &Args, copts: &CorpusOptions) -> Result<CorpusReport, String> {
    let mut copts = copts.clone();
    copts.warm = true;
    let fs = std::sync::Arc::new(DiskFs::new("."));
    let mut pool = CorpusRunner::new(&args.options, fs, args.jobs, args.no_shared_cache);
    apply_edits(args, 1)?;
    let mut report = pool.run(&args.files, &copts);
    for run in 2..=args.warm {
        apply_edits(args, run)?;
        report = pool.run(&args.files, &copts);
    }
    Ok(report)
}

/// The cross-profile analogue of [`run_warm_corpus`].
fn run_warm_profiles(
    args: &Args,
    profiles: &[Profile],
    copts: &CorpusOptions,
) -> Result<ProfilesReport, String> {
    let mut copts = copts.clone();
    copts.warm = true;
    let fs = std::sync::Arc::new(DiskFs::new("."));
    let mut pool = CorpusRunner::new(&args.options, fs, args.jobs, args.no_shared_cache);
    apply_edits(args, 1)?;
    let mut report = pool.run_profiles(&args.files, profiles, &copts);
    for run in 2..=args.warm {
        apply_edits(args, run)?;
        report = pool.run_profiles(&args.files, profiles, &copts);
    }
    Ok(report)
}

/// `superc lint`: run the corpus driver with linting enabled and print
/// diagnostics in input order. With `--profiles`, every unit runs under
/// each named profile and the per-profile results are diffed into the
/// `portability-*` lints.
fn run_lint(args: &Args, lint: &LintArgs) -> ExitCode {
    let fs = DiskFs::new(".");
    let copts = CorpusOptions {
        jobs: args.jobs,
        capture: Capture::default(),
        lint: Some(lint.opts.clone()),
        no_shared_cache: args.no_shared_cache,
        inject_panic: Vec::new(),
        portability: false,
        warm: false,
    };
    if !lint.profiles.is_empty() {
        let report = if args.warm > 0 {
            match run_warm_profiles(args, &lint.profiles, &copts) {
                Ok(r) => r,
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            process_corpus_profiles(&fs, &args.files, &args.options, &lint.profiles, &copts)
        };
        return emit(&cli::render_lint_profiles(
            &report,
            lint.format,
            &lint.opts,
            args.show_stats,
        ));
    }
    let report = if args.warm > 0 {
        match run_warm_corpus(args, &copts) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        process_corpus(&fs, &args.files, &args.options, &copts)
    };
    emit(&cli::render_lint_report(
        &report,
        lint.format,
        args.show_stats,
    ))
}

/// Multi-file parallel path: fan out over the corpus driver, then print
/// per-unit results in input order (so output is stable for any job
/// count).
fn run_parallel(args: &Args) -> ExitCode {
    let fs = DiskFs::new(".");
    let copts = CorpusOptions {
        jobs: args.jobs,
        capture: Capture {
            preprocessed: args.show_preprocessed,
            ast: args.show_ast,
            unparse_configs: Vec::new(),
        },
        lint: None,
        no_shared_cache: args.no_shared_cache,
        inject_panic: Vec::new(),
        portability: false,
        warm: false,
    };
    let report = if args.warm > 0 {
        match run_warm_corpus(args, &copts) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        process_corpus(&fs, &args.files, &args.options, &copts)
    };
    emit(&cli::render_corpus_report(
        &report,
        args.show_ast,
        args.show_stats,
    ))
}

/// `superc daemon`: NDJSON requests on stdin, one response line each on
/// stdout, over a [`Driver`] rooted at the current directory. Parse and
/// lint responses are byte-identical to fresh one-shot CLI runs over
/// the same tree — verify.sh diffs exactly that.
fn run_daemon(args: &Args) -> ExitCode {
    use std::io::{BufRead, Write};
    let mut driver = Driver::with_disk_root(args.options.clone(), args.jobs, ".");
    if driver.end_generation().is_err() {
        eprintln!("daemon: driver initialization failed");
        return ExitCode::FAILURE;
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, quit) = superc::service::daemon::handle_line(&mut driver, &line);
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            break;
        }
        if quit {
            break;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod cli_args_tests {
    use super::*;

    fn pa(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn warm_zero_is_a_usage_error_not_a_panic() {
        let err = pa(&["--warm", "0", "a.c"]).err().expect("must be rejected");
        assert!(err.contains("--warm needs at least 1"), "got: {err}");
        let err = pa(&["lint", "--warm", "0", "a.c"]).err().expect("rejected");
        assert!(err.contains("--warm needs at least 1"), "got: {err}");
    }

    #[test]
    fn warm_accepts_positive_counts() {
        let args = pa(&["--warm", "3", "a.c"]).expect("valid");
        assert_eq!(args.warm, 3);
    }

    #[test]
    fn edit_out_of_range_is_a_usage_error() {
        let err = pa(&["--warm", "2", "--edit", "3:a.h=b.h", "a.c"])
            .err()
            .expect("edit beyond warm must be rejected");
        assert!(err.contains("beyond --warm"), "got: {err}");
        let err = pa(&["--edit", "1:a.h=b.h", "a.c"])
            .err()
            .expect("edit without warm must be rejected");
        assert!(err.contains("requires --warm"), "got: {err}");
        let err = pa(&["--warm", "2", "--edit", "0:a.h=b.h", "a.c"])
            .err()
            .expect("run 0 must be rejected");
        assert!(err.contains("expected run:dest=src"), "got: {err}");
    }

    #[test]
    fn daemon_mode_takes_no_files_or_warm() {
        let args = pa(&["daemon", "-I", "include", "--jobs", "2"]).expect("valid daemon args");
        assert!(args.daemon);
        assert!(pa(&["daemon", "a.c"]).is_err());
        assert!(pa(&["daemon", "--warm", "2"]).is_err());
    }
}
