//! Byte-exact renderers behind the `superc` CLI, the embeddable
//! [`service::Driver`](crate::service::Driver), and the NDJSON daemon.
//!
//! The determinism contract ("output is byte-identical across jobs,
//! caches, fast paths, and warm replays") is only end-to-end testable if
//! every front end prints through the same code. These functions turn
//! corpus reports into the exact bytes the CLI writes — the binary
//! `eprint!`s [`Rendered::stderr`] then `print!`s [`Rendered::stdout`],
//! the daemon ships both in its response, and verify scripts diff the
//! two byte-for-byte against each other.

use std::fmt::Write as _;

use crate::analyze::{render, LintOptions, Record};
use crate::corpus::{CorpusReport, ProfilesReport};

/// Output of one rendered request: the exact bytes the CLI writes to
/// stdout and stderr, plus whether the run counts as failed (a nonzero
/// exit for the CLI, `"failed": true` in a daemon response).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Rendered {
    /// Bytes for stdout (reports, ASTs, stats tables).
    pub stdout: String,
    /// Bytes for stderr (fatal errors, diagnostics, degradations).
    pub stderr: String,
    /// True when the run should exit nonzero: a fatal unit, a parse
    /// error, or a denied lint.
    pub failed: bool,
}

/// Lint output format (the CLI's `--format`, the daemon's `"format"`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintFormat {
    /// Human-readable lines plus a trailing summary line.
    Text,
    /// One JSON object (the format the byte-identity gates diff).
    Json,
    /// SARIF 2.1.0.
    Sarif,
}

impl LintFormat {
    /// Parses a `--format` operand; `None` for unknown names.
    pub fn parse(name: &str) -> Option<LintFormat> {
        match name {
            "text" => Some(LintFormat::Text),
            "json" => Some(LintFormat::Json),
            "sarif" => Some(LintFormat::Sarif),
            _ => None,
        }
    }
}

/// Renders lint records in the selected format. Every format is
/// byte-identical for any jobs/cache/fastpath setting: records sort
/// deterministically and render conditions canonically.
pub fn render_records(format: LintFormat, records: &[Record]) -> String {
    match format {
        LintFormat::Json => render::render_json(records),
        LintFormat::Sarif => render::render_sarif(records),
        LintFormat::Text => {
            let deny = records.iter().filter(|r| r.level == "deny").count();
            format!(
                "{}{} diagnostic(s), {} denied\n",
                render::render_text(records),
                records.len(),
                deny
            )
        }
    }
}

/// Renders a plain parse run over the corpus driver: per-unit fatal
/// errors, diagnostics, parse errors, and degradations on stderr;
/// captured preprocessed text, ASTs, and stats tables on stdout — in
/// input order, so the bytes are stable for any job count.
pub fn render_corpus_report(report: &CorpusReport, show_ast: bool, show_stats: bool) -> Rendered {
    let mut out = Rendered::default();
    for u in &report.units {
        if let Some(fatal) = &u.fatal {
            let _ = writeln!(out.stderr, "{}: fatal: {fatal}", u.path);
            out.failed = true;
            continue;
        }
        for d in &u.diagnostics {
            let _ = writeln!(out.stderr, "{}: [Error] {d}", u.path);
        }
        for e in &u.errors {
            let _ = writeln!(out.stderr, "{}: {e}", u.path);
            out.failed = true;
        }
        for d in &u.degradations {
            let _ = writeln!(out.stderr, "{}: warning: {d}", u.path);
        }
        if let Some(text) = &u.preprocessed {
            let _ = writeln!(out.stdout, "{text}");
        }
        if show_ast {
            match &u.ast_text {
                Some(ast) => {
                    let _ = writeln!(out.stdout, "{ast}");
                }
                None => {
                    let _ = writeln!(out.stderr, "{}: no configuration parsed", u.path);
                }
            }
        }
        if show_stats {
            let _ = writeln!(
                out.stdout,
                "{}: {} tokens, {} conditionals, {} macro invocations \
                 ({} hoisted), {}",
                u.path,
                u.pp.output_tokens,
                u.pp.output_conditionals,
                u.pp.macro_invocations,
                u.pp.invocations_hoisted,
                u.parse,
            );
        }
    }
    if show_stats {
        out.stdout
            .push_str(&crate::report::corpus_table(report).render());
    }
    out
}

/// Renders a single-profile lint run: fatal units on stderr, records in
/// the selected format (plus the stats table when asked) on stdout.
pub fn render_lint_report(report: &CorpusReport, format: LintFormat, show_stats: bool) -> Rendered {
    let mut out = Rendered::default();
    let mut records: Vec<Record> = Vec::new();
    for u in &report.units {
        if let Some(f) = &u.fatal {
            let _ = writeln!(out.stderr, "{}: fatal: {f}", u.path);
            out.failed = true;
        }
        records.extend(u.lints.iter().cloned());
    }
    if records.iter().any(|r| r.level == "deny") {
        out.failed = true;
    }
    out.stdout.push_str(&render_records(format, &records));
    if show_stats {
        out.stdout
            .push_str(&crate::report::corpus_table(report).render());
    }
    out
}

/// Renders a cross-profile lint run: per-profile fatal units on stderr,
/// the merged record set (including `portability-*` diffs) on stdout.
pub fn render_lint_profiles(
    report: &ProfilesReport,
    format: LintFormat,
    opts: &LintOptions,
    show_stats: bool,
) -> Rendered {
    let mut out = Rendered::default();
    for (name, run) in report.profiles.iter().zip(&report.runs) {
        for u in &run.units {
            if let Some(f) = &u.fatal {
                let _ = writeln!(out.stderr, "{} [{name}]: fatal: {f}", u.path);
                out.failed = true;
            }
        }
    }
    let records = report.lint_records(opts);
    if records.iter().any(|r| r.level == "deny") {
        out.failed = true;
    }
    out.stdout.push_str(&render_records(format, &records));
    if show_stats {
        for (name, run) in report.profiles.iter().zip(&report.runs) {
            let _ = writeln!(out.stdout, "profile {name}:");
            out.stdout
                .push_str(&crate::report::corpus_table(run).render());
        }
    }
    out
}
