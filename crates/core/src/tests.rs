use super::*;

fn tool(files: &[(&str, &str)]) -> SuperC<MemFs> {
    let mut fs = MemFs::new();
    for (p, c) in files {
        fs.add(p, c);
    }
    let opts = Options {
        pp: PpOptions {
            profile: Profile::bare(),
            ..PpOptions::default()
        },
        ..Options::default()
    };
    SuperC::new(opts, fs)
}

const VARIABLE: &str = "\
#ifdef CONFIG_SMP
int cpus = 8;
#else
int cpus = 1;
#endif
int probe(void) { return cpus; }
";

#[test]
fn end_to_end_pipeline() {
    let mut sc = tool(&[("m.c", VARIABLE)]);
    let p = sc.process("m.c").expect("processes");
    assert!(p.result.errors.is_empty());
    assert!(p.result.accepted.as_ref().expect("accepted").is_true());
    assert_eq!(p.result.ast.as_ref().expect("ast").choice_count(), 1);
    assert!(p.bytes > 0);
    assert!(p.timings.total() > std::time::Duration::ZERO);
}

#[test]
fn missing_file_is_an_error() {
    let mut sc = tool(&[]);
    let Err(err) = sc.process("nope.c") else {
        panic!("expected a missing-file error");
    };
    assert!(err.message.contains("not found"));
}

#[test]
fn gcc_baseline_resolves_conditionals() {
    let mut fs = MemFs::new();
    fs.add("m.c", VARIABLE);
    let mut opts = Options::gcc_baseline(vec![("CONFIG_SMP".into(), "1".into())]);
    opts.pp.profile = Profile::bare();
    let mut sc = SuperC::new(opts, fs.clone());
    let p = sc.process("m.c").expect("processes");
    assert_eq!(p.unit.stats.output_conditionals, 0, "single config is flat");
    assert!(p.result.errors.is_empty());
    assert_eq!(p.result.stats.max_subparsers, 1, "plain LR");
    let text = p.unit.display_text();
    assert!(text.contains("cpus = 8"));
    assert!(!text.contains("cpus = 1"));

    // And without the define, the other branch.
    let mut opts = Options::gcc_baseline(vec![]);
    opts.pp.profile = Profile::bare();
    let mut sc = SuperC::new(opts, fs);
    let p = sc.process("m.c").expect("processes");
    assert!(p.unit.display_text().contains("cpus = 1"));
}

#[test]
fn typechef_baseline_agrees_on_results() {
    let mut fs = MemFs::new();
    fs.add("m.c", VARIABLE);
    let mut opts = Options::typechef_baseline();
    opts.pp.profile = Profile::bare();
    let mut sc = SuperC::new(opts, fs);
    let p = sc.process("m.c").expect("processes");
    assert!(p.result.errors.is_empty());
    assert!(p.result.accepted.as_ref().expect("accepted").is_true());
    assert_eq!(p.result.ast.as_ref().expect("ast").choice_count(), 1);
}

#[test]
fn header_cache_shared_across_units() {
    let mut fs = MemFs::new();
    fs.add(
        "include/shared.h",
        "#ifndef S_H\n#define S_H\ntypedef int s32;\n#endif\n",
    );
    fs.add("a.c", "#include <shared.h>\ns32 a;\n");
    fs.add("b.c", "#include <shared.h>\ns32 b;\n");
    let opts = Options {
        pp: PpOptions {
            profile: Profile::bare(),
            ..PpOptions::default()
        },
        ..Options::default()
    };
    let mut sc = SuperC::new(opts, fs);
    for f in ["a.c", "b.c"] {
        let p = sc.process(f).expect("processes");
        assert!(p.result.errors.is_empty(), "{f}");
    }
    assert_eq!(
        sc.preprocessor().include_counts().get("include/shared.h"),
        Some(&2)
    );
}

mod corpus {
    use super::*;
    use crate::corpus::{default_jobs, process_corpus, Capture, CorpusOptions};

    fn fs() -> MemFs {
        MemFs::new()
            .file(
                "include/h.h",
                "#ifndef H\n#define H\ntypedef int u8_t;\n#endif\n",
            )
            .file("a.c", "#include <h.h>\nu8_t a;\n")
            .file("b.c", VARIABLE)
            .file("c.c", "int c(void) { return 3; }\n")
    }

    fn opts() -> Options {
        Options {
            pp: PpOptions {
                profile: Profile::bare(),
                ..PpOptions::default()
            },
            ..Options::default()
        }
    }

    fn units() -> Vec<String> {
        ["a.c", "b.c", "c.c"].map(str::to_string).to_vec()
    }

    #[test]
    fn report_is_in_input_order_with_merged_counters() {
        let report = process_corpus(&fs(), &units(), &opts(), &CorpusOptions::default());
        assert_eq!(report.units.len(), 3);
        assert_eq!(report.units[0].path, "a.c");
        assert_eq!(report.units[1].path, "b.c");
        assert_eq!(report.units[2].path, "c.c");
        assert_eq!(report.parsed_units(), 3);
        assert_eq!(report.fatal_units(), 0);
        // Merged counters are the per-unit sums.
        let tokens: u64 = report.units.iter().map(|u| u.pp.output_tokens).sum();
        assert_eq!(report.pp.output_tokens, tokens);
        let shifts: u64 = report.units.iter().map(|u| u.parse.shifts).sum();
        assert_eq!(report.parse.shifts, shifts);
        assert!(report.cond.feasibility_checks > 0);
        assert!(report.bdd.is_some(), "BDD backend reports BDD stats");
        assert!(report.wall > std::time::Duration::ZERO);
        assert!(report.tokens_per_sec() > 0.0);
        assert!(report.behavior_counters().contains("units=3 parsed=3"));
    }

    #[test]
    fn captures_are_per_unit() {
        let copts = CorpusOptions {
            jobs: 2,
            capture: Capture {
                preprocessed: true,
                ast: true,
                unparse_configs: vec![vec![], vec!["CONFIG_SMP".to_string()]],
            },
            lint: None,
            no_shared_cache: false,
            inject_panic: Vec::new(),
            portability: false,
            warm: false,
        };
        let report = process_corpus(&fs(), &units(), &opts(), &copts);
        let b = &report.units[1];
        assert!(b
            .preprocessed
            .as_deref()
            .is_some_and(|t| t.contains("cpus")));
        assert!(b.ast_text.is_some());
        assert_eq!(b.unparses.len(), 2);
        assert!(b.unparses[0].contains("cpus = 1"), "{}", b.unparses[0]);
        assert!(b.unparses[1].contains("cpus = 8"), "{}", b.unparses[1]);
    }

    #[test]
    fn sat_backend_reports_no_bdd_stats() {
        let mut o = Options::typechef_baseline();
        o.pp.profile = Profile::bare();
        let report = process_corpus(&fs(), &units(), &o, &CorpusOptions::default());
        assert!(report.bdd.is_none());
        assert!(report.cond.feasibility_checks > 0);
        assert_eq!(report.parsed_units(), 3);
    }

    #[test]
    fn empty_corpus_yields_an_empty_report() {
        let report = process_corpus(&fs(), &[], &opts(), &CorpusOptions::default());
        assert!(report.units.is_empty());
        assert_eq!(report.workers, 1);
        assert_eq!(report.pp.output_tokens, 0);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn corpus_table_renders() {
        let report = process_corpus(&fs(), &units(), &opts(), &CorpusOptions::default());
        let table = crate::report::corpus_table(&report).render();
        assert!(table.contains("units"));
        assert!(table.contains("tokens/sec"));
    }
}

#[test]
fn timings_split_into_phases() {
    let mut sc = tool(&[("m.c", VARIABLE)]);
    let p = sc.process("m.c").expect("processes");
    let t = p.timings;
    // All phases measured; total is their sum.
    assert_eq!(t.total(), t.lexing + t.preprocessing + t.parsing);
    assert!(t.parsing > std::time::Duration::ZERO);
}
