use super::*;

fn tool(files: &[(&str, &str)]) -> SuperC<MemFs> {
    let mut fs = MemFs::new();
    for (p, c) in files {
        fs.add(p, c);
    }
    let opts = Options {
        pp: PpOptions {
            builtins: Builtins::none(),
            ..PpOptions::default()
        },
        ..Options::default()
    };
    SuperC::new(opts, fs)
}

const VARIABLE: &str = "\
#ifdef CONFIG_SMP
int cpus = 8;
#else
int cpus = 1;
#endif
int probe(void) { return cpus; }
";

#[test]
fn end_to_end_pipeline() {
    let mut sc = tool(&[("m.c", VARIABLE)]);
    let p = sc.process("m.c").expect("processes");
    assert!(p.result.errors.is_empty());
    assert!(p.result.accepted.as_ref().expect("accepted").is_true());
    assert_eq!(p.result.ast.as_ref().expect("ast").choice_count(), 1);
    assert!(p.bytes > 0);
    assert!(p.timings.total() > std::time::Duration::ZERO);
}

#[test]
fn missing_file_is_an_error() {
    let mut sc = tool(&[]);
    let Err(err) = sc.process("nope.c") else {
        panic!("expected a missing-file error");
    };
    assert!(err.message.contains("not found"));
}

#[test]
fn gcc_baseline_resolves_conditionals() {
    let mut fs = MemFs::new();
    fs.add("m.c", VARIABLE);
    let mut opts = Options::gcc_baseline(vec![("CONFIG_SMP".into(), "1".into())]);
    opts.pp.builtins = Builtins::none();
    let mut sc = SuperC::new(opts, fs.clone());
    let p = sc.process("m.c").expect("processes");
    assert_eq!(p.unit.stats.output_conditionals, 0, "single config is flat");
    assert!(p.result.errors.is_empty());
    assert_eq!(p.result.stats.max_subparsers, 1, "plain LR");
    let text = p.unit.display_text();
    assert!(text.contains("cpus = 8"));
    assert!(!text.contains("cpus = 1"));

    // And without the define, the other branch.
    let mut opts = Options::gcc_baseline(vec![]);
    opts.pp.builtins = Builtins::none();
    let mut sc = SuperC::new(opts, fs);
    let p = sc.process("m.c").expect("processes");
    assert!(p.unit.display_text().contains("cpus = 1"));
}

#[test]
fn typechef_baseline_agrees_on_results() {
    let mut fs = MemFs::new();
    fs.add("m.c", VARIABLE);
    let mut opts = Options::typechef_baseline();
    opts.pp.builtins = Builtins::none();
    let mut sc = SuperC::new(opts, fs);
    let p = sc.process("m.c").expect("processes");
    assert!(p.result.errors.is_empty());
    assert!(p.result.accepted.as_ref().expect("accepted").is_true());
    assert_eq!(p.result.ast.as_ref().expect("ast").choice_count(), 1);
}

#[test]
fn header_cache_shared_across_units() {
    let mut fs = MemFs::new();
    fs.add("include/shared.h", "#ifndef S_H\n#define S_H\ntypedef int s32;\n#endif\n");
    fs.add("a.c", "#include <shared.h>\ns32 a;\n");
    fs.add("b.c", "#include <shared.h>\ns32 b;\n");
    let opts = Options {
        pp: PpOptions {
            builtins: Builtins::none(),
            ..PpOptions::default()
        },
        ..Options::default()
    };
    let mut sc = SuperC::new(opts, fs);
    for f in ["a.c", "b.c"] {
        let p = sc.process(f).expect("processes");
        assert!(p.result.errors.is_empty(), "{f}");
    }
    assert_eq!(
        sc.preprocessor().include_counts().get("include/shared.h"),
        Some(&2)
    );
}

#[test]
fn timings_split_into_phases() {
    let mut sc = tool(&[("m.c", VARIABLE)]);
    let p = sc.process("m.c").expect("processes");
    let t = p.timings;
    // All phases measured; total is their sum.
    assert_eq!(t.total(), t.lexing + t.preprocessing + t.parsing);
    assert!(t.parsing > std::time::Duration::ZERO);
}
