//! The embeddable service layer: a long-running [`Driver`] that owns a
//! pooled [`CorpusRunner`], its shared preprocessing cache, and its unit
//! result memo **across requests** — the engine behind the
//! `superc-facade` crate, the C FFI (`superc-capi`), and the
//! `superc daemon` NDJSON server.
//!
//! A driver is a session, not a command: callers populate a virtual
//! file tree (or plug in a resolver callback that reaches disk, an
//! editor buffer, a build system…), then alternate **edit generations**
//! with parse/lint requests. Edits are batched: [`Driver::begin_generation`]
//! opens a batch, [`Driver::set_file`]/[`Driver::remove_file`] stage
//! changes, [`Driver::end_generation`] commits them. The next request
//! revalidates content hashes and replays every unit whose include
//! closure (positive *and* negative dependencies — see
//! `corpus::UnitMemo`) is untouched.
//!
//! Output byte-identity is part of the contract: rendered requests go
//! through [`crate::cli`], the same code the `superc` binary prints
//! with, so a daemon response can be diffed byte-for-byte against a
//! fresh one-shot CLI run over the same tree (verify.sh does exactly
//! that).
//!
//! Errors never panic across the service boundary: resolver failures
//! and misuse (parsing mid-generation, closing a generation that is not
//! open) land on the per-driver **last-error channel**, mirrored
//! through `superc_last_error` in the C API.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use superc_cpp::FileSystem;

use crate::analyze::LintOptions;
use crate::cli::{self, LintFormat, Rendered};
use crate::corpus::{Capture, CorpusOptions, CorpusReport, CorpusRunner, ProfilesReport};
use crate::{Options, Profile};

/// A pluggable include resolver: given an exact path, produce the file
/// contents (`Ok(None)` = absent; `Err` = resolver failure, recorded on
/// the driver's last-error channel and treated as absent).
pub type ResolverFn = Box<dyn Fn(&str) -> Result<Option<String>, String> + Send + Sync>;

/// The driver's virtual file tree: an in-memory overlay over an
/// optional resolver callback.
///
/// * Overlay entries win: [`DriverFs::set`] stages contents,
///   [`DriverFs::tombstone`] makes a path absent even if the resolver
///   would produce it (deleting a file the backing store still has).
/// * Paths not in the overlay fall through to the resolver.
///
/// This generalizes `SharedMemFs` (a resolver-less overlay) and
/// `DiskFs` (a disk-reading resolver with an empty overlay); pooled
/// workers share one `Arc<DriverFs>`, and the coherence contract is the
/// runner's — edits land only between batches, which the [`Driver`]'s
/// generation protocol enforces.
#[derive(Default)]
pub struct DriverFs {
    /// `Some(contents)` = staged file; `None` = tombstone.
    overlay: RwLock<HashMap<String, Option<Arc<str>>>>,
    resolver: RwLock<Option<ResolverFn>>,
    /// Most recent service-layer error (resolver failures, misuse).
    last_error: Mutex<Option<String>>,
}

impl DriverFs {
    /// An empty tree with no resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages (adds or replaces) a file in the overlay.
    pub fn set(&self, path: &str, contents: &str) {
        self.overlay
            .write()
            .expect("driver fs poisoned")
            .insert(path.to_string(), Some(Arc::from(contents)));
    }

    /// Tombstones a path: absent from now on, even if the resolver
    /// would produce it.
    pub fn tombstone(&self, path: &str) {
        self.overlay
            .write()
            .expect("driver fs poisoned")
            .insert(path.to_string(), None);
    }

    /// Installs (or clears) the fallback resolver.
    pub fn set_resolver(&self, resolver: Option<ResolverFn>) {
        *self.resolver.write().expect("driver fs poisoned") = resolver;
    }

    /// Records an error on the last-error channel (newest wins).
    pub fn record_error(&self, msg: String) {
        *self.last_error.lock().expect("driver fs poisoned") = Some(msg);
    }

    /// The most recent error, if any (does not clear it).
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().expect("driver fs poisoned").clone()
    }
}

impl FileSystem for DriverFs {
    fn read(&self, path: &str) -> Option<Arc<str>> {
        if let Some(entry) = self.overlay.read().expect("driver fs poisoned").get(path) {
            return entry.clone();
        }
        let resolver = self.resolver.read().expect("driver fs poisoned");
        match resolver.as_ref()?(path) {
            Ok(contents) => contents.map(Arc::from),
            Err(e) => {
                // A resolver failure must not take down the worker (or
                // the embedding process): record it and treat the path
                // as absent — the unit degrades to a missing-include
                // diagnostic instead of a panic.
                self.record_error(format!("resolver failed for {path}: {e}"));
                None
            }
        }
    }
}

/// Rolling driver statistics (the daemon's `stats` response).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Completed edit generations.
    pub generation: u64,
    /// Parse/lint batches served.
    pub batches: u64,
    /// Unit memo hits in the most recent batch.
    pub unit_memo_hits: u64,
    /// Unit memo misses in the most recent batch.
    pub unit_memo_misses: u64,
    /// Files content-hashed in the most recent batch.
    pub files_rehashed: u64,
}

/// A long-running parse service: one pooled worker runner, one shared
/// cache, one unit memo, many requests.
///
/// # Examples
///
/// ```
/// use superc::service::Driver;
/// use superc::Options;
///
/// let mut options = Options::default();
/// options.pp.include_paths = vec!["include".to_string()];
/// let mut driver = Driver::new(options, 2);
/// // A new driver opens generation 1 so the tree can be populated.
/// driver.set_file("a.c", "int a;\n").unwrap();
/// driver.end_generation().unwrap();
/// let report = driver.parse(&["a.c".to_string()]).unwrap();
/// assert_eq!(report.parsed_units(), 1);
/// ```
pub struct Driver {
    fs: Arc<DriverFs>,
    pool: CorpusRunner<DriverFs>,
    jobs: usize,
    /// Edit generation currently open (`None` = requests allowed).
    open: Option<u64>,
    stats: DriverStats,
}

impl Driver {
    /// Creates a driver with `jobs` pooled workers (`0` = available
    /// parallelism). The first edit generation is already open so the
    /// tree can be populated; call [`Driver::end_generation`] before
    /// the first request.
    pub fn new(options: Options, jobs: usize) -> Driver {
        let fs = Arc::new(DriverFs::new());
        let pool = CorpusRunner::new(&options, Arc::clone(&fs), jobs, false);
        Driver {
            fs,
            pool,
            jobs,
            open: Some(1),
            stats: DriverStats::default(),
        }
    }

    /// A driver whose resolver reads from disk under `root` (absolute
    /// paths pass through), mirroring the CLI's `DiskFs` semantics —
    /// the daemon's configuration.
    pub fn with_disk_root(options: Options, jobs: usize, root: &str) -> Driver {
        let driver = Driver::new(options, jobs);
        let root = std::path::PathBuf::from(root);
        driver.fs.set_resolver(Some(Box::new(move |path: &str| {
            let full = if std::path::Path::new(path).is_absolute() {
                std::path::PathBuf::from(path)
            } else {
                root.join(path)
            };
            Ok(std::fs::read_to_string(full).ok())
        })));
        driver
    }

    /// Installs a custom include resolver (editor buffers, archives, a
    /// build system's virtual layout…). The callback must be callable
    /// from any worker thread; failures are recorded on the last-error
    /// channel and the path reads as absent.
    pub fn set_resolver(&self, resolver: ResolverFn) {
        self.fs.set_resolver(Some(resolver));
    }

    /// Opens an edit generation. Requests are rejected until
    /// [`Driver::end_generation`] commits the batch.
    pub fn begin_generation(&mut self) -> Result<u64, String> {
        if let Some(g) = self.open {
            return Err(self.fail(format!("generation {g} is already open")));
        }
        let g = self.stats.generation + 1;
        self.open = Some(g);
        Ok(g)
    }

    /// Commits the open edit generation; the next request revalidates
    /// against the edited tree.
    pub fn end_generation(&mut self) -> Result<u64, String> {
        match self.open.take() {
            Some(g) => {
                self.stats.generation = g;
                Ok(g)
            }
            None => Err(self.fail("no generation is open".to_string())),
        }
    }

    /// Stages a file into the open generation.
    pub fn set_file(&mut self, path: &str, contents: &str) -> Result<(), String> {
        self.require_open("set_file")?;
        self.fs.set(path, contents);
        Ok(())
    }

    /// Removes a file in the open generation (a tombstone: the path is
    /// absent even if the resolver would produce it).
    pub fn remove_file(&mut self, path: &str) -> Result<(), String> {
        self.require_open("remove_file")?;
        self.fs.tombstone(path);
        Ok(())
    }

    /// Parses `units`, replaying memoized results where valid. The
    /// report is byte-equivalent (deterministic fields and behavior
    /// counters) to a cold run over the current tree.
    pub fn parse(&mut self, units: &[String]) -> Result<CorpusReport, String> {
        self.request("parse")?;
        let copts = self.copts(Capture::default(), None);
        let report = self.pool.run(units, &copts);
        self.note(
            report.unit_memo_hits,
            report.unit_memo_misses,
            report.files_rehashed,
        );
        Ok(report)
    }

    /// [`Driver::parse`], rendered to the exact bytes the `superc` CLI
    /// would print for the same run.
    pub fn parse_rendered(
        &mut self,
        units: &[String],
        show_ast: bool,
        show_stats: bool,
    ) -> Result<Rendered, String> {
        self.request("parse")?;
        let capture = Capture {
            ast: show_ast,
            ..Capture::default()
        };
        let copts = self.copts(capture, None);
        let report = self.pool.run(units, &copts);
        self.note(
            report.unit_memo_hits,
            report.unit_memo_misses,
            report.files_rehashed,
        );
        Ok(cli::render_corpus_report(&report, show_ast, show_stats))
    }

    /// Lints `units`, rendered to the exact bytes of
    /// `superc lint --format <format>` over the same tree. With
    /// `profiles`, the cross-profile grid runs and the merged records
    /// (including `portability-*` diffs) are rendered.
    pub fn lint_rendered(
        &mut self,
        units: &[String],
        format: LintFormat,
        profiles: &[Profile],
        opts: &LintOptions,
        show_stats: bool,
    ) -> Result<Rendered, String> {
        self.request("lint")?;
        let copts = self.copts(Capture::default(), Some(opts.clone()));
        if profiles.is_empty() {
            let report = self.pool.run(units, &copts);
            self.note(
                report.unit_memo_hits,
                report.unit_memo_misses,
                report.files_rehashed,
            );
            Ok(cli::render_lint_report(&report, format, show_stats))
        } else {
            let report: ProfilesReport = self.pool.run_profiles(units, profiles, &copts);
            let first = &report.runs[0];
            self.note(
                first.unit_memo_hits,
                first.unit_memo_misses,
                first.files_rehashed,
            );
            Ok(cli::render_lint_profiles(&report, format, opts, show_stats))
        }
    }

    /// The most recent error (resolver failure or misuse), if any.
    pub fn last_error(&self) -> Option<String> {
        self.fs.last_error()
    }

    /// Rolling statistics (generations, batches, last batch's memo
    /// hit/miss split).
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// The driver's file tree (for tests and embedders that want direct
    /// overlay access; the generation protocol is not enforced here).
    pub fn fs(&self) -> &Arc<DriverFs> {
        &self.fs
    }

    fn copts(&self, capture: Capture, lint: Option<LintOptions>) -> CorpusOptions {
        CorpusOptions {
            jobs: self.jobs,
            capture,
            lint,
            no_shared_cache: false,
            inject_panic: Vec::new(),
            portability: false,
            warm: true,
        }
    }

    fn note(&mut self, hits: u64, misses: u64, rehashed: u64) {
        self.stats.batches += 1;
        self.stats.unit_memo_hits = hits;
        self.stats.unit_memo_misses = misses;
        self.stats.files_rehashed = rehashed;
    }

    fn require_open(&self, what: &str) -> Result<(), String> {
        if self.open.is_none() {
            return Err(self.fail(format!(
                "{what} requires an open generation (call begin_generation first)"
            )));
        }
        Ok(())
    }

    fn request(&self, what: &str) -> Result<(), String> {
        if let Some(g) = self.open {
            return Err(self.fail(format!(
                "{what} rejected: generation {g} is open (call end_generation first)"
            )));
        }
        Ok(())
    }

    fn fail(&self, msg: String) -> String {
        self.fs.record_error(msg.clone());
        msg
    }
}

/// The `superc daemon` NDJSON protocol, one request line at a time —
/// kept here (not in the binary) so the protocol is testable
/// in-process. See the binary's docs for the request shapes.
pub mod daemon {
    use superc_util::json::Json;

    use super::{Driver, Rendered};
    use crate::analyze::render::json_str;
    use crate::analyze::LintOptions;
    use crate::cli::LintFormat;
    use crate::Profile;

    /// Renders one response line (no trailing newline).
    fn response(result: Result<Rendered, String>) -> String {
        match result {
            Ok(r) => format!(
                "{{\"ok\":true,\"stdout\":{},\"stderr\":{},\"failed\":{}}}",
                json_str(&r.stdout),
                json_str(&r.stderr),
                r.failed
            ),
            Err(e) => format!("{{\"ok\":false,\"error\":{}}}", json_str(&e)),
        }
    }

    /// Extracts the `"units"` array from a request.
    fn units_of(req: &Json) -> Result<Vec<String>, String> {
        let units = req
            .get("units")
            .and_then(Json::as_array)
            .ok_or("request needs a \"units\" array")?;
        units
            .iter()
            .map(|u| {
                u.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "units must be strings".to_string())
            })
            .collect()
    }

    /// Handles one request line; returns the response line and whether
    /// the daemon should shut down afterwards.
    pub fn handle_line(driver: &mut Driver, line: &str) -> (String, bool) {
        let req = match Json::parse(line) {
            Ok(r) => r,
            Err(e) => return (response(Err(format!("bad request: {e}"))), false),
        };
        match req.get("cmd").and_then(Json::as_str) {
            Some("parse") => {
                let result =
                    units_of(&req).and_then(|units| driver.parse_rendered(&units, false, false));
                (response(result), false)
            }
            Some("lint") => {
                let result = (|| {
                    let units = units_of(&req)?;
                    let format = match req.get("format").and_then(Json::as_str) {
                        None => LintFormat::Text,
                        Some(f) => {
                            LintFormat::parse(f).ok_or_else(|| format!("unknown format {f}"))?
                        }
                    };
                    let mut profiles = Vec::new();
                    if let Some(names) = req.get("profiles").and_then(Json::as_array) {
                        for n in names {
                            let n = n.as_str().ok_or("profiles must be strings")?;
                            profiles.push(
                                Profile::named(n).ok_or_else(|| format!("unknown profile {n}"))?,
                            );
                        }
                    }
                    driver.lint_rendered(&units, format, &profiles, &LintOptions::default(), false)
                })();
                (response(result), false)
            }
            Some("edit") => {
                let result = (|| {
                    let path = req
                        .get("path")
                        .and_then(Json::as_str)
                        .ok_or("edit needs a \"path\"")?;
                    driver.begin_generation()?;
                    if req.get("remove").and_then(Json::as_bool) == Some(true) {
                        driver.remove_file(path)?;
                    } else if let Some(contents) = req.get("contents").and_then(Json::as_str) {
                        driver.set_file(path, contents)?;
                    }
                    // No contents and no remove: a notify-only edit —
                    // the file changed on disk; the next batch's
                    // content-hash revalidation picks it up.
                    let generation = driver.end_generation()?;
                    Ok(Rendered {
                        stdout: format!("generation {generation}\n"),
                        ..Rendered::default()
                    })
                })();
                (response(result), false)
            }
            Some("stats") => {
                let s = driver.stats();
                let last_error = match driver.last_error() {
                    Some(e) => json_str(&e),
                    None => "null".to_string(),
                };
                (
                    format!(
                        "{{\"ok\":true,\"generation\":{},\"batches\":{},\
                         \"unit_memo_hits\":{},\"unit_memo_misses\":{},\
                         \"files_rehashed\":{},\"last_error\":{last_error}}}",
                        s.generation,
                        s.batches,
                        s.unit_memo_hits,
                        s.unit_memo_misses,
                        s.files_rehashed
                    ),
                    false,
                )
            }
            Some("shutdown") => ("{\"ok\":true,\"shutdown\":true}".to_string(), true),
            Some(other) => (response(Err(format!("unknown cmd {other}"))), false),
            None => (response(Err("request needs a \"cmd\"".to_string())), false),
        }
    }
}
