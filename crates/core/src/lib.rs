//! SuperC: configuration-preserving preprocessing and Fork-Merge LR
//! parsing for all of C.
//!
//! This is the top-level crate of a from-scratch reproduction of
//! *SuperC: Parsing All of C by Taming the Preprocessor* (Gazzillo &
//! Grimm, PLDI 2012). Where an ordinary C front end picks one
//! configuration, SuperC preserves them all: the preprocessor resolves
//! includes and macros but leaves static conditionals intact, and the
//! parser forks and merges LR subparsers around them, producing one
//! well-formed AST with *static choice nodes*.
//!
//! The heavy lifting lives in the component crates, all re-exported here:
//!
//! | crate | role |
//! |-------|------|
//! | [`bdd`] / [`cond`] | presence conditions (BDD and SAT backends) |
//! | [`lexer`] | C tokens |
//! | [`cpp`] | configuration-preserving preprocessor (§3) |
//! | [`grammar`] | LALR table generation |
//! | [`fmlr`] | Fork-Merge LR engine with all optimizations (§4) |
//! | [`csyntax`] | C grammar + typedef context plug-in (§5) |
//!
//! # Examples
//!
//! ```
//! use superc::{MemFs, Options, SuperC};
//!
//! let fs = MemFs::new().file(
//!     "hello.c",
//!     "#ifdef CONFIG_VERBOSE\nint log_level = 2;\n#else\nint log_level = 0;\n#endif\n",
//! );
//! let mut superc = SuperC::new(Options::default(), fs);
//! let processed = superc.process("hello.c")?;
//! let ast = processed.result.ast.as_ref().expect("parsed");
//! assert_eq!(ast.choice_count(), 1); // both configurations, one AST
//! # Ok::<(), superc::PpError>(())
//! ```

pub mod cli;
pub mod corpus;
pub mod report;
pub mod service;

pub use superc_analyze as analyze;
pub use superc_bdd as bdd;
pub use superc_cond as cond;
pub use superc_cpp as cpp;
pub use superc_csyntax as csyntax;
pub use superc_fmlr as fmlr;
pub use superc_grammar as grammar;
pub use superc_lexer as lexer;

pub use superc_cond::{Cond, CondBackend, CondCtx};
pub use superc_cpp::{
    Builtins, CompilationUnit, CondSite, DiskFs, FileSystem, MemFs, PpError, PpOptions, PpStats,
    Preprocessor, Profile, SharedCache, SharedMemFs, UndefIdentPolicy,
};
pub use superc_csyntax::{
    c_artifacts, c_grammar, classify, declared_names, function_definitions, parse_unit,
    unparse_config, CArtifacts, CContext, CParser,
};
pub use superc_fmlr::{
    BudgetKind, BudgetTrip, Forest, ParseBudgets, ParseOutcome, ParseResult, ParseStats, Parser,
    ParserConfig, SemVal,
};

pub use corpus::{
    process_corpus, process_corpus_profiles, CorpusOptions, CorpusReport, CorpusRunner,
    ProfilesReport, UnitFailure, UnitReport,
};

use std::time::{Duration, Instant};

/// Wall-clock cost of each pipeline phase for one compilation unit —
/// the measurement behind the paper's Figure 10.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Lexing (inside preprocessing; first lex of each file).
    pub lexing: Duration,
    /// Preprocessing excluding lexing.
    pub preprocessing: Duration,
    /// Forest construction + FMLR parsing.
    pub parsing: Duration,
}

impl PhaseTimings {
    /// Total latency.
    pub fn total(&self) -> Duration {
        self.lexing + self.preprocessing + self.parsing
    }
}

/// One fully processed compilation unit.
pub struct ProcessedUnit {
    /// Preprocessor output (all configurations).
    pub unit: CompilationUnit,
    /// Parse result: AST with choice nodes, errors, parser stats.
    pub result: ParseResult,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Source bytes of the main file plus headers (with repeats).
    pub bytes: u64,
}

/// Per-unit resource budgets, threaded from the CLI through [`SuperC`]
/// into the preprocessor (include depth, hoist cap) and the FMLR engine
/// ([`ParseBudgets`]). A zero field leaves that resource ungoverned
/// (include depth and hoist cap fall back to [`PpOptions`] defaults).
///
/// Exhaustion degrades instead of aborting: the engine sheds the
/// affected subparsers, records condition-scoped [`BudgetTrip`]s, and
/// the unit still yields an AST for the surviving configurations with a
/// [`ParseOutcome::Partial`] result. See `crates/fmlr` for the
/// per-budget determinism notes (`max_cond_nodes`/`max_millis` are
/// schedule-dependent safety nets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budgets {
    /// Live-subparser ceiling (`--max-subparsers`).
    pub max_subparsers: usize,
    /// Total fork budget per parse (`--max-forks`).
    pub max_forks: u64,
    /// Main-loop step budget per parse (`--parse-budget`).
    pub max_steps: u64,
    /// BDD-node growth ceiling per parse (`--max-cond-nodes`).
    pub max_cond_nodes: usize,
    /// Wall-clock budget per parse in milliseconds (`--parse-time-ms`).
    pub max_millis: u64,
    /// Include-nesting ceiling (`--include-depth`); overflow emits an
    /// error diagnostic and skips the include rather than recursing.
    pub max_include_depth: usize,
    /// Ceiling on hoisted branches per preprocessor operation
    /// (`--hoist-cap`); overflow degrades the operation with a warning.
    pub hoist_cap: usize,
}

impl Budgets {
    /// No limits (the default): every resource ungoverned.
    pub fn unlimited() -> Self {
        Budgets::default()
    }
}

/// End-to-end configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Presence-condition representation: BDDs (SuperC) or formula+SAT
    /// (the TypeChef-style baseline of Figure 9).
    pub backend: CondBackend,
    /// Parser optimization level / MAPR baseline.
    pub parser: ParserConfig,
    /// Preprocessor options (include paths, defines, built-ins,
    /// single-configuration mode).
    pub pp: PpOptions,
    /// Per-unit resource budgets; non-zero fields override the matching
    /// [`PpOptions`]/[`ParserConfig`] knobs in [`SuperC::new`].
    pub budgets: Budgets,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            backend: CondBackend::Bdd,
            parser: ParserConfig::full(),
            pp: PpOptions::default(),
            budgets: Budgets::unlimited(),
        }
    }
}

impl Options {
    /// The single-configuration ("gcc") baseline: conditionals resolved
    /// against `defines`, plain LR parsing.
    pub fn gcc_baseline(defines: Vec<(String, String)>) -> Self {
        Options {
            pp: PpOptions {
                defines,
                single_config: true,
                ..PpOptions::default()
            },
            ..Options::default()
        }
    }

    /// The TypeChef-style baseline: identical pipeline, SAT-backed
    /// presence conditions.
    pub fn typechef_baseline() -> Self {
        Options {
            backend: CondBackend::Sat,
            ..Options::default()
        }
    }
}

/// The SuperC tool: preprocess + parse compilation units over a file
/// system, with shared header caches across units.
///
/// The parser is a persistent [`CParser`] seeded from the process-wide
/// shared artifacts ([`c_artifacts`]): grammar tables, classification
/// tables, and context tables are resolved once at construction, so
/// [`SuperC::process`] pays no per-unit parser setup.
///
/// See the crate docs for an example.
pub struct SuperC<F: FileSystem> {
    ctx: CondCtx,
    pp: Preprocessor<F>,
    parser: CParser,
}

impl<F: FileSystem> SuperC<F> {
    /// Creates the tool over `fs`, threading any non-zero [`Budgets`]
    /// fields into the preprocessor and parser configuration.
    pub fn new(mut options: Options, fs: F) -> Self {
        let b = options.budgets;
        let pb = &mut options.parser.budgets;
        if b.max_subparsers > 0 {
            pb.max_live = b.max_subparsers;
        }
        if b.max_forks > 0 {
            pb.max_forks = b.max_forks;
        }
        if b.max_steps > 0 {
            pb.max_steps = b.max_steps;
        }
        if b.max_cond_nodes > 0 {
            pb.max_cond_nodes = b.max_cond_nodes;
        }
        if b.max_millis > 0 {
            pb.max_millis = b.max_millis;
        }
        if b.max_include_depth > 0 {
            options.pp.max_include_depth = b.max_include_depth;
        }
        if b.hoist_cap > 0 {
            options.pp.hoist_cap = b.hoist_cap;
        }
        let ctx = CondCtx::new(options.backend);
        let pp = Preprocessor::new(ctx.clone(), options.pp, fs);
        SuperC {
            ctx,
            pp,
            parser: CParser::new(options.parser),
        }
    }

    /// The condition context (for building configurations to query).
    pub fn ctx(&self) -> &CondCtx {
        &self.ctx
    }

    /// The underlying preprocessor (for include counts etc.).
    pub fn preprocessor(&self) -> &Preprocessor<F> {
        &self.pp
    }

    /// Attaches a process-wide shared preprocessing cache (the L2 behind
    /// the per-tool header cache). Intended for corpus drivers that run
    /// many `SuperC` instances over one immutable file tree; see
    /// [`corpus::process_corpus`].
    pub fn set_shared_cache(&mut self, cache: std::sync::Arc<SharedCache>) {
        self.pp.set_shared_cache(cache);
    }

    /// Drops the preprocessor's per-tool (L1) header cache. Pooled
    /// corpus workers without a shared L2 call this at batch boundaries:
    /// with no generation protocol to revalidate against, a stale L1
    /// entry would outlive an edit to the file tree.
    pub fn invalidate_file_cache(&mut self) {
        self.pp.invalidate_file_cache();
    }

    /// Processes one compilation unit end to end.
    ///
    /// # Errors
    ///
    /// Fails on preprocessor-fatal conditions (missing file, lexical
    /// error, unbalanced conditionals, top-level `#error`). Parse errors
    /// are *not* fatal: they are per-configuration and reported in
    /// [`ParseResult::errors`].
    pub fn process(&mut self, path: &str) -> Result<ProcessedUnit, PpError> {
        let pp_start = Instant::now();
        let unit = self.pp.preprocess(path)?;
        let pp_total = pp_start.elapsed();
        let lexing = Duration::from_nanos(unit.stats.lex_nanos);

        let parse_start = Instant::now();
        let result = self.parser.parse(&unit, &self.ctx);
        let parsing = parse_start.elapsed();

        Ok(ProcessedUnit {
            bytes: unit.stats.bytes_processed,
            timings: PhaseTimings {
                lexing,
                preprocessing: pp_total.saturating_sub(lexing),
                parsing,
            },
            unit,
            result,
        })
    }

    /// Runs the variability lints over a just-processed unit.
    ///
    /// Must be called before the next [`SuperC::process`] call: the
    /// conflict-recording macro table is per-unit state on the
    /// preprocessor and resets when the next unit starts.
    pub fn lint(
        &self,
        processed: &ProcessedUnit,
        opts: &analyze::LintOptions,
    ) -> Vec<analyze::Diagnostic> {
        let input = analyze::AnalysisInput {
            unit: &processed.unit,
            result: Some(&processed.result),
            table: self.pp.table(),
            ctx: &self.ctx,
        };
        analyze::analyze(&input, opts, &|id| {
            self.pp.file_name(id).map(str::to_string)
        })
    }

    /// Builds a just-processed unit's cross-profile **portability
    /// slice** (see [`analyze::portability`]): the plain-data rows the
    /// cross-profile corpus mode diffs across [`Profile`]s. Same
    /// call-before-next-unit constraint as [`SuperC::lint`].
    pub fn portability_slice(
        &self,
        processed: &ProcessedUnit,
    ) -> Vec<analyze::portability::PortEntry> {
        let input = analyze::AnalysisInput {
            unit: &processed.unit,
            result: Some(&processed.result),
            table: self.pp.table(),
            ctx: &self.ctx,
        };
        analyze::portability::portability_slice(&input, &|id| {
            self.pp.file_name(id).map(str::to_string)
        })
    }
}

#[cfg(test)]
mod tests;
