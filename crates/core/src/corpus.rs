//! Parallel corpus driver: parse many compilation units across worker
//! threads, deterministically.
//!
//! # Threading model
//!
//! The corpus is scheduled as a **chunked queue**: one shared
//! [`AtomicUsize`] cursor over the unit list, each worker claiming the
//! next run of unclaimed indices (see `chunk_size`) until the list is
//! exhausted. Chunking amortizes the cursor traffic over several units;
//! the chunks are small relative to the corpus, so slow units still
//! never stall the queue behind a fixed pre-partition, and no unit is
//! processed twice.
//!
//! What is *shared* read-only across workers — the immutable artifact
//! layer, built once per process:
//!
//! - the file tree (`F: FileSystem + Sync`, borrowed as `&F` by
//!   [`process_corpus`]'s scoped workers, or held as `Arc<F>` by a
//!   [`CorpusRunner`]'s pooled workers — file contents are `Arc<str>`
//!   handed out by reference-count bump);
//! - the parse artifacts (`superc_csyntax::c_artifacts` is a `OnceLock`
//!   static): the grammar's LALR action/goto tables behind
//!   `Arc<ParseTables>`, the keyword/punctuator classification seed,
//!   and the context plug-in's production tables;
//! - the [`Options`] (plain data, cloned once per worker);
//! - the **shared preprocessing cache** (`superc_cpp::SharedCache`,
//!   unless [`CorpusOptions::no_shared_cache`]): a map from a file's
//!   **content hash** to its frozen token stream, directive tree, and
//!   detected include guard, so each distinct file content is lexed
//!   once per *process* instead of once per *worker*. Content keying
//!   is also the invalidation story: an edited file hashes to a new
//!   key and misses naturally, which is what lets a pooled runner
//!   serve **warm re-runs** over an edited tree (see
//!   [`CorpusOptions::warm`] and the unit result memo below).
//!
//! What is *per-worker*, created inside each thread and never shared —
//! the mutable layer: the [`CondCtx`] (BDD manager or SAT state), the
//! symbol interner, the preprocessor's macro table and L1 header cache,
//! the conditional-expression memo, the reusable `CParser` engine state,
//! and all statistics. Workers communicate only through the cursor, the
//! shared cache's sharded `RwLock`s (off the hot path: one probe per
//! `#include`), and their return values.
//!
//! [`process_corpus`] spins workers up and down per call — simple, and
//! fine for one-shot runs. A [`CorpusRunner`] instead keeps a **pool**
//! of workers alive across batches: each worker's tool (L1 header
//! cache, BDD manager, interner, parser engine) stays warm from batch
//! to batch, so repeated runs over the same tree — benchmark reps, a
//! watch loop, a test matrix — skip the per-batch spin-up entirely.
//!
//! # Incremental warm re-runs
//!
//! A pooled runner may legitimately see the file tree **edited between
//! batches** (never during one). Coherence is generation-based: every
//! batch starts a new shared-cache generation, so each worker's L1
//! entries and the shared path→hash memo revalidate against current
//! file bytes on first touch, and unchanged files keep their artifacts
//! while edited ones miss into a fresh lex.
//!
//! On top of that, [`CorpusOptions::warm`] enables the pool's **unit
//! result memo**: each completed unit is stored under its path, an
//! options/profile signature, and its include-closure dependency
//! fingerprint (the sorted `(path, content hash)` set the preprocessor
//! observed). A later warm batch revalidates the fingerprint — pure
//! hash-memo lookups, no lexing — and on a match replays the cached
//! [`UnitReport`] without scheduling any preprocessing, parsing, or
//! linting. Replayed reports are byte-identical to what a cold run
//! over the same tree would produce (that is gated in `tests/warm.rs`,
//! `bench_snapshot`, and verify.sh); only the schedule-dependent cache
//! gauges differ, and those are excluded from every determinism
//! surface. Units are **not** memoized when they tripped a resource
//! budget, failed, or panicked, and the memo is disabled entirely
//! without the shared cache (`no_shared_cache` pools instead drop
//! worker L1 caches at each batch boundary to stay edit-correct).
//!
//! # Determinism
//!
//! Each unit's result depends only on that unit's input: the FMLR engine
//! orders work by `(position, rank, seq)` — never by allocation order or
//! condition-handle identity — and semantic condition queries are
//! pure. Per-unit reports are keyed by input index and reassembled in
//! input order after the join, and every merged counter is a sum or max
//! (commutative + associative), so [`CorpusReport::units`] and the merged
//! preprocessor/parser counters are **byte-identical for any worker
//! count or schedule**. The documented exceptions are wall-clock fields
//! (`PpStats::lex_nanos`, phase timings), condition *display strings*,
//! and BDD/interner gauge totals — the latter two depend on the order a
//! worker's manager first met each variable; determinism tests therefore
//! compare configuration-restricted unparses and behavior counters, not
//! rendered conditions. `tests/parallel.rs` proves this for
//! `--jobs 1/2/8`.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::time::{Duration, Instant};

use superc_analyze::portability::{diff_profiles, sort_records, PortEntry, PortKind};
use superc_bdd::BddStats;
use superc_cond::{CondBackend, CondCtx, CondStats};
use superc_cpp::{FileSystem, PpStats, Profile, Severity, SharedCache};
use superc_csyntax::unparse_config;
use superc_fmlr::{BudgetTrip, ParseOutcome, ParseStats};

use crate::{Options, SuperC};

/// How many worker threads to use and what to capture per unit.
#[derive(Clone, Debug, Default)]
pub struct CorpusOptions {
    /// Worker threads; `0` means [`default_jobs`] (available parallelism).
    pub jobs: usize,
    /// Optional per-unit text captures (off by default — they cost
    /// allocation proportional to the corpus).
    pub capture: Capture,
    /// Run the variability lints over every unit (`None` = off). Lint
    /// records render conditions canonically, so they *are* part of the
    /// determinism contract, unlike raw condition display strings.
    pub lint: Option<superc_analyze::LintOptions>,
    /// Disable the process-wide shared preprocessing cache (the L2 of the
    /// two-level header cache; see `superc_cpp::SharedCache`). The cache
    /// only changes *which worker pays* the lexing cost for a shared
    /// header, never the output, so this exists as an escape hatch and a
    /// baseline for benchmarking, not a correctness knob.
    pub no_shared_cache: bool,
    /// Test hook for the per-unit panic firewall: units whose path is
    /// listed here panic inside the worker instead of being processed,
    /// exercising the `catch_unwind` + tool-rebuild recovery path that
    /// real poisoned units would take.
    pub inject_panic: Vec<String>,
    /// Capture each unit's **portability slice** — the plain-data
    /// [`PortEntry`] rows the cross-profile differ aligns (see
    /// `superc_analyze::portability`). [`process_corpus_profiles`]
    /// forces this on; it is available standalone for tests.
    pub portability: bool,
    /// Warm re-run mode (pooled runners only): consult the unit result
    /// memo before scheduling a worker, so units whose include-closure
    /// fingerprint and options signature match a previous batch replay
    /// their cached [`UnitReport`] without any preprocessing, parsing,
    /// or linting. Output is byte-identical to a cold run over the same
    /// tree. Ignored by [`process_corpus`] (its memo would never carry
    /// across calls) and a no-op when the shared cache is disabled.
    pub warm: bool,
}

/// Per-unit text captures for testing and inspection.
#[derive(Clone, Debug, Default)]
pub struct Capture {
    /// Capture the preprocessed unit rendered as `#if`-annotated text.
    ///
    /// Note: conditional rendering depends on per-worker variable order,
    /// so this text is *not* part of the determinism contract.
    pub preprocessed: bool,
    /// Capture the AST (with static choice nodes) rendered as text.
    /// Schedule-dependent for the same reason as `preprocessed`.
    pub ast: bool,
    /// For each listed configuration (a set of enabled `defined(...)`
    /// variables), capture the choice-node AST restricted to it via
    /// [`unparse_config`]. These strings *are* deterministic.
    pub unparse_configs: Vec<Vec<String>>,
}

/// The worker count used when [`CorpusOptions::jobs`] is `0`.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A structured record of a unit the pipeline could not process: either
/// a fatal preprocessor error or a panic caught by the per-unit firewall.
/// One poisoned unit becomes one of these rows instead of taking down a
/// worker (and with it the whole corpus run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitFailure {
    /// Pipeline stage that failed: `"preprocess"` for fatal preprocessor
    /// errors, `"panic"` for the firewall.
    pub stage: String,
    /// The error or panic message (deterministic for a given input).
    pub message: String,
}

/// Renders a budget trip for a [`UnitReport`], with the presence
/// condition in *canonical* form so the string is byte-identical across
/// worker counts and schedules (raw condition display is not).
pub fn render_trip(trip: &BudgetTrip) -> String {
    format!(
        "{} under {}",
        trip.describe(),
        superc_analyze::render::canonical(&trip.cond)
    )
}

/// The outcome of one compilation unit, reduced to thread-portable data
/// (the `Rc`-based AST and conditions stay inside the worker).
#[derive(Clone, Debug)]
pub struct UnitReport {
    /// The unit's path, as given.
    pub path: String,
    /// Source bytes lexed (main file plus headers, with repeats).
    pub bytes: u64,
    /// Preprocessor counters.
    pub pp: PpStats,
    /// Parser counters.
    pub parse: ParseStats,
    /// Per-phase wall-clock nanoseconds: lexing, preprocessing, parsing.
    pub phase_nanos: [u64; 3],
    /// Did some configuration accept?
    pub parsed: bool,
    /// Did a resource budget trip ([`ParseOutcome::Partial`])? The
    /// degraded configurations are in `degradations`.
    pub partial: bool,
    /// Rendered budget trips (canonical presence conditions; see
    /// [`render_trip`]), deterministic across schedules for the
    /// deterministic budgets.
    pub degradations: Vec<String>,
    /// Static choice nodes in the AST.
    pub choice_nodes: usize,
    /// Rendered per-configuration parse errors.
    pub errors: Vec<String>,
    /// Rendered preprocessor diagnostics of `Error` severity.
    pub diagnostics: Vec<String>,
    /// Lint findings, when [`CorpusOptions::lint`] is set (sorted and
    /// deterministic; see `superc_analyze`).
    pub lints: Vec<superc_analyze::Record>,
    /// The unit's portability slice, when [`CorpusOptions::portability`]
    /// is set (plain data, canonical condition strings — deterministic).
    pub portability: Vec<PortEntry>,
    /// Fatal preprocessor failure, if the unit never reached the parser.
    pub fatal: Option<String>,
    /// Structured failure row (fatal preprocessor error or caught
    /// panic); `Some` exactly when the unit produced no parse at all.
    pub failure: Option<UnitFailure>,
    /// `#if`-annotated preprocessed text, when captured.
    pub preprocessed: Option<String>,
    /// Rendered AST, when captured (and the unit parsed).
    pub ast_text: Option<String>,
    /// AST restricted to each requested configuration, when captured
    /// (aligned with [`Capture::unparse_configs`]; empty string when the
    /// unit has no AST).
    pub unparses: Vec<String>,
    /// This report was replayed from the unit result memo (warm re-run)
    /// rather than recomputed. Outside the determinism contract — a
    /// warm run and a cold run differ only here and in the cache
    /// gauges.
    pub memo_hit: bool,
}

/// Corpus-level rollup: per-unit reports in **input order** plus merged
/// counters.
#[derive(Clone, Debug)]
pub struct CorpusReport {
    /// One report per input unit, in input order.
    pub units: Vec<UnitReport>,
    /// Preprocessor counters summed over units.
    pub pp: PpStats,
    /// Parser counters summed over units.
    pub parse: ParseStats,
    /// Condition-context counters summed over workers.
    pub cond: CondStats,
    /// BDD counters summed over workers (`None` under the SAT backend).
    pub bdd: Option<BddStats>,
    /// Worker threads actually used.
    pub workers: usize,
    /// End-to-end wall clock for the whole corpus.
    pub wall: Duration,
    /// Units replayed from the unit result memo (warm re-runs only).
    /// Like the shared-cache gauges, this measures work *saved* and is
    /// excluded from the determinism surfaces.
    pub unit_memo_hits: u64,
    /// Units that consulted the memo and had to be recomputed (edited
    /// closure, options change, or first sight).
    pub unit_memo_misses: u64,
    /// Files whose bytes were read and content-hashed during this run
    /// (hash-memo misses; at most once per file per batch).
    pub files_rehashed: u64,
}

impl CorpusReport {
    /// Units that produced an AST.
    pub fn parsed_units(&self) -> usize {
        self.units.iter().filter(|u| u.parsed).count()
    }

    /// Units that failed fatally in the preprocessor.
    pub fn fatal_units(&self) -> usize {
        self.units.iter().filter(|u| u.fatal.is_some()).count()
    }

    /// Units degraded by a resource budget ([`ParseOutcome::Partial`]).
    pub fn partial_units(&self) -> usize {
        self.units.iter().filter(|u| u.partial).count()
    }

    /// Units with a structured [`UnitFailure`] row (fatal error or
    /// firewalled panic).
    pub fn failed_units(&self) -> usize {
        self.units.iter().filter(|u| u.failure.is_some()).count()
    }

    /// Total lint findings across units (0 when linting was off).
    pub fn lint_count(&self) -> usize {
        self.units.iter().map(|u| u.lints.len()).sum()
    }

    /// Lint findings at `deny` level across units.
    pub fn lint_deny_count(&self) -> usize {
        self.units
            .iter()
            .flat_map(|u| &u.lints)
            .filter(|r| r.level == "deny")
            .count()
    }

    /// Corpus throughput in output tokens per wall-clock second.
    pub fn tokens_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.pp.output_tokens as f64 / secs
        }
    }

    /// Canonical rendering of the schedule-independent behavior counters.
    ///
    /// Two runs of the same corpus — any `jobs`, any interleaving — must
    /// produce byte-identical strings; `bench_snapshot` and
    /// `tests/parallel.rs` assert exactly that. Schedule-*dependent*
    /// gauges (BDD nodes, interner sizes, wall clock) are deliberately
    /// absent.
    pub fn behavior_counters(&self) -> String {
        format!(
            "units={} parsed={} fatal={} partial={} failed={} \
             output_tokens={} \
             output_conditionals={} conditionals_hoisted={} shifts={} \
             reduces={} forks={} merges={} choice_nodes={} \
             reclassify_forks={} budget_trips={} budget_killed={} \
             lints={}",
            self.units.len(),
            self.parsed_units(),
            self.fatal_units(),
            self.partial_units(),
            self.failed_units(),
            self.pp.output_tokens,
            self.pp.output_conditionals,
            self.pp.conditionals_hoisted,
            self.parse.shifts,
            self.parse.reduces,
            self.parse.forks,
            self.parse.merges,
            self.parse.choice_nodes,
            self.parse.reclassify_forks,
            self.parse.budget_trips,
            self.parse.budget_killed,
            self.lint_count(),
        )
    }
}

/// Parses every unit of a corpus, fanning out over worker threads.
///
/// `units` are paths into `fs`. The report's `units` come back in input
/// order regardless of scheduling; see the module docs for the
/// determinism contract. `jobs = 0` uses [`default_jobs`], and the
/// worker count is additionally capped at the unit count.
///
/// # Examples
///
/// ```
/// use superc::corpus::{process_corpus, CorpusOptions};
/// use superc::{MemFs, Options};
///
/// let fs = MemFs::new()
///     .file("a.c", "int a;\n")
///     .file("b.c", "#ifdef CONFIG_B\nint b;\n#endif\n");
/// let units = ["a.c".to_string(), "b.c".to_string()];
/// let report = process_corpus(&fs, &units, &Options::default(), &CorpusOptions::default());
/// assert_eq!(report.parsed_units(), 2);
/// assert_eq!(report.units[1].path, "b.c"); // input order, not finish order
/// ```
pub fn process_corpus<F: FileSystem + Sync>(
    fs: &F,
    units: &[String],
    options: &Options,
    copts: &CorpusOptions,
) -> CorpusReport {
    let requested = if copts.jobs == 0 {
        default_jobs()
    } else {
        copts.jobs
    };
    let workers = requested.min(units.len()).max(1);

    // One shared artifact cache for the whole corpus run; every worker
    // gets a clone of the same `Arc`. The cache is content-hash keyed
    // (see `superc_cpp::sharedcache` for the invalidation protocol),
    // but a one-shot run never leaves its first generation: files only
    // change at batch boundaries, and this driver has exactly one batch.
    let shared: Option<Arc<SharedCache>> =
        (!copts.no_shared_cache).then(|| Arc::new(SharedCache::new()));

    let start = Instant::now();
    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(units.len(), workers);
    let outputs: Vec<WorkerOutput> = if workers == 1 {
        vec![worker_loop(
            fs,
            units,
            options,
            copts,
            shared.clone(),
            &cursor,
            chunk,
        )]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let shared = shared.clone();
                    s.spawn(|| worker_loop(fs, units, options, copts, shared, &cursor, chunk))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("corpus worker panicked"))
                .collect()
        })
    };
    let wall = start.elapsed();
    let mut report = assemble(units.len(), outputs, workers, wall);
    if let Some(s) = &shared {
        report.files_rehashed = s.rehashes();
    }
    report
}

/// Cursor claim granularity: a worker claims this many consecutive
/// units per atomic increment. One claim per unit is wasted traffic on
/// big corpora; claims that are too coarse re-create the pre-partition
/// stall this queue exists to avoid. A target of ~8 claims per worker
/// keeps the tail balanced, and a single worker just takes the whole
/// list in one claim.
fn chunk_size(n_units: usize, workers: usize) -> usize {
    if workers <= 1 {
        n_units.max(1)
    } else {
        (n_units / (workers * 8)).clamp(1, 32)
    }
}

/// The process-wide unit result memo behind warm re-runs: completed
/// [`UnitReport`]s keyed by `(unit path, options signature)`, each
/// guarded by the include-closure dependency fingerprint recorded when
/// it was produced. A lookup revalidates every dependency's current
/// content hash (cheap: per-generation hash-memo probes) and replays
/// the stored report only on a full match, so any edit inside the
/// unit's closure — or a change to anything the signature covers —
/// falls through to a real run. Entries overwrite on re-store, so an
/// edited unit's fresh result replaces its stale one.
///
/// Fingerprints carry both halves of include resolution: the files
/// that **were** read (path, content hash) and the probe paths that
/// **failed** (`Preprocessor::unit_neg_deps`). A lookup misses when
/// any positive dependency's hash changed *or* any formerly-absent
/// probe path now exists — creating a file that shadows a header
/// earlier on the include path invalidates exactly the units whose
/// resolution walked past that path.
struct UnitMemo {
    entries: std::sync::RwLock<superc_util::FastMap<(String, u64), Arc<MemoEntry>>>,
}

struct MemoEntry {
    /// Sorted `(path, content hash)` include closure at store time.
    deps: Vec<(String, u64)>,
    /// Sorted failed include-resolution probe paths at store time: the
    /// entry is only valid while every one of them stays absent.
    neg_deps: Vec<String>,
    report: UnitReport,
}

impl UnitMemo {
    fn new() -> UnitMemo {
        UnitMemo {
            entries: std::sync::RwLock::new(superc_util::FastMap::default()),
        }
    }

    /// Replays the stored report for `(path, sig)` if every recorded
    /// dependency still has its recorded content hash and every
    /// recorded failed probe path is still absent.
    fn lookup(
        &self,
        path: &str,
        sig: u64,
        dep_hash: &dyn Fn(&str) -> Option<u64>,
    ) -> Option<UnitReport> {
        let entry = self
            .entries
            .read()
            .expect("unit memo poisoned")
            .get(&(path.to_string(), sig))
            .cloned()?;
        for (p, h) in &entry.deps {
            if dep_hash(p) != Some(*h) {
                return None;
            }
        }
        for p in &entry.neg_deps {
            // A formerly-failed probe that now resolves means include
            // resolution would take a different path (a shadowing
            // header appeared): the stored report is stale.
            if dep_hash(p).is_some() {
                return None;
            }
        }
        let mut report = entry.report.clone();
        report.memo_hit = true;
        Some(report)
    }

    /// Stores a completed unit. Bypassed for units with no recorded
    /// fingerprint (no shared cache), budget-degraded units (wall-clock
    /// budgets make their outcome schedule-dependent), and failed or
    /// panicked units — those recompute every time.
    fn store(
        &self,
        path: &str,
        sig: u64,
        deps: Vec<(String, u64)>,
        neg_deps: Vec<String>,
        report: &UnitReport,
    ) {
        if deps.is_empty()
            || report.partial
            || report.parse.budget_trips > 0
            || report.failure.is_some()
        {
            return;
        }
        self.entries.write().expect("unit memo poisoned").insert(
            (path.to_string(), sig),
            Arc::new(MemoEntry {
                deps,
                neg_deps,
                report: report.clone(),
            }),
        );
    }
}

/// The options/profile signature a memo entry is stored under: an
/// FxHash over the debug rendering of everything that can change a
/// unit's output — backend, parser config (fast path, budgets), all
/// preprocessor options (profile, defines, include paths, fused
/// lexing, single-config mode), resource budgets, and the per-batch
/// capture/lint/portability/panic-injection options. Two batches whose
/// signatures match would produce byte-identical reports for an
/// unchanged unit.
fn options_sig(options: &Options, copts: &CorpusOptions) -> u64 {
    use std::hash::BuildHasher;
    let desc = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        options.backend,
        options.parser,
        options.pp,
        options.budgets,
        copts.capture,
        copts.lint,
        copts.portability,
        copts.inject_panic,
    );
    superc_util::FxBuildHasher::default().hash_one(desc.as_bytes())
}

/// The shared claim-and-process loop behind both drivers: pull chunks
/// off `cursor` until the list is exhausted, firewalling each unit.
///
/// With `memo` set (a pooled warm re-run), each unit first consults
/// the result memo — a hit replays the cached report and skips the
/// pipeline entirely — and each recomputed unit is stored back with
/// the include-closure fingerprint the preprocessor just observed.
///
/// On a caught panic the tool may hold arbitrary mid-unit state, so it
/// is rebuilt via `make_tool` — only the **mutable layer** (BDD
/// manager, interner, macro table, L1 cache, engine state); the shared
/// artifacts and the L2 cache survive untouched.
#[allow(clippy::too_many_arguments)]
fn claim_loop<F: FileSystem>(
    tool: &mut SuperC<F>,
    make_tool: &dyn Fn() -> SuperC<F>,
    units: &[String],
    copts: &CorpusOptions,
    memo: Option<(&UnitMemo, u64)>,
    cursor: &AtomicUsize,
    chunk: usize,
    out: &mut Vec<(usize, UnitReport)>,
    memo_hits: &mut u64,
    memo_misses: &mut u64,
) {
    loop {
        let base = cursor.fetch_add(chunk, Ordering::Relaxed);
        if base >= units.len() {
            break;
        }
        let end = (base + chunk).min(units.len());
        for (i, path) in units[base..end].iter().enumerate() {
            let i = base + i;
            if let Some((memo, sig)) = memo {
                if let Some(hit) = memo.lookup(path, sig, &|p| tool.preprocessor().dep_hash(p)) {
                    *memo_hits += 1;
                    out.push((i, hit));
                    continue;
                }
                *memo_misses += 1;
            }
            // Panic firewall: a poisoned unit becomes a structured
            // failure row instead of unwinding through the thread join.
            let report = match firewalled(|| process_one(tool, path, copts)) {
                Ok(report) => report,
                Err(message) => {
                    *tool = make_tool();
                    UnitReport::failed(path, "panic", &format!("panic: {message}"))
                }
            };
            if let Some((memo, sig)) = memo {
                memo.store(
                    path,
                    sig,
                    tool.preprocessor().unit_deps(),
                    tool.preprocessor().unit_neg_deps(),
                    &report,
                );
            }
            out.push((i, report));
        }
    }
}

/// Reassembles worker outputs in input order and merges the counters:
/// every index was claimed exactly once, and every merged counter is a
/// sum or max, so the result is schedule-independent.
fn assemble(
    n_units: usize,
    outputs: Vec<WorkerOutput>,
    workers: usize,
    wall: Duration,
) -> CorpusReport {
    let mut slots: Vec<Option<UnitReport>> = (0..n_units).map(|_| None).collect();
    let mut cond = CondStats::default();
    let mut bdd: Option<BddStats> = None;
    let mut pp = PpStats::default();
    let mut parse = ParseStats::default();
    let mut unit_memo_hits = 0u64;
    let mut unit_memo_misses = 0u64;
    for out in outputs {
        for (i, report) in out.units {
            debug_assert!(slots[i].is_none(), "unit {i} claimed twice");
            slots[i] = Some(report);
        }
        cond.merge(&out.cond);
        if let Some(b) = out.bdd {
            bdd.get_or_insert_with(BddStats::default).merge(&b);
        }
        unit_memo_hits += out.memo_hits;
        unit_memo_misses += out.memo_misses;
    }
    let units: Vec<UnitReport> = slots
        .into_iter()
        .map(|s| s.expect("every unit claimed"))
        .collect();
    for u in &units {
        pp.merge(&u.pp);
        parse.merge(&u.parse);
    }

    CorpusReport {
        units,
        pp,
        parse,
        cond,
        bdd,
        workers,
        wall,
        unit_memo_hits,
        unit_memo_misses,
        files_rehashed: 0,
    }
}

struct WorkerOutput {
    units: Vec<(usize, UnitReport)>,
    cond: CondStats,
    bdd: Option<BddStats>,
    memo_hits: u64,
    memo_misses: u64,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<F: FileSystem + Sync>(
    fs: &F,
    units: &[String],
    options: &Options,
    copts: &CorpusOptions,
    shared: Option<Arc<SharedCache>>,
    cursor: &AtomicUsize,
    chunk: usize,
) -> WorkerOutput {
    // Per-worker tool: own CondCtx/interner/macro table/L1 header cache
    // over the shared tree. Reused across this worker's units so header
    // caching matches the sequential driver. The shared L2 cache (if any)
    // is attached so this worker can reuse files other workers lexed.
    let make_tool = || {
        let mut tool = SuperC::new(options.clone(), fs);
        if let Some(cache) = &shared {
            tool.set_shared_cache(cache.clone());
        }
        tool
    };
    let mut tool = make_tool();
    let mut out = Vec::new();
    // One-shot workers never see a second batch, so there is no memo to
    // consult: pass `None` and leave the counters at zero.
    let (mut hits, mut misses) = (0, 0);
    claim_loop(
        &mut tool,
        &make_tool,
        units,
        copts,
        None,
        cursor,
        chunk,
        &mut out,
        &mut hits,
        &mut misses,
    );
    WorkerOutput {
        units: out,
        cond: tool.ctx().stats(),
        bdd: tool.ctx().bdd_stats(),
        memo_hits: hits,
        memo_misses: misses,
    }
}

/// The cross-profile corpus rollup: one [`CorpusReport`] per profile,
/// parallel to `profiles` and each in unit input order, sharing one
/// wall clock (the runs are interleaved over one worker pool, not
/// sequential).
#[derive(Clone, Debug)]
pub struct ProfilesReport {
    /// Profile names, in run order (the order given to
    /// [`process_corpus_profiles`]).
    pub profiles: Vec<String>,
    /// One full corpus report per profile, parallel to `profiles`.
    pub runs: Vec<CorpusReport>,
    /// Worker threads actually used (shared across all profiles).
    pub workers: usize,
    /// End-to-end wall clock for the whole cross-profile run.
    pub wall: Duration,
}

impl ProfilesReport {
    /// Units with a fatal failure under *any* profile.
    pub fn fatal_units(&self) -> usize {
        let n_units = self.runs.first().map_or(0, |r| r.units.len());
        (0..n_units)
            .filter(|&u| self.runs.iter().any(|r| r.units[u].fatal.is_some()))
            .count()
    }

    /// Per-profile behavior counters, one line each (`name: counters`).
    /// Byte-identical for any worker count or schedule, like
    /// [`CorpusReport::behavior_counters`].
    pub fn behavior_counters(&self) -> String {
        self.profiles
            .iter()
            .zip(&self.runs)
            .map(|(name, run)| format!("{name}: {}", run.behavior_counters()))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Merges the per-profile runs into one deterministic lint report:
    ///
    /// * ordinary lint records that are byte-identical across profiles
    ///   collapse into one row stamped with the profile set they fired
    ///   under (in run order);
    /// * each unit's per-profile portability slices are diffed by
    ///   [`diff_profiles`] into the `portability-*` records, with a
    ///   synthetic row per fatal unit so a unit that dies under only
    ///   some profiles surfaces as a divergence;
    /// * everything is sorted by [`sort_records`]'s total order.
    ///
    /// Conditions cross profiles as canonical strings and are re-ORed in
    /// a scratch BDD context, so the result is byte-identical for any
    /// `jobs`, cache, or fast-path setting.
    pub fn lint_records(&self, opts: &superc_analyze::LintOptions) -> Vec<superc_analyze::Record> {
        type Key = (&'static str, &'static str, String, u32, u32, String, String);
        let mut merged: BTreeMap<Key, Vec<usize>> = BTreeMap::new();
        for (p, run) in self.runs.iter().enumerate() {
            for unit in &run.units {
                for r in &unit.lints {
                    let key = (
                        r.code,
                        r.level,
                        r.file.clone(),
                        r.line,
                        r.col,
                        r.cond.clone(),
                        r.message.clone(),
                    );
                    let ps = merged.entry(key).or_default();
                    if ps.last() != Some(&p) {
                        ps.push(p);
                    }
                }
            }
        }
        let mut out: Vec<superc_analyze::Record> = merged
            .into_iter()
            .map(|((code, level, file, line, col, cond, message), ps)| {
                let profiles = ps
                    .iter()
                    .map(|&p| self.profiles[p].as_str())
                    .collect::<Vec<_>>()
                    .join(",");
                superc_analyze::Record {
                    code,
                    level,
                    file,
                    line,
                    col,
                    cond,
                    message,
                    profiles,
                }
            })
            .collect();

        // Portability diffs, one unit at a time. Conditions are lifted
        // from canonical strings into a scratch context to OR them.
        let ctx = CondCtx::new(CondBackend::Bdd);
        let n_units = self.runs.first().map_or(0, |r| r.units.len());
        for u in 0..n_units {
            let slices: Vec<Vec<PortEntry>> = self
                .runs
                .iter()
                .map(|run| {
                    let unit = &run.units[u];
                    let mut slice = unit.portability.clone();
                    if let Some(f) = &unit.failure {
                        // A unit fatal under this profile only is the
                        // bluntest divergence; give it a row to diff.
                        slice.push(PortEntry {
                            kind: PortKind::Diag,
                            key: format!("unit {}: fatal {}", unit.path, f.stage),
                            file: unit.path.clone(),
                            line: 0,
                            col: 0,
                            state: f.message.clone(),
                            cond: "true".to_string(),
                        });
                    }
                    slice
                })
                .collect();
            out.extend(diff_profiles(&self.profiles, &slices, opts, &ctx));
        }
        sort_records(&mut out);
        out
    }
}

/// Parses every unit of a corpus under every [`Profile`], fanning the
/// `units × profiles` task grid out over one worker pool.
///
/// Profile runs are scheduled like extra units: one shared cursor walks
/// task indices `t = p * units.len() + u`, so workers interleave
/// profiles instead of running them sequentially, and a slow unit under
/// one profile never stalls the others. Each worker keeps one warm tool
/// *per profile it has touched* (lazily built — a worker that never
/// claims an `msvc-windows` task never pays for its tool) and all tools
/// share one L2 preprocessing cache: frozen token streams, directive
/// trees, and guards are pre-expansion artifacts, identical under every
/// profile.
///
/// [`CorpusOptions::portability`] is forced on — the per-unit slices
/// are what [`ProfilesReport::lint_records`] diffs. The determinism
/// contract of [`process_corpus`] carries over per profile run.
pub fn process_corpus_profiles<F: FileSystem + Sync>(
    fs: &F,
    units: &[String],
    options: &Options,
    profiles: &[Profile],
    copts: &CorpusOptions,
) -> ProfilesReport {
    assert!(!profiles.is_empty(), "at least one profile");
    let n_tasks = units.len() * profiles.len();
    let requested = if copts.jobs == 0 {
        default_jobs()
    } else {
        copts.jobs
    };
    let workers = requested.min(n_tasks).max(1);
    let mut copts = copts.clone();
    copts.portability = true;

    let shared: Option<Arc<SharedCache>> =
        (!copts.no_shared_cache).then(|| Arc::new(SharedCache::new()));

    let start = Instant::now();
    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(n_tasks, workers);
    let outputs: Vec<WorkerOutput> = if workers == 1 {
        vec![profiles_worker_loop(
            fs,
            units,
            options,
            profiles,
            &copts,
            shared.clone(),
            &cursor,
            chunk,
        )]
    } else {
        std::thread::scope(|s| {
            let copts = &copts;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let shared = shared.clone();
                    s.spawn(|| {
                        profiles_worker_loop(
                            fs, units, options, profiles, copts, shared, &cursor, chunk,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("corpus worker panicked"))
                .collect()
        })
    };
    let wall = start.elapsed();
    let mut report = assemble_profiles(units.len(), profiles, outputs, workers, wall);
    if let (Some(s), Some(run0)) = (&shared, report.runs.first_mut()) {
        run0.files_rehashed = s.rehashes();
    }
    report
}

/// The cross-profile analogue of [`claim_loop`]: one cursor over the
/// `units × profiles` grid, lazy per-profile tools, and a panic
/// firewall that rebuilds only the poisoned profile's tool. `memo`
/// carries one options signature *per profile* (the profile is part of
/// the signature), so a warm grid replays per-profile results
/// independently.
#[allow(clippy::too_many_arguments)]
fn profiles_claim_loop<F: FileSystem>(
    tools: &mut HashMap<String, SuperC<F>>,
    make_tool: &dyn Fn(usize) -> SuperC<F>,
    units: &[String],
    profiles: &[Profile],
    copts: &CorpusOptions,
    memo: Option<(&UnitMemo, &[u64])>,
    cursor: &AtomicUsize,
    chunk: usize,
    out: &mut Vec<(usize, UnitReport)>,
    memo_hits: &mut u64,
    memo_misses: &mut u64,
) {
    let n_tasks = units.len() * profiles.len();
    loop {
        let base = cursor.fetch_add(chunk, Ordering::Relaxed);
        if base >= n_tasks {
            break;
        }
        let end = (base + chunk).min(n_tasks);
        for t in base..end {
            let (p, u) = (t / units.len(), t % units.len());
            let path = &units[u];
            let name = &profiles[p].name;
            let tool = tools.entry(name.clone()).or_insert_with(|| make_tool(p));
            if let Some((memo, sigs)) = memo {
                if let Some(hit) = memo.lookup(path, sigs[p], &|q| tool.preprocessor().dep_hash(q))
                {
                    *memo_hits += 1;
                    out.push((t, hit));
                    continue;
                }
                *memo_misses += 1;
            }
            let report = match firewalled(|| process_one(tool, path, copts)) {
                Ok(report) => report,
                Err(message) => {
                    tools.insert(name.clone(), make_tool(p));
                    UnitReport::failed(path, "panic", &format!("panic: {message}"))
                }
            };
            if let Some((memo, sigs)) = memo {
                let (deps, neg_deps) = tools
                    .get(name)
                    .map(|tool| {
                        (
                            tool.preprocessor().unit_deps(),
                            tool.preprocessor().unit_neg_deps(),
                        )
                    })
                    .unwrap_or_default();
                memo.store(path, sigs[p], deps, neg_deps, &report);
            }
            out.push((t, report));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn profiles_worker_loop<F: FileSystem + Sync>(
    fs: &F,
    units: &[String],
    options: &Options,
    profiles: &[Profile],
    copts: &CorpusOptions,
    shared: Option<Arc<SharedCache>>,
    cursor: &AtomicUsize,
    chunk: usize,
) -> WorkerOutput {
    let make_tool = |p: usize| {
        let mut opts = options.clone();
        opts.pp.profile = profiles[p].clone();
        let mut tool = SuperC::new(opts, fs);
        if let Some(cache) = &shared {
            tool.set_shared_cache(cache.clone());
        }
        tool
    };
    let mut tools: HashMap<String, SuperC<&F>> = HashMap::new();
    let mut out = Vec::new();
    let (mut hits, mut misses) = (0, 0);
    profiles_claim_loop(
        &mut tools,
        &make_tool,
        units,
        profiles,
        copts,
        None,
        cursor,
        chunk,
        &mut out,
        &mut hits,
        &mut misses,
    );
    let (cond, bdd) = drain_tool_stats(tools.values());
    WorkerOutput {
        units: out,
        cond,
        bdd,
        memo_hits: hits,
        memo_misses: misses,
    }
}

/// Sums the condition-context gauges over a worker's per-profile tools.
fn drain_tool_stats<'a, F: FileSystem + 'a>(
    tools: impl Iterator<Item = &'a SuperC<F>>,
) -> (CondStats, Option<BddStats>) {
    let mut cond = CondStats::default();
    let mut bdd: Option<BddStats> = None;
    for tool in tools {
        cond.merge(&tool.ctx().stats());
        if let Some(b) = tool.ctx().bdd_stats() {
            bdd.get_or_insert_with(BddStats::default).merge(&b);
        }
    }
    (cond, bdd)
}

/// Splits task-indexed worker outputs back into per-profile reports, in
/// unit input order within each profile. Context gauges are per-worker
/// and span all profiles, so they land on profile 0's run (they are
/// outside the determinism contract either way); the per-profile
/// preprocessor/parser counters are exact sums over that profile's
/// units.
fn assemble_profiles(
    n_units: usize,
    profiles: &[Profile],
    outputs: Vec<WorkerOutput>,
    workers: usize,
    wall: Duration,
) -> ProfilesReport {
    let n_tasks = n_units * profiles.len();
    let mut slots: Vec<Option<UnitReport>> = (0..n_tasks).map(|_| None).collect();
    let mut cond = CondStats::default();
    let mut bdd: Option<BddStats> = None;
    let mut memo_hits = 0u64;
    let mut memo_misses = 0u64;
    for out in outputs {
        for (t, report) in out.units {
            debug_assert!(slots[t].is_none(), "task {t} claimed twice");
            slots[t] = Some(report);
        }
        cond.merge(&out.cond);
        if let Some(b) = out.bdd {
            bdd.get_or_insert_with(BddStats::default).merge(&b);
        }
        memo_hits += out.memo_hits;
        memo_misses += out.memo_misses;
    }
    let mut slots = slots.into_iter();
    let mut runs = Vec::with_capacity(profiles.len());
    for p in 0..profiles.len() {
        let units: Vec<UnitReport> = (&mut slots)
            .take(n_units)
            .map(|s| s.expect("every task claimed"))
            .collect();
        let mut pp = PpStats::default();
        let mut parse = ParseStats::default();
        for u in &units {
            pp.merge(&u.pp);
            parse.merge(&u.parse);
        }
        // Memo counters span the whole grid (workers interleave
        // profiles), so like the context gauges they land on profile
        // 0's run.
        runs.push(CorpusReport {
            units,
            pp,
            parse,
            cond: if p == 0 { cond } else { CondStats::default() },
            bdd: if p == 0 { bdd } else { None },
            workers,
            wall,
            unit_memo_hits: if p == 0 { memo_hits } else { 0 },
            unit_memo_misses: if p == 0 { memo_misses } else { 0 },
            files_rehashed: 0,
        });
    }
    ProfilesReport {
        profiles: profiles.iter().map(|p| p.name.clone()).collect(),
        runs,
        workers,
        wall,
    }
}

/// One batch of work for a pooled worker: the unit list, the shared
/// cursor, and the channel to report back on. `profiles` switches the
/// batch into cross-profile mode (the task grid of
/// [`process_corpus_profiles`]); `memo` switches it into warm mode
/// (consult/fill the pool's unit result memo).
struct Batch {
    units: Arc<Vec<String>>,
    copts: CorpusOptions,
    cursor: Arc<AtomicUsize>,
    chunk: usize,
    profiles: Option<Arc<Vec<Profile>>>,
    memo: Option<MemoCtx>,
    done: mpsc::Sender<WorkerOutput>,
}

/// The warm-mode context a batch carries to every worker: the pool's
/// result memo and the per-profile options signatures (one entry for a
/// plain batch, one per profile for a grid batch).
#[derive(Clone)]
struct MemoCtx {
    memo: Arc<UnitMemo>,
    sigs: Arc<Vec<u64>>,
}

/// A persistent pool of corpus workers, reused across batches.
///
/// [`process_corpus`] builds its mutable layer (per-worker BDD manager,
/// interner, caches, parser engine) from scratch on every call and
/// tears it down at the end. For callers that run the same tree many
/// times — benchmark repetitions, jobs ladders, watch loops — a
/// `CorpusRunner` keeps the workers (and their warm caches) alive:
/// spawn once, [`CorpusRunner::run`] per batch.
///
/// The worker count and the shared-cache policy are **pool-level**
/// choices fixed at construction; [`CorpusOptions::jobs`] and
/// [`CorpusOptions::no_shared_cache`] on a batch's options are ignored
/// by [`CorpusRunner::run`]. Per-batch capture/lint/panic-injection
/// options apply normally. The determinism contract is identical to
/// [`process_corpus`]: per-unit reports and merged behavior counters
/// are byte-identical for any pool size, batch split, or schedule.
///
/// # Examples
///
/// ```
/// use superc::corpus::{CorpusOptions, CorpusRunner};
/// use superc::{MemFs, Options};
/// use std::sync::Arc;
///
/// let fs = Arc::new(MemFs::new().file("a.c", "int a;\n"));
/// let units = vec!["a.c".to_string()];
/// let mut pool = CorpusRunner::new(&Options::default(), fs, 2, false);
/// let first = pool.run(&units, &CorpusOptions::default());
/// let again = pool.run(&units, &CorpusOptions::default()); // warm workers
/// assert_eq!(first.behavior_counters(), again.behavior_counters());
/// ```
pub struct CorpusRunner<F: FileSystem + Send + Sync + 'static> {
    jobs: usize,
    txs: Vec<mpsc::Sender<Batch>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// The pool-wide L2 cache (`None` for `no_shared_cache` pools); the
    /// runner bumps its generation at every batch boundary so workers
    /// revalidate against possibly-edited file bytes.
    shared: Option<Arc<SharedCache>>,
    /// The pool's unit result memo, filled and consulted by warm
    /// batches ([`CorpusOptions::warm`]).
    memo: Arc<UnitMemo>,
    /// The pool's base options, kept to compute per-batch options
    /// signatures for the memo.
    options: Options,
    _fs: std::marker::PhantomData<F>,
}

impl<F: FileSystem + Send + Sync + 'static> CorpusRunner<F> {
    /// Spawns a pool of `jobs` workers (`0` means [`default_jobs`]) over
    /// `fs`. Each worker immediately builds its mutable layer (tool over
    /// `Arc<F>`, attached to one pool-wide shared L2 cache unless
    /// `no_shared_cache`) and then waits for batches.
    pub fn new(options: &Options, fs: Arc<F>, jobs: usize, no_shared_cache: bool) -> Self {
        let jobs = if jobs == 0 { default_jobs() } else { jobs };
        let shared: Option<Arc<SharedCache>> =
            (!no_shared_cache).then(|| Arc::new(SharedCache::new()));
        let mut txs = Vec::with_capacity(jobs);
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let (tx, rx) = mpsc::channel::<Batch>();
            let options = options.clone();
            let fs = fs.clone();
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                let make_tool = || {
                    let mut tool = SuperC::new(options.clone(), fs.clone());
                    if let Some(cache) = &shared {
                        tool.set_shared_cache(cache.clone());
                    }
                    tool
                };
                let mut tool = make_tool();
                // Cross-profile batches get their own warm tools, one
                // per profile this worker has touched, kept across
                // batches like the base tool.
                let mut profile_tools: HashMap<String, SuperC<Arc<F>>> = HashMap::new();
                while let Ok(batch) = rx.recv() {
                    // Without a shared cache there is no generation
                    // protocol, so the only edit-correct stance for a
                    // pool that may see the tree change between batches
                    // is to drop every worker's L1 header cache at the
                    // boundary. Output-neutral: an L1 hit and a fresh
                    // lex credit files/bytes identically.
                    if shared.is_none() {
                        tool.invalidate_file_cache();
                        for t in profile_tools.values_mut() {
                            t.invalidate_file_cache();
                        }
                    }
                    let mut out = Vec::new();
                    let (mut hits, mut misses) = (0, 0);
                    match &batch.profiles {
                        Some(profiles) => {
                            let make_profile_tool = |p: usize| {
                                let mut opts = options.clone();
                                opts.pp.profile = profiles[p].clone();
                                let mut tool = SuperC::new(opts, fs.clone());
                                if let Some(cache) = &shared {
                                    tool.set_shared_cache(cache.clone());
                                }
                                tool
                            };
                            let memo = batch.memo.as_ref().map(|m| (&*m.memo, &m.sigs[..]));
                            profiles_claim_loop(
                                &mut profile_tools,
                                &make_profile_tool,
                                &batch.units,
                                profiles,
                                &batch.copts,
                                memo,
                                &batch.cursor,
                                batch.chunk,
                                &mut out,
                                &mut hits,
                                &mut misses,
                            );
                        }
                        None => {
                            let memo = batch.memo.as_ref().map(|m| (&*m.memo, m.sigs[0]));
                            claim_loop(
                                &mut tool,
                                &make_tool,
                                &batch.units,
                                &batch.copts,
                                memo,
                                &batch.cursor,
                                batch.chunk,
                                &mut out,
                                &mut hits,
                                &mut misses,
                            )
                        }
                    }
                    // Cond/BDD gauges are worker-lifetime cumulative
                    // here (the manager persists across batches); they
                    // are outside the determinism contract either way.
                    let (mut cond, mut bdd) = drain_tool_stats(profile_tools.values());
                    cond.merge(&tool.ctx().stats());
                    if let Some(b) = tool.ctx().bdd_stats() {
                        bdd.get_or_insert_with(BddStats::default).merge(&b);
                    }
                    let _ = batch.done.send(WorkerOutput {
                        units: out,
                        cond,
                        bdd,
                        memo_hits: hits,
                        memo_misses: misses,
                    });
                }
            }));
            txs.push(tx);
        }
        CorpusRunner {
            jobs,
            txs,
            handles,
            shared,
            memo: Arc::new(UnitMemo::new()),
            options: options.clone(),
            _fs: std::marker::PhantomData,
        }
    }

    /// The pool's worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The pool-wide shared L2 cache, when the pool has one. Exposed so
    /// tests and benchmarks can read its gauges (`rehashes`,
    /// `duplicate_freezes`, entry count).
    pub fn shared_cache(&self) -> Option<&Arc<SharedCache>> {
        self.shared.as_ref()
    }

    /// Starts a new batch: bump the shared-cache generation so every
    /// worker revalidates its cached view of the (possibly edited) file
    /// tree, and record the rehash baseline for this batch's
    /// `files_rehashed` gauge. Returns the warm-mode memo context when
    /// the batch asked for one.
    fn start_batch(&self, copts: &CorpusOptions, sigs: Vec<u64>) -> (Option<MemoCtx>, u64) {
        let rehash_base = match &self.shared {
            Some(s) => {
                s.next_generation();
                s.rehashes()
            }
            None => 0,
        };
        let memo = (copts.warm && self.shared.is_some()).then(|| MemoCtx {
            memo: self.memo.clone(),
            sigs: Arc::new(sigs),
        });
        (memo, rehash_base)
    }

    /// Ends a batch: sweep dead artifacts out of the L2 after warm
    /// batches (cold pools churn no hashes, so there is nothing to
    /// evict and the sweep would be pure overhead), and return this
    /// batch's rehash count.
    fn finish_batch(&self, copts: &CorpusOptions, rehash_base: u64) -> u64 {
        match &self.shared {
            Some(s) => {
                let rehashed = s.rehashes() - rehash_base;
                if copts.warm {
                    s.sweep();
                }
                rehashed
            }
            None => 0,
        }
    }

    /// Runs one batch over the pool and reassembles the report in input
    /// order. Batches beyond the first reuse warm workers; a batch
    /// smaller than the pool leaves the excess workers idle.
    pub fn run(&mut self, units: &[String], copts: &CorpusOptions) -> CorpusReport {
        let workers = self.jobs.min(units.len()).max(1);
        let start = Instant::now();
        let (memo, rehash_base) = self.start_batch(copts, vec![options_sig(&self.options, copts)]);
        let shared_units = Arc::new(units.to_vec());
        let cursor = Arc::new(AtomicUsize::new(0));
        let chunk = chunk_size(units.len(), workers);
        let (done_tx, done_rx) = mpsc::channel();
        for tx in self.txs.iter().take(workers) {
            tx.send(Batch {
                units: shared_units.clone(),
                copts: copts.clone(),
                cursor: cursor.clone(),
                chunk,
                profiles: None,
                memo: memo.clone(),
                done: done_tx.clone(),
            })
            .expect("pool worker alive");
        }
        drop(done_tx);
        let outputs: Vec<WorkerOutput> = done_rx.iter().collect();
        assert_eq!(outputs.len(), workers, "pool worker died mid-batch");
        let wall = start.elapsed();
        let mut report = assemble(units.len(), outputs, workers, wall);
        report.files_rehashed = self.finish_batch(copts, rehash_base);
        report
    }

    /// Runs one cross-profile batch over the pool: the task grid and
    /// determinism contract of [`process_corpus_profiles`], the warm
    /// workers of a pool. Each worker keeps one tool per profile it has
    /// touched alive across batches, so a profiles ladder (benchmark
    /// reps, a test matrix) pays the per-profile spin-up once.
    pub fn run_profiles(
        &mut self,
        units: &[String],
        profiles: &[Profile],
        copts: &CorpusOptions,
    ) -> ProfilesReport {
        assert!(!profiles.is_empty(), "at least one profile");
        let n_tasks = units.len() * profiles.len();
        let workers = self.jobs.min(n_tasks).max(1);
        let mut copts = copts.clone();
        copts.portability = true;
        let start = Instant::now();
        // One signature per profile: the profile is part of each
        // signature (it changes output), and everything else —
        // including the forced `portability` above — is identical
        // across the row.
        let sigs: Vec<u64> = profiles
            .iter()
            .map(|p| {
                let mut opts = self.options.clone();
                opts.pp.profile = p.clone();
                options_sig(&opts, &copts)
            })
            .collect();
        let (memo, rehash_base) = self.start_batch(&copts, sigs);
        let shared_units = Arc::new(units.to_vec());
        let shared_profiles = Arc::new(profiles.to_vec());
        let cursor = Arc::new(AtomicUsize::new(0));
        let chunk = chunk_size(n_tasks, workers);
        let (done_tx, done_rx) = mpsc::channel();
        for tx in self.txs.iter().take(workers) {
            tx.send(Batch {
                units: shared_units.clone(),
                copts: copts.clone(),
                cursor: cursor.clone(),
                chunk,
                profiles: Some(shared_profiles.clone()),
                memo: memo.clone(),
                done: done_tx.clone(),
            })
            .expect("pool worker alive");
        }
        drop(done_tx);
        let outputs: Vec<WorkerOutput> = done_rx.iter().collect();
        assert_eq!(outputs.len(), workers, "pool worker died mid-batch");
        let wall = start.elapsed();
        let mut report = assemble_profiles(units.len(), profiles, outputs, workers, wall);
        let rehashed = self.finish_batch(&copts, rehash_base);
        if let Some(run0) = report.runs.first_mut() {
            run0.files_rehashed = rehashed;
        }
        report
    }
}

impl<F: FileSystem + Send + Sync + 'static> Drop for CorpusRunner<F> {
    fn drop(&mut self) {
        // Closing the channels ends each worker's `recv` loop.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

thread_local! {
    /// True while this thread is inside the firewall — the panic hook
    /// stays quiet so an expected, recovered panic does not spray a
    /// backtrace over the corpus output.
    static FIREWALLED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` under `catch_unwind`, suppressing the default panic hook for
/// the duration and reducing any panic payload to its message.
fn firewalled<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !FIREWALLED.with(|b| b.get()) {
                previous(info);
            }
        }));
    });
    FIREWALLED.with(|b| b.set(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    FIREWALLED.with(|b| b.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

impl UnitReport {
    /// A report for a unit that produced nothing: fatal preprocessor
    /// error or firewalled panic. Counters stay zero; the failure is
    /// carried both in `fatal` (legacy surface) and as a structured
    /// [`UnitFailure`] row.
    fn failed(path: &str, stage: &str, message: &str) -> UnitReport {
        UnitReport {
            path: path.to_string(),
            bytes: 0,
            pp: PpStats::default(),
            parse: ParseStats::default(),
            phase_nanos: [0; 3],
            parsed: false,
            partial: false,
            degradations: Vec::new(),
            choice_nodes: 0,
            errors: Vec::new(),
            diagnostics: Vec::new(),
            lints: Vec::new(),
            portability: Vec::new(),
            fatal: Some(message.to_string()),
            failure: Some(UnitFailure {
                stage: stage.to_string(),
                message: message.to_string(),
            }),
            preprocessed: None,
            ast_text: None,
            unparses: Vec::new(),
            memo_hit: false,
        }
    }
}

fn process_one<F: FileSystem>(
    tool: &mut SuperC<F>,
    path: &str,
    copts: &CorpusOptions,
) -> UnitReport {
    if copts.inject_panic.iter().any(|p| p == path) {
        panic!("injected panic for firewall testing: {path}");
    }
    let processed = match tool.process(path) {
        Ok(p) => p,
        Err(e) => return UnitReport::failed(path, "preprocess", &e.to_string()),
    };

    // Lint immediately: the macro table is per-unit preprocessor state
    // and would be reset by this worker's next unit.
    let lints = match &copts.lint {
        Some(lopts) => tool
            .lint(&processed, lopts)
            .iter()
            .map(|d| d.record())
            .collect(),
        None => Vec::new(),
    };
    // Same per-unit constraint applies to the portability slice (it
    // reads the macro table's definedness conditions).
    let portability = if copts.portability {
        tool.portability_slice(&processed)
    } else {
        Vec::new()
    };

    let preprocessed = copts
        .capture
        .preprocessed
        .then(|| processed.unit.display_text());
    let ast_text = if copts.capture.ast {
        processed.result.ast.as_ref().map(|a| a.to_string())
    } else {
        None
    };
    let unparses = copts
        .capture
        .unparse_configs
        .iter()
        .map(|enabled| match &processed.result.ast {
            Some(ast) => {
                let env = |name: &str| {
                    let bare = name
                        .strip_prefix("defined(")
                        .and_then(|s| s.strip_suffix(')'))
                        .unwrap_or(name);
                    Some(enabled.iter().any(|e| e == bare))
                };
                unparse_config(ast, tool.ctx(), &env)
            }
            None => String::new(),
        })
        .collect();

    UnitReport {
        path: path.to_string(),
        bytes: processed.bytes,
        parsed: processed.result.ast.is_some(),
        partial: processed.result.outcome == ParseOutcome::Partial,
        degradations: processed.result.trips.iter().map(render_trip).collect(),
        choice_nodes: processed
            .result
            .ast
            .as_ref()
            .map_or(0, |a| a.choice_count()),
        // Render positions with the file *name*, not the raw `FileId`:
        // id numbering depends on which files this worker lexed before
        // (ids persist across units within a pooled worker), so it is
        // not schedule-invariant; names are. Conditions are rendered
        // canonically for the same reason (see [`render_trip`]).
        errors: processed
            .result
            .errors
            .iter()
            .map(|e| {
                let cond = superc_analyze::render::canonical(&e.cond);
                match e.pos {
                    Some(p) => {
                        let file = tool.preprocessor().file_name(p.file).unwrap_or("<unknown>");
                        format!(
                            "{file}:{}:{}: {} (at '{}', config {cond})",
                            p.line, p.col, e.message, e.got
                        )
                    }
                    None => {
                        format!("{} (at end of input, config {cond})", e.message)
                    }
                }
            })
            .collect(),
        diagnostics: processed
            .unit
            .diagnostics
            .iter()
            .filter(|d| matches!(d.severity, Severity::Error))
            .map(|d| {
                let file = tool
                    .preprocessor()
                    .file_name(d.pos.file)
                    .unwrap_or("<unknown>");
                format!("{file}:{}:{}: {}", d.pos.line, d.pos.col, d.message)
            })
            .collect(),
        lints,
        portability,
        phase_nanos: [
            processed.timings.lexing.as_nanos() as u64,
            processed.timings.preprocessing.as_nanos() as u64,
            processed.timings.parsing.as_nanos() as u64,
        ],
        pp: processed.unit.stats,
        parse: processed.result.stats,
        fatal: None,
        failure: None,
        preprocessed,
        ast_text,
        unparses,
        memo_hit: false,
    }
}
