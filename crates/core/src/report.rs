//! Corpus-level reporting: the percentile and table machinery behind the
//! paper's Table 2, Table 3, Figures 8–10.

use std::fmt::Write as _;

/// A percentile summary in the paper's `50th · 90th · 100th` format.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub p100: f64,
}

impl Percentiles {
    /// Computes percentiles of `values` (need not be sorted). NaNs are
    /// skipped rather than panicking: a single bad timing sample must not
    /// take down a whole corpus report.
    pub fn of(values: &[f64]) -> Percentiles {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
        if v.is_empty() {
            return Percentiles::default();
        }
        v.sort_by(f64::total_cmp);
        let at = |q: f64| {
            let idx = ((v.len() as f64 - 1.0) * q).round() as usize;
            v[idx.min(v.len() - 1)]
        };
        Percentiles {
            p50: at(0.5),
            p90: at(0.9),
            p100: v[v.len() - 1],
        }
    }

    /// Integer-valued convenience constructor.
    pub fn of_u64(values: &[u64]) -> Percentiles {
        let v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
        Percentiles::of(&v)
    }

    /// Formats like the paper: `50 · 90 · 100`.
    pub fn paper_format(&self) -> String {
        format!(
            "{} · {} · {}",
            group_thousands(self.p50),
            group_thousands(self.p90),
            group_thousands(self.p100)
        )
    }
}

/// Formats a count with thousands separators (paper style: `5,600,227`).
pub fn group_thousands(x: f64) -> String {
    let n = x.round() as i64;
    let mut s = n.abs().to_string();
    let mut grouped = String::new();
    let bytes = s.len();
    for (i, c) in s.drain(..).enumerate() {
        if i > 0 && (bytes - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(c);
    }
    if n < 0 {
        format!("-{grouped}")
    } else {
        grouped
    }
}

/// A cumulative distribution over per-unit values; `cdf_points` yields
/// `(value, fraction ≤ value)` pairs for plotting Figures 8b and 9.
#[derive(Clone, Debug, Default)]
pub struct Distribution {
    values: Vec<f64>,
}

impl Distribution {
    /// An empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observations were added.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Percentile summary.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles::of(&self.values)
    }

    /// Sum of all observations.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Sorted `(value, cumulative fraction)` points.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut v = self.values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let n = v.len() as f64;
        v.into_iter()
            .enumerate()
            .map(|(i, x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// Renders an ASCII CDF plot, `width` columns by `height` rows.
    pub fn ascii_cdf(&self, width: usize, height: usize, label: &str) -> String {
        let pts = self.cdf_points();
        let mut out = String::new();
        if pts.is_empty() {
            return out;
        }
        let max_x = pts.last().expect("nonempty").0.max(1e-9);
        let mut grid = vec![vec![b' '; width]; height];
        for (x, f) in &pts {
            let col = ((x / max_x) * (width as f64 - 1.0)) as usize;
            let row = ((1.0 - f) * (height as f64 - 1.0)) as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = b'*';
        }
        let _ = writeln!(out, "{label} (x up to {max_x:.3}):");
        for row in grid {
            let _ = writeln!(out, "|{}", String::from_utf8_lossy(&row));
        }
        let _ = writeln!(out, "+{}", "-".repeat(width));
        out
    }
}

/// Simple fixed-width table printer for the experiment binaries.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (panics in debug builds on arity mismatch).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
        );
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r, &widths));
        }
        out
    }
}

/// Renders parser activity counters — and, when available, the BDD
/// manager's cache counters — as a two-column table. This is the one
/// place the hot-path instrumentation (merge-index probes, apply-cache
/// hits/misses) is formatted, so every binary reports it uniformly.
pub fn activity_table(
    parse: &superc_fmlr::ParseStats,
    bdd: Option<&superc_bdd::BddStats>,
) -> TextTable {
    let mut t = TextTable::new(&["counter", "value"]);
    let mut r = |k: &str, v: String| {
        t.row(&[k.to_string(), v]);
    };
    r("shifts", parse.shifts.to_string());
    r("reduces", parse.reduces.to_string());
    r("forks", parse.forks.to_string());
    r("merges", parse.merges.to_string());
    r("merge probes", parse.merge_probes.to_string());
    r("choice nodes", parse.choice_nodes.to_string());
    r("max subparsers", parse.max_subparsers.to_string());
    // Fast-path gauges: scheduling detail like merge probes, shown only
    // when the fast path actually ran so `--no-fastpath` tables are clean.
    if parse.fastpath_entries > 0 {
        r("fastpath tokens", parse.fastpath_tokens.to_string());
        r("fastpath entries", parse.fastpath_entries.to_string());
        r("fastpath exits", parse.fastpath_exits.to_string());
    }
    if let Some(b) = bdd {
        r("bdd nodes", b.nodes.to_string());
        r("bdd apply calls", b.apply_calls.to_string());
        r("bdd cache hits", b.cache_hits.to_string());
        r("bdd cache misses", b.cache_misses.to_string());
        r("bdd cache hit rate", format!("{:.3}", b.cache_hit_rate()));
    }
    t
}

/// Renders a corpus run — unit outcomes, throughput, merged activity —
/// as a two-column table. Used by `superc --jobs N --stats` and the
/// benchmark binaries so parallel runs report uniformly.
pub fn corpus_table(report: &crate::corpus::CorpusReport) -> TextTable {
    let mut t = TextTable::new(&["corpus", "value"]);
    let mut r = |k: &str, v: String| {
        t.row(&[k.to_string(), v]);
    };
    r("units", report.units.len().to_string());
    r("parsed", report.parsed_units().to_string());
    r("fatal", report.fatal_units().to_string());
    // Degradation surfaces: only shown when something actually degraded,
    // so the table stays stable for healthy corpora.
    if report.partial_units() > 0 {
        r("partial (budget)", report.partial_units().to_string());
        r("budget trips", report.parse.budget_trips.to_string());
        r("subparsers shed", report.parse.budget_killed.to_string());
    }
    if report.failed_units() > 0 {
        r("failed (firewalled)", report.failed_units().to_string());
    }
    r("workers", report.workers.to_string());
    r("wall", format!("{:?}", report.wall));
    r(
        "output tokens",
        group_thousands(report.pp.output_tokens as f64),
    );
    r("tokens/sec", group_thousands(report.tokens_per_sec()));
    if report.lint_count() > 0 {
        r("lint diagnostics", report.lint_count().to_string());
        r("lint denies", report.lint_deny_count().to_string());
    }
    // Shared-cache and memoization counters. Hits/misses depend on the
    // worker schedule (who lexed a header first); they describe *work
    // saved*, never output, so they sit apart from the behavior counters.
    let probes = report.pp.shared_cache_hits + report.pp.shared_cache_misses;
    if probes > 0 {
        r("shared cache hits", report.pp.shared_cache_hits.to_string());
        r(
            "shared cache misses",
            report.pp.shared_cache_misses.to_string(),
        );
        r(
            "shared cache hit rate",
            format!("{:.3}", report.pp.shared_cache_hits as f64 / probes as f64),
        );
        r(
            "lex nanos saved",
            group_thousands(report.pp.lex_nanos_saved as f64),
        );
    }
    // Warm re-run gauges (pooled runners with `CorpusOptions::warm`):
    // units replayed from the result memo vs recomputed, and files whose
    // bytes were re-read and content-hashed this batch. Like the cache
    // rows, these measure work saved and only appear when a memo was
    // actually consulted.
    let memo_probes = report.unit_memo_hits + report.unit_memo_misses;
    if memo_probes > 0 {
        r("unit memo hits", report.unit_memo_hits.to_string());
        r("unit memo misses", report.unit_memo_misses.to_string());
        r(
            "unit memo hit rate",
            format!("{:.3}", report.unit_memo_hits as f64 / memo_probes as f64),
        );
    }
    if report.files_rehashed > 0 {
        r("files rehashed", report.files_rehashed.to_string());
    }
    let cx_probes = report.pp.condexpr_memo_hits + report.pp.condexpr_memo_misses;
    if cx_probes > 0 {
        r(
            "condexpr memo hits",
            report.pp.condexpr_memo_hits.to_string(),
        );
        r(
            "condexpr memo hit rate",
            format!(
                "{:.3}",
                report.pp.condexpr_memo_hits as f64 / cx_probes as f64
            ),
        );
    }
    if report.pp.expansion_memo_hits > 0 {
        r(
            "expansion memo hits",
            report.pp.expansion_memo_hits.to_string(),
        );
    }
    // Fast-path gauges: deterministic for a given on/off setting but a
    // scheduling detail, so — like the cache rows — they appear only when
    // the fast path actually ran.
    if report.parse.fastpath_entries > 0 || report.pp.fused_tokens > 0 {
        r("fastpath tokens", report.parse.fastpath_tokens.to_string());
        r(
            "fastpath entries",
            report.parse.fastpath_entries.to_string(),
        );
        r("fastpath exits", report.parse.fastpath_exits.to_string());
        r("fused tokens", report.pp.fused_tokens.to_string());
    }
    r("forks", report.parse.forks.to_string());
    r("merges", report.parse.merges.to_string());
    r("choice nodes", report.parse.choice_nodes.to_string());
    r(
        "feasibility checks",
        report.cond.feasibility_checks.to_string(),
    );
    if let Some(b) = &report.bdd {
        r("bdd apply calls", b.apply_calls.to_string());
        r("bdd cache hit rate", format!("{:.3}", b.cache_hit_rate()));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_match_definition() {
        let p = Percentiles::of_u64(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(p.p50, 6.0);
        assert_eq!(p.p90, 9.0);
        assert_eq!(p.p100, 10.0);
        assert_eq!(Percentiles::of(&[]), Percentiles::default());
        let single = Percentiles::of(&[42.0]);
        assert_eq!((single.p50, single.p90, single.p100), (42.0, 42.0, 42.0));
    }

    #[test]
    fn percentiles_skip_nans() {
        // NaNs must neither panic the sort nor poison the summary.
        let p = Percentiles::of(&[3.0, f64::NAN, 1.0, 2.0, f64::NAN]);
        assert_eq!((p.p50, p.p100), (2.0, 3.0));
        assert_eq!(Percentiles::of(&[f64::NAN]), Percentiles::default());
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(5600227.0), "5,600,227");
        assert_eq!(group_thousands(532.0), "532");
        assert_eq!(group_thousands(0.0), "0");
        assert_eq!(group_thousands(-1234.0), "-1,234");
    }

    #[test]
    fn paper_format_joins_with_dots() {
        let p = Percentiles::of_u64(&[34000, 45000, 122000]);
        assert!(p.paper_format().contains(" · "));
    }

    #[test]
    fn cdf_is_monotone() {
        let mut d = Distribution::new();
        for v in [3.0, 1.0, 2.0, 2.0] {
            d.push(v);
        }
        let pts = d.cdf_points();
        assert_eq!(pts.len(), 4);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts.last().expect("nonempty").1, 1.0);
        assert_eq!(d.total(), 8.0);
        assert!(!d.ascii_cdf(20, 5, "test").is_empty());
    }

    #[test]
    fn text_table_aligns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22222".into()]);
        let s = t.render();
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 4);
    }
}
