//! A compact CDCL SAT solver: two-watched-literal propagation, 1UIP
//! clause learning, activity-driven decisions.
//!
//! TypeChef discharged feasibility queries with sat4j (a CDCL solver), so
//! conflict-driven search is the faithful substrate here — the overhead
//! the paper attributes to TypeChef comes from re-encoding conditions to
//! CNF per query, not from a weak solver.

use crate::formula::{Clause, Lit};

/// Outcome of a solve call.
pub enum SolveResult {
    /// Satisfiable, with a model (`None` entries are don't-cares).
    Sat(Vec<Option<bool>>),
    /// Proven unsatisfiable.
    Unsat,
    /// Step budget exhausted (treated as "possibly satisfiable").
    Unknown,
}

impl SolveResult {
    /// The model, if satisfiable.
    pub fn model(self) -> Option<Vec<Option<bool>>> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// True unless proven unsatisfiable.
    pub fn possibly_sat(&self) -> bool {
        !matches!(self, SolveResult::Unsat)
    }
}

const BUDGET: u64 = 4_000_000;

/// Literal to watch-index: `v*2` for positive, `v*2+1` for negative.
fn widx(l: Lit) -> usize {
    let v = (l.unsigned_abs() - 1) as usize;
    v * 2 + usize::from(l < 0)
}

struct Solver {
    nvars: usize,
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<u32>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    activity: Vec<f64>,
    var_inc: f64,
    qhead: usize,
}

impl Solver {
    fn value(&self, l: Lit) -> Option<bool> {
        let v = (l.unsigned_abs() - 1) as usize;
        self.assign[v].map(|b| if l > 0 { b } else { !b })
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Asserts `l` with an optional reason clause. False if already
    /// assigned the opposite value.
    fn enqueue(&mut self, l: Lit, reason: Option<u32>) -> bool {
        match self.value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = (l.unsigned_abs() - 1) as usize;
                self.assign[v] = Some(l > 0);
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Watched-literal unit propagation; returns a conflicting clause id.
    fn propagate(&mut self, steps: &mut u64) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            *steps += 1;
            let false_lit = -l;
            let mut watchers = std::mem::take(&mut self.watches[widx(false_lit)]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                let c = ci as usize;
                // Normalize: watched literals are positions 0 and 1.
                if self.clauses[c][0] == false_lit {
                    self.clauses[c].swap(0, 1);
                }
                let first = self.clauses[c][0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut found = false;
                for k in 2..self.clauses[c].len() {
                    let lk = self.clauses[c][k];
                    if self.value(lk) != Some(false) {
                        self.clauses[c].swap(1, k);
                        self.watches[widx(lk)].push(ci);
                        watchers.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Unit or conflict on the first watched literal.
                if !self.enqueue(first, Some(ci)) {
                    self.watches[widx(false_lit)] = watchers;
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[widx(false_lit)] = watchers;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![0]; // slot 0 = asserting literal
        let mut seen = vec![false; self.nvars];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut reason_clause = conflict;
        let mut idx = self.trail.len();
        loop {
            let clause = self.clauses[reason_clause as usize].clone();
            let start = usize::from(p.is_some());
            for &q in &clause[start..] {
                let v = (q.unsigned_abs() - 1) as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                idx -= 1;
                let v = (self.trail[idx].unsigned_abs() - 1) as usize;
                if seen[v] {
                    break;
                }
            }
            let lit = self.trail[idx];
            let v = (lit.unsigned_abs() - 1) as usize;
            counter -= 1;
            if counter == 0 {
                learned[0] = -lit;
                break;
            }
            seen[v] = false;
            p = Some(lit);
            reason_clause = self.reason[v].expect("non-decision has a reason");
        }
        let back_level = learned[1..]
            .iter()
            .map(|&q| self.level[(q.unsigned_abs() - 1) as usize])
            .max()
            .unwrap_or(0);
        (learned, back_level)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let mark = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > mark {
                let l = self.trail.pop().expect("trail in sync");
                let v = (l.unsigned_abs() - 1) as usize;
                self.assign[v] = None;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    fn learn(&mut self, learned: Vec<Lit>) -> bool {
        if learned.len() == 1 {
            return self.enqueue(learned[0], None);
        }
        let ci = self.clauses.len() as u32;
        self.watches[widx(learned[0])].push(ci);
        self.watches[widx(learned[1])].push(ci);
        let assert_lit = learned[0];
        self.clauses.push(learned);
        self.enqueue(assert_lit, Some(ci))
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.nvars {
            if self.assign[v].is_none()
                && best
                    .map(|b| self.activity[v] > self.activity[b])
                    .unwrap_or(true)
            {
                best = Some(v);
            }
        }
        // Default phase false: matches the all-false probe, which real
        // configuration spaces (mostly-undefined CONFIG vars) satisfy.
        best.map(|v| -((v as Lit) + 1))
    }
}

/// Solves the clause set over `nvars` variables, bounded by an internal
/// step budget. `steps` accumulates propagation/decision work.
pub fn solve(clauses: &[Clause], nvars: u32, steps: &mut u64) -> SolveResult {
    let nvars = nvars as usize;
    let mut s = Solver {
        nvars,
        clauses: Vec::with_capacity(clauses.len()),
        watches: vec![Vec::new(); nvars * 2],
        assign: vec![None; nvars],
        level: vec![0; nvars],
        reason: vec![None; nvars],
        trail: Vec::new(),
        trail_lim: Vec::new(),
        activity: vec![0.0; nvars],
        var_inc: 1.0,
        qhead: 0,
    };
    // Load clauses: units enqueue, empties fail, others watch two.
    for c in clauses {
        match c.len() {
            0 => return SolveResult::Unsat,
            1 => {
                if !s.enqueue(c[0], None) {
                    return SolveResult::Unsat;
                }
            }
            _ => {
                let ci = s.clauses.len() as u32;
                s.watches[widx(c[0])].push(ci);
                s.watches[widx(c[1])].push(ci);
                s.clauses.push(c.clone());
            }
        }
    }
    let budget = *steps + BUDGET;
    loop {
        if let Some(conflict) = s.propagate(steps) {
            if s.decision_level() == 0 {
                return SolveResult::Unsat;
            }
            let (learned, back) = s.analyze(conflict);
            s.cancel_until(back);
            s.var_inc *= 1.05;
            if !s.learn(learned) {
                return SolveResult::Unsat;
            }
        } else {
            match s.decide() {
                None => return SolveResult::Sat(s.assign),
                Some(l) => {
                    *steps += 1;
                    if *steps > budget {
                        return SolveResult::Unknown;
                    }
                    s.trail_lim.push(s.trail.len());
                    let ok = s.enqueue(l, None);
                    debug_assert!(ok, "decision variable was unassigned");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(clauses: &[Clause], nvars: u32) -> SolveResult {
        let mut steps = 0;
        solve(clauses, nvars, &mut steps)
    }

    fn check_model(clauses: &[Clause], model: &[Option<bool>]) {
        for c in clauses {
            let sat = c.iter().any(|&l| {
                let v = (l.unsigned_abs() - 1) as usize;
                let b = model[v].unwrap_or(false);
                if l > 0 {
                    b
                } else {
                    !b
                }
            });
            assert!(sat, "clause {c:?} unsatisfied by {model:?}");
        }
    }

    #[test]
    fn empty_cnf_is_sat() {
        assert!(run(&[], 0).possibly_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        assert!(!run(&[vec![]], 1).possibly_sat());
    }

    #[test]
    fn unit_conflict_is_unsat() {
        assert!(!run(&[vec![1], vec![-1]], 1).possibly_sat());
    }

    #[test]
    fn simple_sat_model_is_consistent() {
        let clauses = vec![vec![1, 2], vec![-1, 2], vec![-2, 3]];
        let model = run(&clauses, 3).model().expect("sat");
        check_model(&clauses, &model);
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        assert!(!run(&[vec![1], vec![2], vec![-1, -2]], 2).possibly_sat());
    }

    #[test]
    fn requires_backjumping() {
        // (¬x1 ∨ x2) ∧ (¬x1 ∨ ¬x2) ∧ (x1 ∨ x3)
        let clauses = vec![vec![-1, 2], vec![-1, -2], vec![1, 3]];
        let model = run(&clauses, 3).model().expect("sat");
        check_model(&clauses, &model);
        assert_eq!(model[0], Some(false));
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        // Pigeon i in hole j = var 3*i + j + 1; i in 0..4, j in 0..3.
        let mut clauses: Vec<Clause> = Vec::new();
        let var = |i: i32, j: i32| 3 * i + j + 1;
        for i in 0..4 {
            clauses.push((0..3).map(|j| var(i, j)).collect());
        }
        for j in 0..3 {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    clauses.push(vec![-var(a, j), -var(b, j)]);
                }
            }
        }
        assert!(!run(&clauses, 12).possibly_sat());
    }

    #[test]
    fn chains_propagate() {
        // Implication chain x1 → x2 → ... → x20, then force ¬x20: UNSAT
        // with x1 asserted.
        let n = 20;
        let mut clauses: Vec<Clause> = (1..n).map(|i| vec![-i, i + 1]).collect();
        clauses.push(vec![1]);
        clauses.push(vec![-n]);
        assert!(!run(&clauses, n as u32).possibly_sat());
        // Without forcing ¬x20 it is satisfiable.
        clauses.pop();
        let model = run(&clauses, n as u32).model().expect("sat");
        check_model(&clauses, &model);
    }

    #[test]
    fn random_3sat_instances_agree_with_brute_force() {
        // Deterministic pseudo-random 3-SAT over 8 vars; brute-force check.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..50 {
            let nv = 8u32;
            let nc = 28;
            let clauses: Vec<Clause> = (0..nc)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % nv) as i32 + 1;
                            if next() % 2 == 0 {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            let brute = (0..(1u32 << nv)).any(|m| {
                clauses.iter().all(|c| {
                    c.iter().any(|&l| {
                        let bit = m >> (l.unsigned_abs() - 1) & 1 == 1;
                        if l > 0 {
                            bit
                        } else {
                            !bit
                        }
                    })
                })
            });
            match run(&clauses, nv) {
                SolveResult::Sat(model) => {
                    assert!(brute, "solver said SAT, brute force disagrees");
                    check_model(&clauses, &model);
                }
                SolveResult::Unsat => assert!(!brute, "solver said UNSAT, brute force disagrees"),
                SolveResult::Unknown => panic!("tiny instance exhausted budget"),
            }
        }
    }

    #[test]
    fn counts_steps() {
        let mut steps = 0;
        let _ = solve(&[vec![1, 2], vec![-1, 2]], 2, &mut steps);
        assert!(steps > 0);
    }
}
