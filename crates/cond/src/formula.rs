//! Structural boolean formulas and Tseitin CNF conversion.
//!
//! The SAT backend of [`crate::CondCtx`] mirrors TypeChef's representation:
//! conditions are formula trees built with light local simplification, and
//! every feasibility query converts the tree to CNF and calls a solver. The
//! conversion is linear per query but repeated for every query, which is
//! what produces the scalability knee the paper observes in Figure 9.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A boolean formula over `u32` variables.
#[derive(Debug, PartialEq, Eq, Hash)]
pub enum Formula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A variable.
    Var(u32),
    /// Negation.
    Not(Arc<Formula>),
    /// N-ary conjunction (n ≥ 2).
    And(Vec<Arc<Formula>>),
    /// N-ary disjunction (n ≥ 2).
    Or(Vec<Arc<Formula>>),
}

impl Formula {
    pub fn tru() -> Arc<Formula> {
        Arc::new(Formula::True)
    }

    pub fn fls() -> Arc<Formula> {
        Arc::new(Formula::False)
    }

    pub fn var(v: u32) -> Arc<Formula> {
        Arc::new(Formula::Var(v))
    }

    /// Returns the constant value if this formula is trivially constant.
    pub fn as_const(&self) -> Option<bool> {
        match self {
            Formula::True => Some(true),
            Formula::False => Some(false),
            _ => None,
        }
    }

    /// Shallow-recursive syntactic equality (with pointer shortcuts).
    pub fn syntactic_eq(self: &Arc<Formula>, other: &Arc<Formula>) -> bool {
        fn eq(a: &Arc<Formula>, b: &Arc<Formula>) -> bool {
            if Arc::ptr_eq(a, b) {
                return true;
            }
            match (&**a, &**b) {
                (Formula::True, Formula::True) | (Formula::False, Formula::False) => true,
                (Formula::Var(x), Formula::Var(y)) => x == y,
                (Formula::Not(x), Formula::Not(y)) => eq(x, y),
                (Formula::And(xs), Formula::And(ys)) | (Formula::Or(xs), Formula::Or(ys)) => {
                    xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| eq(x, y))
                }
                _ => false,
            }
        }
        eq(self, other)
    }

    /// Evaluates under a total assignment.
    ///
    /// Formulas are DAGs (merges share subtrees), so evaluation memoizes
    /// per node — the tree unfolding would be exponential.
    pub fn eval(&self, env: &dyn Fn(u32) -> bool) -> bool {
        let mut memo: HashMap<*const Formula, bool> = HashMap::new();
        self.eval_memo(env, &mut memo)
    }

    fn eval_memo(
        &self,
        env: &dyn Fn(u32) -> bool,
        memo: &mut HashMap<*const Formula, bool>,
    ) -> bool {
        let key = self as *const Formula;
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let r = match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Var(v) => env(*v),
            Formula::Not(a) => !a.eval_memo(env, memo),
            Formula::And(ks) => ks.iter().all(|k| k.eval_memo(env, memo)),
            Formula::Or(ks) => ks.iter().any(|k| k.eval_memo(env, memo)),
        };
        memo.insert(key, r);
        r
    }

    /// Inserts every variable mentioned by the formula into `out`.
    pub fn collect_vars(&self, out: &mut std::collections::HashSet<u32>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Var(v) => {
                out.insert(*v);
            }
            Formula::Not(a) => a.collect_vars(out),
            Formula::And(ks) | Formula::Or(ks) => {
                for k in ks {
                    k.collect_vars(out);
                }
            }
        }
    }

    /// Number of distinct nodes in the formula DAG.
    pub fn size(&self) -> usize {
        fn walk(f: &Formula, seen: &mut HashMap<*const Formula, ()>) -> usize {
            if seen.insert(f as *const Formula, ()).is_some() {
                return 0;
            }
            match f {
                Formula::True | Formula::False | Formula::Var(_) => 1,
                Formula::Not(a) => 1 + walk(a, seen),
                Formula::And(ks) | Formula::Or(ks) => {
                    1 + ks.iter().map(|k| walk(k, seen)).sum::<usize>()
                }
            }
        }
        walk(self, &mut HashMap::new())
    }

    pub fn display_with(
        &self,
        f: &mut fmt::Formatter<'_>,
        name: &dyn Fn(u32) -> String,
    ) -> fmt::Result {
        match self {
            Formula::True => write!(f, "1"),
            Formula::False => write!(f, "0"),
            Formula::Var(v) => write!(f, "{}", name(*v)),
            Formula::Not(a) => {
                write!(f, "!(")?;
                a.display_with(f, name)?;
                write!(f, ")")
            }
            Formula::And(ks) | Formula::Or(ks) => {
                let sep = if matches!(self, Formula::And(_)) {
                    " && "
                } else {
                    " || "
                };
                write!(f, "(")?;
                for (i, k) in ks.iter().enumerate() {
                    if i > 0 {
                        write!(f, "{sep}")?;
                    }
                    k.display_with(f, name)?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A CNF literal: positive `v+1` or negative `-(v+1)` for variable `v`.
pub type Lit = i32;
/// A CNF clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// Converts a formula to equisatisfiable CNF by Tseitin transformation.
///
/// Returns the clause set and the total variable count (source variables
/// first, then one auxiliary per internal formula node, shared via a memo on
/// node identity). The root's defining literal is asserted as a unit clause.
pub fn tseitin(root: &Arc<Formula>) -> (Vec<Clause>, u32) {
    // Source variables keep their ids; auxiliaries are allocated above the
    // maximum mentioned variable.
    let mut max_var = 0u32;
    collect_max_var(root, &mut max_var);
    let mut next = max_var; // next fresh variable index (0-based)
    let mut clauses: Vec<Clause> = Vec::new();
    let mut memo: HashMap<*const Formula, Lit> = HashMap::new();

    let root_lit = encode(root, &mut next, &mut clauses, &mut memo);
    clauses.push(vec![root_lit]);
    (clauses, next)
}

fn collect_max_var(f: &Arc<Formula>, max: &mut u32) {
    match &**f {
        Formula::Var(v) => *max = (*max).max(v + 1),
        Formula::Not(a) => collect_max_var(a, max),
        Formula::And(ks) | Formula::Or(ks) => {
            for k in ks {
                collect_max_var(k, max);
            }
        }
        _ => {}
    }
}

fn lit(v: u32, positive: bool) -> Lit {
    let l = (v + 1) as i32;
    if positive {
        l
    } else {
        -l
    }
}

fn encode(
    f: &Arc<Formula>,
    next: &mut u32,
    clauses: &mut Vec<Clause>,
    memo: &mut HashMap<*const Formula, Lit>,
) -> Lit {
    if let Some(&l) = memo.get(&Arc::as_ptr(f)) {
        return l;
    }
    let l = match &**f {
        Formula::True => {
            let v = fresh(next);
            clauses.push(vec![lit(v, true)]);
            lit(v, true)
        }
        Formula::False => {
            let v = fresh(next);
            clauses.push(vec![lit(v, false)]);
            lit(v, true)
        }
        Formula::Var(v) => lit(*v, true),
        Formula::Not(a) => -encode(a, next, clauses, memo),
        Formula::And(ks) => {
            let kids: Vec<Lit> = ks.iter().map(|k| encode(k, next, clauses, memo)).collect();
            let v = fresh(next);
            let out = lit(v, true);
            // out → each kid
            for &k in &kids {
                clauses.push(vec![-out, k]);
            }
            // all kids → out
            let mut big: Clause = kids.iter().map(|&k| -k).collect();
            big.push(out);
            clauses.push(big);
            out
        }
        Formula::Or(ks) => {
            let kids: Vec<Lit> = ks.iter().map(|k| encode(k, next, clauses, memo)).collect();
            let v = fresh(next);
            let out = lit(v, true);
            // each kid → out
            for &k in &kids {
                clauses.push(vec![-k, out]);
            }
            // out → some kid
            let mut big: Clause = kids.clone();
            big.insert(0, -out);
            clauses.push(big);
            out
        }
    };
    memo.insert(Arc::as_ptr(f), l);
    l
}

fn fresh(next: &mut u32) -> u32 {
    let v = *next;
    *next += 1;
    v
}
