//! Presence conditions with pluggable representations.
//!
//! A *presence condition* is the boolean function over configuration
//! variables under which a piece of source code is present (SuperC §2/§3.2).
//! SuperC represents presence conditions as BDDs; TypeChef instead builds
//! formula trees and discharges feasibility queries with a SAT solver over a
//! CNF conversion — which the paper identifies as the likely cause of
//! TypeChef's latency knee in Figure 9.
//!
//! This crate exposes one concrete type, [`Cond`], behind which either
//! backend runs, so the rest of the pipeline (preprocessor, FMLR parser) is
//! oblivious to the representation and the Figure 9 comparison can hold
//! everything else constant:
//!
//! * [`CondBackend::Bdd`] — canonical BDDs (`superc_bdd`); `is_false` is an
//!   O(1) handle test.
//! * [`CondBackend::Sat`] — structural formula trees; `is_false` runs a DPLL
//!   solver over a Tseitin CNF encoding, like TypeChef's approach.
//!
//! # Examples
//!
//! ```
//! use superc_cond::{CondBackend, CondCtx};
//!
//! for backend in [CondBackend::Bdd, CondBackend::Sat] {
//!     let ctx = CondCtx::new(backend);
//!     let a = ctx.var("defined(CONFIG_64BIT)");
//!     let cond = a.not().and(&a);
//!     assert!(cond.is_false()); // infeasible under both backends
//! }
//! ```

mod dpll;
mod formula;

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use formula::Formula;
use superc_bdd::{Bdd, BddManager};
use superc_util::{FastMap, FastSet, Interner, Symbol};

/// Which representation a [`CondCtx`] uses for its conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CondBackend {
    /// Canonical BDDs, as in SuperC.
    Bdd,
    /// Formula trees + DPLL SAT feasibility, as in TypeChef.
    Sat,
}

impl fmt::Display for CondBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondBackend::Bdd => write!(f, "bdd"),
            CondBackend::Sat => write!(f, "sat"),
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum FKey {
    Not(usize),
    And(Vec<usize>),
    Or(Vec<usize>),
}

#[derive(Debug, Default)]
struct SatState {
    var_names: Vec<String>,
    var_ids: FastMap<String, u32>,
    sat_calls: u64,
    dpll_steps: u64,
    /// Memoized unsatisfiability results, keyed by formula identity.
    unsat_memo: FastMap<usize, bool>,
    /// Hash-consing table: structurally identical formulas share one node,
    /// so the unsat memo hits and `x ∧ ¬x` is detectable locally.
    intern: FastMap<FKey, Arc<Formula>>,
    /// One shared node per variable (aligned with `var_names`).
    var_nodes: Vec<Arc<Formula>>,
    tru: Option<Arc<Formula>>,
    fls: Option<Arc<Formula>>,
}

impl SatState {
    fn consts(&mut self) -> (Arc<Formula>, Arc<Formula>) {
        let t = self.tru.get_or_insert_with(Formula::tru).clone();
        let f = self.fls.get_or_insert_with(Formula::fls).clone();
        (t, f)
    }

    fn mk_not(&mut self, a: Arc<Formula>) -> Arc<Formula> {
        let (t, f) = self.consts();
        match &*a {
            Formula::True => return f,
            Formula::False => return t,
            Formula::Not(inner) => return inner.clone(),
            _ => {}
        }
        let key = FKey::Not(Arc::as_ptr(&a) as usize);
        self.intern
            .entry(key)
            .or_insert_with(|| Arc::new(Formula::Not(a)))
            .clone()
    }

    /// Builds an interned n-ary And/Or with flattening, ptr-sorted
    /// deduplicated children, constant folding, and local
    /// contradiction/tautology detection (`x` and `¬x` among children).
    fn mk_nary(&mut self, is_and: bool, a: Arc<Formula>, b: Arc<Formula>) -> Arc<Formula> {
        let (t, f) = self.consts();
        let (absorb, ident) = if is_and { (f, t) } else { (t, f) };
        let mut kids: Vec<Arc<Formula>> = Vec::new();
        for x in [a, b] {
            match (&*x, is_and) {
                (Formula::And(ks), true) | (Formula::Or(ks), false) => {
                    kids.extend(ks.iter().cloned())
                }
                _ => kids.push(x),
            }
        }
        kids.retain(|k| !Arc::ptr_eq(k, &ident) && k.as_const() != Some(is_and));
        if kids
            .iter()
            .any(|k| Arc::ptr_eq(k, &absorb) || k.as_const() == Some(!is_and))
        {
            return absorb;
        }
        kids.sort_by_key(|k| Arc::as_ptr(k) as usize);
        kids.dedup_by(|x, y| Arc::ptr_eq(x, y));
        // x together with ¬x: contradiction (And) / tautology (Or).
        let ptrs: FastSet<usize> = kids.iter().map(|k| Arc::as_ptr(k) as usize).collect();
        for k in &kids {
            if let Formula::Not(inner) = &**k {
                if ptrs.contains(&(Arc::as_ptr(inner) as usize)) {
                    return absorb;
                }
            }
        }
        match kids.len() {
            0 => ident,
            1 => kids.pop().expect("one"),
            _ => {
                let ptr_list: Vec<usize> = kids.iter().map(|k| Arc::as_ptr(k) as usize).collect();
                let key = if is_and {
                    FKey::And(ptr_list)
                } else {
                    FKey::Or(ptr_list)
                };
                self.intern
                    .entry(key)
                    .or_insert_with(|| {
                        Arc::new(if is_and {
                            Formula::And(kids)
                        } else {
                            Formula::Or(kids)
                        })
                    })
                    .clone()
            }
        }
    }
}

/// Fixed probe assignments: satisfying any of them proves satisfiability
/// in O(formula) without a solver call. Probe 0 is all-false (the common
/// "every CONFIG undefined" case); the rest are cheap hashes.
fn probe_assignment(seed: u32, var: u32) -> bool {
    match seed {
        0 => false,
        1 => true,
        _ => (var.wrapping_mul(2654435761).wrapping_add(seed * 40503)) & 4 == 0,
    }
}

enum Backend {
    Bdd(BddManager),
    Sat(RefCell<SatState>),
}

/// Work counters for a [`CondCtx`], from [`CondCtx::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CondStats {
    /// Feasibility (`is_false`) queries answered.
    pub feasibility_checks: u64,
    /// DPLL decision/propagation steps (SAT backend only).
    pub dpll_steps: u64,
    /// Interned condition variables.
    pub variables: usize,
}

impl CondStats {
    /// Accumulates another context's counters (corpus-level reporting over
    /// per-worker contexts). `variables` sums across workers, so the
    /// aggregate counts interning work done, not distinct names.
    pub fn merge(&mut self, other: &CondStats) {
        self.feasibility_checks += other.feasibility_checks;
        self.dpll_steps += other.dpll_steps;
        self.variables += other.variables;
    }
}

struct CtxInner {
    backend: Backend,
    checks: RefCell<u64>,
    interner: Interner,
}

/// A factory and evaluation context for [`Cond`] values.
///
/// All conditions combined together must come from the same context.
/// Cloning is cheap and shares state.
///
/// # Examples
///
/// ```
/// use superc_cond::{CondBackend, CondCtx};
/// let ctx = CondCtx::new(CondBackend::Bdd);
/// let smp = ctx.var("defined(CONFIG_SMP)");
/// assert!(smp.or(&smp.not()).is_true());
/// ```
#[derive(Clone)]
pub struct CondCtx {
    inner: Rc<CtxInner>,
}

impl fmt::Debug for CondCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CondCtx({})", self.backend())
    }
}

impl CondCtx {
    /// Creates a context using the given backend.
    pub fn new(backend: CondBackend) -> Self {
        let interner = Interner::new();
        let backend = match backend {
            CondBackend::Bdd => Backend::Bdd(BddManager::with_interner(interner.clone())),
            CondBackend::Sat => Backend::Sat(RefCell::new(SatState::default())),
        };
        CondCtx {
            inner: Rc::new(CtxInner {
                backend,
                checks: RefCell::new(0),
                interner,
            }),
        }
    }

    /// The pipeline's shared name interner.
    ///
    /// The preprocessor interns macro and configuration-variable names
    /// here, so [`Symbol`]s agree between the macro table, this context,
    /// and (under the BDD backend) the BDD manager's variable table.
    pub fn interner(&self) -> Interner {
        self.inner.interner.clone()
    }

    /// The condition variable for an already-interned `sym` — the
    /// string-free fast path of [`CondCtx::var`].
    pub fn var_sym(&self, sym: Symbol) -> Cond {
        match &self.inner.backend {
            Backend::Bdd(m) => self.wrap_bdd(m.var_sym(sym)),
            Backend::Sat(_) => {
                let name = self.inner.interner.resolve(sym);
                self.var(&name)
            }
        }
    }

    /// The backend this context was created with.
    pub fn backend(&self) -> CondBackend {
        match &self.inner.backend {
            Backend::Bdd(_) => CondBackend::Bdd,
            Backend::Sat(_) => CondBackend::Sat,
        }
    }

    /// The constant `true` condition (code present in every configuration).
    pub fn tru(&self) -> Cond {
        match &self.inner.backend {
            Backend::Bdd(m) => self.wrap_bdd(m.tru()),
            Backend::Sat(s) => {
                let t = s.borrow_mut().consts().0;
                self.wrap_formula(t)
            }
        }
    }

    /// The constant `false` condition (code present in no configuration).
    pub fn fls(&self) -> Cond {
        match &self.inner.backend {
            Backend::Bdd(m) => self.wrap_bdd(m.fls()),
            Backend::Sat(s) => {
                let f = s.borrow_mut().consts().1;
                self.wrap_formula(f)
            }
        }
    }

    /// A constant condition chosen by `value`.
    pub fn constant(&self, value: bool) -> Cond {
        if value {
            self.tru()
        } else {
            self.fls()
        }
    }

    /// The condition variable named `name`, interned on first use.
    ///
    /// Names are the keys SuperC §3.2 describes: `defined(M)` for free
    /// macros, the macro name itself for a free macro used as a value, or
    /// the normalized text of an opaque non-boolean expression.
    pub fn var(&self, name: &str) -> Cond {
        match &self.inner.backend {
            Backend::Bdd(m) => self.wrap_bdd(m.var(name)),
            Backend::Sat(s) => {
                let mut s = s.borrow_mut();
                let id = if let Some(&id) = s.var_ids.get(name) {
                    id
                } else {
                    let id = s.var_names.len() as u32;
                    s.var_names.push(name.to_string());
                    s.var_ids.insert(name.to_string(), id);
                    s.var_nodes.push(Formula::var(id));
                    id
                };
                let node = s.var_nodes[id as usize].clone();
                drop(s);
                self.wrap_formula(node)
            }
        }
    }

    /// BDD manager counters (node/cache statistics), when this context
    /// uses the BDD backend. `None` under the SAT backend.
    pub fn bdd_stats(&self) -> Option<superc_bdd::BddStats> {
        match &self.inner.backend {
            Backend::Bdd(m) => Some(m.stats()),
            Backend::Sat(_) => None,
        }
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> CondStats {
        let checks = *self.inner.checks.borrow();
        match &self.inner.backend {
            Backend::Bdd(m) => CondStats {
                feasibility_checks: checks,
                dpll_steps: 0,
                variables: m.num_vars() as usize,
            },
            Backend::Sat(s) => {
                let s = s.borrow();
                CondStats {
                    feasibility_checks: checks,
                    dpll_steps: s.dpll_steps,
                    variables: s.var_names.len(),
                }
            }
        }
    }

    fn wrap_bdd(&self, b: Bdd) -> Cond {
        Cond {
            ctx: self.clone(),
            repr: Repr::Bdd(b),
        }
    }

    fn wrap_formula(&self, f: Arc<Formula>) -> Cond {
        Cond {
            ctx: self.clone(),
            repr: Repr::Formula(f),
        }
    }

    fn same_ctx(&self, other: &CondCtx) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

#[derive(Clone)]
enum Repr {
    Bdd(Bdd),
    Formula(Arc<Formula>),
}

/// A presence condition: a boolean function over configuration variables.
///
/// Conditions support the operations SuperC needs — conjunction when
/// entering nested conditionals, disjunction when merging subparsers,
/// negation when accumulating "remaining configurations" in the token
/// follow-set, and the `is_false` feasibility test used everywhere.
///
/// Equality (`==`) is *representation* equality: exact for the BDD backend
/// (canonicity), syntactic for the SAT backend. Use
/// [`Cond::semantically_equal`] for a backend-independent semantic check.
///
/// # Examples
///
/// ```
/// use superc_cond::{CondBackend, CondCtx};
/// let ctx = CondCtx::new(CondBackend::Bdd);
/// let b64 = ctx.var("defined(CONFIG_64BIT)");
/// // Presence condition of the implicit #else branch:
/// let other = b64.not();
/// assert!(b64.or(&other).is_true());
/// ```
#[derive(Clone)]
pub struct Cond {
    ctx: CondCtx,
    repr: Repr,
}

impl Cond {
    /// The context this condition belongs to.
    pub fn ctx(&self) -> &CondCtx {
        &self.ctx
    }

    /// Conjunction: present when both conditions hold.
    pub fn and(&self, other: &Cond) -> Cond {
        debug_assert!(self.ctx.same_ctx(&other.ctx), "conds from different ctxs");
        match (&self.repr, &other.repr) {
            (Repr::Bdd(a), Repr::Bdd(b)) => self.ctx.wrap_bdd(a.and(b)),
            (Repr::Formula(a), Repr::Formula(b)) => {
                let f = match &self.ctx.inner.backend {
                    Backend::Sat(s) => s.borrow_mut().mk_nary(true, a.clone(), b.clone()),
                    Backend::Bdd(_) => unreachable!(),
                };
                self.ctx.wrap_formula(f)
            }
            _ => unreachable!("mixed representations within one context"),
        }
    }

    /// Disjunction: present when either condition holds.
    pub fn or(&self, other: &Cond) -> Cond {
        debug_assert!(self.ctx.same_ctx(&other.ctx), "conds from different ctxs");
        match (&self.repr, &other.repr) {
            (Repr::Bdd(a), Repr::Bdd(b)) => self.ctx.wrap_bdd(a.or(b)),
            (Repr::Formula(a), Repr::Formula(b)) => {
                let f = match &self.ctx.inner.backend {
                    Backend::Sat(s) => s.borrow_mut().mk_nary(false, a.clone(), b.clone()),
                    Backend::Bdd(_) => unreachable!(),
                };
                self.ctx.wrap_formula(f)
            }
            _ => unreachable!("mixed representations within one context"),
        }
    }

    /// Negation.
    pub fn not(&self) -> Cond {
        match &self.repr {
            Repr::Bdd(a) => self.ctx.wrap_bdd(a.not()),
            Repr::Formula(a) => {
                let f = match &self.ctx.inner.backend {
                    Backend::Sat(s) => s.borrow_mut().mk_not(a.clone()),
                    Backend::Bdd(_) => unreachable!(),
                };
                self.ctx.wrap_formula(f)
            }
        }
    }

    /// Difference `self ∧ ¬other`, the "remaining configuration" operation.
    pub fn and_not(&self, other: &Cond) -> Cond {
        self.and(&other.not())
    }

    /// True when no configuration satisfies this condition.
    ///
    /// This is *the* hot query of configuration-preserving processing: the
    /// macro table trims entries with `c1 ∧ c2 = false`, the follow-set drops
    /// infeasible branches, and the parser kills dead subparsers with it.
    /// O(1) under the BDD backend; a DPLL run under the SAT backend.
    pub fn is_false(&self) -> bool {
        *self.ctx.inner.checks.borrow_mut() += 1;
        match &self.repr {
            Repr::Bdd(a) => a.is_false(),
            Repr::Formula(f) => match &self.ctx.inner.backend {
                Backend::Sat(s) => {
                    if let Some(b) = f.as_const() {
                        return !b;
                    }
                    // Probe a few fixed assignments: a satisfying one
                    // proves feasibility without a solver run.
                    for seed in 0..8 {
                        if f.eval(&|v| probe_assignment(seed, v)) {
                            return false;
                        }
                    }
                    let key = Arc::as_ptr(f) as usize;
                    if let Some(&r) = s.borrow().unsat_memo.get(&key) {
                        return r;
                    }
                    let (clauses, nvars) = formula::tseitin(f);
                    let mut steps = 0u64;
                    let sat = dpll::solve(&clauses, nvars, &mut steps).possibly_sat();
                    {
                        let mut s = s.borrow_mut();
                        s.sat_calls += 1;
                        s.dpll_steps += steps;
                        s.unsat_memo.insert(key, !sat);
                    }
                    !sat
                }
                Backend::Bdd(_) => unreachable!(),
            },
        }
    }

    /// True when every configuration satisfies this condition.
    pub fn is_true(&self) -> bool {
        match &self.repr {
            Repr::Bdd(a) => {
                *self.ctx.inner.checks.borrow_mut() += 1;
                a.is_true()
            }
            Repr::Formula(_) => self.not().is_false(),
        }
    }

    /// True when `self ∧ other` is satisfiable.
    pub fn feasible_with(&self, other: &Cond) -> bool {
        !self.and(other).is_false()
    }

    /// True when every configuration satisfying `self` also satisfies
    /// `other` (`self ⇒ other`). The analysis layer leans on this for
    /// dead-branch detection and canonical condition rendering.
    pub fn implies(&self, other: &Cond) -> bool {
        self.and_not(other).is_false()
    }

    /// True when the two conditions denote the same boolean function.
    pub fn semantically_equal(&self, other: &Cond) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Bdd(a), Repr::Bdd(b)) => a == b,
            _ => {
                // Equivalent iff (a ∧ ¬b) ∨ (¬a ∧ b) is unsatisfiable.
                self.and(&other.not()).or(&self.not().and(other)).is_false()
            }
        }
    }

    /// Evaluates the condition under a configuration.
    ///
    /// Variables for which `env` returns `None` default to `false`, matching
    /// the preprocessor's view that unset configuration macros are undefined.
    pub fn eval(&self, env: impl Fn(&str) -> Option<bool> + Copy) -> bool {
        match &self.repr {
            Repr::Bdd(a) => a.eval(env),
            Repr::Formula(f) => match &self.ctx.inner.backend {
                Backend::Sat(s) => {
                    let s = s.borrow();
                    f.eval(&|v| env(&s.var_names[v as usize]).unwrap_or(false))
                }
                Backend::Bdd(_) => unreachable!(),
            },
        }
    }

    /// One configuration satisfying this condition, as `(variable name,
    /// value)` pairs, or `None` if infeasible. Unlisted variables may take
    /// either value.
    pub fn example_config(&self) -> Option<Vec<(String, bool)>> {
        match &self.repr {
            Repr::Bdd(a) => {
                let m = a.manager();
                a.one_sat().map(|model| {
                    model
                        .into_iter()
                        .map(|(v, val)| (m.var_name(v), val))
                        .collect()
                })
            }
            Repr::Formula(f) => {
                if let Some(b) = f.as_const() {
                    return b.then(Vec::new);
                }
                match &self.ctx.inner.backend {
                    Backend::Sat(s) => {
                        let (clauses, nvars) = formula::tseitin(f);
                        let mut steps = 0u64;
                        let model = dpll::solve(&clauses, nvars, &mut steps).model()?;
                        s.borrow_mut().dpll_steps += steps;
                        let s = s.borrow();
                        // Only report source variables, not Tseitin auxiliaries.
                        Some(
                            model
                                .iter()
                                .enumerate()
                                .take(s.var_names.len())
                                .filter_map(|(i, &val)| val.map(|b| (s.var_names[i].clone(), b)))
                                .collect(),
                        )
                    }
                    Backend::Bdd(_) => unreachable!(),
                }
            }
        }
    }

    /// The variables this condition depends on, as sorted, deduplicated
    /// names — the *support* of the boolean function.
    ///
    /// Drives the exhaustive-configuration oracle: enumerating all `2^n`
    /// assignments of the support proves the configuration-preserving
    /// pipeline equal to the single-configuration pipeline on every
    /// configuration, not just sampled ones.
    pub fn support_names(&self) -> Vec<String> {
        let mut names: Vec<String> = match &self.repr {
            Repr::Bdd(a) => {
                let m = a.manager();
                a.support().into_iter().map(|v| m.var_name(v)).collect()
            }
            Repr::Formula(f) => {
                let mut vars = std::collections::HashSet::new();
                f.collect_vars(&mut vars);
                match &self.ctx.inner.backend {
                    Backend::Sat(s) => {
                        let s = s.borrow();
                        vars.into_iter()
                            .map(|v| s.var_names[v as usize].clone())
                            .collect()
                    }
                    Backend::Bdd(_) => unreachable!(),
                }
            }
        };
        names.sort();
        names.dedup();
        names
    }

    /// A cheap identity key for per-worker memo tables, stable for the
    /// lifetime of the owning context. Equal keys imply the same boolean
    /// function: BDD handles are canonical per manager (the tag
    /// disambiguates the backends), and formula keys are interned-node
    /// addresses which stay alive as long as the context's hash-consing
    /// table does. Unequal keys say nothing — the SAT backend may intern
    /// structurally distinct but equivalent formulas separately.
    pub fn memo_key(&self) -> (u8, u64) {
        match &self.repr {
            Repr::Bdd(a) => (0, a.handle_id()),
            Repr::Formula(f) => (1, Arc::as_ptr(f) as u64),
        }
    }

    /// A structural size measure (BDD node count or formula size) used in
    /// instrumentation; larger conditions are costlier for the SAT backend.
    pub fn size(&self) -> usize {
        match &self.repr {
            Repr::Bdd(a) => a.node_count(),
            Repr::Formula(f) => f.size(),
        }
    }
}

impl PartialEq for Cond {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Bdd(a), Repr::Bdd(b)) => a == b,
            (Repr::Formula(a), Repr::Formula(b)) => Arc::ptr_eq(a, b) || a.syntactic_eq(b),
            _ => false,
        }
    }
}

impl fmt::Debug for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cond({self})")
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Bdd(a) => write!(f, "{a}"),
            Repr::Formula(fr) => match &self.ctx.inner.backend {
                Backend::Sat(s) => {
                    let s = s.borrow();
                    fr.display_with(f, &|v| s.var_names[v as usize].clone())
                }
                Backend::Bdd(_) => unreachable!(),
            },
        }
    }
}

#[cfg(test)]
mod tests;
