use super::*;
use superc_util::prop::{check, Gen};

fn both() -> [CondCtx; 2] {
    [
        CondCtx::new(CondBackend::Bdd),
        CondCtx::new(CondBackend::Sat),
    ]
}

#[test]
fn backends_report_themselves() {
    assert_eq!(CondCtx::new(CondBackend::Bdd).backend(), CondBackend::Bdd);
    assert_eq!(CondCtx::new(CondBackend::Sat).backend(), CondBackend::Sat);
    assert_eq!(format!("{}", CondBackend::Bdd), "bdd");
    assert_eq!(format!("{}", CondBackend::Sat), "sat");
}

#[test]
fn constants_behave() {
    for ctx in both() {
        assert!(ctx.tru().is_true());
        assert!(!ctx.tru().is_false());
        assert!(ctx.fls().is_false());
        assert!(!ctx.fls().is_true());
        assert!(ctx.constant(true).is_true());
        assert!(ctx.constant(false).is_false());
    }
}

#[test]
fn tautology_and_contradiction() {
    for ctx in both() {
        let a = ctx.var("A");
        assert!(a.or(&a.not()).is_true());
        assert!(a.and(&a.not()).is_false());
        assert!(!a.is_false());
        assert!(!a.is_true());
    }
}

#[test]
fn and_not_is_difference() {
    for ctx in both() {
        let a = ctx.var("A");
        let b = ctx.var("B");
        let d = a.and_not(&b);
        assert!(d.and(&b).is_false());
        assert!(!d.and(&a).is_false());
    }
}

#[test]
fn feasibility() {
    for ctx in both() {
        let a = ctx.var("A");
        let b = ctx.var("B");
        assert!(a.feasible_with(&b));
        assert!(!a.feasible_with(&a.not()));
    }
}

#[test]
fn semantic_equality_across_rewrites() {
    for ctx in both() {
        let a = ctx.var("A");
        let b = ctx.var("B");
        // De Morgan: !(A && B) == !A || !B
        let lhs = a.and(&b).not();
        let rhs = a.not().or(&b.not());
        assert!(lhs.semantically_equal(&rhs));
        assert!(!lhs.semantically_equal(&a));
    }
}

#[test]
fn bdd_equality_is_canonical() {
    let ctx = CondCtx::new(CondBackend::Bdd);
    let a = ctx.var("A");
    let b = ctx.var("B");
    assert_eq!(a.and(&b), b.and(&a));
}

#[test]
fn sat_equality_is_syntactic() {
    let ctx = CondCtx::new(CondBackend::Sat);
    let a = ctx.var("A");
    assert_eq!(a.clone(), a.clone());
    let b = ctx.var("B");
    // Syntactically different but semantically equal forms are `!=`...
    let lhs = a.and(&b).not();
    let rhs = a.not().or(&b.not());
    assert_ne!(lhs, rhs);
    // ...yet semantically_equal sees through it.
    assert!(lhs.semantically_equal(&rhs));
}

#[test]
fn eval_under_configuration() {
    for ctx in both() {
        let cond = ctx.var("defined(CONFIG_SMP)").and(&ctx.var("X").not());
        assert!(cond.eval(|n| Some(n == "defined(CONFIG_SMP)")));
        assert!(!cond.eval(|_| Some(true)));
        // Unknown variables default to false.
        assert!(!cond.eval(|_| None));
    }
}

#[test]
fn example_config_satisfies() {
    for ctx in both() {
        let a = ctx.var("A");
        let b = ctx.var("B");
        let cond = a.and(&b.not());
        let cfg = cond.example_config().expect("feasible");
        let lookup = |name: &str| cfg.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
        assert!(cond.eval(lookup));
        assert_eq!(ctx.fls().example_config(), None);
        assert_eq!(ctx.tru().example_config(), Some(vec![]));
    }
}

#[test]
fn display_is_never_empty() {
    for ctx in both() {
        let a = ctx.var("A");
        let s = format!("{}", a.and(&ctx.var("B")).not());
        assert!(!s.is_empty());
        assert!(!format!("{:?}", ctx).is_empty());
        assert!(format!("{:?}", a).starts_with("Cond("));
        assert_eq!(format!("{}", ctx.tru()), "1");
        assert_eq!(format!("{}", ctx.fls()), "0");
    }
}

#[test]
fn stats_count_work() {
    for ctx in both() {
        let a = ctx.var("A");
        let _ = a.and(&a.not()).is_false();
        let s = ctx.stats();
        assert!(s.feasibility_checks >= 1);
        assert_eq!(s.variables, 1);
        // `a && !a` resolves locally under both backends (BDD canonicity;
        // SAT hash-consing contradiction detection), so no DPLL steps.
    }
}

#[test]
fn size_grows_with_structure() {
    for ctx in both() {
        let mut f = ctx.var("v0");
        for i in 1..8 {
            f = f.or(&ctx.var(&format!("v{i}")).and(&ctx.var(&format!("w{i}"))));
        }
        assert!(f.size() > ctx.var("v0").size());
    }
}

/// Random expressions checked for backend agreement on satisfiability and
/// on evaluation under all 16 assignments of 4 variables.
#[derive(Clone, Debug)]
enum E {
    V(u8),
    N(Box<E>),
    A(Box<E>, Box<E>),
    O(Box<E>, Box<E>),
}

fn gen_e(g: &mut Gen, depth: usize) -> E {
    if depth == 0 || g.percent(30) {
        return E::V(g.u8(0..4));
    }
    match g.usize(0..3) {
        0 => E::N(Box::new(gen_e(g, depth - 1))),
        1 => E::A(Box::new(gen_e(g, depth - 1)), Box::new(gen_e(g, depth - 1))),
        _ => E::O(Box::new(gen_e(g, depth - 1)), Box::new(gen_e(g, depth - 1))),
    }
}

fn build(e: &E, ctx: &CondCtx) -> Cond {
    match e {
        E::V(i) => ctx.var(&format!("v{i}")),
        E::N(a) => build(a, ctx).not(),
        E::A(a, b) => build(a, ctx).and(&build(b, ctx)),
        E::O(a, b) => build(a, ctx).or(&build(b, ctx)),
    }
}

fn truth(e: &E, env: u8) -> bool {
    match e {
        E::V(i) => env & (1 << i) != 0,
        E::N(a) => !truth(a, env),
        E::A(a, b) => truth(a, env) && truth(b, env),
        E::O(a, b) => truth(a, env) || truth(b, env),
    }
}

#[test]
fn backends_agree_on_satisfiability() {
    check("backends_agree_on_satisfiability", 64, |g| {
        let e = gen_e(g, 5);
        let bdd = CondCtx::new(CondBackend::Bdd);
        let sat = CondCtx::new(CondBackend::Sat);
        let fb = build(&e, &bdd);
        let fs = build(&e, &sat);
        assert_eq!(fb.is_false(), fs.is_false());
        assert_eq!(fb.is_true(), fs.is_true());
    });
}

#[test]
fn backends_agree_with_truth_table() {
    check("backends_agree_with_truth_table", 64, |g| {
        let e = gen_e(g, 5);
        for ctx in both() {
            let f = build(&e, &ctx);
            for env in 0u8..16 {
                let expected = truth(&e, env);
                let got = f.eval(|name| {
                    let i: u8 = name[1..].parse().unwrap();
                    Some(env & (1 << i) != 0)
                });
                assert_eq!(expected, got);
            }
        }
    });
}

#[test]
fn example_configs_check_out() {
    check("example_configs_check_out", 64, |g| {
        let e = gen_e(g, 5);
        for ctx in both() {
            let f = build(&e, &ctx);
            match f.example_config() {
                None => assert!(f.is_false()),
                Some(cfg) => {
                    let ok = f.eval(|name| cfg.iter().find(|(n, _)| n == name).map(|&(_, v)| v));
                    assert!(ok);
                }
            }
        }
    });
}

#[test]
fn support_names_on_negated_conditions() {
    // Negation must not lose (or invent) support: the exhaustive-
    // configuration oracle enumerates 2^|support| assignments, so a
    // dropped variable silently halves its coverage.
    for ctx in both() {
        let a = ctx.var("defined(CONFIG_A)");
        assert_eq!(a.not().support_names(), vec!["defined(CONFIG_A)"]);
        assert_eq!(a.not().not().support_names(), vec!["defined(CONFIG_A)"]);
        let b = ctx.var("defined(CONFIG_B)");
        assert_eq!(
            a.or(&b).not().support_names(),
            vec!["defined(CONFIG_A)", "defined(CONFIG_B)"]
        );
    }
}

#[test]
fn support_names_on_restricted_conditions() {
    for ctx in both() {
        let a = ctx.var("A");
        let b = ctx.var("B");
        // Restriction keeps both constrained variables, sorted + deduped.
        assert_eq!(a.and_not(&b).support_names(), vec!["A", "B"]);
        assert_eq!(b.or(&a).and(&a.or(&b)).support_names(), vec!["A", "B"]);
        // A tautologous factor must not leak into the support.
        assert_eq!(a.and(&b.or(&b.not())).support_names(), vec!["A"]);
        // Restricting away the whole condition leaves no support.
        assert_eq!(a.and_not(&a).support_names(), Vec::<String>::new());
    }
}

#[test]
fn support_names_on_constant_conditions() {
    for ctx in both() {
        assert_eq!(ctx.tru().support_names(), Vec::<String>::new());
        assert_eq!(ctx.fls().support_names(), Vec::<String>::new());
        // A variable-built tautology/contradiction is semantically
        // constant; its support must be empty under the canonical (BDD)
        // backend and at most syntactic noise-free here too, since the
        // local contradiction rules fold x ∧ ¬x and x ∨ ¬x eagerly.
        let a = ctx.var("A");
        assert_eq!(a.or(&a.not()).support_names(), Vec::<String>::new());
        assert_eq!(a.and(&a.not()).support_names(), Vec::<String>::new());
    }
}

#[test]
fn implies_matches_subset_semantics() {
    for ctx in both() {
        let a = ctx.var("A");
        let b = ctx.var("B");
        assert!(a.and(&b).implies(&a));
        assert!(!a.implies(&a.and(&b)));
        assert!(ctx.fls().implies(&a));
        assert!(a.implies(&ctx.tru()));
        assert!(!ctx.tru().implies(&a));
        assert!(a.implies(&a.or(&b)));
    }
}
